"""TLC: Trusted, Loss-tolerant Charging for the cellular edge.

A full reproduction of "Bridging the Data Charging Gap in the Cellular
Edge" (Li, Kim, Vlachou, Xie — SIGCOMM 2019): the loss-selfishness
cancellation game, the publicly verifiable Proof-of-Charging protocol,
tamper-resilient charging records, and the LTE/EPC + edge simulation
substrate the evaluation runs on.

Quickstart::

    from repro import DataPlan, NegotiationEngine
    from repro.core import HonestStrategy, PartyKnowledge, PartyRole

    plan = DataPlan(c=0.5, cycle_duration_s=3600)
    edge = HonestStrategy(PartyKnowledge(PartyRole.EDGE, 1_000_000, 930_000))
    operator = HonestStrategy(PartyKnowledge(PartyRole.OPERATOR, 930_000, 1_000_000))
    result = NegotiationEngine(plan, edge, operator).run()
    assert result.volume == plan.expected_charge(1_000_000, 930_000)

See ``examples/`` for full scenarios and ``benchmarks/`` for the paper's
tables and figures.
"""

from .core import (
    ChargingCycle,
    DataPlan,
    GameInstance,
    NegotiationEngine,
    NegotiationResult,
)
from .poc import NegotiationDriver, PublicVerifier, Role

__version__ = "1.0.0"

__all__ = [
    "ChargingCycle",
    "DataPlan",
    "GameInstance",
    "NegotiationEngine",
    "NegotiationResult",
    "NegotiationDriver",
    "PublicVerifier",
    "Role",
    "__version__",
]
