"""Tiered result cache: in-memory LRU in front of the on-disk store.

The service settles the same shard spec many times across replays and
retries; the batch engine already content-addresses shard results on
disk (:class:`~repro.experiments.parallel.ResultCache`).  This tier adds
a bounded in-memory LRU in front of it:

* ``get`` serves memory hits without touching the filesystem, promotes
  disk hits into memory, and counts every outcome honestly
  (``service.cache.hit{tier=memory|disk}`` / ``service.cache.miss``);
* ``put`` inserts at the most-recent end and *writes through* to the
  disk tier (so a warm start is available to any later process, and
  crash-safety is the disk store's atomic-publish guarantee); when the
  memory tier is over capacity the least-recently-used entry is
  dropped from memory only — its durable copy stays one ``get`` away.

Because keys are content-addressed (the full shard spec is hashed into
the key), an entry can never go stale: a config change is a new key.
Sharing the disk directory with the batch engine therefore gives the
service a warm start from any previous ``run_fleet`` — and vice versa —
without any coherence protocol.
"""

from __future__ import annotations

from collections import OrderedDict

from ..experiments.parallel import ResultCache


class TieredCache:
    """Bounded-LRU memory tier over an optional content-addressed disk tier."""

    def __init__(
        self,
        max_entries: int = 64,
        disk: ResultCache | None = None,
        metrics=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"memory tier needs at least one entry, got {max_entries}")
        self.max_entries = max_entries
        self.disk = disk
        self.metrics = metrics
        self._memory: OrderedDict[str, dict] = OrderedDict()
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.spilled = 0

    def __len__(self) -> int:
        return len(self._memory)

    def memory_keys(self) -> list[str]:
        """Keys in eviction order: least recently used first."""
        return list(self._memory)

    def _count(self, name: str, **labels) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc()

    def get(self, key: str) -> dict | None:
        """Look up one entry through both tiers; None on a true miss."""
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.hits_memory += 1
            self._count("service.cache.hit", tier="memory")
            return entry
        if self.disk is not None:
            data = self.disk.get_data(key)
            if data is not None:
                self.hits_disk += 1
                self._count("service.cache.hit", tier="disk")
                self._insert(key, data)
                return data
        self.misses += 1
        self._count("service.cache.miss")
        return None

    def put(self, key: str, data: dict) -> None:
        """Insert (or refresh) an entry; writes through to the disk tier.

        The write-through is unconditional: content-addressed keys never
        change value, but an overwriting caller must not leave a stale
        durable copy behind (the disk store publishes atomically).
        """
        self._insert(key, data)
        if self.disk is not None:
            self.disk.put_data(key, data)

    def _insert(self, key: str, data: dict) -> None:
        if key in self._memory:
            self._memory.move_to_end(key)
            self._memory[key] = data
            return
        self._memory[key] = data
        while len(self._memory) > self.max_entries:
            # Write-through made the LRU entry durable at put time; only
            # the memory copy goes.
            self._memory.popitem(last=False)
            self.spilled += 1
            self._count("service.cache.spill")
