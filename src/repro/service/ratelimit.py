"""Per-vendor token-bucket rate limiting on the simulated clock.

The reconciliation service admits claims per *vendor* (an edge operator
peering with the charging operator); each vendor owns one bucket.  The
bucket is a pure function of the sequence of ``(now, tokens)`` calls it
sees — no wall clock, no background refill task — so admission decisions
are bit-deterministic and replayable.
"""

from __future__ import annotations


class TokenBucket:
    """Classic token bucket: ``rate_hz`` tokens/s, capped at ``capacity``.

    ``try_acquire(now)`` refills lazily from the elapsed simulated time
    and either spends the tokens or reports the shortfall.  ``now`` must
    be non-decreasing across calls (the simulation clock guarantees it).
    """

    __slots__ = ("rate_hz", "capacity", "tokens", "t_last")

    def __init__(self, rate_hz: float, capacity: float) -> None:
        if rate_hz <= 0:
            raise ValueError(f"refill rate must be positive, got {rate_hz}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.rate_hz = float(rate_hz)
        self.capacity = float(capacity)
        self.tokens = float(capacity)  # buckets start full: first claims pass
        self.t_last = 0.0

    def _refill(self, now: float) -> None:
        if now < self.t_last:
            raise ValueError(f"clock ran backwards: {now} < {self.t_last}")
        self.tokens = min(self.capacity, self.tokens + (now - self.t_last) * self.rate_hz)
        self.t_last = now

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available at simulated time ``now``."""
        self._refill(now)
        if self.tokens + 1e-12 >= tokens:  # forgive float refill dust
            self.tokens -= tokens
            return True
        return False

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self.tokens

    def deficit_delay(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` would be available (retry hint)."""
        missing = tokens - self.tokens
        if missing <= 0:
            return 0.0
        return missing / self.rate_hz
