"""Process-pool bridge: real CPU parallelism under the simulated clock.

The sim runtime is single-threaded and deterministic; shard settlement
is CPU-bound.  :class:`SimProcessPool` submits picklable calls to a
``concurrent.futures.ProcessPoolExecutor`` and hands back
:class:`~repro.service.sim_async.SimFuture` bridges a worker coroutine
can await — the settle worker parks, the event loop keeps dispatching,
and :meth:`ReconciliationService.drain` blocks on real completions only
once the loop has nothing left to do.

Determinism note: when several results are ready together they resolve
in **submission order**, and the service folds shards strictly by index,
so the settlement ledger and ``FleetResult`` stay bit-identical to the
inline path whatever the pool size.  The *virtual timestamps* of
individual settlements (and thus service-side latency metrics) may vary
run-to-run — wall-clock completion decides when the loop gets to resume
a parked worker.

The executor is created lazily on first submit, so a service configured
with a pool but fed no shard claims never forks a process.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait

from .sim_async import SimFuture


class SimProcessPool:
    """Bridge a process pool's futures into SimFutures."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one pool worker, got {workers}")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None
        self._bridges: dict[Future, SimFuture] = {}
        self._order: list[Future] = []

    def submit(self, fn, *args) -> SimFuture:
        """Dispatch ``fn(*args)`` to the pool; returns the awaitable bridge."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        bridge = SimFuture()
        handle = self._executor.submit(fn, *args)
        self._bridges[handle] = bridge
        self._order.append(handle)
        return bridge

    def pending(self) -> int:
        """Submissions whose bridge has not resolved yet."""
        return len(self._bridges)

    def wait_next(self) -> None:
        """Block until at least one in-flight call finishes, then resolve
        every finished bridge in submission order (waking its awaiter)."""
        if not self._bridges:
            return
        wait(list(self._bridges), return_when=FIRST_COMPLETED)
        ready = [h for h in self._order if h in self._bridges and h.done()]
        for handle in ready:
            bridge = self._bridges.pop(handle)
            self._order.remove(handle)
            error = handle.exception()
            if error is not None:
                bridge.set_exception(error)
            else:
                bridge.set_result(handle.result())

    def shutdown(self) -> None:
        """Tear the executor down (idempotent; waits for stragglers)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
