"""A deterministic coroutine runtime on the simulated event loop.

``asyncio`` schedules on wall-clock time and OS readiness, both of which
would break the repo's bit-determinism contract.  This module gives the
service layer the same programming model — ``async def`` workers,
awaitable sleeps, bounded queues with backpressure — but every wake-up
is an event on the discrete-event :class:`~repro.netsim.events.EventLoop`,
dispatched in ``(time, seq)`` order.  Two runs of the same program are
therefore bit-identical, and "concurrency" is exactly as reproducible as
any other simulated process.

Design notes:

* A :class:`SimFuture` resolves synchronously: ``set_result`` runs the
  registered callbacks before returning, inside whatever event-loop
  callback resolved it.  Determinism comes from the loop's dispatch
  order, not from deferring wake-ups.
* Callback dispatch is a flat trampoline, not direct recursion: a
  resolution that triggers further resolutions (task A finishing wakes
  task B, which finishes and wakes task C, ...) appends to one FIFO
  work queue drained iteratively.  Hand-off chains of any depth
  therefore run in constant stack space — at soak scale the old
  ``_step`` → callback → ``_step`` recursion blew the Python stack.
* A :class:`SimTask` steps its coroutine until it awaits an unresolved
  future, then parks a done-callback on it.  Tasks are themselves
  futures (awaitable, with a result or an exception).
* :class:`SimQueue` is the only synchronization primitive the service
  needs: FIFO hand-off, bounded capacity, blocking ``put`` for producer
  backpressure and non-blocking ``put_nowait`` for ingress admission.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Coroutine

from ..netsim.events import EventLoop


class QueueFull(Exception):
    """``put_nowait`` on a queue that is at capacity."""


#: The trampoline's shared work queue: (callback, future) pairs in FIFO
#: resolution order.  Module-level because hand-off chains cross future
#: instances; the runtime is single-threaded so no locking is needed.
_dispatch_queue: deque = deque()
_dispatching = False


def _dispatch(future: "SimFuture", callbacks) -> None:
    """Run done-callbacks iteratively.

    The outermost resolution drains the queue; nested resolutions (a
    callback resolving another future) only enqueue and return, so the
    stack depth stays constant however long the synchronous hand-off
    chain grows.
    """
    global _dispatching
    _dispatch_queue.extend((callback, future) for callback in callbacks)
    if _dispatching:
        return
    _dispatching = True
    try:
        while _dispatch_queue:
            callback, resolved = _dispatch_queue.popleft()
            callback(resolved)
    finally:
        _dispatching = False


class SimFuture:
    """A single-assignment result holder, awaitable from a coroutine."""

    __slots__ = ("_done", "_result", "_exception", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["SimFuture"], None]] = []

    def done(self) -> bool:
        """Whether a result or exception has been set."""
        return self._done

    def result(self) -> Any:
        """The resolved value; raises the stored exception if one was set."""
        if not self._done:
            raise RuntimeError("future is not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> BaseException | None:
        """The stored exception, or None."""
        return self._exception

    def _resolve(self) -> None:
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        if callbacks:
            _dispatch(self, callbacks)

    def set_result(self, value: Any) -> None:
        """Resolve with ``value``; wakes waiters synchronously."""
        if self._done:
            raise RuntimeError("future already resolved")
        self._result = value
        self._resolve()

    def set_exception(self, exc: BaseException) -> None:
        """Resolve with an exception; waiters re-raise it."""
        if self._done:
            raise RuntimeError("future already resolved")
        self._exception = exc
        self._resolve()

    def add_done_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        """Run ``callback(self)`` at resolution (immediately if done)."""
        if self._done:
            _dispatch(self, (callback,))
        else:
            self._callbacks.append(callback)

    def __await__(self):
        if not self._done:
            yield self
        return self.result()


class SimTask(SimFuture):
    """One coroutine driven to completion by future resolutions."""

    __slots__ = ("_coro", "name")

    def __init__(self, coro: Coroutine, name: str = "task") -> None:
        super().__init__()
        self._coro = coro
        self.name = name
        self._step(None, None)

    def _step(self, value: Any, exc: BaseException | None) -> None:
        try:
            if exc is not None:
                awaited = self._coro.throw(exc)
            else:
                awaited = self._coro.send(value)
        except StopIteration as stop:
            self.set_result(stop.value)
            return
        except BaseException as error:  # the coroutine itself crashed
            self.set_exception(error)
            return
        if not isinstance(awaited, SimFuture):
            self.set_exception(
                TypeError(
                    f"task {self.name!r} awaited {type(awaited).__name__}, "
                    "only SimFuture-based awaitables run on the sim runtime"
                )
            )
            return
        awaited.add_done_callback(self._wake)

    def _wake(self, future: SimFuture) -> None:
        error = future.exception()
        if error is not None:
            self._step(None, error)
        else:
            self._step(future._result, None)


class SimRuntime:
    """Spawns tasks and sleeps on one simulated event loop."""

    def __init__(self, loop: EventLoop) -> None:
        self.loop = loop
        self.tasks: list[SimTask] = []

    def now(self) -> float:
        """Current virtual time."""
        return self.loop.now()

    def spawn(self, coro: Coroutine, name: str = "task") -> SimTask:
        """Start a coroutine; it runs synchronously until its first await."""
        task = SimTask(coro, name=name)
        self.tasks.append(task)
        return task

    def sleep(self, delay: float) -> SimFuture:
        """An awaitable resolved ``delay`` simulated seconds from now."""
        future = SimFuture()
        self.loop.schedule(delay, future.set_result, None)
        return future

    def crashed_tasks(self) -> list[SimTask]:
        """Tasks that ended with an exception (service health checks)."""
        return [t for t in self.tasks if t.done() and t.exception() is not None]


class SimQueue:
    """Bounded FIFO hand-off between producers and consumer tasks.

    ``maxsize=0`` means unbounded.  ``put_nowait`` raises
    :class:`QueueFull` at capacity — the ingress admission path — while
    the awaitable ``put`` blocks the producer coroutine until space
    frees (backpressure).  Waiters wake strictly FIFO, so hand-off order
    is deterministic.
    """

    def __init__(self, maxsize: int = 0) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._items: deque = deque()
        self._getters: deque[SimFuture] = deque()
        self._putters: deque[SimFuture] = deque()

    def qsize(self) -> int:
        """Items currently buffered."""
        return len(self._items)

    @property
    def full(self) -> bool:
        """Whether ``put_nowait`` would raise."""
        return bool(self.maxsize) and len(self._items) >= self.maxsize

    def put_nowait(self, item: Any) -> None:
        """Enqueue or hand straight to a waiting getter; raises when full."""
        if self._getters:
            self._getters.popleft().set_result(item)
            return
        if self.full:
            raise QueueFull(f"queue at capacity ({self.maxsize})")
        self._items.append(item)

    def force_put(self, item: Any) -> None:
        """Enqueue behind the buffered backlog, ignoring capacity.

        Lifecycle escape hatch (shutdown sentinels, crash-resume queue
        restoration): these items must never bounce with
        :class:`QueueFull` and must preserve FIFO order behind whatever
        is already queued.
        """
        if self._getters:
            self._getters.popleft().set_result(item)
            return
        self._items.append(item)

    async def put(self, item: Any) -> None:
        """Enqueue, waiting for space if the queue is at capacity."""
        while self.full and not self._getters:
            space = SimFuture()
            self._putters.append(space)
            await space
        self.put_nowait(item)

    async def get(self) -> Any:
        """Dequeue the oldest item, waiting if the queue is empty."""
        if self._items:
            item = self._items.popleft()
            if self._putters:
                self._putters.popleft().set_result(None)
            return item
        slot = SimFuture()
        self._getters.append(slot)
        return await slot
