"""Online charging-reconciliation service (the "live TLC" subsystem).

The paper's TLC protocol is meant to run continuously between the
operator and the edge vendor; the batch sweeps in
:mod:`repro.experiments` exercise the same physics one shot at a time.
This package holds the long-running counterpart:

* :mod:`repro.service.sim_async` — a deterministic coroutine runtime on
  the simulated :class:`~repro.netsim.events.EventLoop` (futures, tasks,
  bounded queues with backpressure);
* :mod:`repro.service.cache` — a tiered in-memory-LRU / on-disk result
  cache reusing the content-addressed
  :class:`~repro.experiments.parallel.ResultCache`;
* :mod:`repro.service.ratelimit` — per-vendor token buckets refilled on
  the simulated clock;
* :mod:`repro.service.pool` — a process-pool bridge that lets settle
  workers await real CPU-parallel shard simulations as SimFutures;
* :mod:`repro.service.service` — the service itself: claim ingestion,
  background settlement + PoC-verification workers, streaming JSON-lines
  settlement output, all instrumented through :mod:`repro.obs`;
* :mod:`repro.service.loadgen` — the fleet engine as a load generator:
  replay a :class:`~repro.experiments.fleet.FleetConfig` as sustained
  claim traffic and fold the service's answers back into a
  :class:`~repro.experiments.fleet.FleetResult`.

The differential contract (enforced by ``tests/service/``): every
service-path answer is bit-identical to the batch path's, across worker
counts, pool sizes, warm/cold cache states — and across a crash-and-
resume at any point of the run (the ledger doubles as a write-ahead
journal; see :meth:`ReconciliationService.resume`).
"""

from .cache import TieredCache
from .loadgen import ReplayConfig, ReplayStats, replay_fleet, resume_fleet_replay
from .pool import SimProcessPool
from .ratelimit import TokenBucket
from .service import (
    LATENCY_EDGES,
    Admission,
    ReconciliationService,
    ServiceConfig,
    SettlementLedger,
    make_poc_claim,
)
from .sim_async import QueueFull, SimFuture, SimQueue, SimRuntime, SimTask

__all__ = [
    "Admission",
    "LATENCY_EDGES",
    "QueueFull",
    "ReconciliationService",
    "ReplayConfig",
    "ReplayStats",
    "ServiceConfig",
    "SettlementLedger",
    "SimFuture",
    "SimProcessPool",
    "SimQueue",
    "SimRuntime",
    "SimTask",
    "TieredCache",
    "TokenBucket",
    "make_poc_claim",
    "replay_fleet",
    "resume_fleet_replay",
]
