"""The fleet engine as a load generator for the reconciliation service.

:func:`replay_fleet` takes the same :class:`~repro.experiments.fleet.FleetConfig`
the batch engine runs in one shot and replays it as sustained claim
traffic: every shard becomes one logical *shard claim*, submitted by a
simulated vendor client that spreads arrivals over ``duration_s``,
retries synchronous rejections (rate limiting, backpressure) with a
deterministic backoff, and — after the loop drains — resubmits any claim
the workers rejected (*recovery waves*) until the fleet is fully
settled or the wave budget runs out.

An optional :class:`~repro.netsim.faults.FaultSchedule` degrades the
ingestion path itself: specs targeting the ``uplink`` injection point
drop (``burst-loss``/``blackout``), mangle (``corrupt``) or duplicate
(``duplicate``) submissions, with every probabilistic decision drawn
from one named stream of ``StreamRegistry(fleet.seed)`` — so a chaotic
replay reproduces exactly from the fleet seed.

The differential contract: when every claim settles, the returned
:class:`~repro.experiments.fleet.FleetResult` is bit-identical to
``run_fleet(fleet)``'s, whatever the worker count, fault schedule or
cache temperature.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..experiments.fleet import (
    FleetConfig,
    FleetResult,
    build_shards,
    shard_to_dict,
)
from ..experiments.parallel import ResultCache
from ..netsim.events import EventLoop
from ..netsim.faults import (
    BLACKOUT,
    BURST_LOSS,
    CORRUPT,
    DUPLICATE,
    FaultSchedule,
)
from ..netsim.rng import StreamRegistry
from ..obs.metrics import MetricsRegistry
from .service import ReconciliationService, ServiceConfig, SettlementLedger

#: Where the ingestion path lives in fault-target space.  Named so the
#: canned profiles (``chaos`` duplicates "uplink" frames and loses
#: "*link*" traffic) hit the service's front door unmodified.
INGEST_POINT = "uplink"

_INGEST_KINDS = (BURST_LOSS, BLACKOUT, CORRUPT, DUPLICATE)

#: Admission rejections worth retrying from the client side; everything
#: else is a terminal verdict on this submission.
_RETRYABLE = frozenset({"rate-limited", "backpressure"})


@dataclass(frozen=True)
class ReplayConfig:
    """Client-side knobs for one fleet replay."""

    duration_s: float = 60.0
    vendors: int = 4
    retry_backoff_s: float = 0.25
    max_attempts: int = 12
    max_waves: int = 8
    ingest_faults: FaultSchedule | None = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"replay duration must be positive, got {self.duration_s}")
        if self.vendors < 1:
            raise ValueError(f"need at least one vendor, got {self.vendors}")


@dataclass
class ReplayStats:
    """What the load generator observed (client-side view)."""

    submitted: int = 0       # physical submissions that reached the wire
    accepted: int = 0        # admissions the service said yes to
    retries: int = 0         # client-side resubmissions after sync rejection
    lost: int = 0            # submissions the ingest faults swallowed
    corrupted: int = 0       # submissions mangled in flight
    duplicated: int = 0      # extra copies the ingest faults minted
    waves: int = 0           # recovery waves that were needed
    dropped: int = 0         # logical claims never settled (should be 0)
    rejected: dict[str, int] = field(default_factory=dict)

    def note_rejected(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1


def replay_fleet(
    fleet: FleetConfig,
    replay: ReplayConfig | None = None,
    service_config: ServiceConfig | None = None,
    disk_cache: ResultCache | None = None,
    ledger: SettlementLedger | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[FleetResult | None, ReplayStats, ReconciliationService]:
    """Replay ``fleet`` as claim traffic; returns (result, stats, service).

    ``result`` is None only if some claim never settled within the wave
    budget — ``stats.dropped`` then says how many.
    """
    replay = replay if replay is not None else ReplayConfig()
    loop = EventLoop()
    service = ReconciliationService(
        loop=loop,
        config=service_config,
        disk_cache=disk_cache,
        ledger=ledger,
        metrics=metrics,
    )
    service.start()

    shards = build_shards(fleet)
    registry = StreamRegistry(fleet.seed).fork("service-replay")
    fault_rng = registry.stream("ingest-faults")
    stats = ReplayStats()
    faults = replay.ingest_faults
    if faults is not None and faults.is_empty:
        faults = None

    # ref -> pristine claim payload (retries always restart from this,
    # so a corruption fault never sticks past one submission).
    payloads: dict[str, dict] = {}
    refs: list[str] = []
    for shard in shards:
        ref = f"shard-{shard.index}"
        refs.append(ref)
        payloads[ref] = {
            "ref": ref,
            "vendor": f"vendor-{shard.index % replay.vendors}",
            "kind": "shard",
            "shard": shard_to_dict(shard),
        }

    def fresh_id(ref: str) -> str:
        # Globally unique physical id per submission; the logical
        # identity rides in "ref".
        return f"{ref}#{stats.submitted}"

    def mangle(claim: dict) -> dict:
        bad = dict(claim)
        # An in-flight bit flip, CRC-style: the payload still parses as
        # JSON but the shard spec no longer decodes.
        bad["shard"] = {"index": claim["shard"]["index"], "seed": "corrupt"}
        return bad

    def deliver(ref: str, attempt: int) -> None:
        """One physical submission attempt for the logical claim ``ref``."""
        if service.is_settled(ref):
            return
        if attempt > replay.max_attempts:
            return  # give up this wave; a recovery wave may pick it up
        claim = dict(payloads[ref])
        claim["id"] = fresh_id(ref)
        stats.submitted += 1
        if faults is not None:
            now = loop.now()
            for spec in faults.active_specs(_INGEST_KINDS, INGEST_POINT, now):
                if spec.kind in (BURST_LOSS, BLACKOUT):
                    p = spec.magnitude if spec.kind == BURST_LOSS else 1.0
                    if fault_rng.random() < p:
                        stats.lost += 1
                        # Same guard as the _RETRYABLE admission path: a
                        # retry past max_attempts would be dropped by the
                        # top-of-deliver check, so scheduling it (and
                        # counting it) would overstate stats.retries.
                        if attempt < replay.max_attempts:
                            stats.retries += 1
                            loop.schedule(
                                replay.retry_backoff_s * (attempt + 1),
                                deliver, ref, attempt + 1,
                            )
                        return
                elif spec.kind == CORRUPT:
                    if fault_rng.random() < spec.magnitude:
                        stats.corrupted += 1
                        claim = mangle(claim)
                elif spec.kind == DUPLICATE:
                    if fault_rng.random() < spec.magnitude:
                        stats.duplicated += 1
                        copy = dict(claim)
                        copy["id"] = claim["id"] + "+dup"
                        loop.schedule(
                            max(spec.jitter_s, 0.0), submit_copy, copy
                        )
        admission = service.submit(claim)
        if admission.accepted:
            stats.accepted += 1
            return
        stats.note_rejected(admission.reason)
        if admission.reason in _RETRYABLE and attempt < replay.max_attempts:
            stats.retries += 1
            loop.schedule(
                replay.retry_backoff_s * (attempt + 1), deliver, ref, attempt + 1
            )

    def submit_copy(claim: dict) -> None:
        # Fault-minted duplicates are fire-and-forget: the original's
        # retry machinery owns recovery for this ref.
        stats.submitted += 1
        admission = service.submit(claim)
        if admission.accepted:
            stats.accepted += 1
        else:
            stats.note_rejected(admission.reason)

    spacing = replay.duration_s / len(refs) if refs else 0.0
    for i, ref in enumerate(refs):
        loop.schedule(i * spacing, deliver, ref, 0)
    loop.run()

    # Recovery waves: anything a worker rejected (corrupted payload,
    # duplicate race, ...) gets resubmitted from the pristine payload.
    for _ in range(replay.max_waves):
        unsettled = [ref for ref in refs if not service.is_settled(ref)]
        if not unsettled:
            break
        stats.waves += 1
        for j, ref in enumerate(unsettled):
            loop.schedule(j * replay.retry_backoff_s, deliver, ref, 0)
        loop.run()

    unsettled = [ref for ref in refs if not service.is_settled(ref)]
    stats.dropped = len(unsettled)
    service.close()

    result: FleetResult | None = None
    if not unsettled:
        result = service.fleet_result(fleet)
        service.ledger.write({"type": "aggregate", "fleet": result.to_dict()})
    service.ledger.close()
    return result, stats, service
