"""The fleet engine as a load generator for the reconciliation service.

:func:`replay_fleet` takes the same :class:`~repro.experiments.fleet.FleetConfig`
the batch engine runs in one shot and replays it as sustained claim
traffic: every shard becomes one logical *shard claim*, submitted by a
simulated vendor client that spreads arrivals over ``duration_s``,
retries synchronous rejections (rate limiting, backpressure) with a
deterministic backoff, and — after the loop drains — resubmits any claim
the workers rejected (*recovery waves*) until the fleet is fully
settled or the wave budget runs out.

:func:`resume_fleet_replay` is the crash-recovery twin: it rebuilds the
service from a killed run's on-disk ledger journal
(:meth:`~repro.service.service.ReconciliationService.resume`), drains
whatever the journal re-enqueued, then drives the same recovery waves
until the fleet settles.  The resulting settlement view and aggregate
are byte-identical to an uninterrupted run's.

An optional :class:`~repro.netsim.faults.FaultSchedule` degrades the
ingestion path itself: specs targeting the ``uplink`` injection point
drop (``burst-loss``/``blackout``), mangle (``corrupt``) or duplicate
(``duplicate``) submissions, with every probabilistic decision drawn
from one named stream of ``StreamRegistry(fleet.seed)`` — so a chaotic
replay reproduces exactly from the fleet seed.

The differential contract: when every claim settles, the returned
:class:`~repro.experiments.fleet.FleetResult` is bit-identical to
``run_fleet(fleet)``'s, whatever the worker count, pool size, fault
schedule, cache temperature — or how often the service was killed and
resumed along the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..experiments.fleet import (
    FleetConfig,
    FleetResult,
    build_shards,
    shard_to_dict,
)
from ..experiments.parallel import ResultCache
from ..netsim.events import EventLoop
from ..netsim.faults import (
    BLACKOUT,
    BURST_LOSS,
    CORRUPT,
    DUPLICATE,
    FaultSchedule,
)
from ..netsim.rng import StreamRegistry
from ..obs.metrics import MetricsRegistry
from .service import ReconciliationService, ServiceConfig, SettlementLedger

#: Where the ingestion path lives in fault-target space.  Named so the
#: canned profiles (``chaos`` duplicates "uplink" frames and loses
#: "*link*" traffic) hit the service's front door unmodified.
INGEST_POINT = "uplink"

_INGEST_KINDS = (BURST_LOSS, BLACKOUT, CORRUPT, DUPLICATE)

#: Admission rejections worth retrying from the client side; everything
#: else is a terminal verdict on this submission.
_RETRYABLE = frozenset({"rate-limited", "backpressure"})


@dataclass(frozen=True)
class ReplayConfig:
    """Client-side knobs for one fleet replay."""

    duration_s: float = 60.0
    vendors: int = 4
    retry_backoff_s: float = 0.25
    max_attempts: int = 12
    max_waves: int = 8
    ingest_faults: FaultSchedule | None = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"replay duration must be positive, got {self.duration_s}")
        if self.vendors < 1:
            raise ValueError(f"need at least one vendor, got {self.vendors}")


@dataclass
class ReplayStats:
    """What the load generator observed (client-side view)."""

    submitted: int = 0       # physical submissions that reached the wire
    accepted: int = 0        # admissions the service said yes to
    retries: int = 0         # client-side resubmissions after sync rejection
    lost: int = 0            # submissions the ingest faults swallowed
    corrupted: int = 0       # submissions mangled in flight
    duplicated: int = 0      # extra copies the ingest faults minted
    waves: int = 0           # recovery waves that were needed
    dropped: int = 0         # logical claims never settled (should be 0)
    rejected: dict[str, int] = field(default_factory=dict)

    def note_rejected(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1


class _ReplayDriver:
    """The vendor-client machinery shared by fresh and resumed replays."""

    def __init__(
        self,
        service: ReconciliationService,
        fleet: FleetConfig,
        replay: ReplayConfig,
        stats: ReplayStats,
        id_salt: str = "",
    ) -> None:
        self.service = service
        self.loop = service.loop
        self.replay = replay
        self.stats = stats
        # A resumed client must not reuse physical ids the dead run may
        # already have burned; the salt keeps id streams disjoint.
        self.id_salt = id_salt
        registry = StreamRegistry(fleet.seed).fork("service-replay")
        self.fault_rng = registry.stream("ingest-faults")
        faults = replay.ingest_faults
        self.faults = None if (faults is None or faults.is_empty) else faults
        # ref -> pristine claim payload (retries always restart from
        # this, so a corruption fault never sticks past one submission).
        self.payloads: dict[str, dict] = {}
        self.refs: list[str] = []
        for shard in build_shards(fleet):
            ref = f"shard-{shard.index}"
            self.refs.append(ref)
            self.payloads[ref] = {
                "ref": ref,
                "vendor": f"vendor-{shard.index % replay.vendors}",
                "kind": "shard",
                "shard": shard_to_dict(shard),
            }

    def fresh_id(self, ref: str) -> str:
        # Globally unique physical id per submission; the logical
        # identity rides in "ref".
        return f"{ref}#{self.id_salt}{self.stats.submitted}"

    def mangle(self, claim: dict) -> dict:
        bad = dict(claim)
        # An in-flight bit flip, CRC-style: the payload still parses as
        # JSON but the shard spec no longer decodes.
        bad["shard"] = {"index": claim["shard"]["index"], "seed": "corrupt"}
        return bad

    def deliver(self, ref: str, attempt: int) -> None:
        """One physical submission attempt for the logical claim ``ref``."""
        service, stats, replay, loop = self.service, self.stats, self.replay, self.loop
        if service.is_settled(ref):
            return
        if attempt > replay.max_attempts:
            return  # give up this wave; a recovery wave may pick it up
        claim = dict(self.payloads[ref])
        claim["id"] = self.fresh_id(ref)
        stats.submitted += 1
        if self.faults is not None:
            now = loop.now()
            for spec in self.faults.active_specs(_INGEST_KINDS, INGEST_POINT, now):
                if spec.kind in (BURST_LOSS, BLACKOUT):
                    p = spec.magnitude if spec.kind == BURST_LOSS else 1.0
                    if self.fault_rng.random() < p:
                        stats.lost += 1
                        # Same guard as the _RETRYABLE admission path: a
                        # retry past max_attempts would be dropped by the
                        # top-of-deliver check, so scheduling it (and
                        # counting it) would overstate stats.retries.
                        if attempt < replay.max_attempts:
                            stats.retries += 1
                            loop.schedule(
                                replay.retry_backoff_s * (attempt + 1),
                                self.deliver, ref, attempt + 1,
                            )
                        return
                elif spec.kind == CORRUPT:
                    if self.fault_rng.random() < spec.magnitude:
                        stats.corrupted += 1
                        claim = self.mangle(claim)
                elif spec.kind == DUPLICATE:
                    if self.fault_rng.random() < spec.magnitude:
                        stats.duplicated += 1
                        copy = dict(claim)
                        copy["id"] = claim["id"] + "+dup"
                        loop.schedule(
                            max(spec.jitter_s, 0.0), self.submit_copy, copy
                        )
        admission = service.submit(claim)
        if admission.accepted:
            stats.accepted += 1
            return
        stats.note_rejected(admission.reason)
        if admission.reason in _RETRYABLE and attempt < replay.max_attempts:
            stats.retries += 1
            loop.schedule(
                replay.retry_backoff_s * (attempt + 1), self.deliver, ref, attempt + 1
            )

    def submit_copy(self, claim: dict) -> None:
        # Fault-minted duplicates are fire-and-forget: the original's
        # retry machinery owns recovery for this ref.
        self.stats.submitted += 1
        admission = self.service.submit(claim)
        if admission.accepted:
            self.stats.accepted += 1
        else:
            self.stats.note_rejected(admission.reason)

    def spread_initial(self) -> None:
        spacing = self.replay.duration_s / len(self.refs) if self.refs else 0.0
        for i, ref in enumerate(self.refs):
            self.loop.schedule(i * spacing, self.deliver, ref, 0)

    def run_recovery_waves(self) -> None:
        # Anything a worker rejected (corrupted payload, duplicate
        # race, ...) gets resubmitted from the pristine payload.
        for _ in range(self.replay.max_waves):
            unsettled = [
                ref for ref in self.refs if not self.service.is_settled(ref)
            ]
            if not unsettled:
                break
            self.stats.waves += 1
            for j, ref in enumerate(unsettled):
                self.loop.schedule(
                    j * self.replay.retry_backoff_s, self.deliver, ref, 0
                )
            self.service.drain()

    def finish(self, fleet: FleetConfig) -> FleetResult | None:
        unsettled = [ref for ref in self.refs if not self.service.is_settled(ref)]
        self.stats.dropped = len(unsettled)
        self.service.close()
        result: FleetResult | None = None
        if not unsettled:
            result = self.service.fleet_result(fleet)
            self.service.ledger.write(
                {"type": "aggregate", "fleet": result.to_dict()}
            )
        self.service.ledger.close()
        return result


def replay_fleet(
    fleet: FleetConfig,
    replay: ReplayConfig | None = None,
    service_config: ServiceConfig | None = None,
    disk_cache: ResultCache | None = None,
    ledger: SettlementLedger | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[FleetResult | None, ReplayStats, ReconciliationService]:
    """Replay ``fleet`` as claim traffic; returns (result, stats, service).

    ``result`` is None only if some claim never settled within the wave
    budget — ``stats.dropped`` then says how many.
    """
    replay = replay if replay is not None else ReplayConfig()
    service = ReconciliationService(
        loop=EventLoop(),
        config=service_config,
        disk_cache=disk_cache,
        ledger=ledger,
        metrics=metrics,
    )
    service.start()
    driver = _ReplayDriver(service, fleet, replay, ReplayStats())
    driver.spread_initial()
    service.drain()
    driver.run_recovery_waves()
    result = driver.finish(fleet)
    return result, driver.stats, service


def resume_fleet_replay(
    fleet: FleetConfig,
    ledger_path: str | Path,
    replay: ReplayConfig | None = None,
    service_config: ServiceConfig | None = None,
    disk_cache: ResultCache | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[FleetResult | None, ReplayStats, ReconciliationService]:
    """Resume a killed replay of ``fleet`` from its on-disk ledger.

    The journal rebuild settles whatever was accepted but unfinished;
    recovery waves then resubmit any logical claim still open.  When
    everything settles, the final ledger file, settlement view and
    aggregate are byte-identical to an uninterrupted ``replay_fleet``
    run against the same configuration.
    """
    replay = replay if replay is not None else ReplayConfig()
    service = ReconciliationService.resume(
        ledger_path,
        loop=EventLoop(),
        config=service_config,
        disk_cache=disk_cache,
        metrics=metrics,
    )
    service.start()
    stats = ReplayStats()
    # len(_accepted_ids) grows monotonically across incarnations, so
    # each resume salts its id stream differently — including a resume
    # of a resume — and never collides with ids the journal recorded.
    salt = f"r{len(service._accepted_ids)}."
    driver = _ReplayDriver(service, fleet, replay, stats, id_salt=salt)
    service.drain()  # settle whatever the journal re-enqueued
    driver.run_recovery_waves()
    result = driver.finish(fleet)
    return result, stats, service
