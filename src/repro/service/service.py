"""The charging-reconciliation service: ingestion, workers, settlement.

One long-running process on the simulated clock, shaped like a small
network service:

* **Ingestion** (:meth:`ReconciliationService.submit`) admits *claims*
  — plain dicts a vendor would POST — through a synchronous pipeline:
  shape checks, duplicate-id rejection, a per-vendor token bucket, and
  finally bounded-queue admission (:class:`~repro.service.sim_async.QueueFull`
  maps to a ``backpressure`` rejection the caller can retry).
* **Workers** (``config.workers`` coroutines on the sim runtime) drain
  the queue and settle each claim: shard claims are simulated through
  the tiered result cache, PoC claims run Algorithm 2 via
  :class:`~repro.poc.verifier.PublicVerifier`, probe claims are cheap
  no-ops for liveness tests.  A worker never dies on a bad claim — every
  failure becomes a ``service.rejected{reason=...}`` counter.
* **Settlement** streams to a :class:`SettlementLedger` as canonical
  JSON lines.  Shard and per-UE lines are emitted through the
  :class:`~repro.experiments.fleet.FleetAccumulator`'s strictly-ordered
  fold, and PoC receipts are flushed sorted by claim id at
  :meth:`ReconciliationService.close` — so the ledger is bit-identical
  across worker counts, arrival orders and cache states.

Claim schema (all fields required unless noted)::

    {"id": str, "vendor": str, "kind": "shard", "shard": {...},  "ref": str?}
    {"id": str, "vendor": str, "kind": "poc",   "poc": hex, "plan": {...}, "ref": str?}
    {"id": str, "vendor": str, "kind": "probe",                  "ref": str?}

``id`` must be globally unique (duplicates are rejected); ``ref`` names
the *logical* claim so retries (new id, same ref) settle exactly once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..core.plan import DataPlan
from ..crypto.rsa import PublicKey
from ..experiments.fleet import (
    FleetAccumulator,
    FleetConfig,
    FleetResult,
    _simulate_shard_to_dict,
    _usable,
    fleet_shard_key,
    shard_from_dict,
    shard_to_dict,
)
from ..experiments.parallel import ResultCache, RunReport
from ..netsim.events import EventLoop
from ..obs.metrics import MetricsRegistry
from ..poc.messages import PlanParams, Poc
from ..poc.verifier import PublicVerifier
from .cache import TieredCache
from .ratelimit import TokenBucket
from .sim_async import QueueFull, SimQueue, SimRuntime

CLAIM_KINDS = ("shard", "poc", "probe")

_SHUTDOWN = object()


def make_poc_claim(
    claim_id: str, vendor: str, poc: Poc, plan: PlanParams, ref: str | None = None
) -> dict:
    """Encode a signed PoC (e.g. a multi-operator settlement receipt)
    as a submittable ``poc`` claim."""
    claim = {
        "id": claim_id,
        "vendor": vendor,
        "kind": "poc",
        "poc": poc.encode().hex(),
        "plan": {"t_start": plan.t_start, "t_end": plan.t_end, "c": plan.c},
    }
    if ref is not None:
        claim["ref"] = ref
    return claim


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`ReconciliationService` instance."""

    workers: int = 2
    queue_depth: int = 16
    vendor_rate_hz: float = 8.0
    vendor_burst: float = 16.0
    shard_service_time_s: float = 0.05
    poc_service_time_s: float = 0.005
    probe_service_time_s: float = 0.001
    memory_cache_entries: int = 64
    plan_c: float = 0.5
    cycle_duration_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"need at least one worker, got {self.workers}")
        if self.queue_depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {self.queue_depth}")


@dataclass(frozen=True)
class Admission:
    """Synchronous answer to one :meth:`ReconciliationService.submit`."""

    accepted: bool
    reason: str | None = None


class SettlementLedger:
    """Append-only stream of canonical JSON settlement lines.

    Lines are compact, key-sorted JSON with a monotonically increasing
    ``seq`` — byte-comparable across runs.  Kept in memory always;
    mirrored to ``path`` when given.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.lines: list[str] = []
        self.path = Path(path) if path is not None else None
        self._fh = self.path.open("w") if self.path is not None else None
        self._seq = 0

    def write(self, record: dict) -> None:
        """Append one record as a canonical JSON line."""
        line = json.dumps(
            {"seq": self._seq, **record}, sort_keys=True, separators=(",", ":")
        )
        self._seq += 1
        self.lines.append(line)
        if self._fh is not None:
            self._fh.write(line + "\n")

    def text(self) -> str:
        """The full ledger as newline-terminated text."""
        return "".join(line + "\n" for line in self.lines)

    def close(self) -> None:
        """Flush and close the file mirror, if any."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ReconciliationService:
    """The reconciliation service; see the module docstring for shape.

    Drive it like any other simulated process: ``start()``, submit
    claims from event-loop callbacks, run the loop, then ``close()``
    once the loop has drained.
    """

    def __init__(
        self,
        loop: EventLoop | None = None,
        config: ServiceConfig | None = None,
        disk_cache: ResultCache | None = None,
        ledger: SettlementLedger | None = None,
        vendor_keys: dict[str, tuple[PublicKey, PublicKey]] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.loop = loop if loop is not None else EventLoop()
        self.config = config if config is not None else ServiceConfig()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(clock=self.loop.now)
        )
        self.runtime = SimRuntime(self.loop)
        self.queue = SimQueue(self.config.queue_depth)
        self.cache = TieredCache(
            self.config.memory_cache_entries, disk_cache, self.metrics
        )
        self.ledger = ledger if ledger is not None else SettlementLedger()
        self.report = RunReport()
        self.verifier = PublicVerifier(
            DataPlan(
                c=self.config.plan_c, cycle_duration_s=self.config.cycle_duration_s
            ),
            metrics=self.metrics,
        )
        # vendor -> (edge public key, operator public key) for PoC claims.
        self.vendor_keys = dict(vendor_keys or {})
        self.buckets: dict[str, TokenBucket] = {}
        self.rejections: dict[str, int] = {}
        self.accumulator = FleetAccumulator(
            ue_sink=self._emit_ue, shard_sink=self._emit_shard
        )
        self._accepted_ids: set[str] = set()
        self._claimed_refs: set[str] = set()
        self._settled_refs: set[str] = set()
        self._folded_indices: set[int] = set()
        self._poc_receipts: list[dict] = []
        self._workers = []
        self._closed = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Spawn the worker coroutines (idempotence is an error)."""
        if self._workers:
            raise RuntimeError("service already started")
        for index in range(self.config.workers):
            self._workers.append(
                self.runtime.spawn(self._worker(index), name=f"settle-worker-{index}")
            )

    def close(self) -> None:
        """Shut workers down and flush deferred settlement lines.

        Call after the event loop has drained: every worker is then
        parked on the queue, so the shutdown sentinels hand off (and the
        workers exit) synchronously inside this call.
        """
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self.queue.put_nowait(_SHUTDOWN)
        # PoC receipts settle in worker-completion order, which depends on
        # the worker count; sorting by claim id at flush time restores the
        # ledger's bit-identity guarantee.
        # The ledger itself stays open: its owner may append a trailing
        # aggregate record (see loadgen) before closing the stream.
        for receipt in sorted(self._poc_receipts, key=lambda r: r["id"]):
            self.ledger.write(receipt)

    def crashed_workers(self) -> list:
        """Worker tasks that died with an exception (should stay empty)."""
        return self.runtime.crashed_tasks()

    # ------------------------------------------------------------ ingestion

    def _bucket(self, vendor: str) -> TokenBucket:
        bucket = self.buckets.get(vendor)
        if bucket is None:
            bucket = self.buckets[vendor] = TokenBucket(
                self.config.vendor_rate_hz, self.config.vendor_burst
            )
        return bucket

    def _reject(self, reason: str) -> Admission:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        self.metrics.counter("service.rejected", reason=reason).inc()
        return Admission(False, reason)

    def submit(self, claim) -> Admission:
        """Admit one claim; synchronous, safe to call from loop callbacks.

        Pipeline order matters: shape checks and duplicate detection are
        free, the token bucket spends only when the claim could actually
        be enqueued, and a full queue surfaces as ``backpressure`` (the
        token is forfeit — a retrying caller pays for the pressure it
        adds).
        """
        if self._closed:
            return self._reject("closed")
        if not isinstance(claim, dict):
            return self._reject("malformed")
        claim_id = claim.get("id")
        vendor = claim.get("vendor")
        if not isinstance(claim_id, str) or not claim_id:
            return self._reject("malformed")
        if not isinstance(vendor, str) or not vendor:
            return self._reject("malformed")
        if claim.get("kind") not in CLAIM_KINDS:
            return self._reject("unknown-kind")
        if claim_id in self._accepted_ids:
            return self._reject("duplicate")
        if not self._bucket(vendor).try_acquire(self.loop.now()):
            return self._reject("rate-limited")
        try:
            self.queue.put_nowait(claim)
        except QueueFull:
            return self._reject("backpressure")
        self._accepted_ids.add(claim_id)
        self.metrics.counter("service.ingested", vendor=vendor).inc()
        self.metrics.gauge("service.queue.depth").set(self.queue.qsize())
        return Admission(True)

    # ------------------------------------------------------------- workers

    async def _worker(self, index: int) -> None:
        while True:
            claim = await self.queue.get()
            self.metrics.gauge("service.queue.depth").set(self.queue.qsize())
            if claim is _SHUTDOWN:
                return
            try:
                await self._settle(claim)
            except Exception as error:
                # Degrade, never die: a poisoned claim costs one rejection.
                self._reject("internal-error")
                self.metrics.counter(
                    "service.errors", type=type(error).__name__
                ).inc()

    async def _settle(self, claim: dict) -> None:
        kind = claim["kind"]
        ref = claim.get("ref", claim["id"])
        if not isinstance(ref, str) or not ref:
            self._reject("malformed")
            return
        if ref in self._claimed_refs:
            # A retry raced its settled (or in-flight) twin.
            self._reject("duplicate")
            return
        self._claimed_refs.add(ref)
        with self.metrics.span("service.settle", kind=kind):
            if kind == "shard":
                await self._settle_shard(claim, ref)
            elif kind == "poc":
                await self._settle_poc(claim, ref)
            else:
                await self.runtime.sleep(self.config.probe_service_time_s)
                self._mark_settled(ref, "probe")

    def _mark_settled(self, ref: str, kind: str) -> None:
        self._settled_refs.add(ref)
        self.metrics.counter("service.settled", kind=kind).inc()

    def _unclaim(self, ref: str, reason: str) -> None:
        # Failure may be transient (e.g. the payload was corrupted in
        # flight); release the ref so a clean retry can settle it.
        self._claimed_refs.discard(ref)
        self._reject(reason)

    async def _settle_shard(self, claim: dict, ref: str) -> None:
        try:
            shard = shard_from_dict(claim["shard"])
        except Exception:
            self._unclaim(ref, "malformed-shard")
            return
        await self.runtime.sleep(self.config.shard_service_time_s)
        key = fleet_shard_key(shard)
        data = self.cache.get(key)
        if _usable(data):
            self.report.cached += 1
        else:
            data = _simulate_shard_to_dict(shard_to_dict(shard))
            self.cache.put(key, data)
            self.report.simulated += 1
        if shard.index in self._folded_indices:
            self._unclaim(ref, "duplicate")
            return
        self._folded_indices.add(shard.index)
        self.accumulator.add(data)
        self._mark_settled(ref, "shard")

    async def _settle_poc(self, claim: dict, ref: str) -> None:
        keys = self.vendor_keys.get(claim["vendor"])
        if keys is None:
            self._unclaim(ref, "unknown-vendor")
            return
        try:
            poc = Poc.decode(bytes.fromhex(claim["poc"]))
            plan_fields = claim["plan"]
            plan = PlanParams(
                float(plan_fields["t_start"]),
                float(plan_fields["t_end"]),
                float(plan_fields["c"]),
            )
        except Exception:
            self._unclaim(ref, "malformed-poc")
            return
        await self.runtime.sleep(self.config.poc_service_time_s)
        edge_key, operator_key = keys
        report = self.verifier.verify(poc, plan, edge_key, operator_key)
        if not report.ok:
            self._unclaim(ref, f"poc-{report.failure.value}")
            return
        self._poc_receipts.append(
            {
                "type": "poc",
                "id": claim["id"],
                "ref": ref,
                "vendor": claim["vendor"],
                "volume": report.volume,
                "edge_claim": report.edge_claim,
                "operator_claim": report.operator_claim,
            }
        )
        self._mark_settled(ref, "poc")

    # ----------------------------------------------------------- settlement

    def _emit_shard(self, data: dict) -> None:
        self.ledger.write(
            {
                "type": "shard",
                "index": int(data["shard_index"]),
                "ues": len(data["ues"]),
            }
        )

    def _emit_ue(self, row: dict) -> None:
        self.ledger.write({"type": "ue", **row})

    def is_settled(self, ref: str) -> bool:
        """Whether the logical claim ``ref`` has settled."""
        return ref in self._settled_refs

    def settled_count(self) -> int:
        """Logical claims settled so far."""
        return len(self._settled_refs)

    def fleet_result(self, fleet: FleetConfig) -> FleetResult:
        """Seal the shard accumulator into a batch-identical aggregate.

        Raises ``ValueError`` if any shard claim never settled — callers
        should check coverage (e.g. via retry waves) first.
        """
        return self.accumulator.finalize(fleet, self.report)
