"""The charging-reconciliation service: ingestion, workers, settlement.

One long-running process on the simulated clock, shaped like a small
network service:

* **Ingestion** (:meth:`ReconciliationService.submit`) admits *claims*
  — plain dicts a vendor would POST — through a synchronous pipeline:
  shape checks, duplicate-id rejection, a per-vendor token bucket, and
  finally bounded-queue admission (:class:`~repro.service.sim_async.QueueFull`
  maps to a ``backpressure`` rejection the caller can retry).
* **Workers** (``config.workers`` coroutines on the sim runtime) drain
  the queue and settle each claim: shard claims are simulated through
  the tiered result cache, PoC claims run Algorithm 2 via
  :class:`~repro.poc.verifier.PublicVerifier`, probe claims are cheap
  no-ops for liveness tests.  A worker never dies on a bad claim — every
  failure becomes a ``service.rejected{reason=...}`` counter.
* **Settlement** streams to a :class:`SettlementLedger` as canonical
  JSON lines.  Shard and per-UE lines are emitted through the
  :class:`~repro.experiments.fleet.FleetAccumulator`'s strictly-ordered
  fold, and PoC receipts are flushed sorted by claim id at
  :meth:`ReconciliationService.close` — so the ledger is bit-identical
  across worker counts, arrival orders and cache states.
* **Durability**: the ledger doubles as a write-ahead journal of
  admissions and outcomes (``accepted`` / ``settled`` / ``unclaimed``
  records).  :meth:`ReconciliationService.resume` replays that journal
  to rebuild a crashed service's state — accepted ids, claimed/settled
  refs, the accumulator fold, pending PoC receipts, and the queue of
  accepted-but-unsettled claims — so a service killed at any point and
  resumed produces the same settlement stream an uninterrupted run
  writes, byte for byte.
* **Pooled settlement** (``config.pool_workers > 0``): the CPU-bound
  shard simulation is offloaded to a process pool behind a
  :class:`~repro.service.pool.SimProcessPool` bridge; the index-ordered
  fold keeps the ledger bit-identical across pool sizes.

Claim schema (all fields required unless noted)::

    {"id": str, "vendor": str, "kind": "shard", "shard": {...},  "ref": str?}
    {"id": str, "vendor": str, "kind": "poc",   "poc": hex, "plan": {...}, "ref": str?}
    {"id": str, "vendor": str, "kind": "probe",                  "ref": str?}

``id`` must be globally unique (duplicates are rejected); ``ref`` names
the *logical* claim so retries (new id, same ref) settle exactly once.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..core.plan import DataPlan
from ..crypto.rsa import PublicKey
from ..experiments.fleet import (
    FleetAccumulator,
    FleetConfig,
    FleetResult,
    _simulate_shard_to_dict,
    _usable,
    fleet_shard_key,
    shard_from_dict,
    shard_to_dict,
)
from ..experiments.parallel import ResultCache, RunReport
from ..netsim.events import EventLoop
from ..obs.metrics import MetricsRegistry
from ..poc.messages import PlanParams, Poc
from ..poc.verifier import PublicVerifier
from .cache import TieredCache
from .pool import SimProcessPool
from .ratelimit import TokenBucket
from .sim_async import QueueFull, SimQueue, SimRuntime

CLAIM_KINDS = ("shard", "poc", "probe")

#: Inclusive upper edges (simulated seconds) for the ingest→settle
#: latency histograms, ``service.latency{kind=...}``.
LATENCY_EDGES = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

_SHUTDOWN = object()


def make_poc_claim(
    claim_id: str, vendor: str, poc: Poc, plan: PlanParams, ref: str | None = None
) -> dict:
    """Encode a signed PoC (e.g. a multi-operator settlement receipt)
    as a submittable ``poc`` claim."""
    claim = {
        "id": claim_id,
        "vendor": vendor,
        "kind": "poc",
        "poc": poc.encode().hex(),
        "plan": {"t_start": plan.t_start, "t_end": plan.t_end, "c": plan.c},
    }
    if ref is not None:
        claim["ref"] = ref
    return claim


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`ReconciliationService` instance."""

    workers: int = 2
    queue_depth: int = 16
    vendor_rate_hz: float = 8.0
    vendor_burst: float = 16.0
    shard_service_time_s: float = 0.05
    poc_service_time_s: float = 0.005
    probe_service_time_s: float = 0.001
    memory_cache_entries: int = 64
    plan_c: float = 0.5
    cycle_duration_s: float = 3600.0
    #: Process-pool size for shard simulation; 0 settles inline.
    pool_workers: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"need at least one worker, got {self.workers}")
        if self.queue_depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {self.queue_depth}")
        if self.pool_workers < 0:
            raise ValueError(
                f"pool_workers must be >= 0, got {self.pool_workers}"
            )
        if self.vendor_rate_hz <= 0:
            raise ValueError(
                f"vendor refill rate must be positive, got {self.vendor_rate_hz}"
            )
        if self.vendor_burst <= 0:
            raise ValueError(
                f"vendor burst must be positive, got {self.vendor_burst}"
            )
        for name in (
            "shard_service_time_s", "poc_service_time_s", "probe_service_time_s"
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class Admission:
    """Synchronous answer to one :meth:`ReconciliationService.submit`."""

    accepted: bool
    reason: str | None = None


class SettlementLedger:
    """Durable write-ahead stream: settlement lines plus a recovery journal.

    Two record classes interleave in one append-only file:

    * **Settlement records** (``seq``-keyed, gap-free): the canonical,
      byte-comparable settlement view — ``shard`` / ``ue`` / ``poc``
      fold lines plus the trailing ``aggregate``.  ``lines`` and
      :meth:`text` expose exactly these.
    * **Journal records** (``jseq``-keyed): the write-ahead log of
      admissions and outcomes (``accepted`` / ``settled`` /
      ``unclaimed``) that :meth:`ReconciliationService.resume` replays
      to rebuild in-flight state after a crash.

    Every line is compact, key-sorted JSON, flushed to the OS as it is
    written and fsync'd on :meth:`close` — a killed process loses at
    most the final torn line, which :meth:`resume` trims.  ``write()``
    or ``journal()`` after ``close()`` raises: the memory view and the
    file are never allowed to diverge silently.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.lines: list[str] = []
        self.journal_lines: list[str] = []
        self.path = Path(path) if path is not None else None
        self._fh = self.path.open("w") if self.path is not None else None
        self._seq = 0
        self._jseq = 0
        #: Settlement lines already durable from a previous incarnation;
        #: writes below this watermark verify against the stored line
        #: instead of appending (resume replays the whole fold).
        self._replay_until = 0
        self._closed = False

    @classmethod
    def resume(cls, path: str | Path) -> "SettlementLedger":
        """Reopen a crashed run's ledger for appending.

        Loads both record classes, drops a torn final line (the partial
        write of the crash) by rewriting the file without it, and arms
        replay-absorb mode: the resumed service re-emits the fold from
        the journal, and :meth:`write` verifies the already-durable
        prefix byte-for-byte before new lines start appending.

        A corrupt line anywhere but the tail raises ``ValueError`` — a
        crash can only tear the last write.
        """
        path = Path(path)
        text = path.read_text() if path.exists() else ""
        raw = text.split("\n")
        tail = raw.pop() if raw else ""
        kept: list[tuple[dict, str]] = []
        for i, line in enumerate(raw, start=1):
            try:
                kept.append((json.loads(line), line))
            except ValueError as exc:
                raise ValueError(
                    f"ledger {path} corrupt at line {i}: {line[:80]!r}"
                ) from exc
        if tail:
            # A complete JSON object missing only its newline survived
            # the crash intact; anything else is the torn write.
            try:
                kept.append((json.loads(tail), tail))
            except ValueError:
                pass
        ledger = cls.__new__(cls)
        ledger.path = path
        ledger.lines = [line for rec, line in kept if "seq" in rec]
        ledger.journal_lines = [line for rec, line in kept if "jseq" in rec]
        ledger._seq = 0
        ledger._jseq = len(ledger.journal_lines)
        ledger._replay_until = len(ledger.lines)
        ledger._closed = False
        with path.open("w") as fh:
            for _, line in kept:
                fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        ledger._fh = path.open("a")
        return ledger

    def journal_records(self) -> list[dict]:
        """Parsed journal records, oldest first."""
        return [json.loads(line) for line in self.journal_lines]

    def _append(self, line: str) -> None:
        if self._fh is not None:
            self._fh.write(line + "\n")
            self._fh.flush()

    def write(self, record: dict) -> None:
        """Append one settlement record as a canonical JSON line."""
        if self._closed:
            raise RuntimeError("settlement ledger is closed")
        line = json.dumps(
            {"seq": self._seq, **record}, sort_keys=True, separators=(",", ":")
        )
        if self._seq < self._replay_until:
            if line != self.lines[self._seq]:
                raise ValueError(
                    f"resume replay diverged at seq {self._seq}: "
                    f"regenerated {line[:80]!r} != durable "
                    f"{self.lines[self._seq][:80]!r}"
                )
            self._seq += 1
            return
        self._seq += 1
        self.lines.append(line)
        self._append(line)

    def journal(self, record: dict) -> None:
        """Append one write-ahead journal record."""
        if self._closed:
            raise RuntimeError("settlement ledger is closed")
        line = json.dumps(
            {"jseq": self._jseq, **record}, sort_keys=True, separators=(",", ":")
        )
        self._jseq += 1
        self.journal_lines.append(line)
        self._append(line)

    def text(self) -> str:
        """The settlement view as newline-terminated text."""
        return "".join(line + "\n" for line in self.lines)

    def close(self) -> None:
        """Seal the ledger: fsync + close the file mirror, refuse writes."""
        if self._closed:
            return
        self._closed = True
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None


class ReconciliationService:
    """The reconciliation service; see the module docstring for shape.

    Drive it like any other simulated process: ``start()``, submit
    claims from event-loop callbacks, run the loop, then ``close()``
    once the loop has drained.
    """

    def __init__(
        self,
        loop: EventLoop | None = None,
        config: ServiceConfig | None = None,
        disk_cache: ResultCache | None = None,
        ledger: SettlementLedger | None = None,
        vendor_keys: dict[str, tuple[PublicKey, PublicKey]] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.loop = loop if loop is not None else EventLoop()
        self.config = config if config is not None else ServiceConfig()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(clock=self.loop.now)
        )
        self.runtime = SimRuntime(self.loop)
        self.queue = SimQueue(self.config.queue_depth)
        self.cache = TieredCache(
            self.config.memory_cache_entries, disk_cache, self.metrics
        )
        self.ledger = ledger if ledger is not None else SettlementLedger()
        self.report = RunReport()
        self.verifier = PublicVerifier(
            DataPlan(
                c=self.config.plan_c, cycle_duration_s=self.config.cycle_duration_s
            ),
            metrics=self.metrics,
        )
        # vendor -> (edge public key, operator public key) for PoC claims.
        self.vendor_keys = dict(vendor_keys or {})
        self.buckets: dict[str, TokenBucket] = {}
        self.rejections: dict[str, int] = {}
        self.accumulator = FleetAccumulator(
            ue_sink=self._emit_ue, shard_sink=self._emit_shard
        )
        self.pool = (
            SimProcessPool(self.config.pool_workers)
            if self.config.pool_workers
            else None
        )
        self._accepted_ids: set[str] = set()
        self._claimed_refs: set[str] = set()
        self._settled_refs: set[str] = set()
        self._folded_indices: set[int] = set()
        self._poc_receipts: list[dict] = []
        self._ingest_t: dict[str, float] = {}
        self._workers = []
        self._closed = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Spawn the worker coroutines (idempotence is an error)."""
        if self._workers:
            raise RuntimeError("service already started")
        for index in range(self.config.workers):
            self._workers.append(
                self.runtime.spawn(self._worker(index), name=f"settle-worker-{index}")
            )

    def close(self) -> None:
        """Gracefully shut down: drain, stop workers, flush deferred lines.

        Safe to call with a backlog still queued: new submissions are
        refused, the shutdown sentinels enqueue *behind* the remaining
        claims (``force_put`` never overflows the bounded queue), and
        the loop is drained so workers settle the backlog before they
        exit.  Only then are the PoC receipts flushed.
        """
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self.queue.force_put(_SHUTDOWN)
        self.drain()
        if self.pool is not None:
            self.pool.shutdown()
        # PoC receipts settle in worker-completion order, which depends on
        # the worker count; sorting by claim id at flush time restores the
        # ledger's bit-identity guarantee.
        # The ledger itself stays open: its owner may append a trailing
        # aggregate record (see loadgen) before closing the stream.
        for receipt in sorted(self._poc_receipts, key=lambda r: r["id"]):
            self.ledger.write(receipt)

    def drain(self) -> None:
        """Run the loop until both it and the settlement pool are idle.

        With ``pool_workers == 0`` this is exactly ``loop.run()``; with
        a pool, workers parked on in-flight simulations resume as
        results arrive and the loop re-runs until nothing is pending on
        either side.
        """
        while True:
            self.loop.run()
            if self.pool is None or not self.pool.pending():
                return
            self.pool.wait_next()

    def crashed_workers(self) -> list:
        """Worker tasks that died with an exception (should stay empty)."""
        return self.runtime.crashed_tasks()

    @classmethod
    def resume(
        cls,
        ledger_path: str | Path,
        loop: EventLoop | None = None,
        config: ServiceConfig | None = None,
        disk_cache: ResultCache | None = None,
        vendor_keys: dict[str, tuple[PublicKey, PublicKey]] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> "ReconciliationService":
        """Rebuild a crashed service from its on-disk ledger journal.

        Replays the ``accepted``/``settled``/``unclaimed`` records to
        restore accepted ids, claimed/settled refs, folded shard
        indices, the accumulator fold (absorbed byte-for-byte against
        the durable settlement prefix), pending PoC receipts, and the
        queue of accepted-but-unsettled claims, in journal order.

        Token buckets and the event loop start fresh — rate limiting is
        an admission policy of the live process, not recoverable state.
        Likewise latency samples: a resumed claim's ingest time died
        with the old process, so it is settled without an observation.

        Returns an unstarted service; call :meth:`start`, drive the
        loop (e.g. :meth:`drain`), then :meth:`close` as usual.
        """
        ledger = SettlementLedger.resume(ledger_path)
        service = cls(
            loop=loop,
            config=config,
            disk_cache=disk_cache,
            ledger=ledger,
            vendor_keys=vendor_keys,
            metrics=metrics,
        )
        service._replay_journal(ledger.journal_records())
        return service

    def _replay_journal(self, records: list[dict]) -> None:
        pending: dict[str, dict] = {}
        completed: set[str] = set()
        for record in records:
            rtype = record["type"]
            if rtype == "accepted":
                self._accepted_ids.add(record["id"])
                pending[record["id"]] = record["claim"]
            elif rtype == "settled":
                completed.add(record["id"])
                ref, kind = record["ref"], record["kind"]
                self._claimed_refs.add(ref)
                self._settled_refs.add(ref)
                self.metrics.counter("service.settled", kind=kind).inc()
                if kind == "shard":
                    data = record["data"]
                    self._folded_indices.add(int(record["index"]))
                    # Re-warm the tiers too: a post-resume duplicate
                    # submission of this shard should hit, not simulate.
                    self.cache.put(record["key"], data)
                    self.accumulator.add(data)
                elif kind == "poc":
                    self._poc_receipts.append(record["receipt"])
            elif rtype == "unclaimed":
                completed.add(record["id"])
        # Journal order is admission order; anything accepted without a
        # recorded outcome went down with the process — requeue it.
        for claim_id, claim in pending.items():
            if claim_id not in completed:
                self.queue.force_put(claim)
        self.metrics.gauge("service.queue.depth").set(self.queue.qsize())

    # ------------------------------------------------------------ ingestion

    def _bucket(self, vendor: str) -> TokenBucket:
        bucket = self.buckets.get(vendor)
        if bucket is None:
            bucket = self.buckets[vendor] = TokenBucket(
                self.config.vendor_rate_hz, self.config.vendor_burst
            )
        return bucket

    def _reject(self, reason: str) -> Admission:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        self.metrics.counter("service.rejected", reason=reason).inc()
        return Admission(False, reason)

    def submit(self, claim) -> Admission:
        """Admit one claim; synchronous, safe to call from loop callbacks.

        Pipeline order matters: shape checks and duplicate detection are
        free, the token bucket spends only when the claim could actually
        be enqueued, and a full queue surfaces as ``backpressure`` (the
        token is forfeit — a retrying caller pays for the pressure it
        adds).
        """
        if self._closed:
            return self._reject("closed")
        if not isinstance(claim, dict):
            return self._reject("malformed")
        claim_id = claim.get("id")
        vendor = claim.get("vendor")
        if not isinstance(claim_id, str) or not claim_id:
            return self._reject("malformed")
        if not isinstance(vendor, str) or not vendor:
            return self._reject("malformed")
        if claim.get("kind") not in CLAIM_KINDS:
            return self._reject("unknown-kind")
        if claim_id in self._accepted_ids:
            return self._reject("duplicate")
        try:
            json.dumps(claim)
        except (TypeError, ValueError):
            # The write-ahead journal is JSON lines; a claim that cannot
            # ride it cannot be made crash-safe, so it is not admitted.
            return self._reject("malformed")
        if not self._bucket(vendor).try_acquire(self.loop.now()):
            return self._reject("rate-limited")
        try:
            self.queue.put_nowait(claim)
        except QueueFull:
            return self._reject("backpressure")
        self._accepted_ids.add(claim_id)
        self._ingest_t[claim_id] = self.loop.now()
        self.ledger.journal(
            {
                "type": "accepted",
                "id": claim_id,
                "vendor": vendor,
                "kind": claim["kind"],
                "t": self.loop.now(),
                "claim": claim,
            }
        )
        self.metrics.counter("service.ingested", vendor=vendor).inc()
        self.metrics.gauge("service.queue.depth").set(self.queue.qsize())
        return Admission(True)

    # ------------------------------------------------------------- workers

    async def _worker(self, index: int) -> None:
        while True:
            claim = await self.queue.get()
            self.metrics.gauge("service.queue.depth").set(self.queue.qsize())
            if claim is _SHUTDOWN:
                return
            try:
                await self._settle(claim)
            except Exception as error:
                # Degrade, never die: a poisoned claim costs one rejection.
                self._reject("internal-error")
                self.metrics.counter(
                    "service.errors", type=type(error).__name__
                ).inc()
                self._ingest_t.pop(claim.get("id"), None)
                self.ledger.journal(
                    {
                        "type": "unclaimed",
                        "id": claim.get("id"),
                        "ref": claim.get("ref", claim.get("id")),
                        "reason": "internal-error",
                    }
                )

    async def _settle(self, claim: dict) -> None:
        kind = claim["kind"]
        ref = claim.get("ref", claim["id"])
        if not isinstance(ref, str) or not ref:
            self._reject("malformed")
            self._journal_outcome(claim, None, "malformed")
            return
        if ref in self._claimed_refs:
            # A retry raced its settled (or in-flight) twin.
            self._reject("duplicate")
            self._journal_outcome(claim, ref, "duplicate")
            return
        self._claimed_refs.add(ref)
        with self.metrics.span("service.settle", kind=kind):
            if kind == "shard":
                await self._settle_shard(claim, ref)
            elif kind == "poc":
                await self._settle_poc(claim, ref)
            else:
                await self.runtime.sleep(self.config.probe_service_time_s)
                self.ledger.journal(
                    {
                        "type": "settled",
                        "kind": "probe",
                        "id": claim["id"],
                        "ref": ref,
                    }
                )
                self._mark_settled(ref, "probe", claim["id"])

    def _mark_settled(self, ref: str, kind: str, claim_id: str) -> None:
        self._settled_refs.add(ref)
        self.metrics.counter("service.settled", kind=kind).inc()
        ingested_at = self._ingest_t.pop(claim_id, None)
        if ingested_at is not None:
            self.metrics.histogram(
                "service.latency", LATENCY_EDGES, kind=kind
            ).observe(self.loop.now() - ingested_at)

    def _journal_outcome(self, claim: dict, ref, reason: str) -> None:
        self._ingest_t.pop(claim.get("id"), None)
        self.ledger.journal(
            {
                "type": "unclaimed",
                "id": claim.get("id"),
                "ref": ref if isinstance(ref, str) else None,
                "reason": reason,
            }
        )

    def _unclaim(self, claim: dict, ref: str, reason: str) -> None:
        # Failure may be transient (e.g. the payload was corrupted in
        # flight); release the ref so a clean retry can settle it.
        self._claimed_refs.discard(ref)
        self._reject(reason)
        self._journal_outcome(claim, ref, reason)

    async def _settle_shard(self, claim: dict, ref: str) -> None:
        try:
            shard = shard_from_dict(claim["shard"])
        except Exception:
            self._unclaim(claim, ref, "malformed-shard")
            return
        await self.runtime.sleep(self.config.shard_service_time_s)
        key = fleet_shard_key(shard)
        data = self.cache.get(key)
        if _usable(data):
            self.report.cached += 1
        else:
            if self.pool is not None:
                data = await self.pool.submit(
                    _simulate_shard_to_dict, shard_to_dict(shard)
                )
            else:
                data = _simulate_shard_to_dict(shard_to_dict(shard))
            self.cache.put(key, data)
            self.report.simulated += 1
        if shard.index in self._folded_indices:
            self._unclaim(claim, ref, "duplicate")
            return
        self._folded_indices.add(shard.index)
        # Write-ahead: the full shard result rides the journal *before*
        # any fold line hits the ledger, so a crash mid-fold resumes
        # from the journal and regenerates the missing settlement tail.
        self.ledger.journal(
            {
                "type": "settled",
                "kind": "shard",
                "id": claim["id"],
                "ref": ref,
                "index": shard.index,
                "key": key,
                "data": data,
            }
        )
        self.accumulator.add(data)
        self._mark_settled(ref, "shard", claim["id"])

    async def _settle_poc(self, claim: dict, ref: str) -> None:
        keys = self.vendor_keys.get(claim["vendor"])
        if keys is None:
            self._unclaim(claim, ref, "unknown-vendor")
            return
        try:
            poc = Poc.decode(bytes.fromhex(claim["poc"]))
            plan_fields = claim["plan"]
            plan = PlanParams(
                float(plan_fields["t_start"]),
                float(plan_fields["t_end"]),
                float(plan_fields["c"]),
            )
        except Exception:
            self._unclaim(claim, ref, "malformed-poc")
            return
        await self.runtime.sleep(self.config.poc_service_time_s)
        edge_key, operator_key = keys
        report = self.verifier.verify(poc, plan, edge_key, operator_key)
        if not report.ok:
            self._unclaim(claim, ref, f"poc-{report.failure.value}")
            return
        receipt = {
            "type": "poc",
            "id": claim["id"],
            "ref": ref,
            "vendor": claim["vendor"],
            "volume": report.volume,
            "edge_claim": report.edge_claim,
            "operator_claim": report.operator_claim,
        }
        self.ledger.journal(
            {
                "type": "settled",
                "kind": "poc",
                "id": claim["id"],
                "ref": ref,
                "receipt": receipt,
            }
        )
        self._poc_receipts.append(receipt)
        self._mark_settled(ref, "poc", claim["id"])

    # ----------------------------------------------------------- settlement

    def _emit_shard(self, data: dict) -> None:
        self.ledger.write(
            {
                "type": "shard",
                "index": int(data["shard_index"]),
                "ues": len(data["ues"]),
            }
        )

    def _emit_ue(self, row: dict) -> None:
        self.ledger.write({"type": "ue", **row})

    def is_settled(self, ref: str) -> bool:
        """Whether the logical claim ``ref`` has settled."""
        return ref in self._settled_refs

    def settled_count(self) -> int:
        """Logical claims settled so far."""
        return len(self._settled_refs)

    def fleet_result(self, fleet: FleetConfig) -> FleetResult:
        """Seal the shard accumulator into a batch-identical aggregate.

        Raises ``ValueError`` if any shard claim never settled — callers
        should check coverage (e.g. via retry waves) first.
        """
        return self.accumulator.finalize(fleet, self.report)
