"""Entry point: ``python -m repro`` regenerates the paper's evaluation."""

import sys

from .experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
