"""WebCam streaming workloads (§7.1's VLC camera scenarios).

Two uplink variants from the paper's targeted-advertisement use case:

* **RTSP** — H.264 1920×1080p30 over RTP/RTSP at the measured average of
  0.77 Mbps (346.5 MB/hr).  RTSP's sender paces to the encoder output, so
  the bitrate is lower and burstiness moderate.
* **legacy UDP** — the same camera blasting unpaced datagrams at the
  measured 1.73 Mbps (778.5 MB/hr); higher loss exposure.

Both use a GoP structure (an I-frame every second) so frames vary in size
the way the gateway sees real video.
"""

from __future__ import annotations

from ..netsim.packet import Transport
from .base import WorkloadProfile

WEBCAM_RTSP = WorkloadProfile(
    name="webcam-rtsp",
    mean_bitrate_bps=0.77e6,
    fps=30.0,
    qci=9,
    transport=Transport.UDP,  # RTSP data rides RTP over UDP
    iframe_interval=30,
    iframe_scale=5.0,
    size_sigma=0.20,
)

WEBCAM_UDP = WorkloadProfile(
    name="webcam-udp",
    mean_bitrate_bps=1.73e6,
    fps=30.0,
    qci=9,
    transport=Transport.UDP,
    iframe_interval=30,
    iframe_scale=5.0,
    size_sigma=0.30,
)
