"""Workload framework: frame-structured traffic generators.

The paper's three edge scenarios are all frame-paced real-time streams
(camera frames over RTSP/UDP, VR graphical frames over GVSP, game state
ticks).  :class:`FrameWorkload` schedules frames at a configured FPS,
draws per-frame sizes from a lognormal around the profile's mean bitrate
(with a periodic I-frame boost for video), and fragments frames into
MTU-sized packets handed to a sender (an edge device for uplink, an edge
server for downlink).

``packet_bytes`` trades event-count for fidelity: the default fragments
at a jumbo 4 × MTU unit so hour-scale experiments stay fast; tests that
care about per-packet behaviour set it to a real MTU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from ..netsim.events import EventLoop
from ..netsim.packet import Packet, Transport
from ..netsim.rng import StreamRegistry


class Sender(Protocol):
    """Either endpoint's send method (device uplink / server downlink)."""

    def send(self, size: int, qci: int = 9, transport: Transport = Transport.UDP) -> Packet: ...


@dataclass(frozen=True)
class WorkloadProfile:
    """Traffic shape of one application."""

    name: str
    mean_bitrate_bps: float
    fps: float
    qci: int = 9
    transport: Transport = Transport.UDP
    packet_bytes: int = 5600
    iframe_interval: int = 0  # every Nth frame is an I-frame (0 = none)
    iframe_scale: float = 4.0
    size_sigma: float = 0.25  # lognormal spread of frame sizes

    def __post_init__(self) -> None:
        if self.mean_bitrate_bps <= 0 or self.fps <= 0:
            raise ValueError(f"{self.name}: bitrate and fps must be positive")
        if self.packet_bytes <= 0:
            raise ValueError(f"{self.name}: packet size must be positive")

    @property
    def mean_frame_bytes(self) -> float:
        """Average frame size implied by bitrate and FPS."""
        return self.mean_bitrate_bps / 8.0 / self.fps


class FrameWorkload:
    """Schedules one application's frames onto the event loop."""

    def __init__(
        self,
        loop: EventLoop,
        rng: StreamRegistry,
        profile: WorkloadProfile,
        sender: Sender,
    ) -> None:
        self.loop = loop
        self.profile = profile
        self.sender = sender
        self._rng = rng.stream(f"workload:{profile.name}")
        self.frames_sent = 0
        self.bytes_offered = 0
        self._until = 0.0

    def start(self, until: float, t0: float | None = None) -> None:
        """Begin emitting frames from ``t0`` (default now) until ``until``."""
        self._until = until
        start = self.loop.now() if t0 is None else t0
        # Desynchronize workload phases across experiments.
        jitter = self._rng.uniform(0.0, 1.0 / self.profile.fps)
        self.loop.schedule_at(start + jitter, self._emit_frame)

    def _frame_size(self) -> int:
        p = self.profile
        mean = p.mean_frame_bytes
        if p.iframe_interval > 0:
            # Keep the long-run mean: I-frames get iframe_scale times the
            # P-frame size, so solve for the P-frame baseline.
            n = p.iframe_interval
            p_frame = mean * n / (n - 1 + p.iframe_scale)
            is_iframe = self.frames_sent % n == 0
            mean = p_frame * (p.iframe_scale if is_iframe else 1.0)
        size = self._rng.lognormvariate(0.0, p.size_sigma) * mean
        return max(64, int(size))

    def _emit_frame(self) -> None:
        if self.loop.now() > self._until:
            return
        remaining = self._frame_size()
        self.frames_sent += 1
        while remaining > 0:
            chunk = min(remaining, self.profile.packet_bytes)
            self.sender.send(chunk, qci=self.profile.qci, transport=self.profile.transport)
            self.bytes_offered += chunk
            remaining -= chunk
        self.loop.schedule(1.0 / self.profile.fps, self._emit_frame)

    def achieved_bitrate_bps(self, elapsed_s: float) -> float:
        """Offered bitrate over ``elapsed_s`` seconds."""
        if elapsed_s <= 0:
            return 0.0
        return self.bytes_offered * 8.0 / elapsed_s
