"""Online mobile gaming workload (King of Glory acceleration).

Models the paper's 1-hour King-of-Glory trace: small, frequent player
control/state packets averaging 0.02 Mbps (9 MB/hr) downlink.  Under
Tencent's LTE acceleration the traffic rides a dedicated QCI-7 session
(interactive gaming, 100 ms delay budget), so strict priority shields it
from the QCI-9 background congestion — which is why its charging gap is
negligible even in the congested runs of Figure 12d/13d.
"""

from __future__ import annotations

from ..cellular.qos import GAMING_QCI
from ..netsim.packet import Transport
from .base import WorkloadProfile

KING_OF_GLORY = WorkloadProfile(
    name="king-of-glory",
    mean_bitrate_bps=0.02e6,
    fps=20.0,  # 50 ms server tick
    qci=GAMING_QCI,
    transport=Transport.UDP,
    packet_bytes=256,
    size_sigma=0.45,
)
