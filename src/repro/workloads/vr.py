"""Edge-based VR workload (VRidge / Portal 2 over GVSP).

The paper replays tcpdump traces of VRidge streaming Portal 2 frames at
1920×1080p60 over the GigE-Vision stream protocol, averaging 9.0 Mbps
(4.05 GB/hr) downlink.  GVSP ships each rendered frame as a burst of
maximum-size datagrams, so this is the burstiest and heaviest workload —
and the one the paper finds benefits most from TLC (Table 2: 87.5 % gap
reduction).
"""

from __future__ import annotations

from ..netsim.packet import Transport
from .base import WorkloadProfile

VRIDGE_GVSP = WorkloadProfile(
    name="vridge-gvsp",
    mean_bitrate_bps=9.0e6,
    fps=60.0,
    qci=9,
    transport=Transport.UDP,
    iframe_interval=60,
    iframe_scale=3.0,
    size_sigma=0.35,
)
