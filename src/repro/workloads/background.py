"""iperf-style UDP background traffic.

The paper congests the cell with 0–160 Mbps of iperf UDP towards a
separate phone (QCI 9, lowest priority).  Two models are provided:

* the **fluid** model — installed directly on the air interface via
  :meth:`CellularNetwork.set_background_load`; this is what the
  experiment harness uses (per-packet simulation of 160 Mbps would
  dominate run time without changing the charging physics);
* a **packet-level** :class:`IperfUdp` generator for tests that need real
  competing packets (e.g. verifying strict-priority behaviour).
"""

from __future__ import annotations

from ..netsim.packet import Transport
from .base import WorkloadProfile


def iperf_profile(rate_bps: float, name: str = "iperf-udp", qci: int = 9) -> WorkloadProfile:
    """Packet-level iperf load: constant-rate max-size UDP datagrams."""
    if rate_bps <= 0:
        raise ValueError(f"iperf rate must be positive, got {rate_bps}")
    packet_bytes = 1400
    # Emit bursts at 100 Hz so the event count stays bounded at high rates.
    fps = 100.0
    return WorkloadProfile(
        name=name,
        mean_bitrate_bps=rate_bps,
        fps=fps,
        qci=qci,
        transport=Transport.UDP,
        packet_bytes=packet_bytes,
        size_sigma=0.02,
    )


#: The paper's Figure 3/13 congestion sweep points, in Mbps.
CONGESTION_SWEEP_MBPS = (0, 100, 120, 140, 160)
