"""Traffic workloads reproducing the paper's edge scenarios."""

from .background import CONGESTION_SWEEP_MBPS, iperf_profile
from .base import FrameWorkload, WorkloadProfile
from .gaming import KING_OF_GLORY
from .vr import VRIDGE_GVSP
from .webcam import WEBCAM_RTSP, WEBCAM_UDP

__all__ = [
    "CONGESTION_SWEEP_MBPS",
    "iperf_profile",
    "FrameWorkload",
    "WorkloadProfile",
    "KING_OF_GLORY",
    "VRIDGE_GVSP",
    "WEBCAM_RTSP",
    "WEBCAM_UDP",
]
