"""Multi-access edge extension (§8 of the paper).

Some edge deployments (V2X, self-driving) bond several operators' 4G/5G
networks for coverage.  TLC extends naturally: the edge classifies its
traffic per operator, installs each operator's tamper-resilient monitor,
and runs one independent negotiation per operator.  This module runs N
parallel single-operator scenarios with a traffic split and negotiates
each, verifying that per-operator charging sums to the expected total.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..core import DataPlan
from ..netsim import Direction
from .runner import ScenarioResult, run_scenario
from .scenarios import ScenarioConfig


@dataclass(frozen=True)
class OperatorShare:
    """One operator's slice of the edge app's traffic."""

    operator: str
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")


@dataclass
class MultiOperatorResult:
    """Per-operator scenario results plus the combined accounting."""

    per_operator: dict[str, ScenarioResult]

    def total_charged(self, scheme: str) -> int:
        """Sum of the scheme's charges across operators and cycles."""
        return sum(
            outcome.charged
            for result in self.per_operator.values()
            for outcome in result.outcomes[scheme]
        )

    def total_expected(self) -> float:
        """Sum of ground-truth charges across operators and cycles."""
        return sum(
            outcome.expected
            for result in self.per_operator.values()
            for outcome in result.outcomes["tlc-optimal"]
        )

    def combined_gap_ratio(self, scheme: str) -> float:
        """|total charged − total expected| / total expected."""
        expected = self.total_expected()
        if expected == 0:
            return 0.0
        return abs(self.total_charged(scheme) - expected) / expected

    def mean_rounds(self, scheme: str) -> float:
        """Mean negotiation rounds across all operators."""
        return statistics.mean(
            result.mean_rounds(scheme) for result in self.per_operator.values()
        )


def run_multi_operator(
    base: ScenarioConfig,
    shares: list[OperatorShare],
    seed: int = 1,
    n_cycles: int = 6,
) -> MultiOperatorResult:
    """Split the workload across operators and negotiate each separately."""
    if abs(sum(s.fraction for s in shares) - 1.0) > 1e-9:
        raise ValueError("operator shares must sum to 1")
    per_operator: dict[str, ScenarioResult] = {}
    for i, share in enumerate(shares):
        workload = base.workload
        scaled = type(workload)(
            **{
                **workload.__dict__,
                "name": f"{workload.name}@{share.operator}",
                "mean_bitrate_bps": workload.mean_bitrate_bps * share.fraction,
            }
        )
        config = base.with_(
            name=f"{base.name}@{share.operator}",
            workload=scaled,
            seed=seed + i,
            n_cycles=n_cycles,
        )
        per_operator[share.operator] = run_scenario(config)
    return MultiOperatorResult(per_operator)
