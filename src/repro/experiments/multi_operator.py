"""Multi-access edge extension (§8 of the paper).

Some edge deployments (V2X, self-driving) bond several operators' 4G/5G
networks for coverage.  TLC extends naturally: the edge classifies its
traffic per operator, installs each operator's tamper-resilient monitor,
and runs one independent negotiation per operator.  This module runs N
parallel single-operator scenarios with a traffic split and negotiates
each, verifying that per-operator charging sums to the expected total.

Beyond the scheme-level accounting, :meth:`MultiOperatorResult.settle`
runs the *real wire protocol* per operator and cycle — a full CDR/CDA/PoC
exchange signed with each operator's keypair — and returns a
:class:`MultiOperatorSettlement` whose receipts any third party can
audit with Algorithm 2 (:meth:`MultiOperatorSettlement.audit`).  The
reconciliation service (:mod:`repro.service`) accepts these receipts as
``poc`` claims.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field

from ..core import (
    DataPlan,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
)
from ..crypto.rsa import PrivateKey, PublicKey
from ..netsim import Direction, StreamRegistry
from ..poc.messages import PlanParams, Poc, Role
from ..poc.protocol import NegotiationDriver
from ..poc.verifier import PublicVerifier
from .runner import ScenarioResult, run_scenario
from .scenarios import ScenarioConfig


@dataclass(frozen=True)
class OperatorShare:
    """One operator's slice of the edge app's traffic."""

    operator: str
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")


@dataclass
class MultiOperatorResult:
    """Per-operator scenario results plus the combined accounting."""

    per_operator: dict[str, ScenarioResult]

    def total_charged(self, scheme: str) -> int:
        """Sum of the scheme's charges across operators and cycles."""
        return sum(
            outcome.charged
            for result in self.per_operator.values()
            for outcome in result.outcomes[scheme]
        )

    def total_expected(self) -> float:
        """Sum of ground-truth charges across operators and cycles."""
        return sum(
            outcome.expected
            for result in self.per_operator.values()
            for outcome in result.outcomes["tlc-optimal"]
        )

    def combined_gap_ratio(self, scheme: str) -> float:
        """|total charged − total expected| / total expected."""
        expected = self.total_expected()
        if expected == 0:
            return 0.0
        return abs(self.total_charged(scheme) - expected) / expected

    def mean_rounds(self, scheme: str) -> float:
        """Mean negotiation rounds across all operators."""
        return statistics.mean(
            result.mean_rounds(scheme) for result in self.per_operator.values()
        )

    def settle(
        self,
        edge_key: PrivateKey,
        operator_keys: dict[str, PrivateKey],
        seed: int = 1,
    ) -> "MultiOperatorSettlement":
        """Run the signed wire protocol per (operator, cycle).

        Each operator's cycles negotiate through a real CDR/CDA/PoC
        exchange (both parties playing Algorithm 1's optimal strategy on
        their measured records), signed with that operator's keypair.
        """
        missing = set(self.per_operator) - set(operator_keys)
        if missing:
            raise ValueError(f"no keypair for operator(s): {', '.join(sorted(missing))}")
        receipts: dict[str, list[SettledCycle]] = {}
        for operator in sorted(self.per_operator):
            result = self.per_operator[operator]
            plan = DataPlan(
                c=result.config.c, cycle_duration_s=result.config.cycle_duration_s
            )
            rng = StreamRegistry(seed).stream(f"settle:{operator}")
            exchanges = settle_usages(
                plan, result.usages, edge_key, operator_keys[operator], rng
            )
            receipts[operator] = [
                SettledCycle(
                    operator=operator,
                    cycle_index=i,
                    volume=exchange.volume,
                    rounds=exchange.rounds,
                    plan_params=PlanParams(
                        usage.cycle.t_start, usage.cycle.t_end, plan.c
                    ),
                    poc=exchange.poc,
                )
                for i, (usage, exchange) in enumerate(exchanges)
            ]
        # Every operator shares one plan shape in a bonded deployment;
        # use the first (audit re-checks consistency receipt by receipt).
        any_config = next(iter(self.per_operator.values())).config
        return MultiOperatorSettlement(
            plan=DataPlan(
                c=any_config.c, cycle_duration_s=any_config.cycle_duration_s
            ),
            receipts=receipts,
            edge_public=edge_key.public,
            operator_publics={
                operator: key.public for operator, key in operator_keys.items()
            },
        )


def settle_usages(
    plan: DataPlan,
    usages: list,
    edge_key: PrivateKey,
    operator_key: PrivateKey,
    rng: random.Random,
) -> list[tuple[object, object]]:
    """Negotiate one signed PoC per usage record; returns (usage, exchange).

    Both parties play :class:`~repro.core.OptimalStrategy` on what they
    actually measured — the same knowledge split
    :func:`~repro.experiments.runner.evaluate_schemes` gives the
    ``tlc-optimal`` scheme — so the negotiated volume lands inside
    Theorem 2's bracket around the true usage.
    """
    settled = []
    for usage in usages:
        driver = NegotiationDriver(
            plan,
            usage.cycle.t_start,
            OptimalStrategy(
                PartyKnowledge(
                    PartyRole.EDGE,
                    usage.edge_sent_record,
                    usage.edge_received_estimate,
                )
            ),
            OptimalStrategy(
                PartyKnowledge(
                    PartyRole.OPERATOR,
                    usage.operator_received_record,
                    usage.operator_sent_estimate,
                )
            ),
            edge_key,
            operator_key,
            rng,
        )
        settled.append((usage, driver.run()))
    return settled


@dataclass(frozen=True)
class SettledCycle:
    """One signed, auditable settlement receipt."""

    operator: str
    cycle_index: int
    volume: int
    rounds: int
    plan_params: PlanParams
    poc: Poc


@dataclass
class MultiOperatorSettlement:
    """Signed receipts per operator, ready for third-party audit."""

    plan: DataPlan
    receipts: dict[str, list[SettledCycle]]
    edge_public: PublicKey
    operator_publics: dict[str, PublicKey]

    def total_volume(self) -> int:
        """Sum of negotiated volumes across all receipts."""
        return sum(r.volume for rs in self.receipts.values() for r in rs)

    def audit(self) -> list[tuple[str, int, str]]:
        """Run Algorithm 2 over every receipt with a fresh verifier.

        Returns the failures as ``(operator, cycle_index, reason)``
        tuples — empty means the whole settlement verifies.
        """
        verifier = PublicVerifier(self.plan)
        failures: list[tuple[str, int, str]] = []
        for operator in sorted(self.receipts):
            operator_public = self.operator_publics[operator]
            for receipt in self.receipts[operator]:
                report = verifier.verify(
                    receipt.poc,
                    receipt.plan_params,
                    self.edge_public,
                    operator_public,
                )
                if not report.ok:
                    failures.append(
                        (operator, receipt.cycle_index, report.failure.value)
                    )
                elif report.volume != receipt.volume:
                    failures.append(
                        (operator, receipt.cycle_index, "volume-mismatch")
                    )
        return failures


def run_multi_operator(
    base: ScenarioConfig,
    shares: list[OperatorShare],
    seed: int = 1,
    n_cycles: int = 6,
) -> MultiOperatorResult:
    """Split the workload across operators and negotiate each separately."""
    if abs(sum(s.fraction for s in shares) - 1.0) > 1e-9:
        raise ValueError("operator shares must sum to 1")
    per_operator: dict[str, ScenarioResult] = {}
    for i, share in enumerate(shares):
        workload = base.workload
        scaled = type(workload)(
            **{
                **workload.__dict__,
                "name": f"{workload.name}@{share.operator}",
                "mean_bitrate_bps": workload.mean_bitrate_bps * share.fraction,
            }
        )
        config = base.with_(
            name=f"{base.name}@{share.operator}",
            workload=scaled,
            seed=seed + i,
            n_cycles=n_cycles,
        )
        per_operator[share.operator] = run_scenario(config)
    return MultiOperatorResult(per_operator)
