"""Process-pool scenario execution with a content-addressed result cache.

The paper's evaluation is an embarrassingly parallel sweep: every figure
and table runs many independent (workload × network-condition) scenarios,
each already deterministic given its :class:`ScenarioConfig` — the runner
builds a fresh :class:`~repro.netsim.events.EventLoop` and derives every
random stream from ``StreamRegistry(config.seed)``, so a scenario's result
depends on nothing outside its config.  This module exploits both facts:

* :func:`run_scenarios` fans configs out over a process pool; results are
  shipped across the process boundary through an explicit dataclass↔dict
  codec (live results reference simulator objects, so we serialize the
  record content, not the object graph).  Per-scenario determinism makes
  parallel results bit-identical to serial ones.
* :class:`ResultCache` stores the same codec output on disk under a
  content-addressed key — a stable hash of the full ``ScenarioConfig``
  plus a codec version.  Re-running a figure benchmark only simulates
  scenarios whose config (or the codec) changed; everything else is a
  cache hit.  Invalidation is by key: any config field change, or a bump
  of :data:`CODEC_VERSION`, produces a new key and the stale entry is
  simply never read again.

Module-level defaults (set by :func:`configure`, seeded from the
``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` environment variables) let the
CLI and the benchmark harness opt whole sweeps in without threading
options through every figure function.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from ..cellular.radio import RssSample
from ..core.gap import SchemeOutcome
from ..core.plan import ChargingCycle
from ..core.records import CycleUsage
from ..netsim.faults import FAULT_PROFILES, FaultEvent, FaultSchedule, FaultTrace
from ..netsim.packet import Direction, Transport
from ..netsim.rng import StreamRegistry
from ..obs import MetricsSnapshot
from ..workloads.base import WorkloadProfile
from .runner import ScenarioResult, run_scenario
from .scenarios import ScenarioConfig

#: Bump when the codec or anything influencing simulation output changes;
#: every cache key embeds it, so old entries stop matching.
#: v2: ScenarioConfig.faults + ScenarioResult.fault_trace.
#: v3: ScenarioResult.metrics (observability snapshot).
#: v4: handover interruptions go through the radio's outage bookkeeping
#:     (outage gauges change for handover scenarios).
#: v5: ScenarioConfig.quota_bytes/quota_throttle_bps (PCRF throttling)
#:     and kernel.fallback counters in metrics snapshots.
CODEC_VERSION = 5


# ------------------------------------------------------------------ codec


def config_to_dict(config: ScenarioConfig) -> dict:
    """JSON-safe dict for a :class:`ScenarioConfig` (enums → values)."""
    encoded = dataclasses.asdict(config)
    encoded["direction"] = config.direction.value
    encoded["workload"] = dict(encoded["workload"])
    encoded["workload"]["transport"] = config.workload.transport.value
    encoded["faults"] = None if config.faults is None else config.faults.to_dict()
    return encoded


#: Known dataclass fields, used to drop unknown keys on decode: an older
#: binary reading a newer cache directory (a forward-version entry with
#: extra config fields) must treat the entry as decodable-or-miss, never
#: crash the sweep with a ``TypeError`` from ``ScenarioConfig(**...)``.
_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(ScenarioConfig))
_WORKLOAD_FIELDS = frozenset(f.name for f in dataclasses.fields(WorkloadProfile))


def config_from_dict(data: dict) -> ScenarioConfig:
    """Inverse of :func:`config_to_dict`; unknown keys are ignored."""
    decoded = {k: v for k, v in data.items() if k in _CONFIG_FIELDS}
    workload = {k: v for k, v in data["workload"].items() if k in _WORKLOAD_FIELDS}
    workload["transport"] = Transport(workload["transport"])
    decoded["workload"] = WorkloadProfile(**workload)
    decoded["direction"] = Direction(decoded["direction"])
    faults = decoded.get("faults")
    decoded["faults"] = None if faults is None else FaultSchedule.from_dict(faults)
    return ScenarioConfig(**decoded)


def result_to_dict(result: ScenarioResult) -> dict:
    """Serialize a :class:`ScenarioResult` for IPC or the on-disk cache."""
    return {
        "version": CODEC_VERSION,
        "config": config_to_dict(result.config),
        "usages": [
            {
                "cycle": [u.cycle.t_start, u.cycle.t_end],
                "direction": u.direction.value,
                "flow_id": u.flow_id,
                "true_sent": u.true_sent,
                "true_received": u.true_received,
                "gateway_count": u.gateway_count,
                "edge_sent_record": u.edge_sent_record,
                "edge_received_estimate": u.edge_received_estimate,
                "operator_received_record": u.operator_received_record,
                "operator_sent_estimate": u.operator_sent_estimate,
            }
            for u in result.usages
        ],
        "outcomes": {
            scheme: [
                {"scheme": o.scheme, "charged": o.charged,
                 "expected": o.expected, "rounds": o.rounds}
                for o in outcomes
            ]
            for scheme, outcomes in result.outcomes.items()
        },
        "measured_bitrate_bps": result.measured_bitrate_bps,
        "rss_history": [
            [s.t, s.rss_dbm, s.connected] for s in result.rss_history
        ],
        "fault_trace": [
            [e.t, e.kind, e.point, e.detail] for e in result.fault_trace.events
        ],
        "metrics": result.metrics.to_dict(),
    }


def result_from_dict(data: dict) -> ScenarioResult:
    """Inverse of :func:`result_to_dict`."""
    if data.get("version") != CODEC_VERSION:
        raise ValueError(
            f"result codec version {data.get('version')!r} != {CODEC_VERSION}"
        )
    usages = [
        CycleUsage(
            cycle=ChargingCycle(u["cycle"][0], u["cycle"][1]),
            direction=Direction(u["direction"]),
            flow_id=u["flow_id"],
            true_sent=u["true_sent"],
            true_received=u["true_received"],
            gateway_count=u["gateway_count"],
            edge_sent_record=u["edge_sent_record"],
            edge_received_estimate=u["edge_received_estimate"],
            operator_received_record=u["operator_received_record"],
            operator_sent_estimate=u["operator_sent_estimate"],
        )
        for u in data["usages"]
    ]
    outcomes = {
        scheme: [
            SchemeOutcome(o["scheme"], o["charged"], o["expected"], o["rounds"])
            for o in rows
        ]
        for scheme, rows in data["outcomes"].items()
    }
    return ScenarioResult(
        config=config_from_dict(data["config"]),
        usages=usages,
        outcomes=outcomes,
        measured_bitrate_bps=data["measured_bitrate_bps"],
        rss_history=[RssSample(t, rss, conn) for t, rss, conn in data["rss_history"]],
        fault_trace=FaultTrace(
            FaultEvent(t, kind, point, detail)
            for t, kind, point, detail in data.get("fault_trace", ())
        ),
        metrics=MetricsSnapshot.from_dict(data.get("metrics", {})),
    )


# ------------------------------------------------------------ seeding/keys


def derive_seed(base_seed: int, salt: str) -> int:
    """A per-scenario seed from a sweep's base seed and a stable salt.

    Uses the same SHA-256 derivation as :meth:`StreamRegistry.fork`, so a
    sweep can hand every scenario an independent, reproducible seed that
    is identical however the sweep is partitioned across processes.
    """
    return StreamRegistry(base_seed).fork(salt).seed


def scenario_key(config: ScenarioConfig) -> str:
    """Content-addressed cache key: stable hash of the full config."""
    canonical = json.dumps(
        {"codec": CODEC_VERSION, "config": config_to_dict(config)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


# ------------------------------------------------------------------- cache


class ResultCache:
    """On-disk run results, content-addressed by a caller-supplied key.

    One JSON file per entry under ``directory``; scenario sweeps key
    entries with :func:`scenario_key`, the fleet engine with its shard
    key.  Unreadable or version-mismatched entries are treated as misses
    and removed, so a corrupt cache can never poison a sweep.

    Publishing is concurrency-safe: each writer stages through its own
    unique temp file (pid + uuid) in the cache directory and atomically
    renames it over the final path.  A shared temp name would let two
    processes caching the same key interleave writes before ``replace()``
    and publish garbage.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------- key-based API

    def path_for_key(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def has(self, key: str) -> bool:
        """Cheap existence probe (no parse; the entry may still be corrupt)."""
        return self.path_for_key(key).is_file()

    def get_data(self, key: str) -> dict | None:
        """Load one entry's decoded JSON, or None (and drop it) if unusable."""
        path = self.path_for_key(key)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            # Corrupt/truncated entries are a miss, never a crash.
            path.unlink(missing_ok=True)
            return None
        if not isinstance(data, dict):
            path.unlink(missing_ok=True)
            return None
        return data

    def put_data(self, key: str, data: dict) -> Path:
        """Atomically publish one entry via a writer-unique temp file."""
        path = self.path_for_key(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        try:
            tmp.write_text(json.dumps(data, separators=(",", ":")))
            tmp.replace(path)  # atomic publish: readers never see partial JSON
        finally:
            tmp.unlink(missing_ok=True)
        return path

    # ---------------------------------------------------- scenario-keyed API

    def path_for(self, config: ScenarioConfig) -> Path:
        return self.path_for_key(scenario_key(config))

    def get(self, config: ScenarioConfig) -> ScenarioResult | None:
        key = scenario_key(config)
        data = self.get_data(key)
        if data is None:
            return None
        try:
            return result_from_dict(data)
        except (ValueError, KeyError, TypeError, IndexError):
            self.path_for_key(key).unlink(missing_ok=True)
            return None

    def put(self, config: ScenarioConfig, result: ScenarioResult) -> Path:
        return self.put_data(scenario_key(config), result_to_dict(result))


# ------------------------------------------------------------------ engine


@dataclass
class RunReport:
    """Where each scenario of the last :func:`run_scenarios` came from."""

    simulated: int = 0
    cached: int = 0

    @property
    def total(self) -> int:
        return self.simulated + self.cached


_default_workers = 0
_default_cache: ResultCache | None = None
_default_faults: FaultSchedule | None = None


def resolve_fault_profile(profile: FaultSchedule | str | None) -> FaultSchedule | None:
    """Accept a schedule, a named profile, or None; reject unknown names."""
    if profile is None or isinstance(profile, FaultSchedule):
        return profile
    try:
        schedule = FAULT_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {profile!r} (know {', '.join(FAULT_PROFILES)})"
        ) from None
    return None if schedule.is_empty else schedule


def configure(
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    fault_profile: FaultSchedule | str | None = None,
) -> None:
    """Set process-count, cache and chaos defaults for subsequent sweeps.

    ``workers=0``/``1`` means serial; ``cache_dir=None`` disables the
    cache.  ``fault_profile`` (a :class:`FaultSchedule` or a name from
    :data:`~repro.netsim.faults.FAULT_PROFILES`) is stamped onto every
    config that doesn't carry its own schedule, *before* cache lookup —
    so chaos runs occupy distinct cache entries and parallel workers see
    the faults inside the config they receive.  Called by the CLI
    (``--workers``/``--cache-dir``/``--fault-profile``) and the benchmark
    harness; initial values come from the ``REPRO_WORKERS``,
    ``REPRO_CACHE_DIR`` and ``REPRO_FAULT_PROFILE`` environment variables.
    """
    global _default_workers, _default_cache, _default_faults
    _default_workers = int(workers) if workers is not None else 0
    _default_cache = ResultCache(cache_dir) if cache_dir else None
    _default_faults = resolve_fault_profile(fault_profile)


def apply_default_faults(config: ScenarioConfig) -> ScenarioConfig:
    """Stamp the configured default fault schedule onto a plain config."""
    if _default_faults is None or config.faults is not None:
        return config
    return config.with_(faults=_default_faults)


configure(
    workers=int(os.environ.get("REPRO_WORKERS", "0") or 0),
    cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
    fault_profile=os.environ.get("REPRO_FAULT_PROFILE") or None,
)


def _simulate_to_dict(config_data: dict) -> dict:
    """Pool worker: decode the config, simulate, encode the result."""
    return result_to_dict(run_scenario(config_from_dict(config_data)))


def run_scenarios(
    configs: list[ScenarioConfig] | tuple[ScenarioConfig, ...],
    workers: int | None = None,
    cache: ResultCache | None | bool = True,
    report: RunReport | None = None,
) -> list[ScenarioResult]:
    """Run a batch of scenarios, in input order, as fast as allowed.

    Cache hits are returned without simulating; misses run either inline
    (``workers`` ≤ 1, or a single miss) or on a process pool.  Parallel
    and serial execution produce bit-identical results: every scenario is
    seeded solely from its own config.

    ``cache=True`` uses the configured default cache (possibly none),
    ``cache=None``/``False`` disables caching for this call, and an
    explicit :class:`ResultCache` overrides the default.  ``report``, if
    given, is filled with simulated/cached counts.
    """
    if cache is True:
        cache = _default_cache
    elif cache is False:
        cache = None
    n_workers = _default_workers if workers is None else int(workers)
    configs = [apply_default_faults(config) for config in configs]
    results: list[ScenarioResult | None] = [None] * len(configs)

    misses: list[int] = []
    for i, config in enumerate(configs):
        hit = cache.get(config) if cache is not None else None
        if hit is not None:
            results[i] = hit
        else:
            misses.append(i)
    if report is not None:
        report.cached += len(configs) - len(misses)
        report.simulated += len(misses)

    if misses:
        if n_workers <= 1 or len(misses) == 1:
            fresh = [run_scenario(configs[i]) for i in misses]
        else:
            with ProcessPoolExecutor(max_workers=min(n_workers, len(misses))) as pool:
                encoded = pool.map(
                    _simulate_to_dict, [config_to_dict(configs[i]) for i in misses]
                )
                fresh = [result_from_dict(data) for data in encoded]
        for i, result in zip(misses, fresh):
            results[i] = result
            if cache is not None:
                cache.put(configs[i], result)

    return results  # type: ignore[return-value]  # every slot is filled
