"""In-cycle latency measurement (Figure 16a).

Sends ping probes through the full simulated data path (device → air →
eNodeB → backhaul → SPGW → server and back) and reports round-trip times.
TLC runs only at the end of the charging cycle and adds no per-packet
processing, so the "with TLC" arm runs the identical path — the paper's
point is precisely that the two distributions coincide.

Simulated RTTs are offset by the device profile's processing overhead so
the absolute values land near the hardware-specific RTTs of Figure 16a.
"""

from __future__ import annotations

from ..cellular import CellularNetwork, NetworkConfig, RadioProfile, make_test_imsi
from ..core import DataPlan, OptimalStrategy, PartyKnowledge, PartyRole
from ..edge import EdgeDevice, EdgeServer
from ..edge.device import DeviceProfile
from ..netsim import EventLoop, Packet, StreamRegistry

#: Baseline simulated network RTT (propagation + backhaul + LAN, both ways);
#: the device profile's excess over this is host-side processing.
SIM_BASE_RTT_MS = 13.0


def measure_rtt(
    profile: DeviceProfile,
    seed: int = 1,
    pings: int = 200,
    interval_s: float = 0.05,
    tlc_enabled: bool = False,
    background_mbps: float = 0.0,
    ping_bytes: int = 64,
) -> list[float]:
    """RTTs (ms) of ``pings`` probes through the simulated network."""
    loop = EventLoop()
    rng = StreamRegistry(seed)
    network = CellularNetwork(loop, rng, NetworkConfig())
    imsi = make_test_imsi(9)
    flow_id = f"ping:{profile.name}"
    rtts_ms: list[float] = []
    sent_at: dict[int, float] = {}
    jitter_rng = rng.stream("device-processing")
    processing_ms = max(0.0, profile.rtt_ms - SIM_BASE_RTT_MS)

    device = EdgeDevice(loop, imsi, flow_id, profile=profile)

    def on_echo(packet: Packet) -> None:
        t0 = sent_at.pop(packet.seq, None)
        if t0 is None:
            return
        network_ms = (loop.now() - t0) * 1000.0
        host_ms = max(0.0, jitter_rng.gauss(processing_ms, processing_ms * 0.15))
        rtts_ms.append(network_ms + host_ms)

    device.on_receive = on_echo
    access = network.attach_device(imsi, RadioProfile(), deliver=device.deliver)
    device.bind(access)
    network.create_bearer(imsi, flow_id)
    server = EdgeServer(loop, network, flow_id)

    def echo(packet: Packet) -> None:
        # Carry the probe's sequence number back so the device can match.
        reply = server.send(packet.size)
        reply.seq = packet.seq

    server.on_receive = echo
    if background_mbps > 0:
        network.set_background_load(background_mbps * 1e6, background_mbps * 1e6)

    def send_ping(index: int) -> None:
        packet = device.send(ping_bytes)
        sent_at[packet.seq] = loop.now()

    for i in range(pings):
        loop.schedule_at(0.1 + i * interval_s, send_ping, i)
    horizon = 0.1 + pings * interval_s + 1.0
    loop.run_until(horizon)

    if tlc_enabled:
        # End-of-cycle negotiation: happens after the probes, touching
        # nothing in the data path (the property under test).
        import random as _random

        from ..crypto import generate_keypair
        from ..poc import NegotiationDriver

        proto_rng = _random.Random(seed)
        plan = DataPlan(c=0.5, cycle_duration_s=horizon)
        edge_key = generate_keypair(512, proto_rng)
        operator_key = generate_keypair(512, proto_rng)
        ul = device.ul_monitor.total
        driver = NegotiationDriver(
            plan, 0.0,
            OptimalStrategy(PartyKnowledge(PartyRole.EDGE, ul, server.ul_monitor.total)),
            OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, server.ul_monitor.total, ul)),
            edge_key, operator_key, proto_rng, edge_profile=profile,
        )
        driver.run()
    return rtts_ms
