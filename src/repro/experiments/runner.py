"""End-to-end experiment runner.

Builds the full stack for one scenario — EPC, radio, device, server,
workload — simulates the configured charging cycles, extracts per-cycle
:class:`~repro.core.records.CycleUsage` (ground truth + every party's
measured records), and evaluates the charging schemes the paper compares:

* ``legacy``      — the gateway count, unnegotiated (honest legacy 4G/5G);
* ``tlc-optimal`` — Algorithm 1 with both parties playing minimax/maximin;
* ``tlc-random``  — Algorithm 1 with selfish-but-unaware random claims;
* ``tlc-honest``  — Algorithm 1 with truthful claims (ablation).

Per-cycle clock skews are drawn for the edge vendor and the operator
(relative to cycle length), reproducing the charging-record errors whose
magnitude Figure 18 reports and which bound TLC-optimal's residual gap.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..cellular import (
    CellularNetwork,
    ENodeBConfig,
    HandoverConfig,
    HandoverProcess,
    NetworkConfig,
    QuotaPolicy,
    RadioProfile,
    make_test_imsi,
)
from ..core import (
    CycleUsage,
    DataPlan,
    HonestStrategy,
    NegotiationEngine,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
    RandomSelfishStrategy,
    SchemeOutcome,
)
from ..edge import CounterCheckMonitor, EdgeDevice, EdgeServer
from ..kernel import SETTLE_S, build_scenario_lane, resolve_kernel, run_lane
from ..netsim import Direction, EventLoop, FaultInjector, FaultTrace, StreamRegistry
from ..obs import MetricsRegistry, MetricsSnapshot
from ..workloads import FrameWorkload
from .scenarios import ScenarioConfig

SCHEMES = ("legacy", "tlc-optimal", "tlc-random", "tlc-honest")

#: Fixed bucket edges for the per-scheme negotiation-round histogram
#: (Figure 16b's x-axis range); fixed so snapshots merge and compare.
ROUND_EDGES = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0)


def evaluate_schemes(
    plan: DataPlan,
    usages: list[CycleUsage],
    neg_rng,
    accept_tolerance: float,
    max_rounds: int,
    metrics: MetricsRegistry | None = None,
) -> dict[str, list[SchemeOutcome]]:
    """Run every charging scheme on every cycle of one flow.

    Shared by the single-UE :class:`ScenarioRunner` and the fleet shard
    runner: ``neg_rng`` is the caller's dedicated negotiation stream, so
    per-flow results depend only on that stream's state, never on how
    many flows share the simulation.
    """
    outcomes: dict[str, list[SchemeOutcome]] = {name: [] for name in SCHEMES}
    for usage in usages:
        expected = plan.expected_charge(usage.true_sent, usage.true_received)
        outcomes["legacy"].append(
            SchemeOutcome("legacy", usage.gateway_count, expected)
        )
        for scheme in ("tlc-optimal", "tlc-random", "tlc-honest"):
            edge_know = PartyKnowledge(
                PartyRole.EDGE, usage.edge_sent_record, usage.edge_received_estimate
            )
            op_know = PartyKnowledge(
                PartyRole.OPERATOR,
                usage.operator_received_record,
                usage.operator_sent_estimate,
            )
            if scheme == "tlc-optimal":
                edge = OptimalStrategy(edge_know, accept_tolerance=accept_tolerance)
                operator = OptimalStrategy(op_know, accept_tolerance=accept_tolerance)
            elif scheme == "tlc-honest":
                edge = HonestStrategy(edge_know, accept_tolerance=accept_tolerance)
                operator = HonestStrategy(op_know, accept_tolerance=accept_tolerance)
            else:
                edge = RandomSelfishStrategy(edge_know, neg_rng)
                operator = RandomSelfishStrategy(op_know, neg_rng)
            engine = NegotiationEngine(plan, edge, operator, max_rounds=max_rounds)
            result = engine.run()
            outcomes[scheme].append(
                SchemeOutcome(scheme, result.volume, expected, result.rounds)
            )
    if metrics is not None:
        for scheme, rows in outcomes.items():
            rounds = metrics.histogram(
                "core.negotiation.rounds", ROUND_EDGES, scheme=scheme
            )
            residual = metrics.counter("core.gap.residual_bytes", scheme=scheme)
            charged = metrics.counter("core.gap.charged_bytes", scheme=scheme)
            for outcome in rows:
                rounds.observe(outcome.rounds)
                residual.inc(outcome.delta)
                charged.inc(outcome.charged)
    return outcomes


@dataclass
class ScenarioResult:
    """All cycles of one scenario, with per-scheme outcomes."""

    config: ScenarioConfig
    usages: list[CycleUsage]
    outcomes: dict[str, list[SchemeOutcome]]
    measured_bitrate_bps: float
    rss_history: list = field(default_factory=list)
    fault_trace: FaultTrace = field(default_factory=FaultTrace)
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)

    def mean_delta_mb_per_hr(self, scheme: str) -> float:
        """Average absolute gap, normalized to MB/hr (Table 2's Δ)."""
        rows = [
            usage.scaled_to_hour(outcome.delta)
            for usage, outcome in zip(self.usages, self.outcomes[scheme])
        ]
        return statistics.mean(rows) if rows else 0.0

    def mean_epsilon(self, scheme: str) -> float:
        """Average per-cycle relative gap ratio (Table 2's ε)."""
        rows = [o.epsilon for o in self.outcomes[scheme] if o.expected > 0]
        return statistics.mean(rows) if rows else 0.0

    def mean_rounds(self, scheme: str) -> float:
        """Average negotiation rounds (Figure 16b)."""
        rows = [o.rounds for o in self.outcomes[scheme]]
        return statistics.mean(rows) if rows else 0.0

    def gaps_mb_per_hr(self, scheme: str) -> list[float]:
        """Per-cycle gaps in MB/hr (Figure 12's CDF input)."""
        return [
            usage.scaled_to_hour(outcome.delta)
            for usage, outcome in zip(self.usages, self.outcomes[scheme])
        ]


class ScenarioRunner:
    """Owns one scenario's simulation and its record extraction."""

    def __init__(self, config: ScenarioConfig, kernel: str | None = None) -> None:
        self.config = config
        # Simulation kernel: "auto" picks the batched per-UE kernel when
        # the scenario is eligible (bit-identical results), "reference"
        # forces the per-packet engine, "batched" raises if ineligible.
        self.kernel = resolve_kernel(kernel)
        self.kernel_used: str | None = None
        self.kernel_fallback_reason: str | None = None
        self.loop = EventLoop()
        self.metrics = MetricsRegistry(clock=self.loop.now)
        self.rng = StreamRegistry(config.seed)
        self.plan = DataPlan(c=config.c, cycle_duration_s=config.cycle_duration_s)
        # Keep the RRC counter-check staleness proportional to the cycle:
        # the paper's 5 s checks on 1 h cycles quantize ~0.14 % of volume.
        check_interval = max(0.05, config.cycle_duration_s / 600.0)
        net_config = NetworkConfig(
            enodeb=ENodeBConfig(counter_check_interval_s=check_interval)
        )
        self.network = CellularNetwork(self.loop, self.rng, net_config, metrics=self.metrics)
        imsi = make_test_imsi(1)
        flow_id = f"{config.workload.name}:ue1"
        self.counter_monitor = CounterCheckMonitor(self.loop)
        self.device = EdgeDevice(self.loop, imsi, flow_id)
        radio = self._radio_profile()
        access = self.network.attach_device(
            imsi,
            radio_profile=radio,
            deliver=self.device.deliver,
            counter_report_sink=self.counter_monitor.on_report,
            record_rss=config.outage_eta is not None,
        )
        self.device.bind(access)
        self.access = access
        # Radio outages become spans on the simulated clock (event-driven
        # open/close; a snapshot taken mid-outage closes them virtually).
        self._outage_span = None
        access.radio.on_outage_start.append(self._outage_started)
        access.radio.on_outage_end.append(self._outage_ended)
        self.network.create_bearer(imsi, flow_id, qci=config.workload.qci)
        if config.quota_bytes is not None:
            self.network.pcrf.set_quota(
                flow_id,
                QuotaPolicy(config.quota_bytes, throttle_bps=config.quota_throttle_bps),
            )
        self.server = EdgeServer(self.loop, self.network, flow_id)
        if config.background_mbps > 0:
            rate = config.background_mbps * 1e6
            self.network.set_background_load(rate, rate)
        self.handover: HandoverProcess | None = None
        if config.handover_interval_s is not None:
            self.handover = HandoverProcess(
                self.loop,
                self.rng,
                self.network.enodeb.ue(str(imsi)),
                HandoverConfig(
                    interval_s=config.handover_interval_s,
                    interruption_s=config.handover_interruption_s,
                    x2_forwarding=config.handover_x2,
                ),
            )
            self.handover.start()
        if config.sla_budget_s is not None:
            self.network.set_sla_budget(flow_id, config.sla_budget_s)
        sender = self.device if config.direction is Direction.UPLINK else self.server
        self.workload = FrameWorkload(self.loop, self.rng, config.workload, sender)
        self.flow_id = flow_id
        # Chaos layer: wrap the device's uplink send path and downlink
        # delivery path through the injector's uniform hook, and arm any
        # modem counter resets.  Clock faults apply at record extraction.
        self.fault_injector: FaultInjector | None = None
        if config.faults is not None and not config.faults.is_empty:
            injector = FaultInjector(self.loop, self.rng, config.faults, metrics=self.metrics)
            access.send_uplink = injector.pipe("uplink", access.send_uplink)
            ue = self.network.enodeb.ue(str(imsi))
            ue.deliver = injector.pipe("downlink", ue.deliver)
            injector.attach_modem(access.modem, point="modem")
            self.fault_injector = injector

    def _outage_started(self) -> None:
        if self._outage_span is None:
            self._outage_span = self.metrics.span_open("radio.outage")

    def _outage_ended(self) -> None:
        if self._outage_span is not None:
            self._outage_span.close()
            self._outage_span = None

    def _radio_profile(self) -> RadioProfile:
        config = self.config
        if config.outage_eta is not None:
            return RadioProfile.for_disconnectivity(
                config.outage_eta,
                mean_outage_s=config.mean_outage_s,
                base_loss=config.base_loss,
            )
        return RadioProfile(base_loss=config.base_loss)

    # -------------------------------------------------------------- running

    def simulate(self) -> None:
        """Run the workload through every configured charging cycle."""
        horizon = self.config.n_cycles * self.config.cycle_duration_s
        with self.metrics.span("simulate"):
            lane = None
            if self.kernel != "reference":
                lane, reason = build_scenario_lane(self)
                if lane is None:
                    if self.kernel == "batched":
                        raise RuntimeError(f"batched kernel unavailable: {reason}")
                    self.kernel_fallback_reason = reason
                    self.metrics.counter("kernel.fallback", reason=reason).inc()
            if lane is not None:
                self.kernel_used = "batched"
                run_lane(lane, horizon, settle=SETTLE_S)
                self.loop.run_until(horizon + SETTLE_S)  # advance the clock
            else:
                self.kernel_used = "reference"
                self.workload.start(until=horizon)
                self.loop.run_until(horizon + SETTLE_S)  # settle in-flight traffic
            # Final counter check so the last cycle's RRC record is fresh.
            self.network.enodeb.ue(str(self.device.imsi)).rrc.perform_counter_check()

    def collect_metrics(self) -> None:
        """Harvest end-of-run totals from components into gauges.

        Live counters (links, gateway, faults, PoC) accumulate during the
        simulation; this pass snapshots the remaining passive counters —
        air interface, radio, modem, application monitors — so one
        snapshot accounts for the whole data path layer by layer.
        """
        m = self.metrics
        enodeb = self.network.enodeb
        for direction, air in (("dl", enodeb.downlink_air), ("ul", enodeb.uplink_air)):
            m.gauge("cellular.air.offered_bytes", direction=direction).set(air.offered.bytes)
            m.gauge("cellular.air.dropped_bytes", direction=direction).set(air.dropped.bytes)
            m.gauge("cellular.air.transmitted_bytes", direction=direction).set(
                air.transmitted.bytes
            )
        radio = self.access.radio
        m.gauge("cellular.radio.outages").set(radio.outage_count)
        m.gauge("cellular.radio.outage_time_s").set(radio.total_outage_time)
        modem = self.access.modem
        m.gauge("edge.modem.uplink_bytes").set(modem.ul_sent.total)
        m.gauge("edge.modem.downlink_bytes").set(modem.dl_received.total)
        m.gauge("edge.modem.counter_checks").set(modem.counter_checks_served)
        monitors = (
            ("device-ul", self.device.ul_monitor),
            ("device-dl", self.device.dl_monitor),
            ("server-ul", self.server.ul_monitor),
            ("server-dl", self.server.dl_monitor),
        )
        for point, monitor in monitors:
            m.gauge("edge.monitor.observed_bytes", point=point).set(monitor.total)

    # ----------------------------------------------------------- extraction

    def _cycle_usage(self, t1: float, t2: float, edge_skew: float, op_skew: float) -> CycleUsage:
        config = self.config
        direction = config.direction
        for monitor in (
            self.device.ul_monitor,
            self.device.dl_monitor,
            self.server.ul_monitor,
            self.server.dl_monitor,
        ):
            monitor.set_skew(edge_skew)
        self.counter_monitor.set_skew(op_skew)

        gateway = self.network.gateway_usage(self.flow_id, t1, t2, direction)
        if direction is Direction.UPLINK:
            true_sent = self.device.ul_monitor.true_usage(t1, t2)
            true_received = min(gateway, true_sent)
            edge_sent = self.device.ul_monitor.reported_usage(t1, t2)
            edge_received_est = self.server.ul_monitor.reported_usage(t1, t2)
            operator_received = gateway  # the gateway *is* the receiver record
            operator_sent_est = self.counter_monitor.reported_uplink_usage(t1, t2)
        else:
            true_sent = self.server.dl_monitor.true_usage(t1, t2)
            true_received = min(self.device.dl_monitor.true_usage(t1, t2), true_sent)
            edge_sent = self.server.dl_monitor.reported_usage(t1, t2)
            edge_received_est = self.device.dl_monitor.reported_usage(t1, t2)
            operator_received = self.counter_monitor.reported_usage(t1, t2)
            operator_sent_est = gateway

        cycles = self.plan.cycles(self.config.n_cycles)
        index = int(round(t1 / config.cycle_duration_s))
        return CycleUsage(
            cycle=cycles[index],
            direction=direction,
            flow_id=self.flow_id,
            true_sent=true_sent,
            true_received=true_received,
            gateway_count=gateway,
            edge_sent_record=edge_sent,
            edge_received_estimate=edge_received_est,
            operator_received_record=operator_received,
            operator_sent_estimate=operator_sent_est,
        )

    def collect(self) -> list[CycleUsage]:
        """Extract per-cycle usage records with per-cycle clock skews."""
        config = self.config
        skew_rng = self.rng.stream("cycle-skews")
        usages = []
        for k in range(config.n_cycles):
            t1 = k * config.cycle_duration_s
            t2 = (k + 1) * config.cycle_duration_s
            edge_skew = skew_rng.gauss(0.0, config.edge_skew_rel_std * config.cycle_duration_s)
            op_skew = skew_rng.gauss(0.0, config.operator_skew_rel_std * config.cycle_duration_s)
            if self.fault_injector is not None:
                # Injected clock faults stack on top of the baseline NTP
                # error: offsets while active, drift accumulated to the
                # (true-time) cycle boundary.
                edge_skew += self.fault_injector.extra_skew("edge-clock", t2)
                op_skew += self.fault_injector.extra_skew("operator-clock", t2)
            usages.append(self._cycle_usage(t1, t2, edge_skew, op_skew))
        return usages

    # ------------------------------------------------------------- schemes

    def evaluate(self, usages: list[CycleUsage]) -> dict[str, list[SchemeOutcome]]:
        """Run every charging scheme on every cycle."""
        return evaluate_schemes(
            self.plan,
            usages,
            self.rng.stream("negotiation"),
            self.config.accept_tolerance,
            self.config.max_rounds,
            self.metrics,
        )

    def run(self) -> ScenarioResult:
        """Simulate, extract and evaluate; the one-call entry point."""
        self.simulate()
        usages = self.collect()
        outcomes = self.evaluate(usages)
        self.collect_metrics()
        horizon = self.config.n_cycles * self.config.cycle_duration_s
        return ScenarioResult(
            config=self.config,
            usages=usages,
            outcomes=outcomes,
            measured_bitrate_bps=self.workload.achieved_bitrate_bps(horizon),
            rss_history=self.access.radio.rss_history,
            fault_trace=(
                self.fault_injector.trace
                if self.fault_injector is not None
                else FaultTrace()
            ),
            metrics=self.metrics.snapshot(),
        )


def run_scenario(config: ScenarioConfig, kernel: str | None = None) -> ScenarioResult:
    """Convenience wrapper: build, run and return one scenario."""
    return ScenarioRunner(config, kernel=kernel).run()
