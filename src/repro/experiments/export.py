"""CSV export of figure data — plotting input for downstream users.

Each helper turns a figure generator's structured result into one or
more CSV files, so the paper's plots can be regenerated with any
plotting stack.  The CLI exposes this via ``python -m repro run
<experiment> --csv <dir>``.
"""

from __future__ import annotations

import csv
from pathlib import Path

from .figures import Figure4Series, Figure12Result, TableResult


def export_table(table: TableResult, path: str | Path) -> Path:
    """Write a TableResult as one CSV (header + rows)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.header)
        writer.writerows(table.rows)
    return path


def export_figure4(series: Figure4Series, path: str | Path) -> Path:
    """Write the Figure 4 time series as per-second CSV rows."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["t_s", "device_rate_mbps", "network_rate_mbps",
             "cumulative_gap_mb", "rss_dbm", "connected"]
        )
        for row in zip(
            series.times,
            series.device_rate_mbps,
            series.network_rate_mbps,
            series.cumulative_gap_mb,
            series.rss_dbm,
            series.connected,
        ):
            writer.writerow(row)
    return path


def export_cdfs(result: Figure12Result, directory: str | Path) -> list[Path]:
    """Write Figure 12's CDFs: one CSV per (app, scheme) curve."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for app, schemes in result.cdfs.items():
        for scheme, points in schemes.items():
            path = directory / f"figure12_{app}_{scheme}.csv"
            with path.open("w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(["gap_mb_per_hr", "percentile"])
                writer.writerows(points)
            written.append(path)
    return written


def export_curves(
    curves: dict[float, list[tuple[float, float]]], path: str | Path,
    value_name: str = "value",
) -> Path:
    """Write a {parameter: cdf points} family (Figure 15) as long-form CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["parameter", value_name, "percentile"])
        for parameter, points in sorted(curves.items()):
            for value, pct in points:
                writer.writerow([parameter, value, pct])
    return path
