"""Canonical experiment scenarios mapping to the paper's evaluation (§7).

Each scenario bundles a workload, its direction, the radio conditions and
the charging-plan parameters.  The per-scenario ``base_loss`` calibrates
the residual physical/application-layer loss so that the *good-radio,
no-congestion* charging gaps land near the paper's §3.2 numbers
(8.28 / 59.04 / 80.64 MB/hr for RTSP / UDP WebCam / VR).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..netsim.faults import FaultSchedule
from ..netsim.packet import Direction
from ..workloads import KING_OF_GLORY, VRIDGE_GVSP, WEBCAM_RTSP, WEBCAM_UDP, WorkloadProfile


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to run one charging experiment."""

    name: str
    workload: WorkloadProfile
    direction: Direction
    n_cycles: int = 10
    cycle_duration_s: float = 60.0
    c: float = 0.5
    seed: int = 1
    # Radio conditions.
    base_loss: float = 0.01
    outage_eta: float | None = None
    mean_outage_s: float = 1.93
    # Congestion (fluid iperf background, same level both directions).
    background_mbps: float = 0.0
    # Link-layer mobility: periodic handovers (None = static device).
    handover_interval_s: float | None = None
    handover_interruption_s: float = 0.05
    handover_x2: bool = False
    # Application-layer SLA: operator middlebox age budget (None = off).
    sla_budget_s: float | None = None
    # PCRF quota: throttle the flow to quota_throttle_bps once cumulative
    # charged usage passes quota_bytes (None = unthrottled plan).
    quota_bytes: int | None = None
    quota_throttle_bps: float = 128_000.0
    # Charging-record error model (relative to cycle duration); calibrated
    # to Figure 18's record-error means (γe ≈ 1.2 %, γo ≈ 2.0 %).
    edge_skew_rel_std: float = 0.017
    operator_skew_rel_std: float = 0.024
    # Negotiation settings.
    accept_tolerance: float = 0.05
    max_rounds: int = 64
    # Chaos layer: a deterministic fault schedule (None = no injection).
    # Part of the config, so it flows through the cache key and the
    # process-pool codec like every other knob.
    faults: FaultSchedule | None = None

    def with_(self, **overrides) -> "ScenarioConfig":
        """A copy with fields replaced (sweep helper)."""
        return replace(self, **overrides)


# The four applications of Figure 12 / Table 2.  Loss floors calibrated to
# the paper's good-radio gaps (§3.2) and per-app loss exposure.
WEBCAM_RTSP_UL = ScenarioConfig(
    name="webcam-rtsp-ul",
    workload=WEBCAM_RTSP,
    direction=Direction.UPLINK,
    base_loss=0.024,
)

WEBCAM_UDP_UL = ScenarioConfig(
    name="webcam-udp-ul",
    workload=WEBCAM_UDP,
    direction=Direction.UPLINK,
    base_loss=0.072,
)

VRIDGE_DL = ScenarioConfig(
    name="vridge-gvsp-dl",
    workload=VRIDGE_GVSP,
    direction=Direction.DOWNLINK,
    base_loss=0.019,
)

GAMING_DL = ScenarioConfig(
    name="gaming-qci7-dl",
    workload=KING_OF_GLORY,
    direction=Direction.DOWNLINK,
    base_loss=0.035,
)

ALL_APPS = (WEBCAM_RTSP_UL, WEBCAM_UDP_UL, VRIDGE_DL, GAMING_DL)

#: The three applications of the Figure 3 congestion measurement.
FIG3_APPS = (WEBCAM_RTSP_UL, WEBCAM_UDP_UL, VRIDGE_DL)
