"""Command-line interface: regenerate the paper's evaluation.

``python -m repro list`` shows the available experiments;
``python -m repro run figure3 table2 ...`` regenerates them (or ``all``),
and ``--csv DIR`` additionally exports plot-ready CSV data.  Each
``run``/``report`` invocation writes a JSON run manifest under
``benchmarks/out/`` describing the artifacts it produced.

``python -m repro obs <run>`` renders the layer-by-layer accounting of
any cached scenario (or saved manifest); ``python -m repro baseline``
checks every golden figure/table quantity against
``benchmarks/baselines.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..obs import MetricsSnapshot, RunManifest, render_accounting
from . import export, figures, parallel

#: Default artifact/manifest directory (the benchmark harness's layout).
DEFAULT_OUT_DIR = Path("benchmarks") / "out"

#: Default golden-baselines file.
DEFAULT_BASELINES = Path("benchmarks") / "baselines.json"


@dataclass(frozen=True)
class Experiment:
    """One reproducible evaluation artifact."""

    description: str
    run: Callable[[], object]
    render: Callable[[object], str]
    to_csv: Callable[[object, Path], None] | None = None


def _table_csv(name: str):
    def write(result, directory: Path) -> None:
        export.export_table(result, directory / f"{name}.csv")

    return write


EXPERIMENTS: dict[str, Experiment] = {
    "figure3": Experiment(
        "gap vs congestion (MB/hr)", figures.figure3,
        lambda r: r.render(), _table_csv("figure3"),
    ),
    "figure4": Experiment(
        "intermittent-connectivity time series", figures.figure4,
        lambda r: r.render(),
        lambda r, d: export.export_figure4(r, d / "figure4.csv"),
    ),
    "figure12": Experiment(
        "gap CDFs per scheme", figures.figure12,
        lambda r: r.render(),
        lambda r, d: export.export_cdfs(r, d),
    ),
    "table2": Experiment(
        "average charging gap", figures.table2,
        lambda r: r.render(), _table_csv("table2"),
    ),
    "figure13": Experiment(
        "gap ratio vs congestion", figures.figure13,
        lambda r: r.render(), _table_csv("figure13"),
    ),
    "figure14": Experiment(
        "gap ratio vs disconnectivity η", figures.figure14,
        lambda r: r.render(), _table_csv("figure14"),
    ),
    "figure15": Experiment(
        "charge reduction vs plan c", figures.figure15,
        figures.render_figure15,
        lambda r, d: export.export_curves(r, d / "figure15.csv", "mu_percent"),
    ),
    "figure16a": Experiment(
        "in-cycle RTT with/without TLC", figures.figure16a,
        lambda r: r.render(), _table_csv("figure16a"),
    ),
    "figure16b": Experiment(
        "negotiation rounds", figures.figure16b,
        lambda r: r.render(), _table_csv("figure16b"),
    ),
    "figure17": Experiment(
        "PoC negotiation/verification cost", figures.figure17,
        lambda r: r.render(), _table_csv("figure17"),
    ),
    "figure18": Experiment(
        "charging-record accuracy", figures.figure18,
        lambda r: r.render(), _table_csv("figure18"),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TLC (SIGCOMM'19) reproduction: regenerate evaluation figures/tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    def add_engine_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="simulate scenarios on N worker processes "
            "(default: $REPRO_WORKERS or serial)",
        )
        p.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="content-addressed scenario result cache "
            "(default: $REPRO_CACHE_DIR or no cache)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="disable the scenario result cache for this invocation",
        )
        p.add_argument(
            "--fault-profile", metavar="NAME", default=None,
            help="run every scenario under a named deterministic fault "
            "schedule (see repro.netsim.faults.FAULT_PROFILES; "
            "default: $REPRO_FAULT_PROFILE or none)",
        )
        p.add_argument(
            "--kernel", choices=("auto", "batched", "reference"), default=None,
            help="simulation kernel: auto batches eligible UEs on the "
            "flat-state kernel (bit-identical, ~10x faster), reference "
            "forces the per-packet engine, batched raises if ineligible "
            "(default: $REPRO_SIM_KERNEL or auto)",
        )

    report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument(
        "--out", metavar="FILE", default="REPORT.md",
        help="report path (default: REPORT.md)",
    )
    add_engine_options(report)
    verify = sub.add_parser(
        "verify", help="audit a saved PoC ledger as an independent third party"
    )
    verify.add_argument("ledger", help="ledger file (JSON lines of PoC receipts)")
    verify.add_argument("--edge-key", required=True, help="edge vendor's public key file")
    verify.add_argument("--operator-key", required=True, help="operator's public key file")
    verify.add_argument("--c", type=float, default=0.5, help="data plan's lost-data weight")
    verify.add_argument(
        "--cycle-seconds", type=float, default=3600.0, help="charging cycle length"
    )
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment names ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    run.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also export plot-ready CSV data into DIR",
    )
    run.add_argument(
        "--out-dir", metavar="DIR", default=str(DEFAULT_OUT_DIR),
        help=f"artifact + manifest directory (default: {DEFAULT_OUT_DIR})",
    )
    run.add_argument(
        "--no-manifest", action="store_true",
        help="print only; do not write artifacts or a run manifest",
    )
    add_engine_options(run)

    fleet = sub.add_parser(
        "fleet", help="population-scale sweep: N UEs sharded over the engine"
    )
    fleet.add_argument(
        "--ues", type=int, required=True, metavar="N",
        help="population size (number of simulated subscribers)",
    )
    fleet.add_argument(
        "--shard-size", type=int, default=8, metavar="K",
        help="UEs simulated together per shard (default: 8)",
    )
    fleet.add_argument("--seed", type=int, default=1, help="fleet seed (default: 1)")
    fleet.add_argument(
        "--cycles", type=int, default=2, metavar="N",
        help="charging cycles per UE (default: 2)",
    )
    fleet.add_argument(
        "--cycle-seconds", type=float, default=30.0, metavar="S",
        help="charging cycle length (default: 30)",
    )
    fleet.add_argument(
        "--zipf", type=float, default=1.1, metavar="S",
        help="Zipf popularity exponent over the archetype mix (default: 1.1)",
    )
    fleet.add_argument(
        "--mix", metavar="A,B,...", default=None,
        help="comma-separated workload archetypes in popularity order "
        "(default: the built-in five-archetype mix)",
    )
    fleet.add_argument(
        "--outage-eta", type=float, default=None, metavar="ETA",
        help="chaos profile: disconnectivity fraction applied to every UE "
        "(default: archetype radios stay outage-free)",
    )
    fleet.add_argument(
        "--handover-interval", type=float, default=None, metavar="S",
        help="chaos profile: mean seconds between handovers for every UE "
        "(default: no mobility)",
    )
    fleet.add_argument(
        "--handover-x2", action="store_true",
        help="forward buffered downlink over X2 during handovers",
    )
    fleet.add_argument(
        "--quota-bytes", type=int, default=None, metavar="B",
        help="chaos profile: PCRF quota after which every flow throttles "
        "(default: unthrottled plans)",
    )
    fleet.add_argument(
        "--per-ue-csv", metavar="FILE", default=None,
        help="stream one CSV row per UE to FILE while aggregating",
    )
    fleet.add_argument(
        "--accounting", action="store_true",
        help="also render the merged layer-by-layer accounting table",
    )
    fleet.add_argument(
        "--out-dir", metavar="DIR", default=str(DEFAULT_OUT_DIR),
        help=f"artifact + manifest directory (default: {DEFAULT_OUT_DIR})",
    )
    fleet.add_argument(
        "--no-manifest", action="store_true",
        help="print only; do not write artifacts or a run manifest",
    )
    fleet.add_argument(
        "--via-service", action="store_true",
        help="replay the fleet through the reconciliation service as "
        "claim traffic instead of the batch engine (same aggregate, "
        "bit for bit)",
    )
    add_engine_options(fleet)

    serve = sub.add_parser(
        "serve",
        help="run the charging-reconciliation service under a sustained "
        "fleet-replay load (simulated clock)",
    )
    serve.add_argument(
        "--ues", type=int, default=48, metavar="N",
        help="population replayed as claim traffic (default: 48)",
    )
    serve.add_argument(
        "--shard-size", type=int, default=8, metavar="K",
        help="UEs per shard claim (default: 8)",
    )
    serve.add_argument("--seed", type=int, default=1, help="fleet seed (default: 1)")
    serve.add_argument(
        "--cycles", type=int, default=2, metavar="N",
        help="charging cycles per UE (default: 2)",
    )
    serve.add_argument(
        "--cycle-seconds", type=float, default=30.0, metavar="S",
        help="charging cycle length (default: 30)",
    )
    serve.add_argument(
        "--zipf", type=float, default=1.1, metavar="S",
        help="Zipf popularity exponent over the archetype mix (default: 1.1)",
    )
    serve.add_argument(
        "--mix", metavar="A,B,...", default=None,
        help="comma-separated workload archetypes in popularity order",
    )
    serve.add_argument(
        "--duration", type=float, default=60.0, metavar="S",
        help="simulated seconds the claim arrivals are spread over "
        "(default: 60)",
    )
    serve.add_argument(
        "--vendors", type=int, default=4, metavar="N",
        help="distinct vendors submitting claims (default: 4)",
    )
    serve.add_argument(
        "--service-workers", type=int, default=2, metavar="N",
        help="settlement worker coroutines (default: 2)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="ingestion queue capacity before backpressure (default: 16)",
    )
    serve.add_argument(
        "--pool-workers", type=int, default=0, metavar="N",
        help="offload shard simulation to an N-process pool "
        "(default: 0 = settle inline)",
    )
    serve.add_argument(
        "--vendor-rate", type=float, default=8.0, metavar="HZ",
        help="token-bucket refill rate per vendor (default: 8/s)",
    )
    serve.add_argument(
        "--vendor-burst", type=float, default=16.0, metavar="N",
        help="token-bucket capacity per vendor (default: 16)",
    )
    serve.add_argument(
        "--ingest-fault-profile", metavar="NAME", default=None,
        help="degrade the ingestion path itself with a named fault "
        "profile (see repro.netsim.faults.FAULT_PROFILES)",
    )
    serve.add_argument(
        "--settlement", metavar="FILE", default=None,
        help="also stream the settlement ledger (JSON lines) to FILE",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="resume a killed run from the --settlement ledger's "
        "write-ahead journal instead of starting fresh",
    )
    serve.add_argument(
        "--assert-clean", action="store_true",
        help="exit 1 unless every claim settled and no worker crashed "
        "(the soak gate)",
    )
    serve.add_argument(
        "--out-dir", metavar="DIR", default=str(DEFAULT_OUT_DIR),
        help=f"artifact + manifest directory (default: {DEFAULT_OUT_DIR})",
    )
    serve.add_argument(
        "--no-manifest", action="store_true",
        help="print only; do not write artifacts or a run manifest",
    )
    add_engine_options(serve)

    obs = sub.add_parser(
        "obs", help="layer-by-layer byte/drop accounting of a cached run"
    )
    obs.add_argument(
        "run", nargs="?", default=None,
        help="cache-key prefix of a cached scenario, or a path to a "
        "cached-result/manifest JSON file",
    )
    obs.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="scenario cache to search (default: $REPRO_CACHE_DIR "
        "or benchmarks/.cache)",
    )
    obs.add_argument(
        "--list", action="store_true", dest="list_runs",
        help="list cached runs instead of rendering one",
    )

    baseline = sub.add_parser(
        "baseline", help="check or regenerate the golden figure baselines"
    )
    baseline.add_argument(
        "--path", metavar="FILE", default=str(DEFAULT_BASELINES),
        help=f"baselines file (default: {DEFAULT_BASELINES})",
    )
    baseline.add_argument(
        "--update", action="store_true",
        help="re-run every golden experiment and rewrite the baselines "
        "(default is to check against the recorded values)",
    )
    add_engine_options(baseline)
    return parser


def _configure_engine(args) -> None:
    """Apply --workers/--cache-dir/--no-cache on top of the env defaults."""
    import os

    workers = args.workers
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "0") or 0)
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    if args.no_cache:
        cache_dir = None
    fault_profile = (
        args.fault_profile or os.environ.get("REPRO_FAULT_PROFILE") or None
    )
    if args.kernel is not None:
        # Runners (including worker processes) resolve the kernel from
        # this env var at simulate time.
        os.environ["REPRO_SIM_KERNEL"] = args.kernel
    parallel.configure(
        workers=workers, cache_dir=cache_dir, fault_profile=fault_profile
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, experiment in EXPERIMENTS.items():
            print(f"{name:<{width}}  {experiment.description}")
        return 0

    if args.command == "verify":
        return _verify_ledger(args)

    if args.command == "obs":
        return _show_obs(args)

    try:
        _configure_engine(args)
    except ValueError as exc:  # e.g. an unknown --fault-profile name
        print(str(exc), file=sys.stderr)
        return 2
    if args.command == "fleet":
        return _run_fleet(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "report":
        return _write_report(Path(args.out))
    if args.command == "baseline":
        return _run_baselines(args)
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    csv_dir = Path(args.csv) if args.csv else None
    manifest: RunManifest | None = None
    if not args.no_manifest:
        manifest = RunManifest(
            name="run", out_dir=Path(args.out_dir),
            command="repro run " + " ".join(names),
        )
        manifest.record_engine(
            workers=parallel._default_workers,
            cache_dir=(
                str(parallel._default_cache.directory)
                if parallel._default_cache is not None else None
            ),
        )
    for name in names:
        experiment = EXPERIMENTS[name]
        started = time.time()
        print(f"=== {name} ===")
        result = experiment.run()
        rendered = experiment.render(result)
        print(rendered)
        if manifest is not None:
            manifest.write_text(name, rendered)
        if csv_dir is not None and experiment.to_csv is not None:
            experiment.to_csv(result, csv_dir)
            print(f"[csv -> {csv_dir}]")
        print(f"[{time.time() - started:.1f}s]\n")
    if manifest is not None:
        print(f"[manifest -> {manifest.save()}]")
    return 0


def _verify_ledger(args) -> int:
    """The auditor's path: load keys + ledger, run Algorithm 2 over all."""
    from ..core.plan import DataPlan
    from ..crypto.keyfiles import load_public_key
    from ..crypto.signing import SignatureError
    from ..poc.ledger import PocLedger
    from ..poc.messages import MessageError

    try:
        edge_key = load_public_key(args.edge_key)
        operator_key = load_public_key(args.operator_key)
    except (SignatureError, OSError) as exc:
        print(f"cannot load keys: {exc}", file=sys.stderr)
        return 2
    plan = DataPlan(c=args.c, cycle_duration_s=args.cycle_seconds)
    try:
        ledger = PocLedger.load(args.ledger, plan)
    except (ValueError, MessageError, OSError) as exc:
        print(f"ledger rejected: {exc}", file=sys.stderr)
        return 1
    report = ledger.audit(edge_key, operator_key)
    print(f"receipts checked : {report.entries_checked}")
    print(f"verified volume  : {report.total_volume:,} bytes")
    if report.ok:
        print("audit            : OK — every receipt verifies (Algorithm 2)")
        return 0
    print("audit            : FAILED")
    for cycle_index, failure in report.failures:
        print(f"  cycle {cycle_index}: {failure.value}")
    return 1


def _run_fleet(args) -> int:
    """The ``repro fleet`` subcommand: sharded population sweep."""
    import csv

    from .fleet import FleetConfig, run_fleet
    from .runner import SCHEMES

    mix_kwargs = {}
    if args.mix:
        mix_kwargs["mix"] = tuple(
            name.strip() for name in args.mix.split(",") if name.strip()
        )
    try:
        fleet_config = FleetConfig(
            ues=args.ues,
            shard_size=args.shard_size,
            seed=args.seed,
            n_cycles=args.cycles,
            cycle_duration_s=args.cycle_seconds,
            zipf_s=args.zipf,
            outage_eta=args.outage_eta,
            handover_interval_s=args.handover_interval,
            handover_x2=args.handover_x2,
            quota_bytes=args.quota_bytes,
            fault_profile=args.fault_profile or None,
            **mix_kwargs,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.via_service and args.per_ue_csv:
        # The service streams per-UE rows into its settlement ledger
        # instead; use `repro serve --settlement` for that view.
        print("--via-service does not support --per-ue-csv", file=sys.stderr)
        return 2

    csv_file = None
    writer = None
    ue_sink = None
    if args.per_ue_csv:
        csv_path = Path(args.per_ue_csv)
        csv_path.parent.mkdir(parents=True, exist_ok=True)
        csv_file = csv_path.open("w", newline="")
        writer = csv.writer(csv_file)
        writer.writerow(
            ["ue", "archetype", "flow_id", "cycles", "bitrate_bps"]
            + [f"gap_mb_hr_{s}" for s in SCHEMES]
            + [f"epsilon_{s}" for s in SCHEMES]
            + [f"rounds_{s}" for s in SCHEMES]
        )

        def ue_sink(row: dict) -> None:
            writer.writerow(
                [row["index"], row["archetype"], row["flow_id"],
                 row["cycles"], row["bitrate_bps"]]
                + [row["mean_gap_mb_hr"].get(s, "") for s in SCHEMES]
                + [row["mean_epsilon"].get(s, "") for s in SCHEMES]
                + [row["mean_rounds"].get(s, "") for s in SCHEMES]
            )

    started = time.time()
    report = parallel.RunReport()
    if args.via_service:
        from ..service import replay_fleet

        result, stats, service = replay_fleet(
            fleet_config, disk_cache=parallel._default_cache
        )
        if result is None:
            print(
                f"service replay dropped {stats.dropped} claims",
                file=sys.stderr,
            )
            return 1
        report = service.report
    else:
        try:
            result = run_fleet(fleet_config, report=report, ue_sink=ue_sink)
        finally:
            if csv_file is not None:
                csv_file.close()
    rendered = result.render()
    print(rendered)
    if args.via_service:
        print(
            f"[service: {stats.accepted} claims accepted, "
            f"{stats.retries} retries, {report.simulated} simulated, "
            f"{report.cached} cached]"
        )
    if args.per_ue_csv:
        print(f"[per-UE csv -> {args.per_ue_csv}]")
    if args.accounting:
        print()
        print(render_accounting(result.metrics, title=f"fleet of {result.population}"))
    try:
        import resource

        maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        print(f"[{time.time() - started:.1f}s, peak rss {maxrss_kb / 1024:.0f} MiB]")
    except ImportError:  # pragma: no cover - non-POSIX platform
        print(f"[{time.time() - started:.1f}s]")
    if not args.no_manifest:
        manifest = RunManifest(
            name="fleet", out_dir=Path(args.out_dir),
            command=f"repro fleet --ues {args.ues}",
        )
        manifest.record_engine(
            workers=parallel._default_workers,
            cache_dir=(
                str(parallel._default_cache.directory)
                if parallel._default_cache is not None else None
            ),
            shards_simulated=report.simulated,
            shards_cached=report.cached,
        )
        manifest.write_text("fleet", rendered)
        manifest.write_text(
            "fleet-aggregate", json.dumps(result.to_dict(), indent=2, sort_keys=True)
        )
        manifest.attach_metrics(result.metrics)
        print(f"[manifest -> {manifest.save()}]")
    return 0


def _run_serve(args) -> int:
    """The ``repro serve`` subcommand: service soak under fleet replay."""
    from ..netsim.faults import FAULT_PROFILES
    from ..service import (
        ReplayConfig,
        ServiceConfig,
        SettlementLedger,
        replay_fleet,
        resume_fleet_replay,
    )
    from .fleet import FleetConfig

    mix_kwargs = {}
    if args.mix:
        mix_kwargs["mix"] = tuple(
            name.strip() for name in args.mix.split(",") if name.strip()
        )
    ingest_faults = None
    if args.ingest_fault_profile:
        ingest_faults = FAULT_PROFILES.get(args.ingest_fault_profile)
        if ingest_faults is None:
            print(
                f"unknown fault profile {args.ingest_fault_profile!r} "
                f"(known: {', '.join(sorted(FAULT_PROFILES))})",
                file=sys.stderr,
            )
            return 2
    try:
        fleet_config = FleetConfig(
            ues=args.ues,
            shard_size=args.shard_size,
            seed=args.seed,
            n_cycles=args.cycles,
            cycle_duration_s=args.cycle_seconds,
            zipf_s=args.zipf,
            **mix_kwargs,
        )
        replay_config = ReplayConfig(
            duration_s=args.duration,
            vendors=args.vendors,
            ingest_faults=ingest_faults,
        )
        service_config = ServiceConfig(
            workers=args.service_workers,
            queue_depth=args.queue_depth,
            vendor_rate_hz=args.vendor_rate,
            vendor_burst=args.vendor_burst,
            pool_workers=args.pool_workers,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.resume and not args.settlement:
        print("--resume needs --settlement FILE (the journal to replay)",
              file=sys.stderr)
        return 2

    started = time.time()
    if args.resume:
        result, stats, service = resume_fleet_replay(
            fleet_config,
            Path(args.settlement),
            replay=replay_config,
            service_config=service_config,
            disk_cache=parallel._default_cache,
        )
    else:
        ledger = None
        if args.settlement:
            settlement_path = Path(args.settlement)
            settlement_path.parent.mkdir(parents=True, exist_ok=True)
            ledger = SettlementLedger(settlement_path)
        result, stats, service = replay_fleet(
            fleet_config,
            replay=replay_config,
            service_config=service_config,
            disk_cache=parallel._default_cache,
            ledger=ledger,
        )
    crashed = service.crashed_workers()
    rejected = ", ".join(
        f"{reason}={count}" for reason, count in sorted(service.rejections.items())
    )
    print(f"claims submitted : {stats.submitted}")
    print(f"claims accepted  : {stats.accepted}")
    print(f"client retries   : {stats.retries}")
    print(f"recovery waves   : {stats.waves}")
    print(f"ingest faults    : lost={stats.lost} corrupted={stats.corrupted} "
          f"duplicated={stats.duplicated}")
    print(f"rejections       : {rejected or 'none'}")
    print(f"shards settled   : {service.report.simulated} simulated, "
          f"{service.report.cached} cached")
    print(f"cache            : {service.cache.hits_memory} memory hits, "
          f"{service.cache.hits_disk} disk hits, {service.cache.misses} misses, "
          f"{service.cache.spilled} spilled")
    print(f"dropped claims   : {stats.dropped}")
    print(f"crashed workers  : {len(crashed)}")
    snapshot = service.metrics.snapshot()
    for kind in ("shard", "poc", "probe"):
        key = f"service.latency{{kind={kind}}}"
        hist = snapshot.histograms.get(key)
        if hist and hist["count"]:
            pct = snapshot.percentiles(key)
            print(f"latency ({kind})  : p50={pct['p50']:.3f}s "
                  f"p95={pct['p95']:.3f}s p99={pct['p99']:.3f}s "
                  f"over {hist['count']} settlements (simulated time)")
    if result is not None:
        print()
        print(result.render())
    if args.settlement:
        print(f"[settlement -> {args.settlement}]")
    print(f"[{time.time() - started:.1f}s wall, "
          f"{service.loop.now():.1f}s simulated]")

    if not args.no_manifest:
        manifest = RunManifest(
            name="serve", out_dir=Path(args.out_dir),
            command=f"repro serve --ues {args.ues} --duration {args.duration}",
        )
        manifest.record_engine(
            workers=parallel._default_workers,
            cache_dir=(
                str(parallel._default_cache.directory)
                if parallel._default_cache is not None else None
            ),
            service_workers=args.service_workers,
            pool_workers=args.pool_workers,
            resumed=bool(args.resume),
            claims_submitted=stats.submitted,
            claims_accepted=stats.accepted,
            claims_dropped=stats.dropped,
            crashed_workers=len(crashed),
        )
        manifest.write_text("settlement", service.ledger.text())
        if result is not None:
            manifest.write_text("serve", result.render())
            manifest.write_text(
                "serve-aggregate",
                json.dumps(result.to_dict(), indent=2, sort_keys=True),
            )
        manifest.attach_metrics(service.metrics.snapshot())
        print(f"[manifest -> {manifest.save()}]")

    if args.assert_clean and (stats.dropped or crashed):
        print(
            f"soak gate failed: {stats.dropped} dropped claims, "
            f"{len(crashed)} crashed workers",
            file=sys.stderr,
        )
        return 1
    return 0


def _write_report(path: Path) -> int:
    """Run every experiment and assemble a single markdown report."""
    sections = [
        "# TLC reproduction report",
        "",
        "Auto-generated by `python -m repro report`: every table and figure",
        "of the paper's evaluation, regenerated on this machine.  Compare",
        "against the paper-vs-measured bands in EXPERIMENTS.md.",
        "",
    ]
    manifest = RunManifest(
        name="report", out_dir=DEFAULT_OUT_DIR, command=f"repro report --out {path}"
    )
    for name, experiment in EXPERIMENTS.items():
        started = time.time()
        print(f"running {name} ...", flush=True)
        rendered = experiment.render(experiment.run())
        manifest.write_text(name, rendered)
        sections.append(f"## {name} — {experiment.description}")
        sections.append("")
        sections.append("```")
        sections.append(rendered)
        sections.append("```")
        sections.append(f"*({time.time() - started:.1f}s)*")
        sections.append("")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(sections))
    manifest.save()
    print(f"report written to {path} (manifest: {manifest.path})")
    return 0


# -------------------------------------------------------- obs / baselines


def _default_cache_dir(override: str | None) -> Path:
    import os

    if override:
        return Path(override)
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path("benchmarks") / ".cache"


def _snapshot_from_file(path: Path) -> tuple[MetricsSnapshot, str]:
    """Metrics + display title from a cached result or a manifest JSON.

    Both file kinds carry a ``"metrics"`` section in the same encoding;
    cached results additionally know their scenario name.
    """
    data = json.loads(path.read_text())
    snapshot = MetricsSnapshot.from_dict(data.get("metrics", {}))
    title = path.name
    config = data.get("config")
    if isinstance(config, dict) and "name" in config:
        title = f"{config['name']} ({path.stem[:12]})"
    elif "name" in data:
        title = f"{data['name']} manifest"
    return snapshot, title


def _show_obs(args) -> int:
    """The ``repro obs`` subcommand: render per-layer accounting."""
    cache_dir = _default_cache_dir(args.cache_dir)
    if args.list_runs:
        entries = sorted(cache_dir.glob("*.json")) if cache_dir.is_dir() else []
        if not entries:
            print(f"no cached runs under {cache_dir}")
            return 0
        for entry in entries:
            try:
                data = json.loads(entry.read_text())
            except (OSError, ValueError):
                continue
            name = (data.get("config") or {}).get("name", "?")
            has_metrics = "yes" if data.get("metrics") else "no"
            print(f"{entry.stem[:16]}  {name:<24} metrics={has_metrics}")
        return 0
    if args.run is None:
        print("repro obs: give a cache-key prefix or a JSON path "
              "(or --list)", file=sys.stderr)
        return 2

    as_path = Path(args.run)
    if as_path.is_file():
        path = as_path
    else:
        matches = (
            sorted(cache_dir.glob(f"{args.run}*.json"))
            if cache_dir.is_dir() else []
        )
        if not matches:
            print(
                f"no cached run matching {args.run!r} under {cache_dir} "
                "(try: repro obs --list)",
                file=sys.stderr,
            )
            return 1
        if len(matches) > 1:
            print(
                f"ambiguous prefix {args.run!r}: "
                + ", ".join(m.stem[:16] for m in matches[:8]),
                file=sys.stderr,
            )
            return 1
        path = matches[0]
    try:
        snapshot, title = _snapshot_from_file(path)
    except (OSError, ValueError) as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return 1
    print(render_accounting(snapshot, title=title))
    return 0


def _run_baselines(args) -> int:
    """The ``repro baseline`` subcommand: golden-figure gate / regenerate."""
    from ..obs import load_baselines, save_baselines
    from .goldens import build_baselines, check_all

    path = Path(args.path)
    if args.update:
        baselines = build_baselines()
        save_baselines(path, baselines, generator="repro baseline --update")
        print(f"{len(baselines)} baselines written to {path}")
        return 0
    try:
        baselines = load_baselines(path)
    except (OSError, ValueError) as exc:
        print(f"cannot load baselines from {path}: {exc}", file=sys.stderr)
        return 2
    checks = check_all(baselines)
    drifted = [c for c in checks if not c.ok]
    for check in checks:
        print(check.describe())
    print(f"\n{len(checks) - len(drifted)}/{len(checks)} within tolerance")
    return 1 if drifted else 0
