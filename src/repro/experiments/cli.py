"""Command-line interface: regenerate the paper's evaluation.

``python -m repro list`` shows the available experiments;
``python -m repro run figure3 table2 ...`` regenerates them (or ``all``),
and ``--csv DIR`` additionally exports plot-ready CSV data.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from . import export, figures, parallel


@dataclass(frozen=True)
class Experiment:
    """One reproducible evaluation artifact."""

    description: str
    run: Callable[[], object]
    render: Callable[[object], str]
    to_csv: Callable[[object, Path], None] | None = None


def _table_csv(name: str):
    def write(result, directory: Path) -> None:
        export.export_table(result, directory / f"{name}.csv")

    return write


EXPERIMENTS: dict[str, Experiment] = {
    "figure3": Experiment(
        "gap vs congestion (MB/hr)", figures.figure3,
        lambda r: r.render(), _table_csv("figure3"),
    ),
    "figure4": Experiment(
        "intermittent-connectivity time series", figures.figure4,
        lambda r: r.render(),
        lambda r, d: export.export_figure4(r, d / "figure4.csv"),
    ),
    "figure12": Experiment(
        "gap CDFs per scheme", figures.figure12,
        lambda r: r.render(),
        lambda r, d: export.export_cdfs(r, d),
    ),
    "table2": Experiment(
        "average charging gap", figures.table2,
        lambda r: r.render(), _table_csv("table2"),
    ),
    "figure13": Experiment(
        "gap ratio vs congestion", figures.figure13,
        lambda r: r.render(), _table_csv("figure13"),
    ),
    "figure14": Experiment(
        "gap ratio vs disconnectivity η", figures.figure14,
        lambda r: r.render(), _table_csv("figure14"),
    ),
    "figure15": Experiment(
        "charge reduction vs plan c", figures.figure15,
        figures.render_figure15,
        lambda r, d: export.export_curves(r, d / "figure15.csv", "mu_percent"),
    ),
    "figure16a": Experiment(
        "in-cycle RTT with/without TLC", figures.figure16a,
        lambda r: r.render(), _table_csv("figure16a"),
    ),
    "figure16b": Experiment(
        "negotiation rounds", figures.figure16b,
        lambda r: r.render(), _table_csv("figure16b"),
    ),
    "figure17": Experiment(
        "PoC negotiation/verification cost", figures.figure17,
        lambda r: r.render(), _table_csv("figure17"),
    ),
    "figure18": Experiment(
        "charging-record accuracy", figures.figure18,
        lambda r: r.render(), _table_csv("figure18"),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TLC (SIGCOMM'19) reproduction: regenerate evaluation figures/tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    def add_engine_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="simulate scenarios on N worker processes "
            "(default: $REPRO_WORKERS or serial)",
        )
        p.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="content-addressed scenario result cache "
            "(default: $REPRO_CACHE_DIR or no cache)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="disable the scenario result cache for this invocation",
        )
        p.add_argument(
            "--fault-profile", metavar="NAME", default=None,
            help="run every scenario under a named deterministic fault "
            "schedule (see repro.netsim.faults.FAULT_PROFILES; "
            "default: $REPRO_FAULT_PROFILE or none)",
        )

    report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument(
        "--out", metavar="FILE", default="REPORT.md",
        help="report path (default: REPORT.md)",
    )
    add_engine_options(report)
    verify = sub.add_parser(
        "verify", help="audit a saved PoC ledger as an independent third party"
    )
    verify.add_argument("ledger", help="ledger file (JSON lines of PoC receipts)")
    verify.add_argument("--edge-key", required=True, help="edge vendor's public key file")
    verify.add_argument("--operator-key", required=True, help="operator's public key file")
    verify.add_argument("--c", type=float, default=0.5, help="data plan's lost-data weight")
    verify.add_argument(
        "--cycle-seconds", type=float, default=3600.0, help="charging cycle length"
    )
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment names ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    run.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also export plot-ready CSV data into DIR",
    )
    add_engine_options(run)
    return parser


def _configure_engine(args) -> None:
    """Apply --workers/--cache-dir/--no-cache on top of the env defaults."""
    import os

    workers = args.workers
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "0") or 0)
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    if args.no_cache:
        cache_dir = None
    fault_profile = (
        args.fault_profile or os.environ.get("REPRO_FAULT_PROFILE") or None
    )
    parallel.configure(
        workers=workers, cache_dir=cache_dir, fault_profile=fault_profile
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, experiment in EXPERIMENTS.items():
            print(f"{name:<{width}}  {experiment.description}")
        return 0

    if args.command == "verify":
        return _verify_ledger(args)

    try:
        _configure_engine(args)
    except ValueError as exc:  # e.g. an unknown --fault-profile name
        print(str(exc), file=sys.stderr)
        return 2
    if args.command == "report":
        return _write_report(Path(args.out))
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    csv_dir = Path(args.csv) if args.csv else None
    for name in names:
        experiment = EXPERIMENTS[name]
        started = time.time()
        print(f"=== {name} ===")
        result = experiment.run()
        print(experiment.render(result))
        if csv_dir is not None and experiment.to_csv is not None:
            experiment.to_csv(result, csv_dir)
            print(f"[csv -> {csv_dir}]")
        print(f"[{time.time() - started:.1f}s]\n")
    return 0


def _verify_ledger(args) -> int:
    """The auditor's path: load keys + ledger, run Algorithm 2 over all."""
    from ..core.plan import DataPlan
    from ..crypto.keyfiles import load_public_key
    from ..crypto.signing import SignatureError
    from ..poc.ledger import PocLedger
    from ..poc.messages import MessageError

    try:
        edge_key = load_public_key(args.edge_key)
        operator_key = load_public_key(args.operator_key)
    except (SignatureError, OSError) as exc:
        print(f"cannot load keys: {exc}", file=sys.stderr)
        return 2
    plan = DataPlan(c=args.c, cycle_duration_s=args.cycle_seconds)
    try:
        ledger = PocLedger.load(args.ledger, plan)
    except (ValueError, MessageError, OSError) as exc:
        print(f"ledger rejected: {exc}", file=sys.stderr)
        return 1
    report = ledger.audit(edge_key, operator_key)
    print(f"receipts checked : {report.entries_checked}")
    print(f"verified volume  : {report.total_volume:,} bytes")
    if report.ok:
        print("audit            : OK — every receipt verifies (Algorithm 2)")
        return 0
    print("audit            : FAILED")
    for cycle_index, failure in report.failures:
        print(f"  cycle {cycle_index}: {failure.value}")
    return 1


def _write_report(path: Path) -> int:
    """Run every experiment and assemble a single markdown report."""
    sections = [
        "# TLC reproduction report",
        "",
        "Auto-generated by `python -m repro report`: every table and figure",
        "of the paper's evaluation, regenerated on this machine.  Compare",
        "against the paper-vs-measured bands in EXPERIMENTS.md.",
        "",
    ]
    for name, experiment in EXPERIMENTS.items():
        started = time.time()
        print(f"running {name} ...", flush=True)
        rendered = experiment.render(experiment.run())
        sections.append(f"## {name} — {experiment.description}")
        sections.append("")
        sections.append("```")
        sections.append(rendered)
        sections.append("```")
        sections.append(f"*({time.time() - started:.1f}s)*")
        sections.append("")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(sections))
    print(f"report written to {path}")
    return 0
