"""Golden-run registry: the quantities ``benchmarks/baselines.json`` gates.

One :class:`GoldenRun` per evaluation artifact, with kwargs that mirror
the benchmark harness exactly, so the golden regression suite re-checks
the very numbers EXPERIMENTS.md reports.  The generic band-check
machinery lives in :mod:`repro.obs.baselines`; this module is the
experiment-specific part — which experiments to run and which scalars in
their results are load-bearing.

Because every experiment is deterministic given its seed, the tolerance
policy guards against *code* drift, not run-to-run noise: a change that
moves a figure by more than ``rel_tol`` (default 10 %) plus a small
unit floor fails the gate and must either be fixed or explicitly
re-baselined with ``python -m repro baseline --update``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..obs import Baseline, BaselineCheck, check_baseline, extract_quantity
from . import figures

#: Tolerance policy: band = rel_tol·|expected| + max(floor, 2 %·|expected|).
REL_TOL = 0.10
ABS_FRACTION = 0.02


@dataclass(frozen=True)
class GoldenRun:
    """One experiment invocation, with the benchmark harness's kwargs."""

    fn: Callable[..., object]
    kwargs: dict = field(default_factory=dict, hash=False)

    def execute(self) -> object:
        return self.fn(**self.kwargs)


GOLDEN_RUNS: dict[str, GoldenRun] = {
    "figure3": GoldenRun(figures.figure3, {"n_cycles": 4}),
    "figure4": GoldenRun(figures.figure4, {"duration_s": 300.0}),
    "figure12": GoldenRun(figures.figure12, {"n_cycles": 4}),
    "figure13": GoldenRun(figures.figure13, {"n_cycles": 3}),
    "figure14": GoldenRun(figures.figure14, {"n_cycles": 4}),
    "figure15": GoldenRun(figures.figure15, {"n_cycles": 3}),
    "figure16a": GoldenRun(figures.figure16a, {"pings": 150}),
    "figure16b": GoldenRun(figures.figure16b, {"n_cycles": 4}),
    "figure17": GoldenRun(figures.figure17, {"samples": 40}),
    "figure18": GoldenRun(figures.figure18, {"n_cycles": 16}),
    "table2": GoldenRun(figures.table2, {"n_cycles": 4}),
}


@dataclass(frozen=True)
class QuantitySpec:
    """Where one golden scalar lives and its unit floor."""

    id: str
    experiment: str
    select: dict = field(hash=False)
    unit: str = ""
    floor: float = 0.0
    note: str = ""


def _table(id: str, experiment: str, row: str, col: str, unit: str,
           floor: float, row2: str | None = None, note: str = "") -> QuantitySpec:
    select: dict = {"kind": "table", "row": row, "col": col}
    if row2 is not None:
        select["row2"] = row2
    return QuantitySpec(id, experiment, select, unit, floor, note)


_APPS = ("webcam-rtsp-ul", "webcam-udp-ul", "vridge-gvsp-dl", "gaming-qci7-dl")
_FIG3_APPS = _APPS[:3]


def _quantities() -> list[QuantitySpec]:
    specs: list[QuantitySpec] = []
    # Figure 3: raw gap at no congestion and at the heaviest level.
    for app in _FIG3_APPS:
        for col in ("0Mbps", "160Mbps"):
            specs.append(_table(
                f"figure3.{app}.{col}", "figure3", app, col, "MB/hr", 0.5,
                note="raw gateway-vs-edge gap (§3.2)",
            ))
    # Figure 4: the two summary scalars the paper quotes.
    specs.append(QuantitySpec(
        "figure4.mean_outage_s", "figure4",
        {"kind": "attr", "name": "mean_outage_s"}, "s", 0.3,
        note="paper: 1.93 s mean outage",
    ))
    specs.append(QuantitySpec(
        "figure4.total_gap_mb", "figure4",
        {"kind": "attr", "name": "total_gap_mb"}, "MB", 0.5,
        note="paper: 10.6 MB gap in 300 s",
    ))
    # Figure 12: per-app gap-CDF medians, legacy vs TLC-optimal.
    for app in _APPS:
        for scheme in ("legacy", "tlc-optimal"):
            specs.append(QuantitySpec(
                f"figure12.{app}.{scheme}.median", "figure12",
                {"kind": "cdf", "app": app, "scheme": scheme, "stat": "median"},
                "MB/hr", 0.5,
            ))
    # Table 2: bitrate and the two headline gaps per app.
    for app in _APPS:
        specs.append(_table(
            f"table2.{app}.bitrate", "table2", app, "bitrate(Mbps)", "Mbps", 0.2,
        ))
        specs.append(_table(
            f"table2.{app}.legacy_delta", "table2", app, "legacy Δ(MB/hr)",
            "MB/hr", 0.5,
        ))
        specs.append(_table(
            f"table2.{app}.optimal_delta", "table2", app, "optimal Δ", "MB/hr", 0.5,
        ))
    # Figure 13: gap ratio at the heaviest congestion, legacy vs optimal.
    for app in _APPS:
        for scheme in ("legacy", "tlc-optimal"):
            specs.append(_table(
                f"figure13.{app}.{scheme}.160Mbps", "figure13", app, "160Mbps",
                "%", 0.5, row2=scheme,
            ))
    # Figure 14: gap ratio at the sweep's end points.
    for scheme in ("legacy", "tlc-optimal"):
        for eta in ("η=5%", "η=15%"):
            specs.append(_table(
                f"figure14.{scheme}.{eta}", "figure14", scheme, eta, "%", 0.5,
            ))
    # Figure 15: charge-reduction medians across the plan-weight sweep.
    for c in ("0.0", "0.5", "1.0"):
        specs.append(QuantitySpec(
            f"figure15.c{c}.median", "figure15",
            {"kind": "curve", "key": c, "stat": "median"}, "%", 1.0,
            note="μ collapses to ~0 at c=1",
        ))
    # Figure 16a: in-cycle RTT with TLC enabled, per device.
    for device in ("HPE EL20", "Pixel 2 XL", "S7 Edge"):
        specs.append(_table(
            f"figure16a.{device}.with_tlc", "figure16a", device, "w/ TLC", "ms", 1.0,
        ))
    # Figure 16b: negotiation rounds per app, both TLC strategies.
    for app in _APPS:
        for col in ("TLC-random", "TLC-optimal"):
            specs.append(_table(
                f"figure16b.{app}.{col}", "figure16b", app, col, "rounds", 0.3,
            ))
    # Figure 17: negotiation cost per device profile.
    for device in ("HPE EL20", "Pixel 2 XL", "S7 Edge", "HP Z840"):
        specs.append(_table(
            f"figure17.{device}.negotiate_ms", "figure17", device,
            "negotiate(ms)", "ms", 2.0,
        ))
    # Figure 18: mean record-error of both tamper-resilient records.
    specs.append(_table(
        "figure18.operator_gamma.mean", "figure18", "operator γo (RRC)",
        "mean", "%", 0.3,
    ))
    specs.append(_table(
        "figure18.edge_gamma.mean", "figure18", "edge γe (server)",
        "mean", "%", 0.3,
    ))
    return specs


QUANTITIES: tuple[QuantitySpec, ...] = tuple(_quantities())


class GoldenRunner:
    """Executes golden runs at most once each (results are memoized)."""

    def __init__(self) -> None:
        self._results: dict[str, object] = {}

    def result(self, experiment: str) -> object:
        if experiment not in self._results:
            self._results[experiment] = GOLDEN_RUNS[experiment].execute()
        return self._results[experiment]

    def measure(self, experiment: str, select: dict) -> float:
        return extract_quantity(self.result(experiment), select)


def build_baselines(runner: GoldenRunner | None = None) -> list[Baseline]:
    """Run every golden experiment and record the measured values."""
    runner = runner if runner is not None else GoldenRunner()
    baselines = []
    for spec in QUANTITIES:
        measured = runner.measure(spec.experiment, spec.select)
        baselines.append(Baseline(
            id=spec.id,
            experiment=spec.experiment,
            select=spec.select,
            expected=round(float(measured), 6),
            rel_tol=REL_TOL,
            abs_tol=max(spec.floor, ABS_FRACTION * abs(measured)),
            unit=spec.unit,
            note=spec.note,
        ))
    return baselines


def check_all(
    baselines: list[Baseline], runner: GoldenRunner | None = None
) -> list[BaselineCheck]:
    """Re-run the experiments and compare every quantity to its record."""
    runner = runner if runner is not None else GoldenRunner()
    return [
        check_baseline(runner.measure(b.experiment, b.select), b)
        for b in baselines
    ]
