"""Multi-UE shard simulation: many subscribers, one network, one loop.

A fleet shard is a batch of UEs simulated together on a single
:class:`~repro.netsim.events.EventLoop` and one
:class:`~repro.cellular.CellularNetwork` — one SPGW/OFCS/bearer table
serving every bearer, which is exactly the many-bearers-per-gateway shape
a production deployment has.  Each UE gets its *own cell* (the paper's
per-subscriber charging physics is per-radio-link; cross-UE air
contention is a different experiment, available via the fleet config's
``background_mbps``), its own device/server endpoints, monitors, and
workload.

Determinism contract:

* everything *per-UE* (workload frames, cycle clock skews, negotiation
  claims, fault schedule draws) is drawn from a registry seeded by the
  UE's fleet-wide seed, so a UE's traffic does not depend on which shard
  it landed in or which UEs share the shard;
* everything *shared* (radio processes keyed by IMSI, per-cell air
  noise) comes from the shard registry, so a shard's result is a pure
  function of its :class:`~repro.experiments.fleet.FleetShard` spec.

Shard results are compact per-UE summaries plus one mergeable
:class:`~repro.obs.MetricsSnapshot` — O(shard), never O(usages) — which
is what lets the fleet engine stream-aggregate arbitrarily large
populations.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..cellular import (
    CellularNetwork,
    ENodeBConfig,
    HandoverConfig,
    HandoverProcess,
    NetworkConfig,
    QuotaPolicy,
    make_test_imsi,
)
from ..core import CycleUsage, DataPlan, SchemeOutcome
from ..edge import CounterCheckMonitor, EdgeDevice, EdgeServer
from ..kernel import SETTLE_S, build_session_lane, resolve_kernel, run_lane
from ..netsim import Direction, EventLoop, FaultInjector, StreamRegistry
from ..obs import MetricsRegistry, MetricsSnapshot
from ..workloads import FrameWorkload
from .runner import SCHEMES, evaluate_schemes
from .scenarios import ScenarioConfig

#: Fixed bucket edges for the fleet's per-UE mean-gap histogram (MB/hr).
#: Fixed so shard snapshots merge bit-deterministically regardless of the
#: population's gap spread.
GAP_EDGES_MB_HR = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)

#: TLC schemes negotiate; legacy does not, so convergence is undefined for it.
NEGOTIATED_SCHEMES = tuple(s for s in SCHEMES if s != "legacy")


@dataclass
class UeSummary:
    """One UE's charging outcome, reduced to O(1) aggregation inputs."""

    ue_index: int
    archetype: str
    flow_id: str
    cycles: int
    offered_bitrate_bps: float
    mean_gap_mb_hr: dict[str, float] = field(default_factory=dict)
    mean_epsilon: dict[str, float] = field(default_factory=dict)
    mean_rounds: dict[str, float] = field(default_factory=dict)
    converged_cycles: dict[str, int] = field(default_factory=dict)


@dataclass
class FleetShardResult:
    """Everything a shard ships back to the aggregator."""

    shard_index: int
    ues: list[UeSummary]
    metrics: MetricsSnapshot


class _UeSession:
    """One subscriber's full stack inside a shard simulation."""

    def __init__(
        self,
        loop: EventLoop,
        network: CellularNetwork,
        metrics: MetricsRegistry,
        ue_index: int,
        archetype: str,
        config: ScenarioConfig,
        seed: int,
        cell: int,
    ) -> None:
        self.ue_index = ue_index
        self.archetype = archetype
        self.config = config
        self.cell = cell
        self.loop = loop
        self.network = network
        self.metrics = metrics
        # Per-UE randomness: a registry seeded only by the UE's fleet-wide
        # seed, so the session's draws are shard-composition independent.
        self.rng = StreamRegistry(seed)
        self.plan = DataPlan(c=config.c, cycle_duration_s=config.cycle_duration_s)
        imsi = make_test_imsi(ue_index + 1)
        self.imsi = imsi
        self.flow_id = f"{config.workload.name}:ue{ue_index}"
        self.counter_monitor = CounterCheckMonitor(loop, name=f"operator-rrc:ue{ue_index}")
        self.device = EdgeDevice(loop, imsi, self.flow_id)
        access = network.attach_device(
            imsi,
            radio_profile=self._radio_profile(),
            deliver=self.device.deliver,
            counter_report_sink=self.counter_monitor.on_report,
            record_rss=config.outage_eta is not None,
            cell=cell,
        )
        self.device.bind(access)
        self.access = access
        network.create_bearer(imsi, self.flow_id, qci=config.workload.qci)
        if config.quota_bytes is not None:
            network.pcrf.set_quota(
                self.flow_id,
                QuotaPolicy(config.quota_bytes, throttle_bps=config.quota_throttle_bps),
            )
        self.server = EdgeServer(loop, network, self.flow_id)
        # Link-layer mobility rides the *shard* registry (like the radio
        # processes): a shared process keyed by IMSI, per the determinism
        # contract above.
        self.handover: HandoverProcess | None = None
        if config.handover_interval_s is not None:
            ue = network.serving_enodeb(str(imsi)).ue(str(imsi))
            self.handover = HandoverProcess(
                loop,
                network.rng,
                ue,
                HandoverConfig(
                    interval_s=config.handover_interval_s,
                    interruption_s=config.handover_interruption_s,
                    x2_forwarding=config.handover_x2,
                ),
            )
            self.handover.start()
        if config.sla_budget_s is not None:
            network.set_sla_budget(self.flow_id, config.sla_budget_s)
        sender = self.device if config.direction is Direction.UPLINK else self.server
        self.workload = FrameWorkload(loop, self.rng, config.workload, sender)
        self.fault_injector: FaultInjector | None = None
        if config.faults is not None and not config.faults.is_empty:
            injector = FaultInjector(loop, self.rng, config.faults, metrics=metrics)
            access.send_uplink = injector.pipe("uplink", access.send_uplink)
            ue = network.serving_enodeb(str(imsi)).ue(str(imsi))
            ue.deliver = injector.pipe("downlink", ue.deliver)
            injector.attach_modem(access.modem, point="modem")
            self.fault_injector = injector

    def _radio_profile(self):
        from ..cellular import RadioProfile

        config = self.config
        if config.outage_eta is not None:
            return RadioProfile.for_disconnectivity(
                config.outage_eta,
                mean_outage_s=config.mean_outage_s,
                base_loss=config.base_loss,
            )
        return RadioProfile(base_loss=config.base_loss)

    # ----------------------------------------------------------- extraction

    def _cycle_usage(self, t1: float, t2: float, edge_skew: float, op_skew: float) -> CycleUsage:
        config = self.config
        direction = config.direction
        for monitor in (
            self.device.ul_monitor,
            self.device.dl_monitor,
            self.server.ul_monitor,
            self.server.dl_monitor,
        ):
            monitor.set_skew(edge_skew)
        self.counter_monitor.set_skew(op_skew)

        gateway = self.network.gateway_usage(self.flow_id, t1, t2, direction)
        if direction is Direction.UPLINK:
            true_sent = self.device.ul_monitor.true_usage(t1, t2)
            true_received = min(gateway, true_sent)
            edge_sent = self.device.ul_monitor.reported_usage(t1, t2)
            edge_received_est = self.server.ul_monitor.reported_usage(t1, t2)
            operator_received = gateway
            operator_sent_est = self.counter_monitor.reported_uplink_usage(t1, t2)
        else:
            true_sent = self.server.dl_monitor.true_usage(t1, t2)
            true_received = min(self.device.dl_monitor.true_usage(t1, t2), true_sent)
            edge_sent = self.server.dl_monitor.reported_usage(t1, t2)
            edge_received_est = self.device.dl_monitor.reported_usage(t1, t2)
            operator_received = self.counter_monitor.reported_usage(t1, t2)
            operator_sent_est = gateway

        cycles = self.plan.cycles(config.n_cycles)
        index = int(round(t1 / config.cycle_duration_s))
        return CycleUsage(
            cycle=cycles[index],
            direction=direction,
            flow_id=self.flow_id,
            true_sent=true_sent,
            true_received=true_received,
            gateway_count=gateway,
            edge_sent_record=edge_sent,
            edge_received_estimate=edge_received_est,
            operator_received_record=operator_received,
            operator_sent_estimate=operator_sent_est,
        )

    def collect(self) -> list[CycleUsage]:
        """Per-cycle usage records with per-UE, per-cycle clock skews."""
        config = self.config
        skew_rng = self.rng.stream("cycle-skews")
        usages = []
        for k in range(config.n_cycles):
            t1 = k * config.cycle_duration_s
            t2 = (k + 1) * config.cycle_duration_s
            edge_skew = skew_rng.gauss(0.0, config.edge_skew_rel_std * config.cycle_duration_s)
            op_skew = skew_rng.gauss(0.0, config.operator_skew_rel_std * config.cycle_duration_s)
            if self.fault_injector is not None:
                edge_skew += self.fault_injector.extra_skew("edge-clock", t2)
                op_skew += self.fault_injector.extra_skew("operator-clock", t2)
            usages.append(self._cycle_usage(t1, t2, edge_skew, op_skew))
        return usages

    def evaluate(self, usages: list[CycleUsage]) -> dict[str, list[SchemeOutcome]]:
        """Charging schemes on this UE's cycles (per-UE negotiation stream)."""
        return evaluate_schemes(
            self.plan,
            usages,
            self.rng.stream("negotiation"),
            self.config.accept_tolerance,
            self.config.max_rounds,
            self.metrics,
        )

    def summarize(
        self, usages: list[CycleUsage], outcomes: dict[str, list[SchemeOutcome]]
    ) -> UeSummary:
        """Reduce one UE's run to the aggregation-ready summary row."""
        horizon = self.config.n_cycles * self.config.cycle_duration_s
        summary = UeSummary(
            ue_index=self.ue_index,
            archetype=self.archetype,
            flow_id=self.flow_id,
            cycles=len(usages),
            offered_bitrate_bps=self.workload.achieved_bitrate_bps(horizon),
        )
        for scheme, rows in outcomes.items():
            gaps = [
                usage.scaled_to_hour(outcome.delta)
                for usage, outcome in zip(usages, rows)
            ]
            summary.mean_gap_mb_hr[scheme] = statistics.mean(gaps) if gaps else 0.0
            eps = [o.epsilon for o in rows if o.expected > 0]
            summary.mean_epsilon[scheme] = statistics.mean(eps) if eps else 0.0
            summary.mean_rounds[scheme] = (
                statistics.mean(o.rounds for o in rows) if rows else 0.0
            )
            if scheme in NEGOTIATED_SCHEMES:
                summary.converged_cycles[scheme] = sum(
                    1 for o in rows if o.rounds < self.config.max_rounds
                )
        return summary


class FleetShardRunner:
    """Owns one shard's simulation: N UEs, one network, one metrics registry."""

    def __init__(self, shard, kernel: str | None = None) -> None:
        from .fleet import FleetShard  # local import: fleet imports us

        assert isinstance(shard, FleetShard)
        if not shard.ues:
            raise ValueError(f"shard {shard.index} has no UEs")
        self.shard = shard
        # Simulation kernel (see repro.kernel): resolved once per shard;
        # "auto" batches every eligible session and runs the rest on the
        # reference engine within the same shard.
        self.kernel = resolve_kernel(kernel)
        self.kernel_used: dict[int, str] = {}
        self.kernel_fallback_reasons: dict[int, str] = {}
        self.loop = EventLoop()
        self.metrics = MetricsRegistry(clock=self.loop.now)
        # Shard-level randomness (radio processes keyed by IMSI, per-cell
        # air noise) comes from the shard seed.
        self.rng = StreamRegistry(shard.seed)
        durations = {ue.config.cycle_duration_s for ue in shard.ues}
        cycles = {ue.config.n_cycles for ue in shard.ues}
        if len(durations) != 1 or len(cycles) != 1:
            raise ValueError("all UEs of a shard must share the charging cycle grid")
        self.cycle_duration_s = durations.pop()
        self.n_cycles = cycles.pop()
        check_interval = max(0.05, self.cycle_duration_s / 600.0)
        self.network = CellularNetwork(
            self.loop,
            self.rng,
            NetworkConfig(
                enodeb=ENodeBConfig(counter_check_interval_s=check_interval),
                n_cells=len(shard.ues),
                retain_cdrs=False,
            ),
            metrics=self.metrics,
        )
        self.sessions = [
            _UeSession(
                self.loop,
                self.network,
                self.metrics,
                ue_index=ue.index,
                archetype=ue.archetype,
                config=ue.config,
                seed=ue.seed,
                cell=cell,
            )
            for cell, ue in enumerate(shard.ues)
        ]
        for cell, session in enumerate(self.sessions):
            mbps = session.config.background_mbps
            if mbps > 0:
                rate = mbps * 1e6
                self.network.set_background_load(rate, rate, cell=cell)

    # -------------------------------------------------------------- running

    def simulate(self) -> None:
        """Run every UE's workload through the shared charging horizon."""
        horizon = self.n_cycles * self.cycle_duration_s
        with self.metrics.span("simulate"):
            lanes = []
            for session in self.sessions:
                lane = reason = None
                if self.kernel != "reference":
                    lane, reason = build_session_lane(session)
                    if lane is None and self.kernel == "batched":
                        raise RuntimeError(
                            f"batched kernel unavailable for UE {session.ue_index}: {reason}"
                        )
                if lane is not None:
                    self.kernel_used[session.ue_index] = "batched"
                    lanes.append(lane)
                else:
                    self.kernel_used[session.ue_index] = "reference"
                    if reason is not None:
                        # Auto-mode fallbacks aggregate into the shard
                        # snapshot so fleet coverage regressions surface;
                        # an explicit kernel="reference" records nothing.
                        self.kernel_fallback_reasons[session.ue_index] = reason
                        self.metrics.counter("kernel.fallback", reason=reason).inc()
                    session.workload.start(until=horizon)
            # Lanes never touch the shared loop; any order works.  The
            # reference sessions' events then settle on the real loop.
            for lane in lanes:
                run_lane(lane, horizon, settle=SETTLE_S)
            self.loop.run_until(horizon + SETTLE_S)  # settle in-flight traffic
            for session in self.sessions:
                self.network.serving_enodeb(str(session.imsi)).ue(
                    str(session.imsi)
                ).rrc.perform_counter_check()

    def collect_metrics(self) -> None:
        """Shard-level totals: passive counters summed across cells and UEs.

        Sums keep metric cardinality constant (no per-UE labels), so the
        merged fleet snapshot stays O(metric names), not O(population).
        """
        m = self.metrics
        for enodeb in self.network.enodebs:
            for direction, air in (("dl", enodeb.downlink_air), ("ul", enodeb.uplink_air)):
                m.gauge("cellular.air.offered_bytes", direction=direction).add(
                    air.offered.bytes
                )
                m.gauge("cellular.air.dropped_bytes", direction=direction).add(
                    air.dropped.bytes
                )
                m.gauge("cellular.air.transmitted_bytes", direction=direction).add(
                    air.transmitted.bytes
                )
        for session in self.sessions:
            radio = session.access.radio
            m.gauge("cellular.radio.outages").add(radio.outage_count)
            m.gauge("cellular.radio.outage_time_s").add(radio.total_outage_time)
            modem = session.access.modem
            m.gauge("edge.modem.uplink_bytes").add(modem.ul_sent.total)
            m.gauge("edge.modem.downlink_bytes").add(modem.dl_received.total)
            m.gauge("edge.modem.counter_checks").add(modem.counter_checks_served)
            monitors = (
                ("device-ul", session.device.ul_monitor),
                ("device-dl", session.device.dl_monitor),
                ("server-ul", session.server.ul_monitor),
                ("server-dl", session.server.dl_monitor),
            )
            for point, monitor in monitors:
                m.gauge("edge.monitor.observed_bytes", point=point).add(monitor.total)
        m.gauge("cellular.ofcs.bearers").set(len(self.network.bearers))
        m.gauge("fleet.shard.ues").set(len(self.sessions))

    def run(self) -> FleetShardResult:
        """Simulate, extract, evaluate and summarize every UE of the shard."""
        self.simulate()
        summaries = []
        for session in self.sessions:
            usages = session.collect()
            outcomes = session.evaluate(usages)
            summary = session.summarize(usages, outcomes)
            self._record_fleet_metrics(summary)
            summaries.append(summary)
        self.collect_metrics()
        return FleetShardResult(
            shard_index=self.shard.index,
            ues=summaries,
            metrics=self.metrics.snapshot(),
        )

    def _record_fleet_metrics(self, summary: UeSummary) -> None:
        m = self.metrics
        m.counter("fleet.ue.count", archetype=summary.archetype).inc()
        for scheme, gap in summary.mean_gap_mb_hr.items():
            m.histogram(
                "fleet.gap.mean_mb_per_hr", GAP_EDGES_MB_HR, scheme=scheme
            ).observe(gap)
        for scheme in NEGOTIATED_SCHEMES:
            m.counter("fleet.negotiation.cycles", scheme=scheme).inc(summary.cycles)
            m.counter("fleet.negotiation.converged_cycles", scheme=scheme).inc(
                summary.converged_cycles.get(scheme, 0)
            )


def simulate_shard(shard) -> FleetShardResult:
    """Convenience wrapper: build, run and return one shard."""
    return FleetShardRunner(shard).run()
