"""Fleet sweeps: population-scale charging experiments, streamed.

The paper evaluates charging gaps one subscriber at a time; an operator
cares about the *fleet* — does TLC's residual gap stay inside the
single-UE bands when thousands of heterogeneous subscribers share the
EPC?  This module scales the experiment engine to that question without
scaling its memory:

* a population of N UEs is described compactly (:class:`FleetConfig`),
  assigned workload archetypes by a Zipf popularity draw, and given
  per-UE seeds derived from the fleet seed — both independent of how the
  population is later sharded, so UE #417 runs the same traffic whether
  it lands in a shard of 4 or 64;
* the population is cut into :class:`FleetShard` batches, each simulated
  as one multi-UE scenario by
  :class:`~repro.experiments.fleet_runner.FleetShardRunner` and shipped
  back as an O(shard) summary dict (per-UE reductions + one mergeable
  metrics snapshot);
* shards fan out through the same process pool and content-addressed
  cache as single-UE sweeps (shard cache keys hash the full shard spec),
  and :class:`FleetAccumulator` folds results *in shard-index order* as
  they stream in — float accumulation order is fixed, so the aggregate
  is bit-identical across worker counts, cache states and arrival
  orders, and peak memory stays O(shard), never O(population).
"""

from __future__ import annotations

import hashlib
import json
import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from ..netsim.faults import FAULT_PROFILES
from ..obs import MetricsSnapshot
from ..workloads import iperf_profile
from .parallel import (
    CODEC_VERSION,
    ResultCache,
    RunReport,
    apply_default_faults,
    config_from_dict,
    config_to_dict,
    derive_seed,
)
from . import parallel as _parallel
from .runner import SCHEMES
from .scenarios import (
    GAMING_DL,
    VRIDGE_DL,
    WEBCAM_RTSP_UL,
    WEBCAM_UDP_UL,
    ScenarioConfig,
)

#: Bump when the shard spec or shard-result codec changes; shard cache
#: keys embed it (together with the scenario :data:`CODEC_VERSION`, which
#: governs the embedded per-UE configs and metrics encoding).
#: v2: FleetConfig chaos overrides (outage_eta / handover / quota).
#: v3: FleetConfig.fault_profile (canned FaultSchedule per UE).
FLEET_CODEC_VERSION = 3

#: A light always-on flow for subscribers that are mostly idle: 2 Mbps of
#: iperf-style UDP downlink (QCI 9).  Fleet populations are dominated by
#: such background users, not by the heavy interactive apps.
BACKGROUND_IPERF_DL = ScenarioConfig(
    name="background-iperf-dl",
    workload=iperf_profile(2e6, name="background-iperf"),
    direction=VRIDGE_DL.direction,
    base_loss=0.012,
)

#: Workload archetypes a fleet UE can be assigned, in *popularity order*
#: (most popular first) — the Zipf draw ranks them by position.
ARCHETYPES: dict[str, ScenarioConfig] = {
    "gaming-qci7-dl": GAMING_DL,
    "background-iperf-dl": BACKGROUND_IPERF_DL,
    "webcam-rtsp-ul": WEBCAM_RTSP_UL,
    "webcam-udp-ul": WEBCAM_UDP_UL,
    "vridge-gvsp-dl": VRIDGE_DL,
}

DEFAULT_MIX = tuple(ARCHETYPES)


@dataclass(frozen=True)
class FleetConfig:
    """A population-scale sweep, described in O(1) space."""

    ues: int
    shard_size: int = 8
    seed: int = 1
    n_cycles: int = 2
    cycle_duration_s: float = 30.0
    #: Zipf popularity exponent over ``mix`` (rank-ordered archetypes).
    zipf_s: float = 1.1
    mix: tuple[str, ...] = DEFAULT_MIX
    # Chaos-profile overrides applied to every UE's archetype config
    # (None = keep the archetype's own setting).
    outage_eta: float | None = None
    handover_interval_s: float | None = None
    handover_x2: bool = False
    quota_bytes: int | None = None
    #: Canned fault profile (a :data:`~repro.netsim.faults.FAULT_PROFILES`
    #: name) stamped onto every UE's config (None = keep each archetype's
    #: own / the ``REPRO_FAULT_PROFILE`` default).
    fault_profile: str | None = None

    def __post_init__(self) -> None:
        if self.ues < 1:
            raise ValueError(f"fleet needs at least one UE, got {self.ues}")
        if self.shard_size < 1:
            raise ValueError(f"shard size must be >= 1, got {self.shard_size}")
        unknown = [name for name in self.mix if name not in ARCHETYPES]
        if unknown or not self.mix:
            raise ValueError(
                f"unknown archetypes {unknown} (know {', '.join(ARCHETYPES)})"
            )
        if self.fault_profile is not None and self.fault_profile not in FAULT_PROFILES:
            raise ValueError(
                f"unknown fault profile {self.fault_profile!r} "
                f"(know {', '.join(FAULT_PROFILES)})"
            )

    def to_dict(self) -> dict:
        """JSON-safe encoding (manifest / provenance)."""
        return {
            "ues": self.ues,
            "shard_size": self.shard_size,
            "seed": self.seed,
            "n_cycles": self.n_cycles,
            "cycle_duration_s": self.cycle_duration_s,
            "zipf_s": self.zipf_s,
            "mix": list(self.mix),
            "outage_eta": self.outage_eta,
            "handover_interval_s": self.handover_interval_s,
            "handover_x2": self.handover_x2,
            "quota_bytes": self.quota_bytes,
            "fault_profile": self.fault_profile,
        }


@dataclass(frozen=True)
class UeSpec:
    """One subscriber of the fleet, fully resolved."""

    index: int
    archetype: str
    seed: int
    config: ScenarioConfig


@dataclass(frozen=True)
class FleetShard:
    """A batch of UEs simulated together on one EventLoop/EPC."""

    index: int
    seed: int
    ues: tuple[UeSpec, ...]


# -------------------------------------------------------------- assignment


def zipf_weights(n: int, s: float) -> list[float]:
    """Normalized Zipf popularity weights over ``n`` ranks."""
    raw = [1.0 / (rank + 1) ** s for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def assign_ues(fleet: FleetConfig) -> list[UeSpec]:
    """Assign every UE an archetype and a seed, shard-independently.

    Each UE's draw comes from its *own* registry, forked from the fleet
    seed by UE index — so the assignment (and the UE's entire simulated
    behaviour) is a pure function of ``(fleet.seed, index)``, invariant
    under re-sharding and population growth: UE #i of a 100-UE fleet is
    bit-identical to UE #i of a 10 000-UE fleet.
    """
    from ..netsim.rng import StreamRegistry

    weights = zipf_weights(len(fleet.mix), fleet.zipf_s)
    cumulative = []
    running = 0.0
    for w in weights:
        running += w
        cumulative.append(running)
    cumulative[-1] = 1.0  # guard the float tail
    ues = []
    for index in range(fleet.ues):
        registry = StreamRegistry(fleet.seed).fork(f"ue:{index}")
        draw = registry.stream("archetype").random()
        rank = next(i for i, edge in enumerate(cumulative) if draw <= edge)
        archetype = fleet.mix[rank]
        overrides: dict = dict(
            seed=registry.seed,
            n_cycles=fleet.n_cycles,
            cycle_duration_s=fleet.cycle_duration_s,
        )
        if fleet.outage_eta is not None:
            overrides["outage_eta"] = fleet.outage_eta
        if fleet.handover_interval_s is not None:
            overrides["handover_interval_s"] = fleet.handover_interval_s
            overrides["handover_x2"] = fleet.handover_x2
        if fleet.quota_bytes is not None:
            overrides["quota_bytes"] = fleet.quota_bytes
        if fleet.fault_profile is not None:
            overrides["faults"] = FAULT_PROFILES[fleet.fault_profile]
        config = ARCHETYPES[archetype].with_(**overrides)
        ues.append(
            UeSpec(
                index=index,
                archetype=archetype,
                seed=registry.seed,
                config=apply_default_faults(config),
            )
        )
    return ues


def build_shards(fleet: FleetConfig, ues: list[UeSpec] | None = None) -> list[FleetShard]:
    """Cut the population into shards of ``fleet.shard_size`` UEs."""
    if ues is None:
        ues = assign_ues(fleet)
    shards = []
    for start in range(0, len(ues), fleet.shard_size):
        index = start // fleet.shard_size
        shards.append(
            FleetShard(
                index=index,
                seed=derive_seed(fleet.seed, f"shard:{index}"),
                ues=tuple(ues[start : start + fleet.shard_size]),
            )
        )
    return shards


# ------------------------------------------------------------------- codec


def ue_spec_to_dict(ue: UeSpec) -> dict:
    return {
        "index": ue.index,
        "archetype": ue.archetype,
        "seed": ue.seed,
        "config": config_to_dict(ue.config),
    }


def ue_spec_from_dict(data: dict) -> UeSpec:
    return UeSpec(
        index=int(data["index"]),
        archetype=data["archetype"],
        seed=int(data["seed"]),
        config=config_from_dict(data["config"]),
    )


def shard_to_dict(shard: FleetShard) -> dict:
    return {
        "index": shard.index,
        "seed": shard.seed,
        "ues": [ue_spec_to_dict(ue) for ue in shard.ues],
    }


def shard_from_dict(data: dict) -> FleetShard:
    return FleetShard(
        index=int(data["index"]),
        seed=int(data["seed"]),
        ues=tuple(ue_spec_from_dict(ue) for ue in data["ues"]),
    )


def fleet_shard_key(shard: FleetShard) -> str:
    """Content-addressed cache key: stable hash of the full shard spec.

    Embeds both codec versions, so a codec bump (either layer) retires
    every stale entry by key mismatch — same invalidation discipline as
    :func:`~repro.experiments.parallel.scenario_key`.
    """
    canonical = json.dumps(
        {
            "fleet_codec": FLEET_CODEC_VERSION,
            "codec": CODEC_VERSION,
            "shard": shard_to_dict(shard),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def shard_result_to_dict(result) -> dict:
    """Serialize a :class:`~repro.experiments.fleet_runner.FleetShardResult`."""
    return {
        "version": FLEET_CODEC_VERSION,
        "codec": CODEC_VERSION,
        "shard_index": result.shard_index,
        "ues": [
            {
                "index": ue.ue_index,
                "archetype": ue.archetype,
                "flow_id": ue.flow_id,
                "cycles": ue.cycles,
                "bitrate_bps": ue.offered_bitrate_bps,
                "mean_gap_mb_hr": {k: ue.mean_gap_mb_hr[k] for k in sorted(ue.mean_gap_mb_hr)},
                "mean_epsilon": {k: ue.mean_epsilon[k] for k in sorted(ue.mean_epsilon)},
                "mean_rounds": {k: ue.mean_rounds[k] for k in sorted(ue.mean_rounds)},
                "converged_cycles": {
                    k: ue.converged_cycles[k] for k in sorted(ue.converged_cycles)
                },
            }
            for ue in result.ues
        ],
        "metrics": result.metrics.to_dict(),
    }


def _simulate_shard_to_dict(shard_data: dict) -> dict:
    """Pool worker: decode the shard spec, simulate, encode the result."""
    from .fleet_runner import simulate_shard

    return shard_result_to_dict(simulate_shard(shard_from_dict(shard_data)))


# ------------------------------------------------------------- aggregation


class RunningStats:
    """Streaming moments over one quantity; fold order fixed by the caller."""

    __slots__ = ("n", "total", "sumsq", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.n += 1
        self.total += value
        self.sumsq += value * value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        variance = max(0.0, self.sumsq / self.n - self.mean**2)
        return math.sqrt(variance)

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.min if self.n else 0.0,
            "max": self.max if self.n else 0.0,
        }


@dataclass
class FleetResult:
    """The streamed aggregate of one fleet sweep."""

    config: FleetConfig
    population: int
    n_shards: int
    #: Per-scheme stats over every UE's mean gap (MB/hr).
    gap_stats: dict[str, RunningStats]
    #: Per-archetype UE counts and per-scheme mean-gap sums.
    archetype_counts: dict[str, int]
    archetype_gap_totals: dict[str, dict[str, float]]
    #: Per-scheme negotiated-cycle convergence counts (TLC schemes only).
    converged_cycles: dict[str, int]
    negotiated_cycles: dict[str, int]
    metrics: MetricsSnapshot
    report: RunReport = field(default_factory=RunReport)

    def mean_gap(self, scheme: str) -> float:
        """Fleet-wide mean of per-UE mean gaps (MB/hr)."""
        return self.gap_stats[scheme].mean

    def archetype_mean_gap(self, archetype: str, scheme: str) -> float:
        """Mean per-UE gap among one archetype's UEs (MB/hr)."""
        count = self.archetype_counts.get(archetype, 0)
        if count == 0:
            return 0.0
        return self.archetype_gap_totals[archetype][scheme] / count

    def convergence_ratio(self, scheme: str) -> float:
        """Share of negotiated cycles that settled before the round cap."""
        cycles = self.negotiated_cycles.get(scheme, 0)
        if cycles == 0:
            return 0.0
        return self.converged_cycles[scheme] / cycles

    def to_dict(self) -> dict:
        """Canonical encoding of the *aggregate* (engine provenance —
        worker count, cache hits — is deliberately excluded, so two runs
        of the same fleet compare bytes-equal however they executed)."""
        return {
            "config": self.config.to_dict(),
            "population": self.population,
            "shards": self.n_shards,
            "gap_stats": {k: self.gap_stats[k].to_dict() for k in sorted(self.gap_stats)},
            "archetypes": {
                name: {
                    "ues": self.archetype_counts[name],
                    "mean_gap_mb_hr": {
                        scheme: self.archetype_mean_gap(name, scheme)
                        for scheme in sorted(self.archetype_gap_totals[name])
                    },
                }
                for name in sorted(self.archetype_counts)
            },
            "convergence": {
                scheme: {
                    "cycles": self.negotiated_cycles[scheme],
                    "converged": self.converged_cycles[scheme],
                }
                for scheme in sorted(self.negotiated_cycles)
            },
            "metrics": self.metrics.to_dict(),
        }

    def render(self) -> str:
        """Human-readable fleet summary table."""
        lines = [
            f"fleet: {self.population} UEs in {self.n_shards} shards "
            f"(shard size {self.config.shard_size}, seed {self.config.seed}, "
            f"zipf s={self.config.zipf_s})",
            f"engine: {self.report.simulated} shards simulated, "
            f"{self.report.cached} cached",
            "",
            f"{'scheme':<14} {'mean Δ MB/hr':>13} {'std':>10} {'min':>10} "
            f"{'max':>10} {'converged':>10}",
        ]
        for scheme in SCHEMES:
            stats = self.gap_stats.get(scheme)
            if stats is None:
                continue
            conv = (
                f"{100.0 * self.convergence_ratio(scheme):9.1f}%"
                if scheme in self.negotiated_cycles
                else f"{'-':>10}"
            )
            lines.append(
                f"{scheme:<14} {stats.mean:>13.3f} {stats.std:>10.3f} "
                f"{stats.min:>10.3f} {stats.max:>10.3f} {conv}"
            )
        lines.append("")
        lines.append(f"{'archetype':<22} {'ues':>6} {'share':>7} "
                     f"{'legacy Δ':>10} {'optimal Δ':>10}")
        for name in self.config.mix:
            count = self.archetype_counts.get(name, 0)
            share = 100.0 * count / self.population if self.population else 0.0
            lines.append(
                f"{name:<22} {count:>6} {share:>6.1f}% "
                f"{self.archetype_mean_gap(name, 'legacy'):>10.3f} "
                f"{self.archetype_mean_gap(name, 'tlc-optimal'):>10.3f}"
            )
        return "\n".join(lines)


class FleetAccumulator:
    """Folds shard results into a fleet aggregate, in shard-index order.

    Shards may be *added* in any order (a parallel engine or a test may
    deliver them permuted); the accumulator buffers out-of-order arrivals
    and folds strictly by index, so float accumulation order — and hence
    the aggregate, bitwise — is independent of arrival order.  Memory is
    O(pending shards), which an in-order producer keeps at one.
    """

    def __init__(
        self,
        ue_sink: Callable[[dict], None] | None = None,
        shard_sink: Callable[[dict], None] | None = None,
    ) -> None:
        self._next = 0
        self._pending: dict[int, dict] = {}
        self._ue_sink = ue_sink
        self._shard_sink = shard_sink
        self.population = 0
        self.metrics = MetricsSnapshot()
        self.gap_stats: dict[str, RunningStats] = {}
        self.archetype_counts: dict[str, int] = {}
        self.archetype_gap_totals: dict[str, dict[str, float]] = {}
        self.converged_cycles: dict[str, int] = {}
        self.negotiated_cycles: dict[str, int] = {}

    def add(self, data: dict) -> None:
        """Accept one shard-result dict (any order; folds in index order)."""
        index = int(data["shard_index"])
        if index < self._next or index in self._pending:
            raise ValueError(f"shard {index} folded twice")
        self._pending[index] = data
        while self._next in self._pending:
            self._fold(self._pending.pop(self._next))
            self._next += 1

    def _fold(self, data: dict) -> None:
        if self._shard_sink is not None:
            # Called strictly in shard-index order, like the fold itself —
            # the streaming hook for per-shard settlement output.
            self._shard_sink(data)
        self.metrics.merge_in_place(
            MetricsSnapshot.from_dict(data["metrics"]), include_spans=False
        )
        for row in data["ues"]:
            self.population += 1
            archetype = row["archetype"]
            self.archetype_counts[archetype] = self.archetype_counts.get(archetype, 0) + 1
            totals = self.archetype_gap_totals.setdefault(archetype, {})
            for scheme in sorted(row["mean_gap_mb_hr"]):
                gap = row["mean_gap_mb_hr"][scheme]
                stats = self.gap_stats.get(scheme)
                if stats is None:
                    stats = self.gap_stats[scheme] = RunningStats()
                stats.observe(gap)
                totals[scheme] = totals.get(scheme, 0.0) + gap
            for scheme in sorted(row["converged_cycles"]):
                self.converged_cycles[scheme] = (
                    self.converged_cycles.get(scheme, 0) + row["converged_cycles"][scheme]
                )
                self.negotiated_cycles[scheme] = (
                    self.negotiated_cycles.get(scheme, 0) + row["cycles"]
                )
            if self._ue_sink is not None:
                self._ue_sink(row)

    def finalize(self, config: FleetConfig, report: RunReport) -> FleetResult:
        """Seal the aggregate; raises if any shard never arrived."""
        if self._pending:
            missing = self._next
            raise ValueError(
                f"fleet aggregation incomplete: shard {missing} missing, "
                f"{len(self._pending)} buffered out of order"
            )
        return FleetResult(
            config=config,
            population=self.population,
            n_shards=self._next,
            gap_stats=self.gap_stats,
            archetype_counts=self.archetype_counts,
            archetype_gap_totals=self.archetype_gap_totals,
            converged_cycles=self.converged_cycles,
            negotiated_cycles=self.negotiated_cycles,
            metrics=self.metrics,
            report=report,
        )


# ------------------------------------------------------------------ engine


def _usable(data: dict | None) -> bool:
    """Shape-check a cached shard result (corrupt entries are misses)."""
    return (
        isinstance(data, dict)
        and data.get("version") == FLEET_CODEC_VERSION
        and data.get("codec") == CODEC_VERSION
        and isinstance(data.get("ues"), list)
        and isinstance(data.get("metrics"), dict)
        and "shard_index" in data
    )


def run_fleet(
    fleet: FleetConfig,
    workers: int | None = None,
    cache: ResultCache | None | bool = True,
    report: RunReport | None = None,
    ue_sink: Callable[[dict], None] | None = None,
) -> FleetResult:
    """Run a fleet sweep, streaming shard results into one aggregate.

    Shards hit the cache (by shard key) or fan out over a process pool;
    either way results are folded in shard-index order as they arrive, so
    the aggregate is bit-identical across worker counts and cache states
    and peak memory stays O(shard size), not O(population).  ``ue_sink``,
    if given, receives every per-UE summary row in UE-index order — the
    streaming hook for per-UE CSV export.
    """
    if cache is True:
        cache = _parallel._default_cache
    elif cache is False:
        cache = None
    n_workers = _parallel._default_workers if workers is None else int(workers)

    shards = build_shards(fleet)
    keys = [fleet_shard_key(shard) for shard in shards]
    run_report = report if report is not None else RunReport()
    accumulator = FleetAccumulator(ue_sink=ue_sink)

    # Cheap existence probe decides what goes to the pool; a probe hit
    # that later fails to parse falls back to inline simulation.
    miss = [i for i, key in enumerate(keys) if cache is None or not cache.has(key)]
    miss_set = set(miss)

    pool = None
    miss_iter = None
    try:
        if len(miss) > 1 and n_workers > 1:
            pool = ProcessPoolExecutor(max_workers=min(n_workers, len(miss)))
            miss_iter = pool.map(
                _simulate_shard_to_dict, [shard_to_dict(shards[i]) for i in miss]
            )
        for i, shard in enumerate(shards):
            if i in miss_set:
                data = (
                    next(miss_iter)
                    if miss_iter is not None
                    else _simulate_shard_to_dict(shard_to_dict(shard))
                )
                if cache is not None:
                    cache.put_data(keys[i], data)
                run_report.simulated += 1
            else:
                data = cache.get_data(keys[i])
                if _usable(data):
                    run_report.cached += 1
                else:
                    data = _simulate_shard_to_dict(shard_to_dict(shard))
                    cache.put_data(keys[i], data)
                    run_report.simulated += 1
            accumulator.add(data)
    finally:
        if pool is not None:
            pool.shutdown()

    return accumulator.finalize(fleet, run_report)
