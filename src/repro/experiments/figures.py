"""Regeneration of every table and figure in the paper's evaluation.

Each ``figure*``/``table*`` function runs the relevant scenarios and
returns a structured result with the same rows/series the paper reports;
``render()`` turns any of them into the printable text the benchmark
harness emits.  The per-experiment index lives in DESIGN.md; measured
vs. paper values are recorded in EXPERIMENTS.md.

Scale note: experiments default to 60 s charging cycles (the paper uses
1 h) with volumes normalized to MB/hr and record errors scaled relative
to cycle length, so shapes and ratios are directly comparable.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field

from ..core import DataPlan, OptimalStrategy, PartyKnowledge, PartyRole
from ..crypto import generate_keypair
from ..edge.device import DEVICE_PROFILES, EL20, PIXEL_2XL, S7_EDGE, Z840, DeviceProfile
from ..edge.monitors import record_error_ratio
from ..netsim import Direction
from ..poc import LEGACY_LTE_CDR_BYTES, NegotiationDriver
from ..workloads import CONGESTION_SWEEP_MBPS, WEBCAM_UDP
from .parallel import run_scenarios
from .runner import ScenarioResult, run_scenario
from .scenarios import ALL_APPS, FIG3_APPS, VRIDGE_DL, WEBCAM_UDP_UL, ScenarioConfig
from .stats import Summary, cdf_points

#: Cycles per configuration — bumped by callers that want smoother CDFs.
DEFAULT_CYCLES = 6


@dataclass
class TableResult:
    """A generic labelled table: header + rows of (label, values...)."""

    title: str
    header: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)

    def render(self) -> str:
        """Monospace rendering for the bench harness output."""
        widths = [
            max(len(str(self.header[i])), *(len(_fmt(r[i])) for r in self.rows))
            if self.rows
            else len(str(self.header[i]))
            for i in range(len(self.header))
        ]
        lines = [self.title]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.header, widths)))
        for row in self.rows:
            lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


# --------------------------------------------------------------- Figure 3


def figure3(seed: int = 1, n_cycles: int = DEFAULT_CYCLES) -> TableResult:
    """Raw charging gap (gateway vs. edge records) vs. congestion level.

    The pre-TLC measurement of §3.2: Δ/hr between what the gateway
    counted and what the edge endpoint sent (UL) / received (DL).
    """
    table = TableResult(
        "Figure 3: data charging gap (MB/hr) under congestion (RSS ≥ -95 dBm)",
        ("app", *[f"{m}Mbps" for m in CONGESTION_SWEEP_MBPS]),
    )
    results = iter(run_scenarios([
        app.with_(seed=seed, n_cycles=n_cycles, background_mbps=float(mbps))
        for app in FIG3_APPS
        for mbps in CONGESTION_SWEEP_MBPS
    ]))
    for app in FIG3_APPS:
        row: list = [app.name]
        for _ in CONGESTION_SWEEP_MBPS:
            row.append(statistics.mean(_raw_gap_mb_hr(next(results))))
        table.rows.append(tuple(row))
    return table


def _raw_gap_mb_hr(result: ScenarioResult) -> list[float]:
    gaps = []
    for usage in result.usages:
        edge_side = (
            usage.true_sent
            if usage.direction is Direction.UPLINK
            else usage.true_received
        )
        gaps.append(usage.scaled_to_hour(abs(usage.gateway_count - edge_side)))
    return gaps


# --------------------------------------------------------------- Figure 4


@dataclass
class Figure4Series:
    """Per-second time series of the intermittent-connectivity run."""

    times: list[float]
    device_rate_mbps: list[float]
    network_rate_mbps: list[float]
    cumulative_gap_mb: list[float]
    rss_dbm: list[float]
    connected: list[bool]
    mean_outage_s: float
    total_gap_mb: float

    def render(self) -> str:
        """Summary line (the full series is plotting input)."""
        return (
            "Figure 4: downlink UDP WebCam under intermittent connectivity\n"
            f"duration={self.times[-1]:.0f}s mean_outage={self.mean_outage_s:.2f}s "
            f"total_gap={self.total_gap_mb:.1f}MB "
            f"(paper: 1.93s outages, 10.6MB gap in 300s)"
        )


def figure4(seed: int = 4, duration_s: float = 300.0, eta: float = 0.14) -> Figure4Series:
    """The Figure 4 time-series run: rates, gap and RSS with outages."""
    config = WEBCAM_UDP_UL.with_(
        name="fig4-webcam-udp-dl",
        direction=Direction.DOWNLINK,
        seed=seed,
        n_cycles=1,
        cycle_duration_s=duration_s,
        outage_eta=eta,
        base_loss=0.01,
    )
    runner_scenario = run_scenario(config)
    usage = runner_scenario.usages[0]
    # Rebuild per-second series from a fresh runner (counters are offline).
    from .runner import ScenarioRunner

    runner = ScenarioRunner(config)
    runner.simulate()
    device = runner.device.dl_monitor.counter
    bearer = runner.network.bearers.by_flow(runner.flow_id)
    assert bearer is not None
    gateway = bearer.downlink
    radio = runner.access.radio

    times, dev_rate, net_rate, gap, rss, conn = [], [], [], [], [], []
    rss_by_second = {int(s.t): s for s in radio.rss_history}
    for second in range(int(duration_s)):
        t1, t2 = float(second), float(second + 1)
        dev = device.bytes_between(t1, t2)
        net = gateway.bytes_between(t1, t2)
        times.append(t2)
        dev_rate.append(dev * 8 / 1e6)
        net_rate.append(net * 8 / 1e6)
        gap.append((gateway.cumulative_at(t2) - device.cumulative_at(t2)) / 1e6)
        sample = rss_by_second.get(second)
        rss.append(sample.rss_dbm if sample else -85.0)
        conn.append(sample.connected if sample else True)
    outages = radio.outage_count or 1
    return Figure4Series(
        times=times,
        device_rate_mbps=dev_rate,
        network_rate_mbps=net_rate,
        cumulative_gap_mb=gap,
        rss_dbm=rss,
        connected=conn,
        mean_outage_s=radio.total_outage_time / outages,
        total_gap_mb=(usage.gateway_count - usage.true_received) / 1e6,
    )


# ------------------------------------------------------ Figure 12 / Table 2


@dataclass
class Figure12Result:
    """Per-app CDFs of the per-cycle charging gap for each scheme."""

    cdfs: dict[str, dict[str, list[tuple[float, float]]]]

    def render(self) -> str:
        lines = ["Figure 12: charging-gap CDFs (MB/hr), c=0.5"]
        for app, schemes in self.cdfs.items():
            for scheme, points in schemes.items():
                median = points[len(points) // 2][0] if points else 0.0
                p100 = points[-1][0] if points else 0.0
                lines.append(f"  {app:18s} {scheme:12s} median={median:8.2f} max={p100:8.2f}")
        return "\n".join(lines)


def _pooled_results(
    app: ScenarioConfig, seed: int, n_cycles: int
) -> list[ScenarioResult]:
    """Cycles pooled over the paper's condition grid (§7.1).

    The paper repeats each app across congestion levels and intermittent
    connectivity; Table 2 and Figure 12 pool all conditions.
    """
    conditions = [
        {"background_mbps": 0.0},
        {"background_mbps": 120.0},
        {"background_mbps": 160.0},
        {"outage_eta": 0.08},
    ]
    return run_scenarios([
        app.with_(seed=seed + i, n_cycles=n_cycles, **cond)
        for i, cond in enumerate(conditions)
    ])


def figure12(
    seed: int = 1, n_cycles: int = DEFAULT_CYCLES, schemes=("legacy", "tlc-random", "tlc-optimal")
) -> Figure12Result:
    """Gap CDFs per app per scheme over the pooled condition grid."""
    cdfs: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for app in ALL_APPS:
        results = _pooled_results(app, seed, n_cycles)
        per_scheme: dict[str, list[tuple[float, float]]] = {}
        for scheme in schemes:
            gaps: list[float] = []
            for result in results:
                gaps.extend(result.gaps_mb_per_hr(scheme))
            per_scheme[scheme] = cdf_points(gaps)
        cdfs[app.name] = per_scheme
    return Figure12Result(cdfs)


def table2(seed: int = 1, n_cycles: int = DEFAULT_CYCLES) -> TableResult:
    """Table 2: average bitrate, Δ and ε per app per scheme (c = 0.5)."""
    table = TableResult(
        "Table 2: average charging gap (c=0.5), pooled conditions",
        (
            "app", "bitrate(Mbps)",
            "legacy Δ(MB/hr)", "legacy ε(%)",
            "optimal Δ", "optimal ε(%)",
            "random Δ", "random ε(%)",
        ),
    )
    for app in ALL_APPS:
        results = _pooled_results(app, seed, n_cycles)
        bitrate = statistics.mean(r.measured_bitrate_bps for r in results) / 1e6
        row: list = [app.name, bitrate]
        for scheme in ("legacy", "tlc-optimal", "tlc-random"):
            deltas = [r.mean_delta_mb_per_hr(scheme) for r in results]
            epsilons = [r.mean_epsilon(scheme) for r in results]
            row.extend([statistics.mean(deltas), statistics.mean(epsilons) * 100])
        table.rows.append(tuple(row))
    return table


# -------------------------------------------------------------- Figure 13


def figure13(seed: int = 1, n_cycles: int = DEFAULT_CYCLES) -> TableResult:
    """Gap ratio ε vs. congestion for the three schemes, per app."""
    table = TableResult(
        "Figure 13: charging gap ratio (%) under congestion",
        ("app", "scheme", *[f"{m}Mbps" for m in CONGESTION_SWEEP_MBPS]),
    )
    all_results = run_scenarios([
        app.with_(seed=seed, n_cycles=n_cycles, background_mbps=float(m))
        for app in ALL_APPS
        for m in CONGESTION_SWEEP_MBPS
    ])
    n_levels = len(CONGESTION_SWEEP_MBPS)
    for j, app in enumerate(ALL_APPS):
        per_level = all_results[j * n_levels:(j + 1) * n_levels]
        for scheme in ("legacy", "tlc-random", "tlc-optimal"):
            row = [app.name, scheme]
            row.extend(r.mean_epsilon(scheme) * 100 for r in per_level)
            table.rows.append(tuple(row))
    return table


# -------------------------------------------------------------- Figure 14


ETA_SWEEP = (0.05, 0.07, 0.09, 0.11, 0.13, 0.15)


def figure14(seed: int = 1, n_cycles: int = DEFAULT_CYCLES) -> TableResult:
    """Gap ratio vs. intermittent disconnectivity η (UDP WebCam)."""
    table = TableResult(
        "Figure 14: charging gap ratio (%) vs intermittent disconnectivity η",
        ("scheme", *[f"η={e:.0%}" for e in ETA_SWEEP]),
    )
    per_eta = run_scenarios([
        WEBCAM_UDP_UL.with_(seed=seed, n_cycles=n_cycles, outage_eta=eta)
        for eta in ETA_SWEEP
    ])
    for scheme in ("legacy", "tlc-random", "tlc-optimal"):
        table.rows.append((scheme, *[r.mean_epsilon(scheme) * 100 for r in per_eta]))
    return table


# -------------------------------------------------------------- Figure 15


def figure15(seed: int = 1, n_cycles: int = DEFAULT_CYCLES) -> dict[float, list[tuple[float, float]]]:
    """CDFs of the charge-reduction ratio μ for c ∈ {0, .25, .5, .75, 1}.

    μ = (x_legacy − x_TLC)/x_legacy on the downlink VR scenario (where
    legacy bills the sent volume, so TLC can only reduce the charge; at
    c = 1 TLC matches honest legacy and μ collapses to ≈ 0).
    """
    out: dict[float, list[tuple[float, float]]] = {}
    c_values = (0.0, 0.25, 0.5, 0.75, 1.0)
    backgrounds = (0.0, 120.0, 160.0)
    results = iter(run_scenarios([
        VRIDGE_DL.with_(seed=seed + i, n_cycles=n_cycles, c=c, background_mbps=background)
        for c in c_values
        for i, background in enumerate(backgrounds)
    ]))
    for c in c_values:
        mus: list[float] = []
        for _ in backgrounds:
            result = next(results)
            for usage, outcome in zip(result.usages, result.outcomes["tlc-optimal"]):
                legacy = usage.gateway_count
                if legacy > 0:
                    mus.append((legacy - outcome.charged) / legacy)
        out[c] = cdf_points([m * 100 for m in mus])
    return out


def render_figure15(curves: dict[float, list[tuple[float, float]]]) -> str:
    """Summary rendering of the Figure 15 CDFs."""
    lines = ["Figure 15: TLC-optimal charge reduction μ (%) by data-plan c"]
    for c, points in sorted(curves.items()):
        if points:
            median = points[len(points) // 2][0]
            top = points[-1][0]
        else:
            median = top = 0.0
        lines.append(f"  c={c:<5} median μ={median:6.2f}%  max μ={top:6.2f}%")
    return "\n".join(lines)


# -------------------------------------------------------------- Figure 16


def figure16a(seed: int = 1, pings: int = 200) -> TableResult:
    """In-cycle RTT with and without TLC per device (Figure 16a).

    TLC does no in-cycle work (§5.2), so both arms run the identical data
    path; the table shows the two measurement runs side by side.
    """
    from .latency import measure_rtt

    table = TableResult(
        "Figure 16a: round-trip time within the charging cycle (ms)",
        ("device", "w/o TLC", "w/ TLC"),
    )
    for profile in (EL20, PIXEL_2XL, S7_EDGE):
        without = measure_rtt(profile, seed=seed, pings=pings, tlc_enabled=False)
        with_tlc = measure_rtt(profile, seed=seed + 1, pings=pings, tlc_enabled=True)
        table.rows.append((profile.name, statistics.mean(without), statistics.mean(with_tlc)))
    return table


def figure16b(seed: int = 1, n_cycles: int = DEFAULT_CYCLES) -> TableResult:
    """Negotiation rounds at cycle end: TLC-optimal vs TLC-random."""
    table = TableResult(
        "Figure 16b: negotiation rounds after the charging cycle",
        ("app", "TLC-random", "TLC-optimal"),
    )
    for app in ALL_APPS:
        results = _pooled_results(app, seed, n_cycles)
        random_rounds = statistics.mean(r.mean_rounds("tlc-random") for r in results)
        optimal_rounds = statistics.mean(r.mean_rounds("tlc-optimal") for r in results)
        table.rows.append((app.name, random_rounds, optimal_rounds))
    return table


# -------------------------------------------------------------- Figure 17


def _model_verification_ms(profile: DeviceProfile, rng: random.Random) -> float:
    """Algorithm 2 cost on a device.

    Three chain signature checks, one full-chain decrypt-and-replay pass
    (costed like a private-key operation, as in the paper's Java
    implementation), plus parse overhead.
    """
    total = max(0.1, rng.gauss(profile.sign_ms, profile.sign_ms * profile.crypto_jitter))
    for _ in range(3):
        total += max(
            0.05, rng.gauss(profile.verify_ms, profile.verify_ms * profile.crypto_jitter)
        )
    return total + rng.uniform(0.5, 2.0)


def figure17(seed: int = 1, samples: int = 40, key_bits: int = 1024) -> TableResult:
    """PoC negotiation/verification cost per device + message sizes."""
    rng = random.Random(seed)
    edge_key = generate_keypair(key_bits, rng)
    operator_key = generate_keypair(key_bits, rng)
    plan = DataPlan(c=0.5, cycle_duration_s=3600.0)
    table = TableResult(
        "Figure 17: Proof-of-Charging cost (TLC-optimal)",
        ("device", "negotiate(ms)", "crypto(%)", "verify(ms)"),
    )
    sizes: dict[str, int] = {}
    for profile in (EL20, PIXEL_2XL, S7_EDGE, Z840):
        times, crypto_fracs, verifies = [], [], []
        for _ in range(samples):
            driver = NegotiationDriver(
                plan,
                0.0,
                OptimalStrategy(PartyKnowledge(PartyRole.EDGE, 1_000_000, 930_000)),
                OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, 930_000, 1_000_000)),
                edge_key,
                operator_key,
                rng,
                edge_profile=profile,
                operator_profile=Z840,
            )
            result = driver.run()
            times.append(result.elapsed_s * 1000)
            crypto_fracs.append(result.crypto_fraction * 100)
            verifies.append(_model_verification_ms(profile, rng))
            if not sizes:
                poc = result.poc
                sizes = {
                    "LTE CDR": LEGACY_LTE_CDR_BYTES,
                    "TLC CDR": len(poc.peer_cda.peer_cdr.encode()),
                    "TLC CDA": len(poc.peer_cda.encode()),
                    "TLC PoC": len(poc.encode()),
                }
        table.rows.append(
            (
                profile.name,
                statistics.mean(times),
                statistics.mean(crypto_fracs),
                statistics.mean(verifies),
            )
        )
    total = sizes["TLC CDR"] + sizes["TLC CDA"] + sizes["TLC PoC"]
    table.rows.append(
        ("sizes(B)", f"CDR={sizes['TLC CDR']} CDA={sizes['TLC CDA']}",
         f"PoC={sizes['TLC PoC']}", f"total={total}/3msg")
    )
    return table


# -------------------------------------------------------------- Figure 18


def figure18(seed: int = 1, n_cycles: int = 12) -> TableResult:
    """Accuracy of the tamper-resilient charging records (downlink).

    γ_o compares the operator's RRC-COUNTER-CHECK record, γ_e the edge
    server's record, each against the gateway-based charging volume.
    """
    gammas_o: list[float] = []
    gammas_e: list[float] = []
    apps = (VRIDGE_DL,)
    for result in run_scenarios(
        [app.with_(seed=seed + i, n_cycles=n_cycles) for i, app in enumerate(apps)]
    ):
        for usage in result.usages:
            if usage.gateway_count == 0:
                continue
            gammas_o.append(
                record_error_ratio(usage.operator_received_record, usage.true_received)
            )
            gammas_e.append(
                record_error_ratio(usage.edge_sent_record, usage.gateway_count)
            )
    so, se = Summary.of(gammas_o), Summary.of(gammas_e)
    table = TableResult(
        "Figure 18: tamper-resilient CDR accuracy (downlink record error %)",
        ("record", "mean", "p95", "max"),
    )
    table.rows.append(("operator γo (RRC)", so.mean * 100, so.p95 * 100, so.max * 100))
    table.rows.append(("edge γe (server)", se.mean * 100, se.p95 * 100, se.max * 100))
    return table
