"""Evaluation harness: scenarios, runner, and the per-figure generators."""

from .latency import measure_rtt
from .multi_operator import MultiOperatorResult, OperatorShare, run_multi_operator
from .runner import SCHEMES, ScenarioResult, ScenarioRunner, run_scenario
from .scenarios import (
    ALL_APPS,
    FIG3_APPS,
    GAMING_DL,
    VRIDGE_DL,
    WEBCAM_RTSP_UL,
    WEBCAM_UDP_UL,
    ScenarioConfig,
)
from .stats import Summary, cdf_points, mb, percentile

__all__ = [
    "measure_rtt",
    "MultiOperatorResult",
    "OperatorShare",
    "run_multi_operator",
    "SCHEMES",
    "ScenarioResult",
    "ScenarioRunner",
    "run_scenario",
    "ALL_APPS",
    "FIG3_APPS",
    "GAMING_DL",
    "VRIDGE_DL",
    "WEBCAM_RTSP_UL",
    "WEBCAM_UDP_UL",
    "ScenarioConfig",
    "Summary",
    "cdf_points",
    "mb",
    "percentile",
]
