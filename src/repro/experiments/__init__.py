"""Evaluation harness: scenarios, runner, and the per-figure generators."""

from .fleet import (
    ARCHETYPES,
    FleetAccumulator,
    FleetConfig,
    FleetResult,
    FleetShard,
    UeSpec,
    assign_ues,
    build_shards,
    fleet_shard_key,
    run_fleet,
)
from .fleet_runner import FleetShardRunner, simulate_shard
from .latency import measure_rtt
from .multi_operator import MultiOperatorResult, OperatorShare, run_multi_operator
from .parallel import (
    ResultCache,
    RunReport,
    derive_seed,
    result_from_dict,
    result_to_dict,
    run_scenarios,
    scenario_key,
)
from .runner import SCHEMES, ScenarioResult, ScenarioRunner, run_scenario
from .scenarios import (
    ALL_APPS,
    FIG3_APPS,
    GAMING_DL,
    VRIDGE_DL,
    WEBCAM_RTSP_UL,
    WEBCAM_UDP_UL,
    ScenarioConfig,
)
from .stats import Summary, cdf_points, mb, percentile

__all__ = [
    "ARCHETYPES",
    "FleetAccumulator",
    "FleetConfig",
    "FleetResult",
    "FleetShard",
    "FleetShardRunner",
    "UeSpec",
    "assign_ues",
    "build_shards",
    "fleet_shard_key",
    "run_fleet",
    "simulate_shard",
    "measure_rtt",
    "MultiOperatorResult",
    "OperatorShare",
    "run_multi_operator",
    "ResultCache",
    "RunReport",
    "derive_seed",
    "result_from_dict",
    "result_to_dict",
    "run_scenarios",
    "scenario_key",
    "SCHEMES",
    "ScenarioResult",
    "ScenarioRunner",
    "run_scenario",
    "ALL_APPS",
    "FIG3_APPS",
    "GAMING_DL",
    "VRIDGE_DL",
    "WEBCAM_RTSP_UL",
    "WEBCAM_UDP_UL",
    "ScenarioConfig",
    "Summary",
    "cdf_points",
    "mb",
    "percentile",
]
