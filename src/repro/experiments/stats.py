"""Small statistics helpers for the evaluation harness."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence


def cdf_points(values: Iterable[float]) -> list[tuple[float, float]]:
    """Empirical CDF as ``(value, percentile)`` pairs, percentile in [0, 100]."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(v, 100.0 * (i + 1) / n) for i, v in enumerate(ordered)]


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (pct in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class Summary:
    """Mean / p95 / max triple, the shape the paper reports for errors."""

    mean: float
    p95: float
    max: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        """Summarize a non-empty sequence."""
        if not values:
            raise ValueError("cannot summarize an empty sequence")
        return cls(
            mean=statistics.mean(values),
            p95=percentile(values, 95.0),
            max=max(values),
            n=len(values),
        )


def mb(value_bytes: float) -> float:
    """Bytes → megabytes (decimal, as the paper reports)."""
    return value_bytes / 1e6
