"""Policy and Charging Rules Function (PCRF).

Two responsibilities from the paper's setup:

* **QCI assignment**: policy rules map flows to QoS classes — this is how
  Tencent-style gaming acceleration gets its dedicated QCI 3/7 session
  while everything else defaults to QCI 9 (§2.2).
* **Quota / throttling policy**: "unlimited" plans throttle the flow to a
  configured speed (e.g. 128 Kbps after 15 GB, the AT&T plan the paper
  cites) once usage passes the quota.  The SPGW consults
  :meth:`allowed_rate_bps` per packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch

from .qos import DEFAULT_QCI, qos_class


@dataclass(frozen=True)
class QciRule:
    """Map flows whose ID matches ``pattern`` (glob) to ``qci``."""

    pattern: str
    qci: int

    def __post_init__(self) -> None:
        qos_class(self.qci)

    def matches(self, flow_id: str) -> bool:
        """Glob match against the flow identifier."""
        return fnmatch(flow_id, self.pattern)


@dataclass(frozen=True)
class QuotaPolicy:
    """Throttle a flow to ``throttle_bps`` after ``quota_bytes`` of usage."""

    quota_bytes: int
    throttle_bps: float = 128_000.0

    def __post_init__(self) -> None:
        if self.quota_bytes <= 0:
            raise ValueError(f"quota must be positive, got {self.quota_bytes}")
        if self.throttle_bps <= 0:
            raise ValueError(f"throttle rate must be positive, got {self.throttle_bps}")


class Pcrf:
    """Rule store queried by the SPGW and the bearer-setup path."""

    def __init__(self) -> None:
        self._qci_rules: list[QciRule] = []
        self._quotas: dict[str, QuotaPolicy] = {}

    def add_qci_rule(self, pattern: str, qci: int) -> None:
        """Install a QCI mapping rule (first match wins)."""
        self._qci_rules.append(QciRule(pattern, qci))

    def qci_for(self, flow_id: str) -> int:
        """QCI for a new bearer carrying ``flow_id``."""
        for rule in self._qci_rules:
            if rule.matches(flow_id):
                return rule.qci
        return DEFAULT_QCI

    def set_quota(self, flow_id: str, policy: QuotaPolicy) -> None:
        """Attach a quota/throttle policy to one flow."""
        self._quotas[flow_id] = policy

    def allowed_rate_bps(self, flow_id: str, used_bytes: int) -> float | None:
        """Rate cap for the flow given its usage; None means unthrottled."""
        policy = self._quotas.get(flow_id)
        if policy is None or used_bytes <= policy.quota_bytes:
            return None
        return policy.throttle_bps
