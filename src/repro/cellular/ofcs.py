"""The Offline Charging System (OFCS): CDR generation and usage queries.

Produces charging data records in exactly the shape of the paper's Trace 1
(an OpenEPC CDR: servedIMSI in TBCD hex, gateway address, charging ID,
sequence number, first/last usage timestamps, time usage, and up/downlink
volumes), and answers the operator-side usage queries that TLC's
negotiation layer builds its claims from.

In TLC, the loss-selfishness cancellation runs as "a post-processing logic
of charging records in OFCS" (§6) — that logic lives in
:mod:`repro.core`; this module supplies it with records.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from xml.etree import ElementTree

from ..netsim.events import EventLoop
from ..netsim.packet import Direction
from .bearer import Bearer, BearerTable
from .identifiers import ChargingIdAllocator, GatewayAddress

#: Wall-clock anchor for rendering virtual seconds as CDR timestamps; the
#: value mirrors the timestamps of the paper's Trace 1.
EPOCH = _dt.datetime(2019, 1, 7, 7, 13, 46)


def _render_time(virtual_seconds: float) -> str:
    stamp = EPOCH + _dt.timedelta(seconds=virtual_seconds)
    return stamp.strftime("%Y-%m-%d %H:%M:%S")


@dataclass(frozen=True)
class CdrRecord:
    """One charging data record, as emitted by the gateway into the OFCS."""

    served_imsi_tbcd: str
    gateway_address: str
    charging_id: int
    sequence_number: int
    time_of_first_usage: str
    time_of_last_usage: str
    time_usage_s: int
    datavolume_uplink: int
    datavolume_downlink: int
    flow_id: str

    def to_xml(self) -> str:
        """Render the record in the paper's Trace-1 XML format."""
        root = ElementTree.Element("chargingRecord")
        fields = [
            ("servedIMSI", self.served_imsi_tbcd),
            ("gatewayAddress", self.gateway_address),
            ("chargingID", str(self.charging_id)),
            ("SequenceNumber", str(self.sequence_number)),
            ("timeOfFirstUsage", self.time_of_first_usage),
            ("timeOfLastUsage", self.time_of_last_usage),
            ("timeUsage", str(self.time_usage_s)),
            ("datavolumeUplink", str(self.datavolume_uplink)),
            ("datavolumeDownlink", str(self.datavolume_downlink)),
        ]
        for tag, text in fields:
            child = ElementTree.SubElement(root, tag)
            child.text = text
        return ElementTree.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str, flow_id: str = "") -> "CdrRecord":
        """Parse a Trace-1 style XML charging record."""
        root = ElementTree.fromstring(text)
        if root.tag != "chargingRecord":
            raise ValueError(f"not a chargingRecord: <{root.tag}>")

        def field(tag: str) -> str:
            node = root.find(tag)
            if node is None or node.text is None:
                raise ValueError(f"chargingRecord missing <{tag}>")
            return node.text

        return cls(
            served_imsi_tbcd=field("servedIMSI"),
            gateway_address=field("gatewayAddress"),
            charging_id=int(field("chargingID")),
            sequence_number=int(field("SequenceNumber")),
            time_of_first_usage=field("timeOfFirstUsage"),
            time_of_last_usage=field("timeOfLastUsage"),
            time_usage_s=int(field("timeUsage")),
            datavolume_uplink=int(field("datavolumeUplink")),
            datavolume_downlink=int(field("datavolumeDownlink")),
            flow_id=flow_id,
        )


class Ofcs:
    """Offline charging system: turns bearer counters into CDRs."""

    def __init__(
        self,
        loop: EventLoop,
        bearers: BearerTable,
        gateway_address: GatewayAddress,
        ids: ChargingIdAllocator | None = None,
        metrics=None,
        retain_records: bool = True,
    ) -> None:
        self.loop = loop
        self.bearers = bearers
        self.gateway_address = gateway_address
        self.ids = ids if ids is not None else ChargingIdAllocator()
        self.records: list[CdrRecord] = []
        self._cycle_start: dict[str, float] = {}
        self.metrics = metrics
        #: With many bearers per run (fleet shards) the CDR list grows as
        #: O(bearers × cycles); callers that only need the counters and
        #: metrics can turn retention off and keep the OFCS O(bearers).
        self.retain_records = retain_records
        self.records_emitted = 0

    # --------------------------------------------------------------- usage

    def usage_bytes(self, flow_id: str, t1: float, t2: float, direction: Direction) -> int:
        """Operator-side volume of ``flow_id`` in ``(t1, t2]`` from the gateway."""
        bearer = self.bearers.by_flow(flow_id)
        if bearer is None:
            raise KeyError(f"no bearer for flow {flow_id!r}")
        counter = bearer.uplink if direction is Direction.UPLINK else bearer.downlink
        return counter.bytes_between(t1, t2)

    def usage_by_flow(self, t1: float, t2: float, direction: Direction) -> dict[str, int]:
        """One cycle's per-flow volumes across *every* bearer.

        The fleet accounting path: one pass over the bearer table instead
        of a per-flow query loop, in the table's (insertion) order so the
        result is deterministic.
        """
        counters = {}
        for bearer in self.bearers.all():
            counter = bearer.uplink if direction is Direction.UPLINK else bearer.downlink
            counters[bearer.flow_id] = counter.bytes_between(t1, t2)
        return counters

    # ---------------------------------------------------------------- CDRs

    def close_cycle(self, flow_id: str, t_end: float | None = None) -> CdrRecord:
        """Emit a CDR covering the flow's usage since its last cycle close."""
        bearer = self.bearers.by_flow(flow_id)
        if bearer is None:
            raise KeyError(f"no bearer for flow {flow_id!r}")
        t2 = self.loop.now() if t_end is None else t_end
        t1 = self._cycle_start.get(flow_id, 0.0)
        if t2 < t1:
            raise ValueError(f"cycle end {t2} precedes cycle start {t1}")
        record = self._build_record(bearer, t1, t2)
        self._cycle_start[flow_id] = t2
        self.records_emitted += 1
        if self.retain_records:
            self.records.append(record)
        if self.metrics is not None:
            self.metrics.counter("cellular.ofcs.cdrs").inc()
            self.metrics.counter("cellular.ofcs.uplink_bytes").inc(
                record.datavolume_uplink
            )
            self.metrics.counter("cellular.ofcs.downlink_bytes").inc(
                record.datavolume_downlink
            )
        return record

    def _build_record(self, bearer: Bearer, t1: float, t2: float) -> CdrRecord:
        first = bearer.first_usage if bearer.first_usage is not None else t1
        last = bearer.last_usage if bearer.last_usage is not None else t1
        first = max(first, t1)
        last = min(max(last, first), t2)
        return CdrRecord(
            served_imsi_tbcd=bearer.imsi.tbcd_hex(),
            gateway_address=str(self.gateway_address),
            charging_id=bearer.charging_id,
            sequence_number=self.ids.next_sequence(),
            time_of_first_usage=_render_time(first),
            time_of_last_usage=_render_time(last),
            time_usage_s=int(round(last - first)),
            datavolume_uplink=bearer.uplink.bytes_between(t1, t2),
            datavolume_downlink=bearer.downlink.bytes_between(t1, t2),
            flow_id=bearer.flow_id,
        )
