"""End-to-end assembly of the cellular network.

Wires the full data path of the paper's testbed (Figure 11):

    device app → modem → [air UL] → eNodeB → backhaul → SPGW → LAN → server
    server    → LAN → SPGW (charge) → backhaul → eNodeB → [air DL] → modem → device app

and exposes the two operator-side counting points TLC builds on: the SPGW
bearer counters (uplink record, reused as-is) and the RRC COUNTER CHECK
reports from the modem (downlink record).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..netsim.events import EventLoop
from ..netsim.link import Link
from ..netsim.packet import Direction, FlowStats, Packet
from ..netsim.queueing import DropTailQueue
from ..netsim.rng import StreamRegistry
from .bearer import Bearer, BearerTable
from .enodeb import ENodeB, ENodeBConfig, UeContext
from .gateway import Spgw
from .hss import Hss, SubscriberProfile
from .identifiers import ChargingIdAllocator, GatewayAddress, Imsi
from .middlebox import SlaMiddlebox
from .mme import Mme
from .ofcs import Ofcs
from .pcrf import Pcrf
from .radio import RadioChannel, RadioProfile
from .rrc import CounterCheckResponse, HardwareModem

DeliverToDevice = Callable[[Packet], None]
CounterReportSink = Callable[[CounterCheckResponse], None]


@dataclass
class NetworkConfig:
    """Top-level knobs of the simulated network."""

    enodeb: ENodeBConfig = field(default_factory=ENodeBConfig)
    n_cells: int = 1
    gateway_address: str = "192.168.2.11"
    backhaul_latency_s: float = 0.002
    lan_latency_s: float = 0.0005
    modem_ul_buffer_bytes: int = 32 * 1024
    #: Keep emitted CDR objects in memory (fleet shards with many bearers
    #: turn this off; counters and metrics still accumulate).
    retain_cdrs: bool = True


class UeAccess:
    """A device's handle onto the network: its modem-side uplink path.

    Uplink packets offered while the radio is in outage sit in a small
    modem buffer (drained on reconnect); overflow is physical-layer loss.
    The device's *application* monitor counts sent bytes regardless — the
    divergence between those two counts is uplink charging gap.
    """

    def __init__(self, network: "CellularNetwork", ue: UeContext) -> None:
        self.network = network
        self.ue = ue
        self.modem = ue.modem
        self.radio = ue.radio
        self._ul_buffer = DropTailQueue(
            network.config.modem_ul_buffer_bytes, drop_layer="phy-intermittent"
        )
        ue.radio.on_outage_end.append(self._drain_ul_buffer)

    @property
    def imsi(self) -> str:
        """Subscriber identity of this UE."""
        return self.ue.imsi

    @property
    def attached(self) -> bool:
        """Whether the network currently considers the UE attached."""
        return self.ue.attached

    def send_uplink(self, packet: Packet) -> None:
        """Transmit one uplink packet from the device.

        The modem counter ticks for every packet the modem accepts — in
        RLC unacknowledged mode (UDP traffic) the modem transmits into
        dead air during an outage and still counts the bytes as sent, so
        the operator's COUNTER-CHECK-based estimate of the sent volume
        tracks the app's even under intermittent connectivity.  A small
        modem buffer recovers the tail of an outage on reconnect.
        """
        if packet.direction is not Direction.UPLINK:
            raise ValueError("send_uplink requires an uplink packet")
        if not self.ue.attached:
            packet.mark_dropped("detached")
            return
        self.modem.count_uplink(packet)
        if not self.radio.connected:
            if not self._ul_buffer.push(packet):
                packet.mark_dropped("phy-intermittent")
            return
        self.network.serving_enodeb(self.imsi).receive_uplink(self.ue, packet)

    def _drain_ul_buffer(self) -> None:
        if not self.ue.attached:
            return
        for packet in self._ul_buffer.drain():
            self.network.serving_enodeb(self.imsi).receive_uplink(self.ue, packet)


class CellularNetwork:
    """The operator's network: RAN + EPC, one cell."""

    def __init__(
        self,
        loop: EventLoop,
        rng: StreamRegistry,
        config: NetworkConfig | None = None,
        metrics=None,
    ) -> None:
        self.loop = loop
        self.rng = rng
        self.config = config if config is not None else NetworkConfig()
        self.metrics = metrics
        self.hss = Hss()
        self.bearers = BearerTable()
        self.mme = Mme(self.hss, self.bearers)
        self.pcrf = Pcrf()
        address = GatewayAddress(self.config.gateway_address)
        self.spgw = Spgw(loop, self.bearers, address, policy=self.pcrf, metrics=metrics)
        self.ids = ChargingIdAllocator()
        self.ofcs = Ofcs(
            loop, self.bearers, address, self.ids, metrics=metrics,
            retain_records=self.config.retain_cdrs,
        )
        if self.config.n_cells < 1:
            raise ValueError(f"need at least one cell, got {self.config.n_cells}")
        self.enodebs = [
            ENodeB(loop, rng, self.config.enodeb, mme=self.mme, name=f"enb{i}")
            for i in range(self.config.n_cells)
        ]
        self.enodeb = self.enodebs[0]  # the default (single-cell) view
        self._serving: dict[str, int] = {}
        self._accesses: dict[str, UeAccess] = {}
        self.handovers = 0
        # In-flight handover interruptions, keyed by IMSI: epoch counter,
        # the *pre-handover* buffer capacity and drop layer to restore,
        # and whether the break forced the radio down.  A second handover
        # during an interruption supersedes the first (by epoch), so the
        # restore never compounds an already-inflated X2 capacity.
        self._handover_restore: dict[str, tuple[int, int, str, bool]] = {}
        # Backhaul (eNodeB <-> SPGW) and LAN (SPGW <-> edge server) links.
        self._backhaul_ul = Link(
            loop, self.spgw.receive_uplink,
            latency=self.config.backhaul_latency_s, name="backhaul-ul",
            metrics=metrics,
        )
        for enodeb in self.enodebs:
            enodeb.connect_core(self._backhaul_ul.send)
        self.middlebox = SlaMiddlebox(loop, self._forward_backhaul_dl)
        self.spgw.connect_enodeb(self.middlebox.process)
        self._lan_dl = Link(
            loop, self.spgw.send_downlink,
            latency=self.config.lan_latency_s, name="lan-dl",
            metrics=metrics,
        )

    # --------------------------------------------------------- subscribers

    def attach_device(
        self,
        imsi: Imsi,
        radio_profile: RadioProfile | None = None,
        deliver: DeliverToDevice | None = None,
        counter_report_sink: CounterReportSink | None = None,
        device_name: str = "device",
        record_rss: bool = False,
        cell: int = 0,
    ) -> UeAccess:
        """Provision, attach and radio-register one device; returns its access."""
        key = str(imsi)
        # Validate before touching HSS/MME state: a failed attach must not
        # leave a half-provisioned subscriber behind.
        if not 0 <= cell < len(self.enodebs):
            raise ValueError(
                f"no such cell: {cell} (network has {len(self.enodebs)})"
            )
        if key in self._serving:
            raise ValueError(f"IMSI {imsi} is already attached")
        self.hss.provision(SubscriberProfile(imsi, device_name=device_name))
        self.mme.initial_attach(imsi)
        profile = radio_profile if radio_profile is not None else RadioProfile()
        radio = RadioChannel(
            self.loop, self.rng, profile, name=str(imsi), record_rss=record_rss
        )
        modem = HardwareModem(self.loop, name=f"modem:{imsi}")
        ue = self.enodebs[cell].register_ue(
            str(imsi),
            radio,
            modem,
            deliver if deliver is not None else _discard,
            counter_report_sink=counter_report_sink,
        )
        self._serving[str(imsi)] = cell
        radio.start()
        access = UeAccess(self, ue)
        self._accesses[str(imsi)] = access
        return access

    def serving_enodeb(self, imsi: Imsi | str) -> ENodeB:
        """The cell currently serving a subscriber."""
        try:
            return self.enodebs[self._serving[str(imsi)]]
        except KeyError:
            raise KeyError(f"IMSI {imsi} is not served by any cell") from None

    def handover(
        self,
        imsi: Imsi | str,
        target_cell: int,
        interruption_s: float = 0.05,
        x2_forwarding: bool = False,
    ) -> None:
        """Move a UE to ``target_cell`` (X2-style inter-cell handover).

        The source cell runs a final RRC COUNTER CHECK (the operator's
        record stays fresh across the move — the modem's counters travel
        with the UE), then hands the context over.  Without X2 the
        source's buffered downlink is discarded as ``link-mobility``
        loss; with X2 it is forwarded into the target's buffer.  The UE
        is unreachable for ``interruption_s`` (control-plane break),
        during which arriving traffic buffers at the *target*.
        """
        key = str(imsi)
        source_index = self._serving[key]
        if target_cell == source_index:
            raise ValueError(f"UE {key} is already served by cell {target_cell}")
        if not 0 <= target_cell < len(self.enodebs):
            raise ValueError(f"no such cell: {target_cell}")
        source = self.enodebs[source_index]
        target = self.enodebs[target_cell]
        ue = source.ue(key)
        ue.rrc.perform_counter_check()
        source.evict(key)
        # A handover arriving during an earlier interruption reuses the
        # *original* saved state instead of re-saving the inflated one,
        # so back-to-back handovers cannot compound the X2 capacity.
        pending = self._handover_restore.get(key)
        if pending is None:
            epoch = 1
            base_capacity = ue.dl_buffer.capacity_bytes
            base_layer = ue.dl_buffer.drop_layer
        else:
            epoch = pending[0] + 1
            base_capacity = pending[1]
            base_layer = pending[2]
        buffered = ue.dl_buffer.drain()
        if x2_forwarding:
            # While the break lasts, X2 queues arriving traffic in the
            # forwarding pipe in addition to the target's own buffer —
            # raise the cap *before* re-queueing so the packets X2 is
            # meant to preserve can never tail-drop out of it.
            ue.dl_buffer.capacity_bytes = base_capacity * 4
            ue.dl_buffer.drop_layer = base_layer
            for packet in buffered:
                ue.dl_buffer.push(packet)
        else:
            for packet in buffered:
                packet.mark_dropped("link-mobility")
            ue.dl_buffer.capacity_bytes = base_capacity
            ue.dl_buffer.drop_layer = "link-mobility"
        target.admit(ue)
        self._serving[key] = target_cell
        self.handovers += 1
        # Control-plane interruption: the radio is down until the target
        # cell completes the access procedure.  Recorded through the
        # radio's own bookkeeping so outage_count / total_outage_time /
        # outage_elapsed() (the RLF-timer input) see the break.
        forced = ue.radio.force_outage_start() or (
            pending is not None and pending[3]
        )
        self._handover_restore[key] = (epoch, base_capacity, base_layer, forced)
        self.loop.schedule(interruption_s, self._complete_handover, ue, key, epoch)

    def _complete_handover(self, ue, key: str, epoch: int) -> None:
        pending = self._handover_restore.get(key)
        if pending is None or pending[0] != epoch:
            return  # superseded by a later handover; its completion restores
        del self._handover_restore[key]
        _, base_capacity, base_layer, forced = pending
        ue.dl_buffer.capacity_bytes = base_capacity
        ue.dl_buffer.drop_layer = base_layer
        if forced:
            ue.radio.force_outage_end()

    def access(self, imsi: Imsi | str) -> UeAccess:
        """Look up a registered device's access handle."""
        try:
            return self._accesses[str(imsi)]
        except KeyError:
            raise KeyError(f"IMSI {imsi} has no registered access") from None

    def create_bearer(self, imsi: Imsi, flow_id: str, qci: int | None = None) -> Bearer:
        """Create a bearer for one flow; QCI from PCRF rules unless forced."""
        resolved_qci = qci if qci is not None else self.pcrf.qci_for(flow_id)
        bearer = Bearer(
            imsi=imsi,
            flow_id=flow_id,
            qci=resolved_qci,
            charging_id=self.ids.next_charging_id(),
        )
        self.bearers.add(bearer)
        return bearer

    # ----------------------------------------------------------- data path

    def send_downlink(self, packet: Packet) -> None:
        """Inject a downlink packet from the edge server (over the LAN)."""
        self._lan_dl.send(packet)

    def register_uplink_sink(self, flow_id: str, sink: Callable[[Packet], None]) -> None:
        """Deliver uplink packets of ``flow_id`` to the edge server."""
        self.spgw.register_uplink_sink(flow_id, sink)

    def set_background_load(
        self, dl_bps: float, ul_bps: float, qci: int = 9, cell: int | None = None
    ) -> None:
        """Install iperf-style fluid background traffic on both directions.

        With ``cell`` given, only that cell is loaded (cells have
        independent air capacity); default loads every cell.
        """
        cells = self.enodebs if cell is None else [self.enodebs[cell]]
        for enodeb in cells:
            enodeb.set_background(True, qci, dl_bps)
            enodeb.set_background(False, qci, ul_bps)

    def set_sla_budget(self, flow_id: str, budget_s: float | None) -> None:
        """Enforce an age budget on one flow's downlink (None clears it).

        Expired packets drop at the operator's middlebox *after* charging
        — the application-layer loss class of §3.1.
        """
        self.middlebox.set_budget(flow_id, budget_s)

    def _forward_backhaul_dl(self, imsi: str, packet: Packet) -> None:
        # Route on the *current* serving cell at delivery time, so packets
        # in flight during a handover land at the target cell.
        def deliver() -> None:
            self.serving_enodeb(imsi).receive_downlink(imsi, packet)

        self.loop.schedule(self.config.backhaul_latency_s, deliver)

    # ------------------------------------------------------------ counters

    def gateway_usage(self, flow_id: str, t1: float, t2: float, direction: Direction) -> int:
        """Gateway-counted bytes (the legacy charging record source)."""
        return self.ofcs.usage_bytes(flow_id, t1, t2, direction)

    def drop_summary(self) -> dict[str, FlowStats]:
        """Aggregate loss taxonomy across the network (for diagnostics).

        Air-congestion losses are summed over *every* cell — fleet shards
        give each UE its own cell, so reading only cell 0 would silently
        under-report the taxonomy for any multi-cell topology.
        """
        air_dl = FlowStats()
        air_ul = FlowStats()
        for enodeb in self.enodebs:
            air_dl = air_dl.merge(enodeb.downlink_air.dropped)
            air_ul = air_ul.merge(enodeb.uplink_air.dropped)
        return {
            "air-dl-congestion": air_dl,
            "air-ul-congestion": air_ul,
            "gateway-detached": self.spgw.detached_drops,
            "gateway-policed": self.spgw.policed_drops,
        }


def _discard(_packet: Packet) -> None:
    """Default device sink: drop delivered packets on the floor."""
