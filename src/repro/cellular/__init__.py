"""4G/5G cellular substrate: RAN + EPC with volume-based charging.

Models the paper's testbed — OpenEPC core (SPGW/OFCS/PCRF/MME/HSS) behind
a small cell — at the fidelity the charging-gap study needs: the *where*
of byte counting vs. the *where* of loss.
"""

from .air import AirInterface, RateWindow
from .bearer import Bearer, BearerTable
from .enodeb import ENodeB, ENodeBConfig, UeContext
from .gateway import Spgw, TokenBucket
from .hss import Hss, SubscriberProfile
from .identifiers import ChargingIdAllocator, GatewayAddress, Imsi, make_test_imsi
from .middlebox import SlaMiddlebox
from .mme import AttachRecord, Mme
from .mobility import HandoverConfig, HandoverProcess
from .network import CellularNetwork, NetworkConfig, UeAccess
from .ofcs import CdrRecord, Ofcs
from .pcrf import Pcrf, QciRule, QuotaPolicy
from .qos import (
    DEFAULT_QCI,
    GAMING_GBR_QCI,
    GAMING_QCI,
    QCI_TABLE,
    QosClass,
    ResourceType,
    qos_class,
    scheduler_priority,
)
from .radio import GOOD_RSS_DBM, OUTAGE_FLOOR_DBM, RadioChannel, RadioProfile, RssSample
from .rrc import CounterCheckResponse, HardwareModem, RrcConnectionManager, RrcState

__all__ = [
    "AirInterface",
    "RateWindow",
    "Bearer",
    "BearerTable",
    "ENodeB",
    "ENodeBConfig",
    "UeContext",
    "Spgw",
    "TokenBucket",
    "Hss",
    "SubscriberProfile",
    "ChargingIdAllocator",
    "GatewayAddress",
    "Imsi",
    "make_test_imsi",
    "SlaMiddlebox",
    "HandoverConfig",
    "HandoverProcess",
    "AttachRecord",
    "Mme",
    "CellularNetwork",
    "NetworkConfig",
    "UeAccess",
    "CdrRecord",
    "Ofcs",
    "Pcrf",
    "QciRule",
    "QuotaPolicy",
    "DEFAULT_QCI",
    "GAMING_GBR_QCI",
    "GAMING_QCI",
    "QCI_TABLE",
    "QosClass",
    "ResourceType",
    "qos_class",
    "scheduler_priority",
    "GOOD_RSS_DBM",
    "OUTAGE_FLOOR_DBM",
    "RadioChannel",
    "RadioProfile",
    "RssSample",
    "CounterCheckResponse",
    "HardwareModem",
    "RrcConnectionManager",
    "RrcState",
]
