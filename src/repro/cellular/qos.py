"""3GPP QoS Class Identifiers (QCI), per TS 23.203 Table 6.1.7.

The paper's experiments rely on three classes: QCI 3 (real-time gaming,
50 ms delay budget), QCI 7 (voice / interactive gaming, 100 ms) and QCI 9
(best-effort default).  Tencent's gaming acceleration maps player-control
traffic to QCI 3/7 while the iperf background stays at QCI 9; strict
priority between them is what keeps the gaming charging gap small in
Figure 12d even under congestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ResourceType(Enum):
    """Whether the bearer has a guaranteed bit rate."""

    GBR = "GBR"
    NON_GBR = "non-GBR"


@dataclass(frozen=True)
class QosClass:
    """One row of the 3GPP QCI table."""

    qci: int
    resource_type: ResourceType
    priority: int
    packet_delay_budget_ms: int
    packet_error_loss_rate: float
    example_services: str

    def outranks(self, other: "QosClass") -> bool:
        """True if this class is served before ``other`` (lower priority #)."""
        return self.priority < other.priority


# TS 23.203 standardized characteristics (Rel-14 subset used by the paper).
QCI_TABLE: dict[int, QosClass] = {
    1: QosClass(1, ResourceType.GBR, 2, 100, 1e-2, "Conversational voice"),
    2: QosClass(2, ResourceType.GBR, 4, 150, 1e-3, "Conversational video"),
    3: QosClass(3, ResourceType.GBR, 3, 50, 1e-3, "Real-time gaming"),
    4: QosClass(4, ResourceType.GBR, 5, 300, 1e-6, "Buffered video"),
    5: QosClass(5, ResourceType.NON_GBR, 1, 100, 1e-6, "IMS signalling"),
    6: QosClass(6, ResourceType.NON_GBR, 6, 300, 1e-6, "Buffered video, TCP apps"),
    7: QosClass(7, ResourceType.NON_GBR, 7, 100, 1e-3, "Voice, video, interactive gaming"),
    8: QosClass(8, ResourceType.NON_GBR, 8, 300, 1e-6, "TCP apps (premium)"),
    9: QosClass(9, ResourceType.NON_GBR, 9, 300, 1e-6, "TCP apps (default)"),
}

DEFAULT_QCI = 9
GAMING_QCI = 7
GAMING_GBR_QCI = 3


def qos_class(qci: int) -> QosClass:
    """Look up a QCI row; raises ``KeyError`` with a helpful message."""
    try:
        return QCI_TABLE[qci]
    except KeyError:
        raise KeyError(f"QCI {qci} is not a standardized class (know {sorted(QCI_TABLE)})") from None


def scheduler_priority(qci: int) -> int:
    """Priority key for strict-priority scheduling (lower serves first)."""
    return qos_class(qci).priority
