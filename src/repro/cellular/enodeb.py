"""The eNodeB (base station): air scheduling, outage buffering, RLF.

Responsibilities reproduced from the paper's testbed behaviour:

* carries uplink and downlink traffic over the shared :class:`AirInterface`
  (where congestion losses happen — *after* the gateway has charged
  downlink traffic, which is the paper's IP-layer-congestion gap);
* buffers downlink packets in a small per-UE buffer while the UE's radio
  is in outage, draining on reconnect (Figure 4, t≈240 s: the gap dips as
  the buffer recovers some loss) and tail-dropping the rest;
* declares a **radio link failure** when an outage exceeds 5 s (the
  paper's measured detach latency), detaching the UE via the MME so the
  gateway stops charging — which is why only the sub-5 s intermittent
  outages accumulate charging gap;
* drives the per-UE RRC connection manager (COUNTER CHECK + release).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from ..netsim.events import Event, EventLoop
from ..netsim.packet import FlowStats, Packet
from ..netsim.queueing import DropTailQueue
from ..netsim.rng import StreamRegistry
from .air import AirInterface
from .radio import RadioChannel
from .rrc import HardwareModem, RrcConnectionManager

DeliverToDevice = Callable[[Packet], None]
ForwardToCore = Callable[[Packet], None]


class MobilityManager(Protocol):
    """The slice of the MME the eNodeB needs."""

    def detach(self, imsi: str, cause: str) -> None: ...

    def attach(self, imsi: str) -> None: ...


@dataclass
class ENodeBConfig:
    """Knobs of the base station."""

    dl_capacity_bps: float = 130e6
    ul_capacity_bps: float = 130e6
    usable_fraction: float = 0.92
    outage_buffer_bytes: int = 64 * 1024
    rlf_timeout_s: float = 5.0
    attach_delay_s: float = 0.5
    rrc_inactivity_timeout_s: float = 10.0
    counter_check_interval_s: float | None = 5.0


class UeContext:
    """Per-UE state held by the (currently serving) base station."""

    def __init__(
        self,
        imsi: str,
        radio: RadioChannel,
        modem: HardwareModem,
        rrc: RrcConnectionManager,
        deliver: DeliverToDevice,
        buffer_bytes: int,
    ) -> None:
        self.imsi = imsi
        self.radio = radio
        self.modem = modem
        self.rrc = rrc
        self.deliver = deliver
        self.attached = True
        self.dl_buffer = DropTailQueue(buffer_bytes, drop_layer="phy-intermittent")
        self.rlf_timer: Event | None = None
        self.rlf_count = 0
        self.buffered_recovered = FlowStats()
        self.dropped_detached = FlowStats()
        # Radio callbacks installed by the serving cell; kept so a
        # handover can unhook them when the UE moves (see ENodeB.evict).
        self.outage_callbacks: tuple | None = None


class ENodeB:
    """A single cell serving one or more UEs."""

    def __init__(
        self,
        loop: EventLoop,
        rng: StreamRegistry,
        config: ENodeBConfig | None = None,
        mme: MobilityManager | None = None,
        name: str = "enb",
    ) -> None:
        self.loop = loop
        self.config = config if config is not None else ENodeBConfig()
        self.mme = mme
        self.name = name
        self.downlink_air = AirInterface(
            loop, rng, f"{name}:dl",
            capacity_bps=self.config.dl_capacity_bps,
            usable_fraction=self.config.usable_fraction,
        )
        self.uplink_air = AirInterface(
            loop, rng, f"{name}:ul",
            capacity_bps=self.config.ul_capacity_bps,
            usable_fraction=self.config.usable_fraction,
        )
        self._ues: dict[str, UeContext] = {}
        self._forward_to_core: ForwardToCore | None = None

    # ------------------------------------------------------------ plumbing

    def connect_core(self, forward: ForwardToCore) -> None:
        """Attach the backhaul towards the SPGW (uplink direction)."""
        self._forward_to_core = forward

    def register_ue(
        self,
        imsi: str,
        radio: RadioChannel,
        modem: HardwareModem,
        deliver: DeliverToDevice,
        counter_report_sink=None,
    ) -> UeContext:
        """Admit a UE to the cell and wire its radio callbacks."""
        if imsi in self._ues:
            raise ValueError(f"UE {imsi} already registered at {self.name}")
        rrc = RrcConnectionManager(
            self.loop,
            modem,
            inactivity_timeout_s=self.config.rrc_inactivity_timeout_s,
            counter_check_interval_s=self.config.counter_check_interval_s,
            report_sink=counter_report_sink,
        )
        ue = UeContext(imsi, radio, modem, rrc, deliver, self.config.outage_buffer_bytes)
        self.admit(ue)
        return ue

    def admit(self, ue: UeContext) -> None:
        """Take over serving a UE (initial registration or handover-in)."""
        if ue.imsi in self._ues:
            raise ValueError(f"UE {ue.imsi} already served by {self.name}")
        self._ues[ue.imsi] = ue
        on_start = lambda: self._on_outage_start(ue)  # noqa: E731
        on_end = lambda: self._on_outage_end(ue)  # noqa: E731
        ue.radio.on_outage_start.append(on_start)
        ue.radio.on_outage_end.append(on_end)
        ue.outage_callbacks = (on_start, on_end)

    def evict(self, imsi: str) -> UeContext:
        """Stop serving a UE (handover-out); returns its movable context.

        The caller owns what happens to the downlink buffer (X2 forward
        or discard) — it is handed over untouched.
        """
        ue = self.ue(imsi)
        del self._ues[imsi]
        if ue.rlf_timer is not None:
            ue.rlf_timer.cancel()
            ue.rlf_timer = None
        if ue.outage_callbacks is not None:
            on_start, on_end = ue.outage_callbacks
            ue.radio.on_outage_start.remove(on_start)
            ue.radio.on_outage_end.remove(on_end)
            ue.outage_callbacks = None
        return ue

    def ue(self, imsi: str) -> UeContext:
        """Look up a registered UE."""
        try:
            return self._ues[imsi]
        except KeyError:
            raise KeyError(f"UE {imsi} not registered at {self.name}") from None

    def set_background(self, direction_dl: bool, qci: int, rate_bps: float) -> None:
        """Install fluid background load on one air direction."""
        air = self.downlink_air if direction_dl else self.uplink_air
        air.set_background(qci, rate_bps)

    # ------------------------------------------------------------ downlink

    def receive_downlink(self, imsi: str, packet: Packet) -> None:
        """Accept a downlink packet from the core for ``imsi``."""
        ue = self.ue(imsi)
        if not ue.attached:
            # Should not happen: the gateway drops traffic for detached UEs
            # before charging.  Kept as a safety net.
            packet.mark_dropped("detached")
            ue.dropped_detached.count(packet)
            return
        ue.rrc.on_data_activity()
        self.downlink_air.submit(packet, lambda p: self._air_deliver_dl(ue, p))

    def _air_deliver_dl(self, ue: UeContext, packet: Packet) -> None:
        if not ue.attached:
            packet.mark_dropped("detached")
            ue.dropped_detached.count(packet)
            return
        if not ue.radio.connected:
            ue.dl_buffer.push(packet)  # overflow => phy-intermittent loss
            return
        if not ue.radio.survives_air():
            packet.mark_dropped("phy-rss")
            return
        packet.delivered_at = self.loop.now()
        ue.modem.count_downlink(packet)
        ue.deliver(packet)

    # -------------------------------------------------------------- uplink

    def receive_uplink(self, ue: UeContext, packet: Packet) -> None:
        """Accept an uplink packet from a UE's modem (radio is up)."""
        if not ue.attached:
            packet.mark_dropped("detached")
            ue.dropped_detached.count(packet)
            return
        ue.rrc.on_data_activity()
        self.uplink_air.submit(packet, lambda p: self._air_deliver_ul(ue, p))

    def _air_deliver_ul(self, ue: UeContext, packet: Packet) -> None:
        if not ue.radio.survives_air():
            packet.mark_dropped("phy-rss")
            return
        if self._forward_to_core is None:
            raise RuntimeError(f"{self.name} has no backhaul to the core")
        self._forward_to_core(packet)

    # ------------------------------------------------------------- outages

    def _on_outage_start(self, ue: UeContext) -> None:
        ue.rlf_timer = self.loop.schedule(
            self.config.rlf_timeout_s, self._check_rlf, ue
        )

    def _check_rlf(self, ue: UeContext) -> None:
        if ue.radio.connected or not ue.attached:
            return
        # Radio link failure: abort RRC (no counter check possible), detach.
        ue.rlf_count += 1
        ue.rrc.abort()
        ue.attached = False
        for packet in ue.dl_buffer.drain():
            packet.mark_dropped("phy-intermittent")
        if self.mme is not None:
            self.mme.detach(ue.imsi, cause="radio-link-failure")

    def _on_outage_end(self, ue: UeContext) -> None:
        if ue.rlf_timer is not None:
            ue.rlf_timer.cancel()
            ue.rlf_timer = None
        if not ue.attached:
            self.loop.schedule(self.config.attach_delay_s, self._reattach, ue)
            return
        self._drain_buffer(ue)

    def _reattach(self, ue: UeContext) -> None:
        if ue.attached or not ue.radio.connected:
            return
        ue.attached = True
        if self.mme is not None:
            self.mme.attach(ue.imsi)
        self._drain_buffer(ue)

    def _drain_buffer(self, ue: UeContext) -> None:
        recovered = ue.dl_buffer.drain()
        for packet in recovered:
            ue.buffered_recovered.count(packet)
            self.downlink_air.submit(packet, lambda p: self._air_deliver_dl(ue, p))
