"""5G system naming for the same network functions.

The paper targets "4G/5G" throughout, noting (footnote 1) that the data
gateways are S-GW/P-GW in LTE and **UPF** in 5G, the charging function
CDF in LTE and **CHF** in 5G; base stations are gNBs, the MME's role
moves to the **AMF**.  The behaviours TLC relies on are identical, so
the 5G deployment is the same code under its TS 23.501 names.

This module provides those aliases — so 5G-oriented code reads naturally
(``Upf``, ``Chf``, ``Gnb``) while sharing one implementation — plus the
name map itself for documentation and tests.
"""

from __future__ import annotations

from .enodeb import ENodeB, ENodeBConfig
from .gateway import Spgw
from .mme import Mme
from .ofcs import Ofcs
from .pcrf import Pcrf

# 5G system aliases (TS 23.501 / TS 32.291 naming).
Upf = Spgw  # User Plane Function     <- S-GW/P-GW
Chf = Ofcs  # Charging Function       <- CDF/OFCS
Gnb = ENodeB  # NR NodeB              <- eNodeB
GnbConfig = ENodeBConfig
Amf = Mme  # Access & Mobility Mgmt   <- MME
Pcf = Pcrf  # Policy Control Function <- PCRF

#: 4G → 5G function-name mapping, as the paper's footnote gives it.
FUNCTION_NAMES_5G: dict[str, str] = {
    "S-GW/P-GW": "UPF",
    "CDF/OFCS": "CHF",
    "eNodeB": "gNB",
    "MME": "AMF",
    "PCRF": "PCF",
    "RRC (TS 36.331)": "RRC (TS 38.331)",
}
