"""Home Subscriber Server: the subscriber database.

Holds the provisioning state the MME checks at attach: which IMSIs exist,
which data plan each subscribes to, and a human-readable device label used
in experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from .identifiers import Imsi


@dataclass(frozen=True)
class SubscriberProfile:
    """Provisioned state of one subscriber."""

    imsi: Imsi
    device_name: str = "device"
    plan_id: str = "default"


class Hss:
    """IMSI-keyed subscriber registry."""

    def __init__(self) -> None:
        self._subscribers: dict[str, SubscriberProfile] = {}

    def provision(self, profile: SubscriberProfile) -> None:
        """Add (or replace) a subscriber record."""
        self._subscribers[str(profile.imsi)] = profile

    def lookup(self, imsi: str) -> SubscriberProfile:
        """Fetch a subscriber; raises KeyError for unknown IMSIs."""
        try:
            return self._subscribers[imsi]
        except KeyError:
            raise KeyError(f"IMSI {imsi} not provisioned") from None

    def is_provisioned(self, imsi: str) -> bool:
        """True if the IMSI exists in the registry."""
        return imsi in self._subscribers

    def __len__(self) -> int:
        return len(self._subscribers)
