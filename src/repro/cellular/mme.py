"""Mobility Management Entity: attach / detach state.

On a radio-link-failure detach (reported by the eNodeB after the 5 s RLF
timeout) the MME deactivates the subscriber's bearers, so the SPGW stops
charging downlink traffic — the paper's observation that persistent
no-signal periods do *not* grow the charging gap, only the sub-5 s
intermittent ones do (§3.2, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bearer import BearerTable
from .hss import Hss
from .identifiers import Imsi


@dataclass
class AttachRecord:
    """Bookkeeping for one subscriber's attach history."""

    attached: bool = True
    attaches: int = 1
    detaches: int = 0
    detach_causes: list[str] = field(default_factory=list)


class Mme:
    """Tracks which UEs are attached and toggles their bearers."""

    def __init__(self, hss: Hss, bearers: BearerTable) -> None:
        self.hss = hss
        self.bearers = bearers
        self._records: dict[str, AttachRecord] = {}

    def initial_attach(self, imsi: Imsi) -> None:
        """First attach of a provisioned subscriber."""
        key = str(imsi)
        self.hss.lookup(key)  # raises for unknown subscribers
        if key in self._records:
            raise ValueError(f"IMSI {key} already attached")
        self._records[key] = AttachRecord()

    def is_attached(self, imsi: str) -> bool:
        """Current attach state (False for unknown IMSIs)."""
        record = self._records.get(imsi)
        return record.attached if record is not None else False

    def record(self, imsi: str) -> AttachRecord:
        """Full attach bookkeeping for one subscriber."""
        try:
            return self._records[imsi]
        except KeyError:
            raise KeyError(f"IMSI {imsi} never attached") from None

    def detach(self, imsi: str, cause: str = "network") -> None:
        """Detach a UE: deactivate every bearer so charging stops."""
        record = self.record(imsi)
        if not record.attached:
            return
        record.attached = False
        record.detaches += 1
        record.detach_causes.append(cause)
        for bearer in self.bearers.by_imsi(Imsi(imsi)):
            bearer.deactivate()

    def attach(self, imsi: str) -> None:
        """Re-attach a UE: bearers resume carrying (and charging) traffic."""
        record = self.record(imsi)
        if record.attached:
            return
        record.attached = True
        record.attaches += 1
        for bearer in self.bearers.by_imsi(Imsi(imsi)):
            bearer.reactivate()
