"""Link-layer mobility: handovers and their charging loss (§3.1 class 2).

A moving device periodically switches base stations.  During the handover
interruption the target cell cannot yet deliver and the source cell's
buffered downlink packets are discarded unless X2 forwarding is enabled —
data the gateway has already charged.  The paper's taxonomy cites this as
the second loss class (reference [10]'s roaming study).

:class:`HandoverProcess` drives periodic handovers for one UE on the
simulated cell: each handover forces a short radio interruption labelled
``link-mobility`` (distinct from ``phy-intermittent`` outages, so the loss
taxonomy stays attributable) and, without X2, drops the packets buffered
at the source cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.events import EventLoop
from ..netsim.packet import FlowStats
from ..netsim.rng import StreamRegistry
from .enodeb import UeContext


@dataclass
class HandoverConfig:
    """Mobility pattern of one UE."""

    interval_s: float = 30.0  # time between handovers
    interruption_s: float = 0.05  # control-plane break (typ. 30–60 ms)
    x2_forwarding: bool = False  # forward source-cell buffer to target
    interval_jitter: float = 0.3  # relative spread of the interval

    def __post_init__(self) -> None:
        if self.interval_s <= 0 or self.interruption_s <= 0:
            raise ValueError("handover interval and interruption must be positive")


class HandoverProcess:
    """Periodic handovers for one UE."""

    def __init__(
        self,
        loop: EventLoop,
        rng: StreamRegistry,
        ue: UeContext,
        config: HandoverConfig | None = None,
    ) -> None:
        self.loop = loop
        self.ue = ue
        self.config = config if config is not None else HandoverConfig()
        self._rng = rng.stream(f"handover:{ue.imsi}")
        self.handovers = 0
        self.dropped = FlowStats()
        self.forwarded = FlowStats()
        self._started = False
        self._saved_drop_layer: str | None = None
        self._saved_capacity: int | None = None

    def start(self) -> None:
        """Begin the mobility pattern."""
        if self._started:
            raise RuntimeError("handover process already started")
        self._started = True
        self._schedule_next()

    def _schedule_next(self) -> None:
        config = self.config
        jitter = self._rng.uniform(1 - config.interval_jitter, 1 + config.interval_jitter)
        self.loop.schedule(config.interval_s * jitter, self._begin_handover)

    def _begin_handover(self) -> None:
        ue = self.ue
        if not ue.attached or not ue.radio.connected:
            # Skip handovers while detached or in outage; try again later.
            self._schedule_next()
            return
        self.handovers += 1
        # Source-cell buffered downlink: forwarded over X2 or discarded.
        buffered = ue.dl_buffer.drain()
        if self.config.x2_forwarding:
            # During the break, X2 forwards arriving traffic to the target
            # cell's buffer as well — effectively source + target + the
            # forwarding pipe worth of buffering.  Raise the cap *before*
            # re-queueing so the preserved packets can never tail-drop.
            self._saved_capacity = ue.dl_buffer.capacity_bytes
            ue.dl_buffer.capacity_bytes *= 4
            for packet in buffered:
                self.forwarded.count(packet)
                ue.dl_buffer.push(packet)  # target cell inherits the buffer
        else:
            for packet in buffered:
                packet.mark_dropped("link-mobility")
                self.dropped.count(packet)
        # The interruption: packets buffering during it drop as mobility
        # loss rather than as an RSS outage.  The break itself is recorded
        # through the radio's own outage bookkeeping.
        self._saved_drop_layer = ue.dl_buffer.drop_layer
        ue.dl_buffer.drop_layer = "link-mobility"
        ue.radio.force_outage_start()
        self.loop.schedule(self.config.interruption_s, self._complete_handover)

    def _complete_handover(self) -> None:
        ue = self.ue
        ue.radio.force_outage_end()
        if self._saved_drop_layer is not None:
            ue.dl_buffer.drop_layer = self._saved_drop_layer
            self._saved_drop_layer = None
        if self._saved_capacity is not None:
            ue.dl_buffer.capacity_bytes = self._saved_capacity
            self._saved_capacity = None
        self._schedule_next()
