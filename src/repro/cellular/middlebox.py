"""Application-layer SLA drops (§3.1 loss class 5).

Operators run middleboxes that discard real-time frames which have
already blown their latency budget or violate a service-level agreement
(the paper cites Via/Pytheas-style QoE machinery) — *after* the gateway
charged them.  :class:`SlaMiddlebox` sits between the SPGW and the
eNodeB on the downlink and enforces a per-flow age budget; expired
packets drop with the ``app-sla`` taxonomy label.
"""

from __future__ import annotations

from typing import Callable

from ..netsim.events import EventLoop
from ..netsim.packet import FlowStats, Packet

Forward = Callable[[str, Packet], None]


class SlaMiddlebox:
    """Latency-budget enforcement point on the downlink path."""

    def __init__(self, loop: EventLoop, forward: Forward) -> None:
        self.loop = loop
        self.forward = forward
        self._budgets: dict[str, float] = {}
        self.dropped = FlowStats()
        self.passed = FlowStats()

    def set_budget(self, flow_id: str, budget_s: float | None) -> None:
        """Set (or clear, with None) the age budget for one flow."""
        if budget_s is None:
            self._budgets.pop(flow_id, None)
            return
        if budget_s <= 0:
            raise ValueError(f"SLA budget must be positive, got {budget_s}")
        self._budgets[flow_id] = budget_s

    def process(self, imsi: str, packet: Packet) -> None:
        """Forward or drop one charged downlink packet."""
        budget = self._budgets.get(packet.flow_id)
        if budget is not None and self.loop.now() - packet.created_at > budget:
            packet.mark_dropped("app-sla")
            self.dropped.count(packet)
            return
        self.passed.count(packet)
        self.forward(imsi, packet)
