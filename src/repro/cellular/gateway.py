"""The SPGW data gateway: forwarding plus volume-based charging.

This is where the legacy 4G/5G charging record is born, and its *position*
in the path is the root of the loss-induced charging gap:

* **uplink** traffic is counted when it *arrives* at the gateway — losses
  on the air happen before counting, so the gateway under-counts relative
  to what the device sent;
* **downlink** traffic is counted when the gateway *forwards* it towards
  the eNodeB — congestion and air losses happen after counting, so the
  gateway charges bytes the device never received.

The gateway also enforces PCRF throttling (the "128 Kbps after quota"
policy of unlimited plans) with a token-bucket policer, and drops traffic
for detached UEs *before* counting — which is how a radio-link-failure
detach stops the gap from growing (§3.2 of the paper).
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..netsim.events import EventLoop
from ..netsim.packet import Direction, FlowStats, Packet
from .bearer import Bearer, BearerTable
from .identifiers import GatewayAddress

UplinkSink = Callable[[Packet], None]
DownlinkForward = Callable[[str, Packet], None]


class PolicyFunction(Protocol):
    """The slice of the PCRF the gateway consults per packet."""

    def allowed_rate_bps(self, flow_id: str, used_bytes: int) -> float | None: ...


class TokenBucket:
    """Simple policer: ``rate_bps`` sustained with a one-second burst."""

    def __init__(self, loop: EventLoop, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError(f"policer rate must be positive, got {rate_bps}")
        self.loop = loop
        self.rate_bps = rate_bps
        self.burst_bytes = rate_bps / 8.0
        self._tokens = self.burst_bytes
        self._last = loop.now()

    def admit(self, nbytes: int) -> bool:
        """Consume tokens for ``nbytes``; False means the packet is policed."""
        now = self.loop.now()
        self._tokens = min(
            self.burst_bytes, self._tokens + (now - self._last) * self.rate_bps / 8.0
        )
        self._last = now
        if self._tokens >= nbytes:
            self._tokens -= nbytes
            return True
        return False


class Spgw:
    """Serving/PDN gateway: the operator's charging vantage point."""

    def __init__(
        self,
        loop: EventLoop,
        bearers: BearerTable,
        address: GatewayAddress | None = None,
        policy: PolicyFunction | None = None,
        metrics=None,
    ) -> None:
        self.loop = loop
        self.bearers = bearers
        self.address = address if address is not None else GatewayAddress("192.168.2.11")
        self.policy = policy
        self._uplink_sinks: dict[str, UplinkSink] = {}
        self._downlink_forward: DownlinkForward | None = None
        self._policers: dict[str, TokenBucket] = {}
        self.no_bearer_drops = FlowStats()
        self.detached_drops = FlowStats()
        self.policed_drops = FlowStats()
        self.metrics = metrics

    def _count_drop(self, packet: Packet, reason: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "cellular.gateway.drop_bytes", reason=reason
            ).inc(packet.size)

    def _count_charged(self, packet: Packet) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "cellular.gateway.charged_bytes",
                direction=packet.direction.value,
            ).inc(packet.size)

    # ------------------------------------------------------------ plumbing

    def connect_enodeb(self, forward: DownlinkForward) -> None:
        """Attach the backhaul towards the base station."""
        self._downlink_forward = forward

    def register_uplink_sink(self, flow_id: str, sink: UplinkSink) -> None:
        """Route uplink packets of ``flow_id`` to an edge-server sink."""
        self._uplink_sinks[flow_id] = sink

    # ------------------------------------------------------------- helpers

    def _bearer_for(self, packet: Packet) -> Bearer | None:
        return self.bearers.by_flow(packet.flow_id)

    def _policed(self, bearer: Bearer, packet: Packet) -> bool:
        if self.policy is None:
            return False
        used = bearer.uplink.total + bearer.downlink.total
        rate = self.policy.allowed_rate_bps(bearer.flow_id, used)
        if rate is None:
            self._policers.pop(bearer.flow_id, None)
            return False
        policer = self._policers.get(bearer.flow_id)
        if policer is None or policer.rate_bps != rate:
            policer = TokenBucket(self.loop, rate)
            self._policers[bearer.flow_id] = policer
        return not policer.admit(packet.size)

    # -------------------------------------------------------------- uplink

    def receive_uplink(self, packet: Packet) -> None:
        """Count and forward one uplink packet arriving from the eNodeB."""
        if packet.direction is not Direction.UPLINK:
            raise ValueError(f"uplink path got a {packet.direction} packet")
        bearer = self._bearer_for(packet)
        if bearer is None:
            packet.mark_dropped("no-bearer")
            self.no_bearer_drops.count(packet)
            self._count_drop(packet, "no-bearer")
            return
        if not bearer.active:
            packet.mark_dropped("detached")
            self.detached_drops.count(packet)
            self._count_drop(packet, "detached")
            return
        if self._policed(bearer, packet):
            packet.mark_dropped("policed")
            self.policed_drops.count(packet)
            self._count_drop(packet, "policed")
            return
        packet.qci = bearer.qci  # traffic rides the bearer's QoS class
        bearer.count_uplink(self.loop.now(), packet.size)
        self._count_charged(packet)
        sink = self._uplink_sinks.get(packet.flow_id)
        if sink is not None:
            packet.delivered_at = self.loop.now()
            sink(packet)

    # ------------------------------------------------------------ downlink

    def send_downlink(self, packet: Packet) -> None:
        """Charge and forward one downlink packet towards the eNodeB."""
        if packet.direction is not Direction.DOWNLINK:
            raise ValueError(f"downlink path got a {packet.direction} packet")
        bearer = self._bearer_for(packet)
        if bearer is None:
            packet.mark_dropped("no-bearer")
            self.no_bearer_drops.count(packet)
            self._count_drop(packet, "no-bearer")
            return
        if not bearer.active:
            # Detached UE: dropped *before* charging — no gap accumulates.
            packet.mark_dropped("detached")
            self.detached_drops.count(packet)
            self._count_drop(packet, "detached")
            return
        if self._policed(bearer, packet):
            packet.mark_dropped("policed")
            self.policed_drops.count(packet)
            self._count_drop(packet, "policed")
            return
        packet.qci = bearer.qci  # traffic rides the bearer's QoS class
        bearer.count_downlink(self.loop.now(), packet.size)
        self._count_charged(packet)
        if self._downlink_forward is None:
            raise RuntimeError("SPGW has no eNodeB attached")
        self._downlink_forward(str(bearer.imsi), packet)
