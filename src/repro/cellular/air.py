"""The shared air interface: capacity, priority, congestion and delay.

Per-packet simulation of 160 Mbps iperf background traffic would dominate
run time without changing the physics that matter to charging, so the
background load is modelled as *fluid*: each direction of the air
interface has a capacity, a table of virtual background load per QCI, and
a sliding-window estimate of the real (foreground) traffic per QCI.

Strict priority follows the 3GPP QCI priority order: a packet at QCI ``q``
competes only with load at priorities at or above its own.  When the
demand visible to ``q`` exceeds the usable capacity, packets drop with
probability ``1 − usable/demand`` — the proportional-share saturation that
produces the paper's Figure 3/13 congestion gaps, and the protection that
keeps QCI-7 gaming nearly lossless in Figure 12d while QCI-9 background
saturates the cell.

Queueing delay grows with utilization (capped), so congested cells also
show higher RTTs (Figure 16a's environment).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..netsim.events import EventLoop
from ..netsim.packet import FlowStats, Packet
from ..netsim.rng import StreamRegistry
from .qos import scheduler_priority

Transmit = Callable[[Packet], None]


class RateWindow:
    """Sliding-window bit-rate estimator."""

    def __init__(self, window_s: float = 1.0) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self._samples: deque[tuple[float, int]] = deque()
        self._bits = 0

    def observe(self, t: float, nbytes: int) -> None:
        """Record ``nbytes`` observed at time ``t``."""
        self._samples.append((t, nbytes * 8))
        self._bits += nbytes * 8
        self._expire(t)

    def _expire(self, t: float) -> None:
        cutoff = t - self.window_s
        while self._samples and self._samples[0][0] <= cutoff:
            _, bits = self._samples.popleft()
            self._bits -= bits

    def rate_bps(self, t: float) -> float:
        """Current estimate of the offered bit rate."""
        self._expire(t)
        return self._bits / self.window_s


class AirInterface:
    """One direction (UL or DL) of the cell's radio capacity."""

    def __init__(
        self,
        loop: EventLoop,
        rng: StreamRegistry,
        name: str,
        capacity_bps: float = 130e6,
        usable_fraction: float = 0.92,
        propagation_delay_s: float = 0.004,
        max_queue_delay_s: float = 0.050,
        drop_layer: str = "ip-congestion",
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        if not 0 < usable_fraction <= 1:
            raise ValueError(f"usable fraction must be in (0, 1], got {usable_fraction}")
        self.loop = loop
        self.name = name
        self._rng = rng.stream(f"air:{name}")
        self.capacity_bps = capacity_bps
        self.usable_fraction = usable_fraction
        self.propagation_delay_s = propagation_delay_s
        self.max_queue_delay_s = max_queue_delay_s
        self.drop_layer = drop_layer
        self._background: dict[int, float] = {}
        self._foreground: dict[int, RateWindow] = {}
        self.offered = FlowStats()
        self.dropped = FlowStats()
        self.transmitted = FlowStats()

    # -------------------------------------------------------------- config

    def set_background(self, qci: int, rate_bps: float) -> None:
        """Install fluid background load at one QCI (0 clears it)."""
        if rate_bps < 0:
            raise ValueError(f"background rate must be non-negative, got {rate_bps}")
        scheduler_priority(qci)  # validate
        if rate_bps == 0:
            self._background.pop(qci, None)
        else:
            self._background[qci] = rate_bps

    def background_total_bps(self) -> float:
        """Sum of installed background load."""
        return sum(self._background.values())

    # -------------------------------------------------------------- demand

    def _foreground_rate(self, qci: int, t: float) -> float:
        window = self._foreground.get(qci)
        return window.rate_bps(t) if window is not None else 0.0

    def _demand_split(self, qci: int, t: float) -> tuple[float, float]:
        """(higher-priority load, same-priority demand) seen by ``qci``."""
        my_priority = scheduler_priority(qci)
        higher = 0.0
        same = 0.0
        qcis = set(self._background) | set(self._foreground)
        for other in qcis:
            load = self._background.get(other, 0.0) + self._foreground_rate(other, t)
            priority = scheduler_priority(other)
            if priority < my_priority:
                higher += load
            elif priority == my_priority:
                same += load
        return higher, same

    def drop_probability(self, qci: int) -> float:
        """Instantaneous drop probability for a packet at ``qci``."""
        t = self.loop.now()
        higher, same = self._demand_split(qci, t)
        usable = max(0.0, self.capacity_bps * self.usable_fraction - higher)
        if same <= usable or same <= 0:
            return 0.0
        if usable <= 0:
            return 1.0
        return 1.0 - usable / same

    def utilization(self) -> float:
        """Total offered load over capacity (may exceed 1 when saturated)."""
        t = self.loop.now()
        total = self.background_total_bps()
        total += sum(w.rate_bps(t) for w in self._foreground.values())
        return total / self.capacity_bps

    def queue_delay(self, qci: int | None = None) -> float:
        """Utilization-driven queueing delay, capped.

        With ``qci`` given, only load at the same or higher priority
        contributes — strict priority means a QCI-5 signalling packet
        does not wait behind saturating QCI-9 best-effort traffic.
        """
        t = self.loop.now()
        if qci is None:
            load = self.background_total_bps()
            load += sum(w.rate_bps(t) for w in self._foreground.values())
        else:
            higher, same = self._demand_split(qci, t)
            load = higher + same
        rho = min(0.99, load / self.capacity_bps)
        if rho < 0.5:
            return 0.0
        base = 0.002  # nominal per-packet scheduling latency at mid load
        return min(self.max_queue_delay_s, base * rho / (1.0 - rho))

    # ---------------------------------------------------------------- data

    def submit(self, packet: Packet, transmit: Transmit) -> None:
        """Offer a packet to the air; drops or schedules ``transmit``."""
        t = self.loop.now()
        window = self._foreground.get(packet.qci)
        if window is None:
            window = RateWindow()
            self._foreground[packet.qci] = window
        window.observe(t, packet.size)
        self.offered.count(packet)
        if self._rng.random() < self.drop_probability(packet.qci):
            packet.mark_dropped(self.drop_layer)
            self.dropped.count(packet)
            return
        serialization = packet.size * 8.0 / self.capacity_bps
        delay = self.propagation_delay_s + self.queue_delay(packet.qci) + serialization
        self.loop.schedule(delay, self._transmit, packet, transmit)

    def _transmit(self, packet: Packet, transmit: Transmit) -> None:
        self.transmitted.count(packet)
        transmit(packet)
