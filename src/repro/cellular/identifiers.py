"""Cellular identifiers: IMSI, charging IDs and their encodings.

Matches the fields carried by the paper's Trace-1 CDR: a ``servedIMSI``
(15-digit international mobile subscriber identity, shown by OpenEPC in
swapped-nibble TBCD hex), the gateway address, and monotonically allocated
charging identifiers/sequence numbers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True)
class Imsi:
    """A 15-digit IMSI: MCC (3) + MNC (2-3) + MSIN."""

    digits: str

    def __post_init__(self) -> None:
        if not (self.digits.isdigit() and 6 <= len(self.digits) <= 15):
            raise ValueError(f"invalid IMSI: {self.digits!r}")

    @property
    def mcc(self) -> str:
        """Mobile country code (first three digits)."""
        return self.digits[:3]

    @property
    def mnc(self) -> str:
        """Mobile network code (two digits in this model)."""
        return self.digits[3:5]

    def tbcd_hex(self) -> str:
        """TBCD (swapped-nibble) hex encoding, as OpenEPC prints in CDRs.

        Odd-length IMSIs are padded with the filler nibble ``F``.
        """
        padded = self.digits + ("F" if len(self.digits) % 2 else "")
        swapped = [padded[i + 1] + padded[i] for i in range(0, len(padded), 2)]
        return " ".join(swapped)

    def __str__(self) -> str:
        return self.digits


@dataclass(frozen=True)
class GatewayAddress:
    """IPv4 address of the charging gateway, as reported in CDRs."""

    address: str

    def __post_init__(self) -> None:
        parts = self.address.split(".")
        if len(parts) != 4 or not all(p.isdigit() and 0 <= int(p) <= 255 for p in parts):
            raise ValueError(f"invalid IPv4 address: {self.address!r}")

    def __str__(self) -> str:
        return self.address


class ChargingIdAllocator:
    """Allocates per-session charging IDs and per-record sequence numbers."""

    def __init__(self, first_charging_id: int = 0, first_sequence: int = 1001) -> None:
        self._charging_ids = itertools.count(first_charging_id)
        self._sequences = itertools.count(first_sequence)

    def next_charging_id(self) -> int:
        """Allocate the next charging session identifier."""
        return next(self._charging_ids)

    def next_sequence(self) -> int:
        """Allocate the next CDR sequence number."""
        return next(self._sequences)


def make_test_imsi(index: int, mcc: str = "001", mnc: str = "01") -> Imsi:
    """Build a deterministic test-network IMSI (PLMN 001/01)."""
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    return Imsi(f"{mcc}{mnc}{index:010d}")
