"""Radio Resource Control: connection state, modem counters, COUNTER CHECK.

This module carries TLC's tamper-resilience argument (§5.4 of the paper):

* :class:`HardwareModem` holds the device's traffic counters *below* the
  OS.  User-space tamper adversaries (``repro.edge.tamper``) can rewrite
  what ``TrafficStats``/``netstat`` report, but they hold no reference to
  the modem's counters — the same trust boundary as a physical baseband.
* :class:`RrcConnectionManager` (run by the eNodeB) tracks the RRC state
  of one UE, releases the connection after inactivity, and — exactly as
  the paper configures — issues an **RRC COUNTER CHECK** before each
  release plus periodically, reporting the modem-side received volume to
  the operator's downlink monitor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from ..netsim.counters import CumulativeCounter
from ..netsim.events import Event, EventLoop
from ..netsim.packet import Packet


class RrcState(enum.Enum):
    """RRC connection state of a UE (TS 36.331 simplified)."""

    IDLE = "RRC_IDLE"
    CONNECTED = "RRC_CONNECTED"


@dataclass(frozen=True)
class CounterCheckResponse:
    """Modem's reply to an RRC COUNTER CHECK: cumulative byte counts."""

    t: float
    uplink_bytes: int
    downlink_bytes: int


class HardwareModem:
    """Baseband-held traffic counters; tamper-resistant by construction.

    The modem counts what actually crosses the air interface for this UE.
    The counters are exposed only through :meth:`counter_check`, mirroring
    the 3GPP procedure the operator's base station invokes.
    """

    def __init__(self, loop: EventLoop, name: str = "modem") -> None:
        self.loop = loop
        self.name = name
        self.ul_sent = CumulativeCounter()
        self.dl_received = CumulativeCounter()
        self.counter_checks_served = 0

    def count_uplink(self, packet: Packet) -> None:
        """Record one uplink packet leaving the modem over the air."""
        self.ul_sent.add(self.loop.now(), packet.size)

    def count_downlink(self, packet: Packet) -> None:
        """Record one downlink packet received over the air."""
        self.dl_received.add(self.loop.now(), packet.size)

    def counter_check(self) -> CounterCheckResponse:
        """Serve an RRC COUNTER CHECK from the base station."""
        self.counter_checks_served += 1
        return CounterCheckResponse(
            t=self.loop.now(),
            uplink_bytes=self.ul_sent.total,
            downlink_bytes=self.dl_received.total,
        )


CounterReportSink = Callable[[CounterCheckResponse], None]


class RrcConnectionManager:
    """eNodeB-side RRC state machine for one UE.

    Data activity keeps the connection alive; after
    ``inactivity_timeout_s`` without traffic the base station performs a
    COUNTER CHECK and releases the connection (3GPP behaviour: every
    release is network-initiated).  With ``counter_check_interval_s`` set,
    additional periodic checks bound how stale the operator's downlink
    record can get — TLC's configuration.
    """

    def __init__(
        self,
        loop: EventLoop,
        modem: HardwareModem,
        inactivity_timeout_s: float = 10.0,
        counter_check_interval_s: float | None = 5.0,
        report_sink: CounterReportSink | None = None,
    ) -> None:
        if inactivity_timeout_s <= 0:
            raise ValueError("inactivity timeout must be positive")
        self.loop = loop
        self.modem = modem
        self.inactivity_timeout_s = inactivity_timeout_s
        self.counter_check_interval_s = counter_check_interval_s
        self.report_sink = report_sink
        self.state = RrcState.IDLE
        self.setups = 0
        self.releases = 0
        self.counter_checks_sent = 0
        self._release_timer: Event | None = None
        self._periodic_timer: Event | None = None

    # ------------------------------------------------------------- activity

    def on_data_activity(self) -> None:
        """Note traffic for this UE; sets up the connection if idle."""
        if self.state is RrcState.IDLE:
            self._setup()
        self._arm_release_timer()

    def _setup(self) -> None:
        self.state = RrcState.CONNECTED
        self.setups += 1
        if self.counter_check_interval_s is not None:
            self._arm_periodic_timer()

    def _arm_release_timer(self) -> None:
        if self._release_timer is not None:
            self._release_timer.cancel()
        self._release_timer = self.loop.schedule(
            self.inactivity_timeout_s, self._release_on_inactivity
        )

    def _arm_periodic_timer(self) -> None:
        if self._periodic_timer is not None:
            self._periodic_timer.cancel()
        assert self.counter_check_interval_s is not None
        self._periodic_timer = self.loop.schedule(
            self.counter_check_interval_s, self._periodic_check
        )

    # ------------------------------------------------------------- release

    def _release_on_inactivity(self) -> None:
        if self.state is not RrcState.CONNECTED:
            return
        self.perform_counter_check()
        self.release()

    def release(self, counter_check: bool = False) -> None:
        """Release the RRC connection (optionally checking counters first)."""
        if self.state is not RrcState.CONNECTED:
            return
        if counter_check:
            self.perform_counter_check()
        self.state = RrcState.IDLE
        self.releases += 1
        if self._release_timer is not None:
            self._release_timer.cancel()
            self._release_timer = None
        if self._periodic_timer is not None:
            self._periodic_timer.cancel()
            self._periodic_timer = None

    def abort(self) -> None:
        """Drop the connection without a counter check (radio link failure)."""
        if self.state is not RrcState.CONNECTED:
            return
        self.state = RrcState.IDLE
        self.releases += 1
        if self._release_timer is not None:
            self._release_timer.cancel()
            self._release_timer = None
        if self._periodic_timer is not None:
            self._periodic_timer.cancel()
            self._periodic_timer = None

    # -------------------------------------------------------- counter check

    def _periodic_check(self) -> None:
        if self.state is not RrcState.CONNECTED:
            return
        self.perform_counter_check()
        self._arm_periodic_timer()

    def perform_counter_check(self) -> CounterCheckResponse:
        """Run the RRC COUNTER CHECK procedure and report the response."""
        self.counter_checks_sent += 1
        response = self.modem.counter_check()
        if self.report_sink is not None:
            self.report_sink(response)
        return response
