"""Per-UE radio channel: signal strength, outages and air loss.

Reproduces the physical-layer mechanics behind the paper's Figure 4 and
Figure 14:

* an **outage process** alternates connected / disconnected periods.  The
  paper measured a mean wireless disconnectivity of 1.93 s; sweeping the
  mean uptime sets the intermittent-disconnectivity ratio
  ``η = t_disconn / t_total`` of Figure 14.
* a **received signal strength (RSS)** random walk around a base level;
  during outages the RSS collapses to the outage floor (the gray areas of
  Figure 4 where RSS ≈ −125 dBm).
* a **loss-vs-RSS curve**: no signal-induced loss at or above −95 dBm (the
  paper's "good radio" threshold), ramping linearly below it, plus a small
  constant PHY floor capturing residual air losses.

Outage transitions notify listeners (the eNodeB buffers downlink traffic
and arms the radio-link-failure timer; the modem pauses uplink).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..netsim.events import EventLoop
from ..netsim.rng import StreamRegistry

GOOD_RSS_DBM = -95.0
OUTAGE_FLOOR_DBM = -125.0


@dataclass
class RadioProfile:
    """Configuration of one UE's radio environment."""

    base_rss_dbm: float = -85.0
    rss_noise_std: float = 3.0
    rss_floor_dbm: float = -124.0
    rss_ceiling_dbm: float = -70.0
    # Outage process; mean_outage_s matches the paper's measured 1.93 s.
    outages_enabled: bool = False
    mean_outage_s: float = 1.93
    mean_uptime_s: float = 60.0
    # Loss model while connected.
    base_loss: float = 0.0
    loss_at_floor: float = 0.35
    rss_sample_interval_s: float = 1.0

    @property
    def disconnectivity_ratio(self) -> float:
        """Long-run fraction of time spent in outage, η."""
        if not self.outages_enabled:
            return 0.0
        return self.mean_outage_s / (self.mean_outage_s + self.mean_uptime_s)

    @classmethod
    def for_disconnectivity(cls, eta: float, mean_outage_s: float = 1.93, **kw) -> "RadioProfile":
        """Build a profile with outage ratio ``eta`` (0 < eta < 1)."""
        if not 0.0 < eta < 1.0:
            raise ValueError(f"eta must be in (0, 1), got {eta}")
        mean_uptime = mean_outage_s * (1.0 - eta) / eta
        return cls(
            outages_enabled=True,
            mean_outage_s=mean_outage_s,
            mean_uptime_s=mean_uptime,
            **kw,
        )


@dataclass
class RssSample:
    """One point of the recorded RSS time series (Figure 4 bottom panel)."""

    t: float
    rss_dbm: float
    connected: bool


class RadioChannel:
    """The live radio state of one UE."""

    def __init__(
        self,
        loop: EventLoop,
        rng: StreamRegistry,
        profile: RadioProfile,
        name: str = "ue",
        record_rss: bool = False,
    ) -> None:
        self.loop = loop
        self.profile = profile
        self.name = name
        self._rng = rng.stream(f"radio:{name}")
        self.connected = True
        self._current_rss = profile.base_rss_dbm
        self._outage_started_at: float | None = None
        self.total_outage_time = 0.0
        self.outage_count = 0
        self._started_at = loop.now()
        self.on_outage_start: list[Callable[[], None]] = []
        self.on_outage_end: list[Callable[[], None]] = []
        self.record_rss = record_rss
        self.rss_history: list[RssSample] = []
        self._started = False

    def start(self) -> None:
        """Begin the outage process and RSS sampling."""
        if self._started:
            raise RuntimeError(f"radio {self.name!r} already started")
        self._started = True
        self._started_at = self.loop.now()
        if self.profile.outages_enabled:
            self._schedule_outage_start()
        if self.record_rss:
            self._sample_rss()

    # ------------------------------------------------------------------ RSS

    def current_rss(self) -> float:
        """Instantaneous RSS in dBm (outage floor while disconnected)."""
        if not self.connected:
            return OUTAGE_FLOOR_DBM
        return self._current_rss

    def _walk_rss(self) -> None:
        p = self.profile
        step = self._rng.gauss(0.0, p.rss_noise_std)
        # Mean-reverting walk around the base level.
        drift = 0.25 * (p.base_rss_dbm - self._current_rss)
        self._current_rss = min(
            p.rss_ceiling_dbm, max(p.rss_floor_dbm, self._current_rss + drift + step)
        )

    def _sample_rss(self) -> None:
        self._walk_rss()
        self.rss_history.append(
            RssSample(self.loop.now(), self.current_rss(), self.connected)
        )
        self.loop.schedule(self.profile.rss_sample_interval_s, self._sample_rss)

    # ------------------------------------------------------------- outages

    def _schedule_outage_start(self) -> None:
        uptime = self._rng.expovariate(1.0 / self.profile.mean_uptime_s)
        self.loop.schedule(uptime, self._begin_outage)

    def _begin_outage(self) -> None:
        if not self.connected:
            return
        self.connected = False
        self.outage_count += 1
        self._outage_started_at = self.loop.now()
        for callback in self.on_outage_start:
            callback()
        outage = self._rng.expovariate(1.0 / self.profile.mean_outage_s)
        self.loop.schedule(outage, self._end_outage)

    def _end_outage(self) -> None:
        if self.connected:
            return
        self.connected = True
        if self._outage_started_at is not None:
            self.total_outage_time += self.loop.now() - self._outage_started_at
            self._outage_started_at = None
        for callback in self.on_outage_end:
            callback()
        self._schedule_outage_start()

    def force_outage_start(self) -> bool:
        """Begin an externally-imposed outage (e.g. a handover interruption).

        Goes through the channel's own bookkeeping — ``outage_count``,
        the outage timer and the start callbacks — but draws nothing and
        schedules nothing, so the natural outage process's RNG stream is
        untouched.  Returns False (no-op) if already disconnected.
        """
        if not self.connected:
            return False
        self.connected = False
        self.outage_count += 1
        self._outage_started_at = self.loop.now()
        for callback in self.on_outage_start:
            callback()
        return True

    def force_outage_end(self) -> bool:
        """End a forced outage; counterpart of :meth:`force_outage_start`.

        Accumulates ``total_outage_time`` and fires the end callbacks,
        without rescheduling the natural outage process.  Returns False
        (no-op) if already connected.
        """
        if self.connected:
            return False
        self.connected = True
        if self._outage_started_at is not None:
            self.total_outage_time += self.loop.now() - self._outage_started_at
            self._outage_started_at = None
        for callback in self.on_outage_end:
            callback()
        return True

    def outage_elapsed(self) -> float:
        """Seconds the current outage has lasted (0 when connected)."""
        if self.connected or self._outage_started_at is None:
            return 0.0
        return self.loop.now() - self._outage_started_at

    def measured_disconnectivity(self) -> float:
        """Observed η over the run so far (includes any ongoing outage)."""
        elapsed = self.loop.now() - self._started_at
        if elapsed <= 0:
            return 0.0
        down = self.total_outage_time + self.outage_elapsed()
        return down / elapsed

    # ----------------------------------------------------------------- loss

    def loss_probability(self) -> float:
        """Air-loss probability for one packet at the current RSS."""
        p = self.profile
        rss = self.current_rss()
        if rss >= GOOD_RSS_DBM:
            return p.base_loss
        span = GOOD_RSS_DBM - p.rss_floor_dbm
        frac = min(1.0, (GOOD_RSS_DBM - rss) / span)
        return min(1.0, p.base_loss + frac * p.loss_at_floor)

    def survives_air(self) -> bool:
        """Sample one air transmission; False means the packet is lost."""
        self._walk_rss()
        return self._rng.random() >= self.loss_probability()
