"""EPS bearers: the charging and QoS context for a flow.

A bearer binds (IMSI, flow) to a QCI and a charging ID.  The SPGW counts
volume per bearer; the OFCS turns per-bearer usage into CDRs.  Dedicated
bearers with QCI 3/7 model the paper's gaming-acceleration sessions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..netsim.counters import CumulativeCounter
from .identifiers import Imsi
from .qos import DEFAULT_QCI, qos_class

_bearer_ids = itertools.count(5)  # EPS bearer IDs start at 5 in 3GPP.


@dataclass
class Bearer:
    """One EPS bearer: identity, QoS class and gateway-side volume counters."""

    imsi: Imsi
    flow_id: str
    qci: int = DEFAULT_QCI
    charging_id: int = 0
    bearer_id: int = field(default_factory=lambda: next(_bearer_ids))
    active: bool = True
    uplink: CumulativeCounter = field(default_factory=CumulativeCounter)
    downlink: CumulativeCounter = field(default_factory=CumulativeCounter)
    first_usage: float | None = None
    last_usage: float | None = None

    def __post_init__(self) -> None:
        qos_class(self.qci)  # validate the QCI eagerly

    def count_uplink(self, t: float, nbytes: int) -> None:
        """Account gateway-received uplink bytes to this bearer."""
        self.uplink.add(t, nbytes)
        self._touch(t)

    def count_downlink(self, t: float, nbytes: int) -> None:
        """Account gateway-forwarded downlink bytes to this bearer."""
        self.downlink.add(t, nbytes)
        self._touch(t)

    def _touch(self, t: float) -> None:
        if self.first_usage is None:
            self.first_usage = t
        self.last_usage = t

    def deactivate(self) -> None:
        """Deactivate the bearer (on detach); traffic is no longer carried."""
        self.active = False

    def reactivate(self) -> None:
        """Reactivate after re-attach; counters continue accumulating."""
        self.active = True


class BearerTable:
    """Lookup of bearers by flow and by IMSI."""

    def __init__(self) -> None:
        self._by_flow: dict[str, Bearer] = {}
        self._by_imsi: dict[str, list[Bearer]] = {}

    def add(self, bearer: Bearer) -> None:
        """Register a bearer; flow IDs must be unique."""
        if bearer.flow_id in self._by_flow:
            raise ValueError(f"flow {bearer.flow_id!r} already has a bearer")
        self._by_flow[bearer.flow_id] = bearer
        self._by_imsi.setdefault(str(bearer.imsi), []).append(bearer)

    def by_flow(self, flow_id: str) -> Bearer | None:
        """Bearer carrying ``flow_id``, or None."""
        return self._by_flow.get(flow_id)

    def by_imsi(self, imsi: Imsi) -> list[Bearer]:
        """All bearers of one subscriber."""
        return list(self._by_imsi.get(str(imsi), []))

    def all(self) -> list[Bearer]:
        """Every registered bearer."""
        return list(self._by_flow.values())

    def __len__(self) -> int:
        return len(self._by_flow)
