"""Simulated clocks for the discrete-event substrate.

The simulation runs in *virtual seconds*.  Every component that needs the
current time holds a reference to a :class:`Clock` rather than calling
``time.time()``, so experiments are deterministic and can simulate hours of
charging cycles in milliseconds of wall time.

A :class:`SkewedClock` wraps a base clock with a constant offset, modelling
imperfect NTP synchronization between the edge vendor and the cellular
operator (the mechanism behind the charging-record errors of Figure 18 in
the paper).
"""

from __future__ import annotations


class Clock:
    """A monotonically advancing virtual clock.

    The clock only moves when :meth:`advance_to` is called, which the event
    loop does as it dispatches events.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before t=0 (got {start})")
        self._now = float(start)

    def now(self) -> float:
        """Return the current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises
        ------
        ValueError
            If ``t`` is in the past; virtual time never rewinds.
        """
        if t < self._now:
            raise ValueError(f"cannot move clock backwards: {t} < {self._now}")
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(t={self._now:.6f})"


class SkewedClock:
    """A read-only view of a base clock with offset *and* rate error.

    Positive ``skew`` means this party's clock runs *ahead* of true time:
    its charging cycle boundaries fire early, so it attributes some
    traffic to the wrong cycle.  This is the paper's explanation for the
    residual record errors (Figure 18, §7.2).

    ``skew_ppm`` adds a frequency (rate) error — real oscillators drift,
    they aren't just offset — accumulating ``skew_ppm`` microseconds of
    extra skew per second of true time elapsed since ``anchor`` (default:
    the base clock's time at construction).  The fault layer's
    ``clock-drift`` specs rely on this term.
    """

    __slots__ = ("_base", "skew", "skew_ppm", "anchor")

    def __init__(
        self,
        base: Clock,
        skew: float = 0.0,
        skew_ppm: float = 0.0,
        anchor: float | None = None,
    ) -> None:
        self._base = base
        self.skew = float(skew)
        self.skew_ppm = float(skew_ppm)
        self.anchor = base.now() if anchor is None else float(anchor)

    def now(self) -> float:
        """Return the skewed (offset + accumulated drift) view of time."""
        t = self._base.now()
        return t + self.skew + self.skew_ppm * 1e-6 * (t - self.anchor)

    def error_at(self, t: float) -> float:
        """Total clock error (seconds) this view shows at true time ``t``."""
        return self.skew + self.skew_ppm * 1e-6 * (t - self.anchor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SkewedClock(skew={self.skew:+.6f}, ppm={self.skew_ppm:+.1f}, "
            f"t={self.now():.6f})"
        )
