"""Point-to-point links with rate, propagation delay and loss.

A :class:`Link` models one hop: packets are serialized at ``rate_bps``,
experience ``latency`` of propagation, and may be discarded by a pluggable
loss function (used for IP-layer congestion and generic loss injection).
Delivery hands the packet to a downstream ``receiver`` callback on the
shared event loop.
"""

from __future__ import annotations

from typing import Callable

from .events import EventLoop
from .packet import FlowStats, Packet

Receiver = Callable[[Packet], None]
LossFn = Callable[[Packet], bool]


class Link:
    """A serializing, delaying, optionally lossy hop.

    Parameters
    ----------
    loop:
        Shared event loop.
    receiver:
        Called with each packet that survives the hop.
    rate_bps:
        Serialization rate.  ``None`` means infinitely fast (pure delay).
    latency:
        One-way propagation delay in seconds.
    loss_fn:
        Optional predicate; return True to drop the packet at this hop.
    drop_layer:
        Taxonomy label stamped on packets dropped here (§3.1 of the paper).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when given,
        the link keeps live per-link byte counters
        (``netsim.link.{sent,delivered,dropped}_bytes{link=<name>}``).
    """

    def __init__(
        self,
        loop: EventLoop,
        receiver: Receiver,
        rate_bps: float | None = None,
        latency: float = 0.0,
        loss_fn: LossFn | None = None,
        drop_layer: str = "link",
        name: str = "link",
        metrics=None,
    ) -> None:
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {rate_bps}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.loop = loop
        self.receiver = receiver
        self.rate_bps = rate_bps
        self.latency = latency
        self.loss_fn = loss_fn
        self.drop_layer = drop_layer
        self.name = name
        self.sent = FlowStats()
        self.delivered = FlowStats()
        self.lost = FlowStats()
        self._busy_until = 0.0
        if metrics is None:
            self._m_sent = self._m_delivered = self._m_dropped = None
        else:
            self._m_sent = metrics.counter("netsim.link.sent_bytes", link=name)
            self._m_delivered = metrics.counter("netsim.link.delivered_bytes", link=name)
            self._m_dropped = metrics.counter("netsim.link.dropped_bytes", link=name)

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission over this hop."""
        self.sent.count(packet)
        if self._m_sent is not None:
            self._m_sent.inc(packet.size)
        if self.loss_fn is not None and self.loss_fn(packet):
            packet.mark_dropped(self.drop_layer)
            self.lost.count(packet)
            if self._m_dropped is not None:
                self._m_dropped.inc(packet.size)
            return
        now = self.loop.now()
        if self.rate_bps is None:
            depart = now
        else:
            start = max(now, self._busy_until)
            depart = start + packet.size * 8.0 / self.rate_bps
            self._busy_until = depart
        self.loop.schedule_at(depart + self.latency, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.delivered.count(packet)
        if self._m_delivered is not None:
            self._m_delivered.inc(packet.size)
        self.receiver(packet)

    def utilization_window_clear(self) -> None:
        """Forget serialization backlog (used when a link is reset)."""
        self._busy_until = self.loop.now()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rate = "inf" if self.rate_bps is None else f"{self.rate_bps:.0f}bps"
        return f"Link({self.name}, rate={rate}, latency={self.latency}s)"
