"""Deterministic, seed-driven fault injection for the charging simulator.

TLC's guarantees (Theorems 1–4) are claims about behaviour *under
adversity*: multi-layer loss, clock skew, counter resets and crashing
endpoints.  This module turns those adversities into first-class,
composable objects so any experiment can run under chaos and any failure
reproduces exactly from ``(config, seed)``:

* :class:`FaultSpec` — one fault: a kind (burst loss, reorder, duplicate,
  corrupt, blackout/link flap, clock skew, clock drift, counter reset,
  endpoint crash), a time window, a target pattern and a magnitude;
* :class:`FaultSchedule` — a named, composable set of specs that rides
  inside :class:`~repro.experiments.scenarios.ScenarioConfig` (it
  round-trips through the parallel engine's JSON codec, so fault runs
  cache and parallelize like any other scenario);
* :class:`FaultInjector` — attaches a schedule to live components through
  one uniform hook family (``pipe`` for packet paths, ``pipe_frames`` for
  the PoC netdriver's byte frames, ``pipe_call`` for transport-segment
  callables, ``attach_link`` / ``attach_modem`` for in-place wrapping),
  drawing every probabilistic decision from a single named
  :class:`~repro.netsim.rng.StreamRegistry` stream;
* :class:`FaultTrace` — a replayable JSON-lines log of every fault the
  injector actually fired, so two runs can be compared bit-for-bit.

Fault kinds map onto the paper's loss taxonomy and error models — see
``docs/FAULTS.md`` for the full table.
"""

from __future__ import annotations

import fnmatch
import json
from bisect import bisect_right
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterable

from .events import EventLoop
from .packet import Packet
from .rng import StreamRegistry

#: Every fault kind the injector understands.
BURST_LOSS = "burst-loss"      # drop packets/frames with probability `magnitude`
REORDER = "reorder"            # hold a packet up to `jitter_s`, letting later ones pass
DUPLICATE = "duplicate"        # deliver an extra copy after up to `jitter_s`
CORRUPT = "corrupt"            # CRC-failed on the wire: dropped, counted as corruption
BLACKOUT = "blackout"          # link flap: nothing crosses during the window
CLOCK_SKEW = "clock-skew"      # constant offset of `magnitude` seconds on a party clock
CLOCK_DRIFT = "clock-drift"    # rate error of `magnitude` ppm accumulating from `start`
COUNTER_RESET = "counter-reset"  # modem counters restart from zero at `start`
CRASH = "crash"                # endpoint down for the window; ARQ must recover

FAULT_KINDS = (
    BURST_LOSS, REORDER, DUPLICATE, CORRUPT, BLACKOUT,
    CLOCK_SKEW, CLOCK_DRIFT, COUNTER_RESET, CRASH,
)

#: Kinds that act on traffic in flight (the others act on clocks/counters).
_PATH_KINDS = frozenset({BURST_LOSS, REORDER, DUPLICATE, CORRUPT, BLACKOUT, CRASH})
_CLOCK_KINDS = frozenset({CLOCK_SKEW, CLOCK_DRIFT})


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what happens, when, to which injection point.

    ``target`` is an ``fnmatch`` pattern against injection-point names
    (``"*"`` hits everything, ``"uplink"`` only the device's send path,
    ``"poc-*"`` both negotiation endpoints).  ``magnitude`` is
    kind-specific: a probability for ``burst-loss`` / ``reorder`` /
    ``duplicate`` / ``corrupt``, seconds for ``clock-skew``, ppm for
    ``clock-drift``, unused for window-only kinds.  ``duration=None``
    means "until the end of the run".
    """

    kind: str
    start: float = 0.0
    duration: float | None = None
    target: str = "*"
    magnitude: float = 1.0
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (know {FAULT_KINDS})")
        if self.start < 0:
            raise ValueError(f"fault start must be non-negative, got {self.start}")
        if self.duration is not None and self.duration < 0:
            raise ValueError(f"fault duration must be non-negative, got {self.duration}")
        if self.jitter_s < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter_s}")
        if self.kind in (BURST_LOSS, REORDER, DUPLICATE, CORRUPT):
            if not 0.0 <= self.magnitude <= 1.0:
                raise ValueError(
                    f"{self.kind} magnitude is a probability, got {self.magnitude}"
                )

    def active(self, t: float) -> bool:
        """Whether the fault window covers virtual time ``t``."""
        if t < self.start:
            return False
        return self.duration is None or t < self.start + self.duration

    def matches(self, point: str) -> bool:
        """Whether this spec targets the named injection point."""
        return fnmatch.fnmatchcase(point, self.target)

    def to_dict(self) -> dict:
        """JSON-safe encoding (used by the scenario codec)."""
        return {
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "target": self.target,
            "magnitude": self.magnitude,
            "jitter_s": self.jitter_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(data["kind"]),
            start=float(data["start"]),
            duration=None if data.get("duration") is None else float(data["duration"]),
            target=str(data.get("target", "*")),
            magnitude=float(data.get("magnitude", 1.0)),
            jitter_s=float(data.get("jitter_s", 0.0)),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A named, composable collection of :class:`FaultSpec`.

    Immutable so it can live inside the (frozen, hashable-by-codec)
    :class:`~repro.experiments.scenarios.ScenarioConfig`.
    """

    name: str = "faults"
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def is_empty(self) -> bool:
        """True when the schedule injects nothing."""
        return not self.specs

    def compose(self, *others: "FaultSchedule") -> "FaultSchedule":
        """Concatenate schedules (later specs stack, they don't replace)."""
        specs = list(self.specs)
        names = [self.name]
        for other in others:
            specs.extend(other.specs)
            names.append(other.name)
        return FaultSchedule(name="+".join(names), specs=tuple(specs))

    def shifted(self, dt: float) -> "FaultSchedule":
        """The same schedule with every window moved ``dt`` seconds later."""
        return FaultSchedule(
            name=self.name,
            specs=tuple(replace(s, start=s.start + dt) for s in self.specs),
        )

    def active_specs(self, kinds: Iterable[str], point: str, t: float) -> list[FaultSpec]:
        """Specs of the given kinds targeting ``point`` and covering ``t``."""
        wanted = set(kinds)
        return [
            s for s in self.specs
            if s.kind in wanted and s.matches(point) and s.active(t)
        ]

    def skew_at(self, point: str, t: float) -> float:
        """Total clock error (seconds) for a party clock at time ``t``.

        Constant-offset specs contribute ``magnitude`` while active;
        drift specs contribute ``magnitude·1e-6`` seconds per second
        elapsed since their start (capped at their window end).
        """
        skew = 0.0
        for spec in self.specs:
            if not spec.matches(point) or t < spec.start:
                continue
            if spec.kind == CLOCK_SKEW:
                if spec.active(t):
                    skew += spec.magnitude
            elif spec.kind == CLOCK_DRIFT:
                end = t if spec.duration is None else min(t, spec.start + spec.duration)
                skew += spec.magnitude * 1e-6 * max(0.0, end - spec.start)
        return skew

    def to_dict(self) -> dict:
        """JSON-safe encoding (used by the scenario codec)."""
        return {"name": self.name, "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(data.get("name", "faults")),
            specs=tuple(FaultSpec.from_dict(s) for s in data.get("specs", ())),
        )


# ------------------------------------------------------------------- trace


@dataclass(frozen=True)
class FaultEvent:
    """One fault the injector actually fired, at one injection point."""

    t: float
    kind: str
    point: str
    detail: str = ""

    def to_json(self) -> str:
        """Serialize to one JSON line."""
        return json.dumps(
            {"t": self.t, "kind": self.kind, "point": self.point, "detail": self.detail},
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "FaultEvent":
        """Parse one JSON line back into an event."""
        raw = json.loads(line)
        return cls(
            t=float(raw["t"]),
            kind=str(raw["kind"]),
            point=str(raw["point"]),
            detail=str(raw.get("detail", "")),
        )


class FaultTrace:
    """Replayable log of injected faults; two equal traces ⇒ same chaos."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: list[FaultEvent] = list(events)

    def record(self, t: float, kind: str, point: str, detail: str = "") -> None:
        """Append one fired fault."""
        self.events.append(FaultEvent(t, kind, point, detail))

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultTrace):
            return NotImplemented
        return self.events == other.events

    def counts(self) -> dict[str, int]:
        """Events per fault kind (quick summary for reports/tests)."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON lines."""
        text = "\n".join(event.to_json() for event in self.events)
        Path(path).write_text(text + ("\n" if text else ""))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultTrace(events={len(self.events)}, counts={self.counts()})"


def load_fault_trace(path: str | Path) -> FaultTrace:
    """Load a JSON-lines fault trace from disk."""
    events = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            events.append(FaultEvent.from_json(line))
    return FaultTrace(events)


# ---------------------------------------------------------------- injector


class FaultInjector:
    """Binds a :class:`FaultSchedule` to live simulator components.

    All probabilistic decisions come from one named stream of the
    experiment's :class:`StreamRegistry` (``"faults"``), so a given
    ``(schedule, seed)`` produces the identical chaos on every run —
    including across serial vs process-pool execution, where each
    scenario rebuilds its own registry from its config seed.
    """

    def __init__(
        self,
        loop: EventLoop,
        rng: StreamRegistry | None,
        schedule: FaultSchedule,
        trace: FaultTrace | None = None,
        metrics=None,
    ) -> None:
        self.loop = loop
        self.schedule = schedule
        self.trace = trace if trace is not None else FaultTrace()
        registry = rng if rng is not None else StreamRegistry(0)
        self._rng = registry.stream("faults")
        self._metrics = metrics
        #: Loop events armed by :meth:`attach_modem`; the batched-kernel
        #: adapter absorbs these into lane-owned wheel events by identity.
        self._reset_events: list = []

    # ------------------------------------------------------------ internals

    def _record(self, t: float, kind: str, point: str, detail: str = "") -> None:
        """Log one fired fault to the trace and the metrics registry."""
        self.trace.record(t, kind, point, detail)
        if self._metrics is not None:
            self._metrics.counter("netsim.faults.fired", kind=kind).inc()

    def _decide(self, point: str) -> tuple[str | None, float]:
        """One fate decision for a unit of traffic at ``point``, now."""
        return self.decide_at(point, self.loop.now())

    def decide_at(
        self,
        point: str,
        t: float,
        specs: list[FaultSpec] | None = None,
    ) -> tuple[str | None, float]:
        """One fate decision for a unit of traffic at ``point`` at time ``t``.

        Returns ``(action, delay)`` where action is ``None`` (pass),
        ``"drop"`` (with the kind recorded), ``"delay"`` or ``"dup"``.
        Window kinds (blackout, crash) dominate; probabilistic kinds are
        then consulted in a fixed order so the RNG draw sequence is
        stable.  ``specs`` may carry a pre-filtered active-spec list (the
        batched kernel's lane view precomputes the fnmatch walk); it must
        equal ``schedule.active_specs(_PATH_KINDS, point, t)`` or the RNG
        consumption order diverges from the reference engine.
        """
        if specs is None:
            specs = self.schedule.active_specs(_PATH_KINDS, point, t)
        if not specs:
            return None, 0.0
        for spec in specs:
            if spec.kind in (BLACKOUT, CRASH):
                self._record(t, spec.kind, point, "dropped")
                return "drop:" + spec.kind, 0.0
        for spec in specs:  # fixed order: the schedule's spec order
            if spec.kind in (BURST_LOSS, CORRUPT):
                if self._rng.random() < spec.magnitude:
                    self._record(t, spec.kind, point, "dropped")
                    return "drop:" + spec.kind, 0.0
            elif spec.kind == REORDER:
                if self._rng.random() < spec.magnitude:
                    delay = self._rng.uniform(0.0, spec.jitter_s)
                    self._record(t, spec.kind, point, f"held {delay:.6f}s")
                    return "delay", delay
            elif spec.kind == DUPLICATE:
                if self._rng.random() < spec.magnitude:
                    delay = self._rng.uniform(0.0, spec.jitter_s)
                    self._record(t, spec.kind, point, f"copy +{delay:.6f}s")
                    return "dup", delay
        return None, 0.0

    # ----------------------------------------------------- uniform hooks

    def pipe(self, point: str, downstream: Callable[[Packet], None]) -> Callable[[Packet], None]:
        """Wrap a packet receiver: the uniform packet-path injection hook.

        Dropped packets are marked with a ``fault-<kind>`` layer so the
        §3.1 loss-taxonomy accounting attributes them correctly.
        """

        def receive(packet: Packet) -> None:
            action, delay = self._decide(point)
            if action is None:
                downstream(packet)
            elif action.startswith("drop:"):
                packet.mark_dropped("fault-" + action.split(":", 1)[1])
            elif action == "delay":
                self.loop.schedule(delay, downstream, packet)
            else:  # dup: the original goes now, the copy after `delay`
                downstream(packet)
                self.loop.schedule(delay, downstream, packet)

        return receive

    def pipe_frames(self, point: str, downstream: Callable[[bytes], None]) -> Callable[[bytes], None]:
        """Wrap a byte-frame receiver (the PoC netdriver's ARQ endpoints).

        ``crash`` windows model an endpoint being down: every frame that
        arrives meanwhile is lost and the peer's retransmission timer has
        to recover after the restart.  ``corrupt`` frames are dropped
        here too — a frame whose signature cannot verify is equivalent to
        a lost frame for the protocol, minus wasted crypto time.
        """

        def receive(frame: bytes) -> None:
            action, delay = self._decide(point)
            if action is None:
                downstream(frame)
            elif action.startswith("drop:"):
                return
            elif action == "delay":
                self.loop.schedule(delay, downstream, frame)
            else:
                downstream(frame)
                self.loop.schedule(delay, downstream, frame)

        return receive

    def pipe_call(self, point: str, fn: Callable[..., None]) -> Callable[..., None]:
        """Wrap an arbitrary positional-args callable (transport segments).

        Used to splice faults between :class:`TcpLikeSender.transmit` and
        the wire, or any other ``(size, seq, ...)``-style hop.
        """

        def call(*args) -> None:
            action, delay = self._decide(point)
            if action is None:
                fn(*args)
            elif action.startswith("drop:"):
                return
            elif action == "delay":
                self.loop.schedule(delay, fn, *args)
            else:
                fn(*args)
                self.loop.schedule(delay, fn, *args)

        return call

    # ------------------------------------------------- component adapters

    def attach_link(self, link, point: str | None = None) -> None:
        """Wrap a :class:`~repro.netsim.link.Link` delivery path in place."""
        name = point if point is not None else link.name
        link.receiver = self.pipe(name, link.receiver)

    def attach_modem(self, modem, point: str = "modem") -> None:
        """Arm every matching ``counter-reset`` spec against a modem.

        At each reset the modem's cumulative counters restart from zero —
        the legitimate detach/reboot behaviour the operator's
        :class:`~repro.edge.monitors.CounterCheckMonitor` re-baselines
        around (its ``resets_observed`` counts these).  Resets are armed
        as bound-method events so the batched-kernel adapter can absorb
        them by callback identity, like outage and handover timers.
        """
        for spec in self.schedule.specs:
            if spec.kind == COUNTER_RESET and spec.matches(point):
                if spec.start >= self.loop.now():
                    event = self.loop.schedule_at(
                        spec.start, self._reset_modem, modem, point
                    )
                    self._reset_events.append(event)

    def _reset_modem(self, modem, point: str) -> None:
        """Fire one armed counter reset: zero the modem's counters now."""
        self.apply_reset(modem, self.loop.now(), point)

    def apply_reset(self, modem, t: float, point: str = "modem") -> None:
        """Replay one counter reset at lane time ``t`` (batched kernel).

        Identical effect and trace record to :meth:`_reset_modem`, with
        the timestamp supplied by the lane wheel instead of the loop.
        """
        from .counters import CumulativeCounter

        self._record(t, COUNTER_RESET, point, "counters zeroed")
        modem.ul_sent = CumulativeCounter()
        modem.dl_received = CumulativeCounter()

    def lane_view(self, points: tuple[str, ...] = ("uplink", "downlink")) -> "LaneFaultView":
        """A precomputed per-point decision view for the batched kernel."""
        return LaneFaultView(self, points)

    def attach_negotiation(
        self,
        negotiation,
        edge_point: str = "poc-edge",
        operator_point: str = "poc-operator",
    ) -> None:
        """Wrap both PoC netdriver endpoints' receive paths in place."""
        edge = negotiation.edge_endpoint
        operator = negotiation.operator_endpoint
        edge.receive = self.pipe_frames(edge_point, edge.receive)
        operator.receive = self.pipe_frames(operator_point, operator.receive)

    def extra_skew(self, point: str, t: float) -> float:
        """Accumulated clock error at ``t`` for a party clock (seconds).

        A nonzero application is logged to the trace (kind of the first
        matching clock spec), so clock chaos is replayable/comparable
        like packet chaos.
        """
        skew = self.schedule.skew_at(point, t)
        if skew != 0.0:
            kinds = [
                s.kind for s in self.schedule.specs
                if s.kind in _CLOCK_KINDS and s.matches(point)
            ]
            self._record(t, kinds[0], point, f"skew {skew:+.6f}s")
        return skew


# --------------------------------------------------------------- lane view


class LaneFaultView:
    """Precomputed per-point fault decisions for the batched kernel.

    The lane executor cannot afford the injector's per-packet fnmatch
    walk, and it must not re-derive the decision logic (any drift is a
    parity bug).  This view pins, per injection point, the schedule's
    matching path-kind specs once — time-independent — and hands the
    lane a ``decide(t)`` closure that filters by window and then calls
    straight into :meth:`FaultInjector.decide_at`, so the "faults" RNG
    stream, the trace and the metrics counters are all consumed/updated
    exactly as the reference engine would.
    """

    def __init__(self, injector: FaultInjector, points: tuple[str, ...]) -> None:
        self.injector = injector
        self._path_specs: dict[str, tuple[FaultSpec, ...]] = {
            point: tuple(
                s for s in injector.schedule.specs
                if s.kind in _PATH_KINDS and s.matches(point)
            )
            for point in points
        }

    def has_path_faults(self, point: str) -> bool:
        """Whether any path-kind spec can ever fire at ``point``."""
        return bool(self._path_specs.get(point, ()))

    @property
    def any_path_faults(self) -> bool:
        """Whether any lane injection point sees path-kind specs."""
        return any(self._path_specs.values())

    def decider(self, point: str):
        """``decide(t) -> (action, delay)`` for ``point``, or None.

        None means the schedule can never touch traffic at this point,
        so the lane may skip the hook entirely (matching the reference
        engine, which draws no RNG and records nothing when
        ``active_specs`` comes back empty).

        Windows are static, so the active-spec set is piecewise
        constant in time: precompute it per boundary segment and bisect
        per decision rather than filtering every spec per packet (a
        canned profile carries dozens of periodic windows).  Segment
        lists keep schedule order, so the RNG consumption order is
        exactly :meth:`FaultSchedule.active_specs`'s.
        """
        matched = self._path_specs.get(point, ())
        if not matched:
            return None
        injector = self.injector

        bounds = {0.0}
        for s in matched:
            bounds.add(s.start)
            if s.duration is not None:
                bounds.add(s.start + s.duration)
        starts = sorted(bounds)
        # active(t) is constant on [starts[i], starts[i+1]) — windows
        # are start-inclusive/end-exclusive, so sampling the segment's
        # left edge classifies the whole segment.
        segments = [[s for s in matched if s.active(t0)] for t0 in starts]
        decide_at = injector.decide_at
        empty = (None, 0.0)

        def decide(t: float) -> tuple[str | None, float]:
            active = segments[bisect_right(starts, t) - 1]
            if not active:
                return empty  # reference draws no RNG, records nothing
            return decide_at(point, t, specs=active)

        return decide

    def apply_reset(self, modem, t: float, point: str = "modem") -> None:
        """Replay one absorbed counter-reset event at lane time ``t``."""
        self.injector.apply_reset(modem, t, point)


# ---------------------------------------------------------------- profiles


def _windows(kind: str, target: str, period: float, width: float, n: int,
             magnitude: float = 1.0, jitter_s: float = 0.0, phase: float = 0.0) -> list[FaultSpec]:
    """``n`` periodic fault windows (a flapping link, periodic crashes...)."""
    return [
        FaultSpec(kind, start=phase + i * period, duration=width,
                  target=target, magnitude=magnitude, jitter_s=jitter_s)
        for i in range(n)
    ]


#: Named chaos profiles for ``--fault-profile`` and the benchmark sweeps.
#: Windows repeat over the first hour, covering default figure scenarios
#: (10 × 60 s cycles) and longer custom runs alike.
FAULT_PROFILES: dict[str, FaultSchedule] = {
    "none": FaultSchedule(name="none"),
    # §3.1 loss classes 1-3 stacked: steady random loss plus short deep
    # fades on the whole data path.
    "bursty": FaultSchedule(
        name="bursty",
        specs=tuple(
            [FaultSpec(BURST_LOSS, start=0.0, target="*link*", magnitude=0.05)]
            + _windows(BURST_LOSS, "downlink", period=45.0, width=3.0, n=80,
                       magnitude=0.5, phase=7.0)
        ),
    ),
    # Figure 4-style intermittent connectivity: the device path flaps.
    "flaky-link": FaultSchedule(
        name="flaky-link",
        specs=tuple(
            _windows(BLACKOUT, "uplink", period=60.0, width=2.0, n=60, phase=11.0)
            + _windows(BLACKOUT, "downlink", period=90.0, width=3.0, n=40, phase=31.0)
        ),
    ),
    # Figure 18's record-error mechanism, exaggerated: both party clocks
    # drift apart and the edge carries a constant offset.
    "clock-drift": FaultSchedule(
        name="clock-drift",
        specs=(
            FaultSpec(CLOCK_DRIFT, start=0.0, target="edge-clock", magnitude=400.0),
            FaultSpec(CLOCK_DRIFT, start=0.0, target="operator-clock", magnitude=-250.0),
            FaultSpec(CLOCK_SKEW, start=0.0, target="edge-clock", magnitude=0.05),
        ),
    ),
    # The kitchen sink: loss, reordering, duplication, modem reboots and
    # drifting clocks, all at once.
    "chaos": FaultSchedule(
        name="chaos",
        specs=tuple(
            [
                FaultSpec(BURST_LOSS, start=0.0, target="*link*", magnitude=0.03),
                FaultSpec(REORDER, start=0.0, target="downlink",
                          magnitude=0.05, jitter_s=0.02),
                FaultSpec(DUPLICATE, start=0.0, target="uplink",
                          magnitude=0.03, jitter_s=0.01),
                FaultSpec(CLOCK_DRIFT, start=0.0, target="edge-clock", magnitude=300.0),
                FaultSpec(COUNTER_RESET, start=95.0, target="modem"),
                FaultSpec(COUNTER_RESET, start=305.0, target="modem"),
            ]
            + _windows(BLACKOUT, "downlink", period=120.0, width=2.5, n=30, phase=50.0)
        ),
    ),
}
