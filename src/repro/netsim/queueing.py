"""Queues and schedulers.

Two building blocks:

* :class:`DropTailQueue` — a finite FIFO that discards arrivals when full.
  Congestion-induced charging gaps (Figure 3/13 of the paper) come from
  packets being counted by the gateway and then dropped in such a queue.
* :class:`PriorityScheduler` — strict-priority service across QCI classes,
  draining queues onto a fixed-rate server.  This is how the paper's gaming
  traffic (QCI=7) stays nearly loss-free while best-effort background
  traffic (QCI=9) gets squeezed (Figure 12d).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from .events import EventLoop
from .packet import FlowStats, Packet

Receiver = Callable[[Packet], None]


class DropTailQueue:
    """A byte-bounded FIFO with tail drop."""

    def __init__(self, capacity_bytes: int, drop_layer: str = "ip-congestion") -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.drop_layer = drop_layer
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self.enqueued = FlowStats()
        self.dropped = FlowStats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently buffered."""
        return self._bytes

    def push(self, packet: Packet) -> bool:
        """Enqueue ``packet``; returns False (and drops) when full."""
        if self._bytes + packet.size > self.capacity_bytes:
            packet.mark_dropped(self.drop_layer)
            self.dropped.count(packet)
            return False
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueued.count(packet)
        return True

    def pop(self) -> Packet | None:
        """Dequeue the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet

    def drain(self) -> list[Packet]:
        """Remove and return every buffered packet (used on RLF detach)."""
        drained = list(self._queue)
        self._queue.clear()
        self._bytes = 0
        return drained


class PriorityScheduler:
    """Strict-priority, fixed-rate server over per-QCI drop-tail queues.

    Lower QCI value = higher priority (matching 3GPP: QCI 3 for real-time
    gaming outranks QCI 7 interactive which outranks QCI 9 best-effort).
    """

    def __init__(
        self,
        loop: EventLoop,
        receiver: Receiver,
        rate_bps: float,
        queue_capacity_bytes: int = 256 * 1024,
        drop_layer: str = "ip-congestion",
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {rate_bps}")
        self.loop = loop
        self.receiver = receiver
        self.rate_bps = rate_bps
        self.queue_capacity_bytes = queue_capacity_bytes
        self.drop_layer = drop_layer
        self._queues: dict[int, DropTailQueue] = {}
        self._serving = False
        self.served = FlowStats()

    def queue_for(self, qci: int) -> DropTailQueue:
        """Return (creating if needed) the queue for one QCI class."""
        queue = self._queues.get(qci)
        if queue is None:
            queue = DropTailQueue(self.queue_capacity_bytes, self.drop_layer)
            self._queues[qci] = queue
        return queue

    @property
    def dropped(self) -> FlowStats:
        """Aggregate drop counters across all QCI queues."""
        total = FlowStats()
        for queue in self._queues.values():
            total = total.merge(queue.dropped)
        return total

    def backlog_bytes(self) -> int:
        """Total buffered bytes across classes."""
        return sum(q.backlog_bytes for q in self._queues.values())

    def submit(self, packet: Packet) -> None:
        """Offer a packet for scheduling; may be tail-dropped."""
        if self.queue_for(packet.qci).push(packet) and not self._serving:
            self._serve_next()

    def _next_packet(self) -> Packet | None:
        for qci in sorted(self._queues):
            packet = self._queues[qci].pop()
            if packet is not None:
                return packet
        return None

    def _serve_next(self) -> None:
        packet = self._next_packet()
        if packet is None:
            self._serving = False
            return
        self._serving = True
        service_time = packet.size * 8.0 / self.rate_bps
        self.loop.schedule(service_time, self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        self.served.count(packet)
        self.receiver(packet)
        self._serve_next()
