"""Discrete-event network simulation substrate.

Provides the virtual clock, event loop, seeded random streams, packets,
links, queues and trace record/replay that the cellular and edge models are
built on.
"""

from .clock import Clock, SkewedClock
from .events import Event, EventLoop
from .faults import (
    FAULT_KINDS,
    FAULT_PROFILES,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FaultTrace,
    load_fault_trace,
)
from .link import Link
from .packet import Direction, FlowStats, Packet, Transport
from .pcap import TraceEntry, TraceRecorder, TraceReplayer, load_trace
from .queueing import DropTailQueue, PriorityScheduler
from .rng import StreamRegistry
from .transport import Segment, TcpLikeReceiver, TcpLikeSender

__all__ = [
    "Clock",
    "SkewedClock",
    "Event",
    "EventLoop",
    "FAULT_KINDS",
    "FAULT_PROFILES",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "FaultTrace",
    "load_fault_trace",
    "Link",
    "Direction",
    "FlowStats",
    "Packet",
    "Transport",
    "TraceEntry",
    "TraceRecorder",
    "TraceReplayer",
    "load_trace",
    "DropTailQueue",
    "PriorityScheduler",
    "StreamRegistry",
    "Segment",
    "TcpLikeReceiver",
    "TcpLikeSender",
]
