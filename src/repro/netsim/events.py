"""A minimal discrete-event simulation (DES) engine.

The engine keeps a priority queue of ``(time, sequence, callback)`` entries
and dispatches them in time order, advancing the shared :class:`Clock` as it
goes.  Ties are broken by insertion order, which keeps runs deterministic.

This is the substrate under every experiment: packets in flight, radio
outage transitions, charging-cycle boundaries and RRC procedures are all
events on one loop.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from .clock import Clock


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "loop")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        loop: "EventLoop | None" = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.loop = loop

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped at dispatch.

        Safe to call repeatedly and after the event has dispatched (the
        loop drops its backref at dispatch, so a late cancel cannot skew
        the live-event accounting).
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.loop is not None:
            self.loop._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__name__", repr(self.callback))
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, {name}{flag})"


class EventLoop:
    """Time-ordered event dispatcher around a shared :class:`Clock`.

    Cancelled events are removed lazily: cancellation just flips a flag
    and bumps a counter, and the heap is compacted once cancelled entries
    dominate it.  Heavy cancel/rearm users (ARQ retransmission timers)
    therefore keep the heap at O(live events) instead of O(timers ever
    armed), and :meth:`pending` stays O(1).
    """

    #: Compact only past this many cancelled entries (avoids churn on
    #: tiny queues, where a linear sweep per cancel would be quadratic).
    _COMPACT_MIN_CANCELLED = 64

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._dispatched = 0
        self._cancelled = 0

    @property
    def dispatched(self) -> int:
        """Number of events executed so far (cancelled ones excluded)."""
        return self._dispatched

    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now()

    def schedule_at(self, t: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``t``."""
        if t < self.clock.now():
            raise ValueError(f"cannot schedule in the past: {t} < {self.clock.now()}")
        event = Event(t, next(self._seq), callback, args, self)
        heapq.heappush(self._queue, event)
        return event

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.clock.now() + delay, callback, *args)

    def pending(self) -> int:
        """Number of not-yet-dispatched, not-cancelled events (O(1))."""
        return len(self._queue) - self._cancelled

    def heap_size(self) -> int:
        """Heap entries including not-yet-reclaimed cancelled ones."""
        return len(self._queue)

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= self._COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify; amortized O(1) per cancel."""
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def run_until(self, t_end: float) -> int:
        """Dispatch all events with ``time <= t_end``; clock ends at ``t_end``.

        Returns the number of events dispatched by this call.
        """
        dispatched_before = self._dispatched
        while self._queue and self._queue[0].time <= t_end:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            event.loop = None  # late cancel() must not touch the counter
            self.clock.advance_to(event.time)
            event.callback(*event.args)
            self._dispatched += 1
        self.clock.advance_to(max(t_end, self.clock.now()))
        return self._dispatched - dispatched_before

    def run(self) -> int:
        """Dispatch every remaining event; returns the number dispatched."""
        dispatched_before = self._dispatched
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            event.loop = None  # late cancel() must not touch the counter
            self.clock.advance_to(event.time)
            event.callback(*event.args)
            self._dispatched += 1
        return self._dispatched - dispatched_before
