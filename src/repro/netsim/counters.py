"""Time-indexed byte counters.

Every charging observation point (gateway, device modem, app monitor,
server monitor) records bytes against virtual time so that, at the end of a
charging cycle ``[t1, t2)``, the volume attributable to the cycle can be
queried.  The counter is the primitive behind both the *ground-truth* usage
pairs ``(x̂_e, x̂_o)`` and the *measured* (possibly skewed or quantized)
records the parties actually negotiate with.
"""

from __future__ import annotations

import bisect


class CumulativeCounter:
    """Monotone cumulative byte counter sampled at event times.

    Stores a sorted sequence of ``(t, cumulative_bytes)`` points; queries
    interpolate step-wise (bytes counted exactly at their event time).
    """

    def __init__(self) -> None:
        self._times: list[float] = []
        self._cums: list[int] = []
        self._total = 0

    @property
    def total(self) -> int:
        """All bytes ever counted."""
        return self._total

    @property
    def events(self) -> int:
        """Number of counted increments."""
        return len(self._times)

    def add(self, t: float, nbytes: int) -> None:
        """Count ``nbytes`` at time ``t`` (times must be non-decreasing)."""
        if nbytes < 0:
            raise ValueError(f"cannot count negative bytes: {nbytes}")
        if self._times and t < self._times[-1]:
            raise ValueError(f"counter time went backwards: {t} < {self._times[-1]}")
        self._total += nbytes
        if self._times and t == self._times[-1]:
            self._cums[-1] = self._total
        else:
            self._times.append(t)
            self._cums.append(self._total)

    def cumulative_at(self, t: float) -> int:
        """Bytes counted at times ``<= t``."""
        idx = bisect.bisect_right(self._times, t)
        return self._cums[idx - 1] if idx else 0

    def bytes_between(self, t1: float, t2: float) -> int:
        """Bytes counted in the half-open window ``(t1, t2]``."""
        if t2 < t1:
            raise ValueError(f"empty window: ({t1}, {t2}]")
        return self.cumulative_at(t2) - self.cumulative_at(t1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CumulativeCounter(total={self._total}, events={self.events})"
