"""Packet and flow primitives.

A :class:`Packet` is the unit everything else counts: workloads emit them,
links and queues may drop them, the SPGW gateway and the device modem count
their bytes at different points along the path — and the difference between
those counting points *is* the charging gap this reproduction studies.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class Direction(enum.Enum):
    """Traffic direction relative to the edge device."""

    UPLINK = "UL"    # device -> gateway -> server
    DOWNLINK = "DL"  # server -> gateway -> radio -> device


class Transport(enum.Enum):
    """Transport protocol carried by a packet (affects loss recovery)."""

    UDP = "udp"
    TCP = "tcp"


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A single datagram traversing the simulated network.

    ``size`` is the charged size in bytes (payload + headers, matching what
    a gateway's volume counter sees).  ``dropped_at`` records the first
    layer that discarded the packet, for loss-taxonomy accounting (§3.1).
    """

    size: int
    flow_id: str
    direction: Direction
    qci: int = 9
    transport: Transport = Transport.UDP
    created_at: float = 0.0
    seq: int = 0
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))
    dropped_at: str | None = None
    delivered_at: float | None = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    @property
    def delivered(self) -> bool:
        """True once the packet reached its final counting point."""
        return self.delivered_at is not None

    def mark_dropped(self, layer: str) -> None:
        """Record the (first) layer that dropped this packet."""
        if self.dropped_at is None:
            self.dropped_at = layer


@dataclass
class FlowStats:
    """Byte/packet counters for one flow at one observation point."""

    packets: int = 0
    bytes: int = 0

    def count(self, packet: Packet) -> None:
        """Account for one observed packet."""
        self.packets += 1
        self.bytes += packet.size

    def merge(self, other: "FlowStats") -> "FlowStats":
        """Return the element-wise sum of two counters."""
        return FlowStats(self.packets + other.packets, self.bytes + other.bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowStats(packets={self.packets}, bytes={self.bytes})"
