"""A TCP-like reliable transport: ARQ with retransmission timers.

Two of the paper's observations need this substrate:

* **§3.1, loss class 4** — *transport-layer retransmission*: spurious
  retransmissions (the RTO fires although the segment or its ACK was
  merely delayed) are charged by the gateway although they carry no new
  application data — reference [12]'s over-charging vector.  The sender
  counts them separately so experiments can quantify charged-vs-goodput.
* **Theorem 1's loss-latency trade-off** — recovering losses by
  synchronizing (retransmitting) closes the sent-vs-received gap at the
  cost of delaying delivery.  ``benchmarks/test_theorem1_tradeoff.py``
  runs the same lossy path over UDP and over this transport and shows the
  gap shrink while delivery latency grows.

The model is deliberately simple — fixed MSS, per-segment retransmission
timer, cumulative delivery, no congestion control — because charging only
sees *which bytes crossed which counter when*.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from .events import Event, EventLoop


@dataclass
class Segment:
    """One transport segment in flight."""

    seq: int
    size: int
    first_sent_at: float
    transmissions: int = 1
    acked: bool = False
    timer: Event | None = field(default=None, repr=False)


SendFn = Callable[[int, int], None]  # (size, seq) -> transmit one segment
AckFn = Callable[[int], None]  # seq -> send an ACK back
DeliverFn = Callable[[int, float], None]  # (size, latency) -> app delivery


class TcpLikeSender:
    """Reliable sender: segments, retransmission timers, spurious counting."""

    def __init__(
        self,
        loop: EventLoop,
        transmit: SendFn,
        mss: int = 1400,
        rto_s: float = 0.2,
        max_retries: int = 6,
    ) -> None:
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss}")
        if rto_s <= 0:
            raise ValueError(f"rto must be positive, got {rto_s}")
        self.loop = loop
        self.transmit = transmit
        self.mss = mss
        self.rto_s = rto_s
        self.max_retries = max_retries
        self._seq = itertools.count()
        self._inflight: dict[int, Segment] = {}
        self.offered_bytes = 0
        self.transmitted_bytes = 0
        self.retransmitted_bytes = 0
        self.spurious_retransmissions = 0
        self.abandoned_segments = 0

    def offer(self, nbytes: int) -> list[int]:
        """Send application bytes; returns the segment sequence numbers."""
        if nbytes <= 0:
            raise ValueError(f"cannot offer {nbytes} bytes")
        self.offered_bytes += nbytes
        seqs = []
        remaining = nbytes
        while remaining > 0:
            size = min(remaining, self.mss)
            remaining -= size
            seq = next(self._seq)
            segment = Segment(seq=seq, size=size, first_sent_at=self.loop.now())
            self._inflight[seq] = segment
            seqs.append(seq)
            self._transmit_segment(segment)
        return seqs

    def _transmit_segment(self, segment: Segment) -> None:
        self.transmitted_bytes += segment.size
        if segment.transmissions > 1:
            self.retransmitted_bytes += segment.size
        segment.timer = self.loop.schedule(self.rto_s, self._on_timeout, segment.seq)
        self.transmit(segment.size, segment.seq)

    def _on_timeout(self, seq: int) -> None:
        segment = self._inflight.get(seq)
        if segment is None or segment.acked:
            return
        if segment.transmissions > self.max_retries:
            self.abandoned_segments += 1
            del self._inflight[seq]
            return
        segment.transmissions += 1
        self._transmit_segment(segment)

    def on_ack(self, seq: int) -> None:
        """Process an ACK; late ACKs after a retransmission are spurious."""
        segment = self._inflight.pop(seq, None)
        if segment is None:
            return  # duplicate ACK for an already-completed segment
        if segment.timer is not None:
            segment.timer.cancel()
        segment.acked = True
        if segment.transmissions > 1:
            # The segment had been retransmitted; if the original actually
            # arrived, the extra transmissions were spurious.  We cannot
            # tell which copy this ACK answers, so (like [12]'s traces)
            # count every retransmission of an eventually-ACKed segment
            # beyond the first as potentially spurious.
            self.spurious_retransmissions += segment.transmissions - 1

    @property
    def unacked_segments(self) -> int:
        """Segments still awaiting an ACK."""
        return len(self._inflight)

    def first_sent_at(self, seq: int) -> float | None:
        """When the segment was first offered to the network (if in flight)."""
        segment = self._inflight.get(seq)
        return segment.first_sent_at if segment is not None else None

    @property
    def overhead_ratio(self) -> float:
        """Transmitted over offered bytes (1.0 = no retransmission)."""
        if self.offered_bytes == 0:
            return 1.0
        return self.transmitted_bytes / self.offered_bytes


class TcpLikeReceiver:
    """Reliable receiver: ACKs everything, delivers each segment once."""

    def __init__(
        self,
        loop: EventLoop,
        send_ack: AckFn,
        deliver: DeliverFn | None = None,
    ) -> None:
        self.loop = loop
        self.send_ack = send_ack
        self.deliver = deliver
        self._seen: set[int] = set()
        self.delivered_bytes = 0
        self.duplicate_segments = 0
        self.delivery_latencies: list[float] = []

    def on_segment(self, size: int, seq: int, sent_at: float) -> None:
        """Handle one arriving segment (possibly a duplicate)."""
        self.send_ack(seq)
        if seq in self._seen:
            self.duplicate_segments += 1
            return
        self._seen.add(seq)
        self.delivered_bytes += size
        latency = self.loop.now() - sent_at
        self.delivery_latencies.append(latency)
        if self.deliver is not None:
            self.deliver(size, latency)
