"""Trace record / replay — the simulator's stand-in for tcpdump/tcpreplay.

The paper replays VRidge and King-of-Glory ``tcpdump`` traces with
``tcpreplay``.  We provide the same workflow: a :class:`TraceRecorder`
captures (timestamp, size, flow, qci) tuples from any observation point; a
:class:`TraceReplayer` re-injects a recorded trace into a fresh simulation,
preserving inter-packet timing.  Traces serialize to a simple JSON-lines
format so synthetic traces can be shipped with the repository.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from .events import EventLoop
from .packet import Direction, Packet, Transport


@dataclass(frozen=True)
class TraceEntry:
    """One captured packet: when it appeared and what it looked like."""

    timestamp: float
    size: int
    flow_id: str
    direction: str
    qci: int
    transport: str

    def to_json(self) -> str:
        """Serialize to one JSON line."""
        return json.dumps(
            {
                "ts": self.timestamp,
                "size": self.size,
                "flow": self.flow_id,
                "dir": self.direction,
                "qci": self.qci,
                "proto": self.transport,
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEntry":
        """Parse one JSON line back into an entry."""
        raw = json.loads(line)
        return cls(
            timestamp=float(raw["ts"]),
            size=int(raw["size"]),
            flow_id=str(raw["flow"]),
            direction=str(raw["dir"]),
            qci=int(raw["qci"]),
            transport=str(raw["proto"]),
        )


class TraceRecorder:
    """Collects :class:`TraceEntry` rows from observed packets."""

    def __init__(self, loop: EventLoop) -> None:
        self.loop = loop
        self.entries: list[TraceEntry] = []

    def observe(self, packet: Packet) -> None:
        """Record one packet at the current virtual time."""
        self.entries.append(
            TraceEntry(
                timestamp=self.loop.now(),
                size=packet.size,
                flow_id=packet.flow_id,
                direction=packet.direction.value,
                qci=packet.qci,
                transport=packet.transport.value,
            )
        )

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON lines."""
        text = "\n".join(entry.to_json() for entry in self.entries)
        Path(path).write_text(text + ("\n" if text else ""))


def load_trace(path: str | Path) -> list[TraceEntry]:
    """Load a JSON-lines trace from disk."""
    entries = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            entries.append(TraceEntry.from_json(line))
    return entries


class TraceReplayer:
    """Re-injects a recorded trace into a simulation (tcpreplay analogue)."""

    def __init__(
        self,
        loop: EventLoop,
        entries: Iterable[TraceEntry],
        sink: Callable[[Packet], None],
        time_offset: float = 0.0,
        loop_duration: float | None = None,
    ) -> None:
        self.loop = loop
        self.entries = list(entries)
        self.sink = sink
        self.time_offset = time_offset
        self.loop_duration = loop_duration
        self.replayed = 0

    def start(self, until: float | None = None) -> int:
        """Schedule every trace entry; returns the number scheduled.

        With ``loop_duration`` set, the trace repeats back-to-back (shifted
        by multiples of the duration) until ``until`` — mirroring how the
        paper replays a 1-hour trace across many charging cycles.
        """
        if not self.entries:
            return 0
        scheduled = 0
        repeat = 0
        while True:
            base = self.time_offset + repeat * (self.loop_duration or 0.0)
            for entry in self.entries:
                t = base + entry.timestamp
                if until is not None and t > until:
                    return scheduled
                self.loop.schedule_at(t, self._emit, entry)
                scheduled += 1
            if self.loop_duration is None or until is None:
                return scheduled
            repeat += 1

    def _emit(self, entry: TraceEntry) -> None:
        packet = Packet(
            size=entry.size,
            flow_id=entry.flow_id,
            direction=Direction(entry.direction),
            qci=entry.qci,
            transport=Transport(entry.transport),
            created_at=self.loop.now(),
            seq=self.replayed,
        )
        self.replayed += 1
        self.sink(packet)
