"""Deterministic, named random streams.

Every stochastic component in the simulator (radio outages, queue drops,
workload frame sizes, selfish-claim sampling ...) draws from its own named
stream derived from a single experiment seed.  Adding a new component or
reordering draws in one component therefore never perturbs the randomness
seen by the others — a property the experiment harness relies on when
comparing charging schemes on identical traffic.
"""

from __future__ import annotations

import hashlib
import random


class StreamRegistry:
    """Factory for independent, reproducible :class:`random.Random` streams.

    Streams are keyed by name; asking twice for the same name returns the
    same stream object.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def fork(self, salt: str) -> "StreamRegistry":
        """Derive a child registry whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return StreamRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamRegistry(seed={self.seed}, streams={sorted(self._streams)})"
