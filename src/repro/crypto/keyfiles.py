"""Key files: how parties publish keys and auditors load them.

The paper's setup phase (§5.3.1) has each party publicize its RSA public
key.  This module gives that a concrete form — a small ASCII armor around
the portable encoding of :mod:`repro.crypto.signing` — plus private-key
persistence for the parties' own storage.  Formats are this project's
own (the offline environment has no PEM/ASN.1 tooling); they are explicit
and versioned.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

from .rsa import PrivateKey, PublicKey
from .signing import SignatureError, deserialize_public_key, serialize_public_key

PUBLIC_HEADER = "-----BEGIN TLC PUBLIC KEY-----"
PUBLIC_FOOTER = "-----END TLC PUBLIC KEY-----"


def save_public_key(key: PublicKey, path: str | Path) -> Path:
    """Write an ASCII-armored public key file."""
    path = Path(path)
    body = base64.b64encode(serialize_public_key(key)).decode("ascii")
    wrapped = "\n".join(body[i : i + 64] for i in range(0, len(body), 64))
    path.write_text(f"{PUBLIC_HEADER}\n{wrapped}\n{PUBLIC_FOOTER}\n")
    return path


def load_public_key(path: str | Path) -> PublicKey:
    """Read an ASCII-armored public key file."""
    lines = Path(path).read_text().strip().splitlines()
    if not lines or lines[0] != PUBLIC_HEADER or lines[-1] != PUBLIC_FOOTER:
        raise SignatureError(f"{path}: not a TLC public key file")
    body = "".join(line.strip() for line in lines[1:-1])
    try:
        blob = base64.b64decode(body, validate=True)
    except (ValueError, base64.binascii.Error) as exc:
        raise SignatureError(f"{path}: corrupted armor: {exc}") from exc
    return deserialize_public_key(blob)


def save_private_key(key: PrivateKey, path: str | Path) -> Path:
    """Persist a private key (plaintext JSON — protect the file itself)."""
    path = Path(path)
    payload = {
        "format": "tlc-private-key-v1",
        "n": key.n, "e": key.e, "d": key.d,
        "p": key.p, "q": key.q,
        "dp": key.dp, "dq": key.dq, "qinv": key.qinv,
    }
    path.write_text(json.dumps(payload))
    try:
        path.chmod(0o600)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    return path


def load_private_key(path: str | Path) -> PrivateKey:
    """Reload a private key saved by :func:`save_private_key`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SignatureError(f"{path}: not a key file: {exc}") from exc
    if payload.get("format") != "tlc-private-key-v1":
        raise SignatureError(f"{path}: unknown key format")
    fields = ("n", "e", "d", "p", "q", "dp", "dq", "qinv")
    missing = [f for f in fields if f not in payload]
    if missing:
        raise SignatureError(f"{path}: missing fields {missing}")
    return PrivateKey(**{f: int(payload[f]) for f in fields})
