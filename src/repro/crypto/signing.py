"""Message signing in the PKCS#1 v1.5 style over SHA-256.

This is the signature primitive under every TLC message: CDRs, CDAs and
PoCs are byte strings signed by the edge app vendor's or the cellular
operator's private key and verified by anyone holding the public key —
including independent third parties (Algorithm 2 of the paper).
"""

from __future__ import annotations

import hashlib

from .rsa import PrivateKey, PublicKey, bytes_to_int, int_to_bytes

# DER prefix for a SHA-256 DigestInfo, per RFC 8017 §9.2.
_SHA256_DIGESTINFO_PREFIX = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)


class SignatureError(ValueError):
    """Raised when a signature fails structural checks or verification."""


def _emsa_pkcs1_v15_encode(message: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message) into ``em_len`` bytes."""
    digest = hashlib.sha256(message).digest()
    t = _SHA256_DIGESTINFO_PREFIX + digest
    if em_len < len(t) + 11:
        raise SignatureError(f"modulus too short for SHA-256 signatures ({em_len} bytes)")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def sign(message: bytes, key: PrivateKey) -> bytes:
    """Sign ``message`` with ``key``; returns a modulus-length signature."""
    em = _emsa_pkcs1_v15_encode(message, key.byte_length)
    signature = key.decrypt_int(bytes_to_int(em))
    return int_to_bytes(signature, key.byte_length)


def verify(message: bytes, signature: bytes, key: PublicKey) -> bool:
    """Return True iff ``signature`` is a valid signature of ``message``."""
    if len(signature) != key.byte_length:
        return False
    try:
        em = int_to_bytes(key.encrypt_int(bytes_to_int(signature)), key.byte_length)
    except ValueError:
        return False
    expected = _emsa_pkcs1_v15_encode(message, key.byte_length)
    return em == expected


def require_valid(message: bytes, signature: bytes, key: PublicKey) -> None:
    """Verify, raising :class:`SignatureError` instead of returning False."""
    if not verify(message, signature, key):
        raise SignatureError("signature verification failed")


def serialize_public_key(key: PublicKey) -> bytes:
    """Portable encoding of a public key: 4-byte lengths + big-endian ints."""
    n_bytes = int_to_bytes(key.n, key.byte_length)
    e_bytes = key.e.to_bytes((key.e.bit_length() + 7) // 8 or 1, "big")
    return (
        len(n_bytes).to_bytes(4, "big")
        + n_bytes
        + len(e_bytes).to_bytes(4, "big")
        + e_bytes
    )


def deserialize_public_key(blob: bytes) -> PublicKey:
    """Inverse of :func:`serialize_public_key`."""
    if len(blob) < 8:
        raise SignatureError("public key blob too short")
    n_len = int.from_bytes(blob[:4], "big")
    if len(blob) < 4 + n_len + 4:
        raise SignatureError("truncated public key blob (modulus)")
    n = bytes_to_int(blob[4 : 4 + n_len])
    offset = 4 + n_len
    e_len = int.from_bytes(blob[offset : offset + 4], "big")
    if len(blob) != offset + 4 + e_len:
        raise SignatureError("truncated public key blob (exponent)")
    e = bytes_to_int(blob[offset + 4 : offset + 4 + e_len])
    if n <= 0 or e <= 0:
        raise SignatureError("degenerate public key")
    return PublicKey(n=n, e=e)
