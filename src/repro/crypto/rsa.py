"""RSA key generation and raw modular operations.

The paper's prototype uses ``java.security`` RSA-1024 for CDR/CDA/PoC
signatures.  We implement the equivalent here from first principles:
two-prime key generation with public exponent 65537, CRT-accelerated
private operations, and big-endian integer/byte conversions.

Security note: textbook parameter sizes mirror the paper (RSA-1024) for
fidelity of message sizes and CPU costs; this is a research artifact, not
a hardened crypto library.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .primes import generate_prime, modinv

PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class PublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int = PUBLIC_EXPONENT

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        """Modulus size in whole bytes (signature length)."""
        return (self.n.bit_length() + 7) // 8

    def encrypt_int(self, m: int) -> int:
        """Raw public operation ``m^e mod n`` (also signature verification)."""
        if not 0 <= m < self.n:
            raise ValueError("message representative out of range")
        return pow(m, self.e, self.n)

    def fingerprint(self) -> str:
        """Short stable identifier for logs and key registries."""
        import hashlib

        return hashlib.sha256(int_to_bytes(self.n, self.byte_length)).hexdigest()[:16]


@dataclass(frozen=True)
class PrivateKey:
    """An RSA private key with CRT parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int
    dp: int
    dq: int
    qinv: int

    @property
    def public(self) -> PublicKey:
        """The matching public key."""
        return PublicKey(n=self.n, e=self.e)

    @property
    def byte_length(self) -> int:
        """Modulus size in whole bytes."""
        return (self.n.bit_length() + 7) // 8

    def decrypt_int(self, c: int) -> int:
        """Raw private operation ``c^d mod n`` via CRT (also signing)."""
        if not 0 <= c < self.n:
            raise ValueError("ciphertext representative out of range")
        m1 = pow(c, self.dp, self.p)
        m2 = pow(c, self.dq, self.q)
        h = (self.qinv * (m1 - m2)) % self.p
        return m2 + h * self.q


def generate_keypair(bits: int = 1024, rng: random.Random | None = None) -> PrivateKey:
    """Generate an RSA key pair with a ``bits``-bit modulus."""
    if bits < 256:
        raise ValueError(f"modulus too small for PKCS#1-style padding: {bits} bits")
    if bits % 2:
        raise ValueError(f"modulus bit length must be even, got {bits}")
    rng = rng if rng is not None else random.Random()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % PUBLIC_EXPONENT == 0:
            continue
        d = modinv(PUBLIC_EXPONENT, phi)
        return PrivateKey(
            n=n,
            e=PUBLIC_EXPONENT,
            d=d,
            p=p,
            q=q,
            dp=d % (p - 1),
            dq=d % (q - 1),
            qinv=modinv(q, p),
        )


def int_to_bytes(value: int, length: int) -> bytes:
    """Big-endian fixed-length encoding (I2OSP)."""
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Big-endian decoding (OS2IP)."""
    return int.from_bytes(data, "big")
