"""Cryptographic substrate: RSA key pairs and PKCS#1 v1.5-style signatures.

Built from scratch (Miller–Rabin prime generation, CRT private operations)
because the reproduction environment ships no crypto libraries.  Mirrors the
paper's use of ``java.security`` RSA-1024 for Proof-of-Charging messages.
"""

from .primes import egcd, generate_prime, miller_rabin, modinv
from .rsa import (
    PUBLIC_EXPONENT,
    PrivateKey,
    PublicKey,
    bytes_to_int,
    generate_keypair,
    int_to_bytes,
)
from .keyfiles import (
    load_private_key,
    load_public_key,
    save_private_key,
    save_public_key,
)
from .signing import (
    SignatureError,
    deserialize_public_key,
    require_valid,
    serialize_public_key,
    sign,
    verify,
)

__all__ = [
    "egcd",
    "generate_prime",
    "miller_rabin",
    "modinv",
    "PUBLIC_EXPONENT",
    "PrivateKey",
    "PublicKey",
    "bytes_to_int",
    "generate_keypair",
    "int_to_bytes",
    "load_private_key",
    "load_public_key",
    "save_private_key",
    "save_public_key",
    "SignatureError",
    "deserialize_public_key",
    "require_valid",
    "serialize_public_key",
    "sign",
    "verify",
]
