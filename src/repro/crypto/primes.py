"""Prime generation for RSA key material.

Implements deterministic trial division over small primes followed by
Miller–Rabin probabilistic primality testing.  Randomness comes from a
caller-provided ``random.Random`` so key generation is reproducible in
tests while remaining well-distributed.

This module exists because the reproduction environment has no crypto
libraries; it is written for protocol fidelity, not production hardening.
"""

from __future__ import annotations

import random

# Primes below 1000, used for fast trial-division rejection.
_SMALL_PRIMES: list[int] = []


def _sieve(limit: int) -> list[int]:
    flags = bytearray([1]) * (limit + 1)
    flags[0] = flags[1] = 0
    for n in range(2, int(limit**0.5) + 1):
        if flags[n]:
            flags[n * n :: n] = bytearray(len(flags[n * n :: n]))
    return [n for n, flag in enumerate(flags) if flag]


_SMALL_PRIMES = _sieve(1000)


def miller_rabin(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Return True if ``n`` is (probably) prime.

    Uses ``rounds`` random bases; the error probability is at most
    ``4**-rounds`` for composite ``n``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng if rng is not None else random.Random()
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such primes
    has exactly ``2 * bits`` bits, and the low bit is forced to 1 (odd).
    """
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if miller_rabin(candidate, rng=rng):
            return candidate


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns (g, x, y) with a*x + b*y == g == gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m``; raises if not coprime."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m}")
    return x % m
