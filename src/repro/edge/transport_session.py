"""Reliable (TCP-like) application sessions over the cellular path.

Most traditional mobile apps ride TCP, which recovers losses and keeps
the loss-induced charging gap small — at a latency cost the delay-
sensitive edge cannot pay (the paper's Theorem-1 trade-off, §3.3).
:class:`ReliableUplinkSession` runs a :class:`~repro.netsim.transport`
sender/receiver pair across an :class:`EdgeDevice` and its
:class:`EdgeServer`: data segments go uplink, ACKs come back downlink,
retransmissions are real packets the gateway charges again.
"""

from __future__ import annotations

from ..netsim.events import EventLoop
from ..netsim.packet import Packet, Transport
from ..netsim.transport import TcpLikeReceiver, TcpLikeSender
from .device import EdgeDevice
from .server import EdgeServer

ACK_BYTES = 64


class ReliableUplinkSession:
    """One TCP-like uplink flow between a device and its edge server."""

    def __init__(
        self,
        loop: EventLoop,
        device: EdgeDevice,
        server: EdgeServer,
        mss: int = 1400,
        rto_s: float = 0.2,
        max_retries: int = 6,
    ) -> None:
        self.loop = loop
        self.device = device
        self.server = server
        self.sender = TcpLikeSender(loop, self._transmit, mss=mss, rto_s=rto_s,
                                    max_retries=max_retries)
        self.receiver = TcpLikeReceiver(loop, self._send_ack)
        self._first_sent_at: dict[int, float] = {}
        device.on_receive = self._on_device_receive
        server.on_receive = self._on_server_receive

    # -------------------------------------------------------------- sending

    def offer(self, nbytes: int) -> None:
        """Hand application bytes to the reliable sender."""
        self.sender.offer(nbytes)

    def _transmit(self, size: int, seq: int) -> None:
        packet = self.device.send(size, transport=Transport.TCP)
        packet.seq = seq
        self._first_sent_at.setdefault(seq, packet.created_at)

    # ------------------------------------------------------------ receiving

    def _on_server_receive(self, packet: Packet) -> None:
        sent_at = self._first_sent_at.get(packet.seq, packet.created_at)
        self.receiver.on_segment(packet.size, packet.seq, sent_at)

    def _send_ack(self, seq: int) -> None:
        ack = self.server.send(ACK_BYTES, transport=Transport.TCP)
        ack.seq = seq

    def _on_device_receive(self, packet: Packet) -> None:
        self.sender.on_ack(packet.seq)

    # ------------------------------------------------------------- analysis

    @property
    def goodput_bytes(self) -> int:
        """Distinct application bytes delivered to the server."""
        return self.receiver.delivered_bytes

    def mean_delivery_latency(self) -> float:
        """Mean first-offer-to-delivery latency (retransmissions included)."""
        latencies = self.receiver.delivery_latencies
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)
