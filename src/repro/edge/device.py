"""Edge devices: the app-side endpoint on the cellular network.

An :class:`EdgeDevice` owns the app-layer traffic monitors (uplink sent /
downlink received, the edge vendor's view) and sits on a
:class:`~repro.cellular.network.UeAccess` for actual transmission.  The
hardware modem below it belongs to the cellular trust domain and is *not*
reachable from device user space — see :mod:`repro.edge.tamper`.

Device profiles model the paper's hardware (HPE EL20 IoT gateway, Google
Pixel 2 XL, Samsung S7 Edge, HP Z840 workstation) as per-operation crypto
costs and processing delays, calibrated to Figure 16a/17's reported
timings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from ..cellular.identifiers import Imsi
from ..cellular.network import UeAccess
from ..netsim.events import EventLoop
from ..netsim.packet import Direction, Packet, Transport
from .monitors import TrafficMonitor


@dataclass(frozen=True)
class DeviceProfile:
    """Compute characteristics of one device model.

    ``sign_ms``/``verify_ms`` are mean RSA-1024 operation times and
    ``crypto_jitter`` their relative spread; ``rtt_ms`` is the device's
    baseline round-trip to the LTE core.  Values are calibrated so the PoC
    negotiation/verification distributions land near Figure 17.
    """

    name: str
    sign_ms: float
    verify_ms: float
    rtt_ms: float
    negotiation_rtt_ms: float
    crypto_jitter: float = 0.25


# Profiles for the paper's testbed hardware (Figure 11b, Figure 16a/17).
# ``rtt_ms`` is the user-plane ping RTT (Figure 16a); ``negotiation_rtt_ms``
# the app-layer RTT the end-of-cycle protocol sees (Figure 17's 45.1 %
# round-trip share).
EL20 = DeviceProfile("HPE EL20", sign_ms=13.0, verify_ms=4.5, rtt_ms=30.0, negotiation_rtt_ms=20.0)
PIXEL_2XL = DeviceProfile("Pixel 2 XL", sign_ms=24.0, verify_ms=9.0, rtt_ms=47.0, negotiation_rtt_ms=32.0)
S7_EDGE = DeviceProfile("S7 Edge", sign_ms=20.0, verify_ms=8.0, rtt_ms=42.0, negotiation_rtt_ms=28.0)
Z840 = DeviceProfile("HP Z840", sign_ms=6.0, verify_ms=3.9, rtt_ms=2.0, negotiation_rtt_ms=2.0)

DEVICE_PROFILES: dict[str, DeviceProfile] = {
    p.name: p for p in (EL20, PIXEL_2XL, S7_EDGE, Z840)
}


class EdgeDevice:
    """A device running one edge application over the cellular network."""

    def __init__(
        self,
        loop: EventLoop,
        imsi: Imsi,
        flow_id: str,
        profile: DeviceProfile = EL20,
        on_receive: Callable[[Packet], None] | None = None,
    ) -> None:
        self.loop = loop
        self.imsi = imsi
        self.flow_id = flow_id
        self.profile = profile
        self.ul_monitor = TrafficMonitor(loop, f"{flow_id}:device-ul")
        self.dl_monitor = TrafficMonitor(loop, f"{flow_id}:device-dl")
        self.on_receive = on_receive
        self.access: UeAccess | None = None
        self._seq = itertools.count()

    def bind(self, access: UeAccess) -> None:
        """Attach the device to its network access (after attach)."""
        self.access = access

    def send(self, size: int, qci: int = 9, transport: Transport = Transport.UDP) -> Packet:
        """Send one uplink packet; the app monitor counts it as *sent*.

        The count happens regardless of whether the radio can deliver it —
        this is exactly the edge's ``x̂_e`` view that diverges from the
        gateway under loss.
        """
        if self.access is None:
            raise RuntimeError(f"device {self.flow_id!r} is not bound to the network")
        packet = Packet(
            size=size,
            flow_id=self.flow_id,
            direction=Direction.UPLINK,
            qci=qci,
            transport=transport,
            created_at=self.loop.now(),
            seq=next(self._seq),
        )
        self.ul_monitor.observe(packet)
        self.access.send_uplink(packet)
        return packet

    def deliver(self, packet: Packet) -> None:
        """Network-side delivery callback: count and hand to the app."""
        self.dl_monitor.observe(packet)
        if self.on_receive is not None:
            self.on_receive(packet)
