"""Traffic monitors: where charging records come from, and how they err.

Four observation points appear in the paper's Figure 8:

* the device app's uplink counter (Android ``TrafficStats``-style),
* the edge server's monitors (``/proc/<pid>/net/netstat``-style),
* the operator's gateway counters (in :mod:`repro.cellular.gateway`),
* the operator's downlink monitor fed by RRC COUNTER CHECK reports.

Monitors answer usage queries for a charging cycle ``(t1, t2]``.  Each
monitor can carry a per-cycle **clock skew** (imperfect NTP sync between
edge and operator): a monitor whose clock runs ``skew`` seconds ahead cuts
its cycle boundary ``skew`` seconds of true time early.  This boundary
asynchrony is the paper's stated cause for the residual charging-record
errors of Figure 18 (γo mean 2.0 %, γe mean 1.2 %), and it is what keeps
TLC-optimal's charging gap small-but-nonzero in Table 2.

All monitors expose both ``true_usage`` (perfect boundary) and
``reported_usage`` (skewed boundary); experiment code uses the former as
ground truth ``x̂`` and hands the latter to the negotiating parties.
"""

from __future__ import annotations

from ..netsim.counters import CumulativeCounter
from ..netsim.events import EventLoop
from ..netsim.packet import Packet
from ..cellular.rrc import CounterCheckResponse


class TrafficMonitor:
    """Byte counter with a (settable) cycle-boundary clock skew."""

    def __init__(self, loop: EventLoop, name: str) -> None:
        self.loop = loop
        self.name = name
        self.counter = CumulativeCounter()
        self.skew = 0.0

    def set_skew(self, skew_s: float) -> None:
        """Set this monitor's clock skew (positive = clock runs ahead)."""
        self.skew = float(skew_s)

    def observe(self, packet: Packet) -> None:
        """Count one packet at the current true time."""
        self.counter.add(self.loop.now(), packet.size)

    def observe_bytes(self, nbytes: int) -> None:
        """Count raw bytes at the current true time."""
        self.counter.add(self.loop.now(), nbytes)

    @property
    def total(self) -> int:
        """All bytes ever counted."""
        return self.counter.total

    def true_usage(self, t1: float, t2: float) -> int:
        """Ground-truth bytes in the true-time window ``(t1, t2]``."""
        return self.counter.bytes_between(t1, t2)

    def reported_usage(self, t1: float, t2: float) -> int:
        """Bytes in the window as this monitor's skewed clock cuts it.

        Cycle *starts* are synchronized (the previous negotiation anchors
        them), but each party cuts the cycle *end* on its own clock: a
        clock running ``skew`` seconds ahead stops counting ``skew``
        seconds of true time early.  The resulting relative record error
        is ``≈ |skew| / cycle`` — the Figure 18 mechanism.
        """
        hi = max(t1, t2 - self.skew)
        return self.counter.bytes_between(t1, hi)


class CounterCheckMonitor:
    """The operator's downlink record, assembled from RRC COUNTER CHECKs.

    The base station reports the modem's cumulative received volume at
    each counter check (periodic + before releases).  Usage for a cycle is
    the difference between the last reports before each (skewed) boundary,
    so the record is additionally quantized at check epochs.

    A modem's cumulative counters legitimately restart from zero on a
    detach/reattach or a reboot; a backwards jump therefore re-baselines
    the record (the new absolute value is taken as the delta since the
    restart) instead of rejecting the report.  ``resets_observed`` counts
    how often that happened.
    """

    def __init__(self, loop: EventLoop, name: str = "operator-rrc") -> None:
        self.loop = loop
        self.name = name
        self._dl_reports = CumulativeCounter()
        self._ul_reports = CumulativeCounter()
        self._last_dl = 0
        self._last_ul = 0
        self.skew = 0.0
        self.reports_received = 0
        self.resets_observed = 0

    def set_skew(self, skew_s: float) -> None:
        """Set the operator app's clock skew for cycle boundaries."""
        self.skew = float(skew_s)

    def on_report(self, response: CounterCheckResponse) -> None:
        """Ingest one COUNTER CHECK response from the base station."""
        dl_delta = response.downlink_bytes - self._last_dl
        ul_delta = response.uplink_bytes - self._last_ul
        if dl_delta < 0 or ul_delta < 0:
            # Modem counter reset (detach/reattach, reboot): everything
            # counted since the restart is the new absolute value.
            self.resets_observed += 1
            if dl_delta < 0:
                dl_delta = response.downlink_bytes
            if ul_delta < 0:
                ul_delta = response.uplink_bytes
        # The response carries its own emission time (the base station
        # stamps it when serving the check), which on the live loop is the
        # ingestion time too; using it keeps the monitor replayable from
        # recorded responses (and by the batched kernel's flush).
        self._dl_reports.add(response.t, dl_delta)
        self._ul_reports.add(response.t, ul_delta)
        self._last_dl = response.downlink_bytes
        self._last_ul = response.uplink_bytes
        self.reports_received += 1

    @property
    def total(self) -> int:
        """Total downlink bytes across all reports so far."""
        return self._dl_reports.total

    def _window(self, t1: float, t2: float) -> tuple[float, float]:
        # Synchronized start, locally-clocked end (see TrafficMonitor).
        return t1, max(t1, t2 - self.skew)

    def reported_usage(self, t1: float, t2: float) -> int:
        """Downlink cycle usage, cut by skewed boundary + report epochs."""
        lo, hi = self._window(t1, t2)
        return self._dl_reports.bytes_between(lo, hi)

    def reported_uplink_usage(self, t1: float, t2: float) -> int:
        """Uplink (modem-sent) cycle usage from the same reports."""
        lo, hi = self._window(t1, t2)
        return self._ul_reports.bytes_between(lo, hi)


def record_error_ratio(measured: int, truth: int) -> float:
    """Relative charging-record error γ = |measured − truth| / truth.

    Defined as 0 when both are 0 (an idle cycle has no record error).
    """
    if truth == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - truth) / truth
