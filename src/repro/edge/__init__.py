"""Edge-side substrate: devices, servers, traffic monitors and adversaries."""

from .device import (
    DEVICE_PROFILES,
    EL20,
    PIXEL_2XL,
    S7_EDGE,
    Z840,
    DeviceProfile,
    EdgeDevice,
)
from .monitors import CounterCheckMonitor, TrafficMonitor, record_error_ratio
from .server import EdgeServer, ServerStats
from .transport_session import ReliableUplinkSession
from .tamper import BillCycleResetTamper, CdrInflationTamper, ScalingTamper, UsageView

__all__ = [
    "DEVICE_PROFILES",
    "EL20",
    "PIXEL_2XL",
    "S7_EDGE",
    "Z840",
    "DeviceProfile",
    "EdgeDevice",
    "CounterCheckMonitor",
    "TrafficMonitor",
    "record_error_ratio",
    "EdgeServer",
    "ServerStats",
    "BillCycleResetTamper",
    "CdrInflationTamper",
    "ScalingTamper",
    "UsageView",
    "ReliableUplinkSession",
]
