"""Tamper adversaries against charging records (§5.4 of the paper).

The paper's threat analysis distinguishes what each party *can* reach:

* a selfish **edge** controls device/server user space: it can rewrite
  what ``TrafficStats``/``netstat`` report (:class:`ScalingTamper`),
  or reset the bill-cycle statistics (:class:`BillCycleResetTamper`,
  the no-root trick of the paper's reference [31]);
* a selfish **operator** controls the OFCS and can inflate CDR volumes
  (:class:`CdrInflationTamper`);
* **nobody** in user space can alter the hardware modem's counters — the
  RRC COUNTER CHECK record survives every adversary here, which is the
  design argument for TLC's downlink monitor.  The type system mirrors
  the trust boundary: tamper classes wrap monitor *query interfaces* and
  there is deliberately no adapter for :class:`~repro.cellular.rrc.HardwareModem`.

These classes produce the *claimed* usage views fed into the negotiation
strategies; the negotiation game is what bounds the damage they can do.
"""

from __future__ import annotations

from typing import Protocol


class UsageView(Protocol):
    """Anything that can answer a cycle-usage query."""

    def reported_usage(self, t1: float, t2: float) -> int: ...


class ScalingTamper:
    """Multiply the reported usage by a factor.

    ``factor < 1`` models the selfish edge shrinking its ``netstat``
    numbers; ``factor > 1`` models an operator inflating a record.
    """

    def __init__(self, inner: UsageView, factor: float) -> None:
        if factor < 0:
            raise ValueError(f"tamper factor must be non-negative, got {factor}")
        self.inner = inner
        self.factor = factor

    def reported_usage(self, t1: float, t2: float) -> int:
        """The tampered usage claim."""
        return int(self.inner.reported_usage(t1, t2) * self.factor)


class BillCycleResetTamper:
    """Discard all usage before a reset point inside the cycle.

    Models the Android "clear data usage" trick: statistics restart at
    ``reset_at``, so the cycle's report only covers the tail.
    """

    def __init__(self, inner: UsageView, reset_at: float) -> None:
        if reset_at < 0:
            raise ValueError(f"reset time must be non-negative, got {reset_at}")
        self.inner = inner
        self.reset_at = reset_at

    def reported_usage(self, t1: float, t2: float) -> int:
        """Usage with everything before the reset erased."""
        start = max(t1, self.reset_at)
        if start >= t2:
            return 0
        return self.inner.reported_usage(start, t2)


class CdrInflationTamper:
    """Add a flat number of bytes to every cycle's record.

    Models an operator editing CDR volumes upward (validated as feasible
    on the paper's carrier-grade LTE core).
    """

    def __init__(self, inner: UsageView, extra_bytes: int) -> None:
        if extra_bytes < 0:
            raise ValueError(f"inflation must be non-negative, got {extra_bytes}")
        self.inner = inner
        self.extra_bytes = extra_bytes

    def reported_usage(self, t1: float, t2: float) -> int:
        """The inflated usage claim."""
        return self.inner.reported_usage(t1, t2) + self.extra_bytes
