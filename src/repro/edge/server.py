"""The edge server: the vendor-side endpoint co-located with the core.

Sends downlink traffic into the network (counted by its own monitor — the
edge vendor's ``x̂_e`` for downlink) and receives uplink traffic forwarded
by the SPGW.  In the paper's testbed the server is co-located with the LTE
core over gigabit Ethernet, so the server→gateway hop is lossless; the
generic-Internet case where it is not is modelled in
:mod:`repro.core.generic`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..cellular.network import CellularNetwork
from ..netsim.events import EventLoop
from ..netsim.packet import Direction, Packet, Transport
from .monitors import TrafficMonitor


@dataclass
class ServerStats:
    """Application-visible delivery statistics (latency bookkeeping)."""

    received: int = 0
    latencies: list[float] = field(default_factory=list)


class EdgeServer:
    """An edge application server attached to the operator's LAN."""

    def __init__(
        self,
        loop: EventLoop,
        network: CellularNetwork,
        flow_id: str,
        on_receive: Callable[[Packet], None] | None = None,
    ) -> None:
        self.loop = loop
        self.network = network
        self.flow_id = flow_id
        self.dl_monitor = TrafficMonitor(loop, f"{flow_id}:server-dl")
        self.ul_monitor = TrafficMonitor(loop, f"{flow_id}:server-ul")
        self.on_receive = on_receive
        self.stats = ServerStats()
        self._seq = itertools.count()
        network.register_uplink_sink(flow_id, self._receive_uplink)

    def send(self, size: int, qci: int = 9, transport: Transport = Transport.UDP) -> Packet:
        """Send one downlink packet; the server monitor counts it as sent."""
        packet = Packet(
            size=size,
            flow_id=self.flow_id,
            direction=Direction.DOWNLINK,
            qci=qci,
            transport=transport,
            created_at=self.loop.now(),
            seq=next(self._seq),
        )
        self.dl_monitor.observe(packet)
        self.network.send_downlink(packet)
        return packet

    def _receive_uplink(self, packet: Packet) -> None:
        self.ul_monitor.observe(packet)
        self.stats.received += 1
        self.stats.latencies.append(self.loop.now() - packet.created_at)
        if self.on_receive is not None:
            self.on_receive(packet)
