"""Layer-by-layer accounting tables from a metrics snapshot.

The ``repro obs <run>`` subcommand feeds a cached scenario's snapshot
through :func:`render_accounting` to answer the question the paper says
legacy charging cannot: *where inside the stack did the bytes (and the
time) go?*  Metric names are mapped onto the stack layers of the
testbed's data path (Figure 11): radio, bearer/air, gateway, transport,
PoC, negotiation.
"""

from __future__ import annotations

from .metrics import MetricsSnapshot

#: Stack layer <- metric-name prefixes, in render (stack) order.
LAYERS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("radio", ("cellular.radio.", "edge.modem.")),
    ("bearer", ("cellular.air.", "cellular.bearer.", "cellular.enodeb.")),
    ("gateway", ("cellular.gateway.", "cellular.ofcs.")),
    ("transport", ("netsim.link.", "netsim.faults.", "edge.monitor.")),
    ("poc", ("poc.",)),
    ("negotiation", ("core.negotiation.", "core.gap.")),
    ("fleet", ("fleet.",)),
)

_OTHER = "other"


def layer_of(metric: str) -> str:
    """The stack layer a metric key belongs to (by name prefix)."""
    for layer, prefixes in LAYERS:
        if metric.startswith(prefixes):
            return layer
    return _OTHER


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value else "0"
    return str(value)


def _rows(snapshot: MetricsSnapshot) -> list[tuple[str, str, str, str]]:
    rows: list[tuple[str, str, str, str]] = []
    for key, value in snapshot.counters.items():
        rows.append((layer_of(key), key, "counter", _fmt(value)))
    for key, value in snapshot.gauges.items():
        rows.append((layer_of(key), key, "gauge", _fmt(value)))
    for key, data in snapshot.histograms.items():
        count = data["count"]
        mean = data["sum"] / count if count else 0.0
        rows.append(
            (layer_of(key), key, "histogram", f"n={count} mean={_fmt(mean)}")
        )
    order = {layer: i for i, (layer, _) in enumerate(LAYERS)}
    order[_OTHER] = len(order)
    rows.sort(key=lambda r: (order[r[0]], r[1]))
    return rows


def byte_accounting(snapshot: MetricsSnapshot) -> dict[str, dict[str, int | float]]:
    """Per-layer byte totals: carried vs. dropped.

    A metric counts as *carried* when its name ends in ``_bytes`` and as
    *dropped* when it ends in ``drop_bytes``/``dropped_bytes`` — the
    naming convention every instrumented component follows.
    """
    table: dict[str, dict[str, int | float]] = {}
    merged = {**snapshot.gauges, **snapshot.counters}
    for key, value in merged.items():
        base = key.split("{", 1)[0]
        if not base.endswith("_bytes"):
            continue
        layer = layer_of(key)
        bucket = "dropped" if base.endswith(("drop_bytes", "dropped_bytes")) else "carried"
        entry = table.setdefault(layer, {"carried": 0, "dropped": 0})
        entry[bucket] += value
    return table


def render_accounting(snapshot: MetricsSnapshot, title: str = "run") -> str:
    """The per-layer accounting table ``repro obs`` prints."""
    lines = [f"Layer accounting — {title}"]
    account = byte_accounting(snapshot)
    if account:
        lines.append("")
        lines.append(f"{'layer':<12} {'carried (bytes)':>16} {'dropped (bytes)':>16}")
        ordered = [layer for layer, _ in LAYERS] + [_OTHER]
        for layer in ordered:
            if layer not in account:
                continue
            entry = account[layer]
            lines.append(
                f"{layer:<12} {_fmt(entry['carried']):>16} {_fmt(entry['dropped']):>16}"
            )
    rows = _rows(snapshot)
    if rows:
        lines.append("")
        widths = [
            max(len(header), *(len(row[i]) for row in rows))
            for i, header in enumerate(("layer", "metric", "kind", "value"))
        ]
        headers = ("layer", "metric", "kind", "value")
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        for row in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    if snapshot.spans:
        lines.append("")
        lines.append("spans (simulated clock):")
        for span in snapshot.spans:
            end = span["end"]
            duration = "" if end is None else f"  [{end - span['start']:.3f}s]"
            indent = "  " * (1 + int(span.get("depth", 0)))
            lines.append(
                f"{indent}{span['name']}: {span['start']:.3f} -> "
                f"{'open' if end is None else f'{end:.3f}'}{duration}"
            )
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
