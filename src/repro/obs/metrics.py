"""Deterministic metrics: counters, gauges and fixed-edge histograms.

The registry is the write side, held by live components (links, the
gateway, the fault injector, the scenario runner); the snapshot is the
read side — a plain, JSON-safe value object that rides a
:class:`~repro.experiments.runner.ScenarioResult` through the parallel
codec and the on-disk cache.  Determinism rules:

* metric keys are ``name{label=value,...}`` with labels sorted, so two
  registries fed the same events render the same keys;
* histogram bucket edges are fixed at creation (no adaptive resizing),
  so serial and parallel runs bucket identically;
* ``to_dict`` sorts every mapping, so the JSON encoding is canonical and
  snapshot equality is bytes equality.

Integer increments stay integers end to end (JSON renders ``3`` not
``3.0``), which is what makes serial-vs-parallel bit-identity checkable
on the encoded form.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from .spans import SpanRecorder

Number = int | float


def metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Canonical ``name{k=v,...}`` key with labels sorted by name."""
    if not name or any(ch in name for ch in "{}=,"):
        raise ValueError(f"invalid metric name {name!r}")
    if not labels:
        return name
    body = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{body}}}"


class Counter:
    """Monotone counter; increments must be non-negative."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value; last write wins."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Overwrite the gauge."""
        self.value = value

    def add(self, amount: Number) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """Fixed-bucket histogram: ``edges`` are inclusive upper bounds.

    A value lands in the first bucket whose edge is >= the value; values
    above the last edge land in the implicit overflow bucket, so
    ``len(counts) == len(edges) + 1`` always.
    """

    __slots__ = ("edges", "counts", "total", "count")

    def __init__(self, edges: Iterable[float]) -> None:
        self.edges = tuple(float(e) for e in edges)
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError(f"bucket edges must strictly increase: {self.edges}")
        self.counts = [0] * (len(self.edges) + 1)
        self.total: Number = 0
        self.count = 0

    def observe(self, value: Number) -> None:
        """Record one sample."""
        index = len(self.edges)  # overflow bucket unless an edge catches it
        for i, edge in enumerate(self.edges):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    def to_dict(self) -> dict:
        """JSON-safe encoding."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Inverse of :meth:`to_dict`."""
        hist = cls(data["edges"])
        counts = list(data["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"histogram counts length {len(counts)} != {len(hist.counts)}"
            )
        hist.counts = counts
        hist.total = data["sum"]
        hist.count = int(data["count"])
        return hist


class MetricsSnapshot:
    """The serializable value form of a registry at one instant.

    ``merge`` is associative and commutative over counters and
    histograms (sums); gauges sum as well, which is the useful semantic
    when aggregating per-scenario snapshots into a sweep-level
    accounting table (total bytes at a layer across scenarios).  Spans
    concatenate in order.
    """

    def __init__(
        self,
        counters: Mapping[str, Number] | None = None,
        gauges: Mapping[str, Number] | None = None,
        histograms: Mapping[str, dict] | None = None,
        spans: Iterable[dict] | None = None,
    ) -> None:
        self.counters: dict[str, Number] = dict(counters or {})
        self.gauges: dict[str, Number] = dict(gauges or {})
        self.histograms: dict[str, dict] = {
            k: dict(v) for k, v in (histograms or {}).items()
        }
        self.spans: list[dict] = [dict(s) for s in (spans or ())]

    @property
    def is_empty(self) -> bool:
        """True when nothing has been recorded."""
        return not (self.counters or self.gauges or self.histograms or self.spans)

    def quantile(self, key: str, q: float) -> float:
        """Estimate the ``q``-quantile of histogram ``key`` (q in [0, 1]).

        Linear interpolation within the catching bucket (mass assumed
        uniform; the first bucket spans 0..edge0).  Samples in the
        overflow bucket report the last finite edge — a lower bound.
        Returns 0.0 for an empty histogram.  Deterministic: a function
        of the bucket counts only.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        data = self.histograms[key]
        count = data["count"]
        if count == 0:
            return 0.0
        edges = data["edges"]
        target = q * count
        cumulative = 0
        for i, bucket in enumerate(data["counts"]):
            below = cumulative
            cumulative += bucket
            if bucket and cumulative >= target:
                if i >= len(edges):
                    return float(edges[-1])
                lower = float(edges[i - 1]) if i else 0.0
                return lower + (target - below) / bucket * (
                    float(edges[i]) - lower
                )
        return float(edges[-1])

    def percentiles(
        self, key: str, qs: Iterable[float] = (0.5, 0.95, 0.99)
    ) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` for histogram ``key``."""
        return {f"p{round(q * 100):d}": self.quantile(key, q) for q in qs}

    def to_dict(self) -> dict:
        """Canonical JSON-safe encoding (all mappings key-sorted)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: {
                    "edges": list(v["edges"]),
                    "counts": list(v["counts"]),
                    "sum": v["sum"],
                    "count": v["count"],
                }
                for k, v in sorted(self.histograms.items())
            },
            "spans": list(self.spans),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsSnapshot":
        """Inverse of :meth:`to_dict` (tolerates missing sections)."""
        return cls(
            counters=data.get("counters"),
            gauges=data.get("gauges"),
            histograms=data.get("histograms"),
            spans=data.get("spans"),
        )

    def merge_in_place(
        self, other: "MetricsSnapshot", include_spans: bool = True
    ) -> "MetricsSnapshot":
        """Fold ``other`` into this snapshot, mutating it; returns self.

        This is the streaming form behind fleet aggregation: a sweep over
        thousands of shards keeps one accumulator snapshot and folds each
        shard's snapshot in as it arrives, so memory stays O(accumulator)
        instead of O(shards).  ``include_spans=False`` drops the other
        side's span list — per-shard span traces grow linearly with the
        population and are only useful per shard, not merged.
        """
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, value in other.gauges.items():
            self.gauges[key] = self.gauges.get(key, 0) + value
        for key, data in other.histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                self.histograms[key] = {
                    "edges": list(data["edges"]),
                    "counts": list(data["counts"]),
                    "sum": data["sum"],
                    "count": data["count"],
                }
                continue
            if tuple(mine["edges"]) != tuple(data["edges"]):
                raise ValueError(
                    f"cannot merge histogram {key!r}: bucket edges differ "
                    f"({mine['edges']} vs {data['edges']})"
                )
            self.histograms[key] = {
                "edges": list(mine["edges"]),
                "counts": [a + b for a, b in zip(mine["counts"], data["counts"])],
                "sum": mine["sum"] + data["sum"],
                "count": mine["count"] + data["count"],
            }
        if include_spans:
            self.spans.extend(dict(s) for s in other.spans)
        return self

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Element-wise combination of two snapshots (see class docs)."""
        merged = MetricsSnapshot(
            counters=self.counters,
            gauges=self.gauges,
            histograms=self.histograms,
            spans=self.spans,
        )
        return merged.merge_in_place(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsSnapshot(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)}, "
            f"spans={len(self.spans)})"
        )


class MetricsRegistry:
    """Get-or-create metric instruments, keyed by name + sorted labels.

    ``clock`` supplies the time base for spans — pass the simulation
    loop's ``now`` so all observability time is virtual time.  A metric
    key is bound to one instrument kind forever; asking for the same key
    as a different kind (or a histogram with different edges) raises,
    which catches instrumentation typos at first use instead of
    producing silently-mixed data.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans = SpanRecorder(self._clock)

    # --------------------------------------------------------- instruments

    def _claim(self, key: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for name, table in owners.items():
            if name != kind and key in table:
                raise ValueError(f"metric {key!r} already registered as a {name}")

    def counter(self, name: str, **labels) -> Counter:
        """Get or create a counter."""
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            self._claim(key, "counter")
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create a gauge."""
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            self._claim(key, "gauge")
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, edges: Iterable[float], **labels) -> Histogram:
        """Get or create a fixed-edge histogram."""
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            self._claim(key, "histogram")
            instrument = self._histograms[key] = Histogram(edges)
        elif instrument.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {key!r} already registered with edges "
                f"{instrument.edges}, asked for {tuple(edges)}"
            )
        return instrument

    # --------------------------------------------------------------- spans

    def span(self, name: str, **labels):
        """Context manager: a span on the registry's (simulated) clock."""
        return self._spans.span(metric_key(name, labels))

    def span_open(self, name: str, **labels):
        """Open a span manually; close with ``handle.close()``."""
        return self._spans.open(metric_key(name, labels))

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the registry into a value object.

        Spans still open are closed *in the snapshot only* at the
        current clock (the live span keeps running) — a run that ends
        mid-outage still accounts the outage time so far.
        """
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={k: h.to_dict() for k, h in self._histograms.items()},
            spans=self._spans.to_list(close_open_at=self._clock()),
        )
