"""Lightweight spans on an injected clock (virtual time, never wall time).

A span is a named ``[start, end]`` interval with a nesting depth.  The
recorder is deliberately simple: depth is the number of spans open at
the moment a span opens, so context-manager use gives classic nesting
while event-driven use (radio outage start/end callbacks) still yields
well-defined, deterministic records even when intervals interleave.
"""

from __future__ import annotations

from typing import Callable


class Span:
    """One open (or closed) interval; close at most once."""

    __slots__ = ("name", "start", "end", "depth", "_recorder")

    def __init__(self, name: str, start: float, depth: int, recorder: "SpanRecorder") -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.depth = depth
        self._recorder = recorder

    @property
    def open(self) -> bool:
        """True until :meth:`close` is called."""
        return self.end is None

    @property
    def duration(self) -> float | None:
        """``end - start`` once closed, else None."""
        return None if self.end is None else self.end - self.start

    def close(self) -> None:
        """Close the span at the recorder's current clock (idempotent)."""
        if self.end is None:
            self._recorder._close(self)

    def to_dict(self, close_open_at: float | None = None) -> dict:
        """JSON-safe encoding; optionally snapshot an open span as closed."""
        end = self.end
        if end is None and close_open_at is not None:
            end = close_open_at
        return {"name": self.name, "start": self.start, "end": end, "depth": self.depth}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"end={self.end}" if self.end is not None else "open"
        return f"Span({self.name!r}, start={self.start}, {state}, depth={self.depth})"


class SpanRecorder:
    """Creates and archives spans against one clock callable."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._spans: list[Span] = []
        self._open = 0

    def open(self, name: str) -> Span:
        """Open a span now; records are kept in open order."""
        span = Span(name, self._clock(), self._open, self)
        self._open += 1
        self._spans.append(span)
        return span

    def _close(self, span: Span) -> None:
        end = self._clock()
        if end < span.start:
            raise ValueError(f"span {span.name!r} would close before it opened")
        span.end = end
        self._open -= 1

    def span(self, name: str):
        """Context manager wrapper around :meth:`open`/:meth:`Span.close`."""
        return _SpanContext(self, name)

    def to_list(self, close_open_at: float | None = None) -> list[dict]:
        """All spans as dicts, in open order."""
        return [s.to_dict(close_open_at=close_open_at) for s in self._spans]


class _SpanContext:
    """``with recorder.span("name"):`` support."""

    __slots__ = ("_recorder", "_name", "_span")

    def __init__(self, recorder: SpanRecorder, name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._recorder.open(self._name)
        return self._span

    def __exit__(self, *exc_info) -> None:
        assert self._span is not None
        self._span.close()
