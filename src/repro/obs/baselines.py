"""Golden baselines: EXPERIMENTS.md's tables as an executable contract.

``benchmarks/baselines.json`` records, for every reproduced figure/table
quantity, the expected value and a tolerance.  The golden regression
suite re-runs the experiments and fails when any quantity drifts outside
its band — prose nobody re-checks becomes a gate CI enforces.

This module is deliberately generic: it knows how to *select* a scalar
out of an experiment result (table cell, attribute, CDF statistic,
per-curve statistic) by duck typing, but knows nothing about which
experiments exist — that lives in :mod:`repro.experiments.goldens`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Baselines file schema version.
SCHEMA = 1


@dataclass(frozen=True)
class Baseline:
    """One golden quantity: where it comes from and its tolerance band.

    The band is ``|measured - expected| <= abs_tol + rel_tol·|expected|``
    (both tolerances apply together, so near-zero expectations still
    have a usable absolute band).
    """

    id: str
    experiment: str
    select: dict = field(hash=False)
    expected: float = 0.0
    rel_tol: float = 0.10
    abs_tol: float = 0.0
    unit: str = ""
    note: str = ""

    def __post_init__(self) -> None:
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ValueError(f"tolerances must be >= 0 for baseline {self.id!r}")
        if self.rel_tol == 0 and self.abs_tol == 0:
            raise ValueError(f"baseline {self.id!r} has a zero-width band")

    @property
    def band(self) -> float:
        """Half-width of the acceptance band."""
        return self.abs_tol + self.rel_tol * abs(self.expected)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "experiment": self.experiment,
            "select": dict(self.select),
            "expected": self.expected,
            "rel_tol": self.rel_tol,
            "abs_tol": self.abs_tol,
            "unit": self.unit,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Baseline":
        return cls(
            id=str(data["id"]),
            experiment=str(data["experiment"]),
            select=dict(data["select"]),
            expected=float(data["expected"]),
            rel_tol=float(data.get("rel_tol", 0.10)),
            abs_tol=float(data.get("abs_tol", 0.0)),
            unit=str(data.get("unit", "")),
            note=str(data.get("note", "")),
        )


@dataclass(frozen=True)
class BaselineCheck:
    """Verdict of one golden comparison."""

    baseline: Baseline
    measured: float

    @property
    def deviation(self) -> float:
        """``measured - expected``."""
        return self.measured - self.baseline.expected

    @property
    def ok(self) -> bool:
        """Whether the measured value sits inside the tolerance band."""
        return abs(self.deviation) <= self.baseline.band

    def describe(self) -> str:
        """One diagnostic line (used in assertion messages and the CLI)."""
        b = self.baseline
        status = "ok" if self.ok else "DRIFT"
        return (
            f"{status}: {b.id} = {self.measured:.4f} "
            f"(expected {b.expected:.4f} ± {b.band:.4f} {b.unit})".rstrip()
        )


def check_baseline(measured: float, baseline: Baseline) -> BaselineCheck:
    """Compare one measured value against its golden record."""
    return BaselineCheck(baseline=baseline, measured=float(measured))


# ----------------------------------------------------------------- selection


def _median_of_cdf(points: list) -> float:
    if not points:
        raise ValueError("empty CDF has no statistics")
    return float(points[len(points) // 2][0])


def _stat_of_cdf(points: list, stat: str) -> float:
    if stat == "median":
        return _median_of_cdf(points)
    if stat == "max":
        if not points:
            raise ValueError("empty CDF has no statistics")
        return float(points[-1][0])
    raise ValueError(f"unknown CDF statistic {stat!r}")


def extract_quantity(result: object, select: dict) -> float:
    """Pull the selected scalar out of an experiment result.

    Selection kinds:

    * ``{"kind": "table", "row": <first-cell label>, "col": <header>}`` —
      a cell of a ``TableResult``-shaped object (``.header``/``.rows``);
      an optional ``"row2"`` additionally matches the second cell, for
      tables keyed by (app, scheme) pairs;
    * ``{"kind": "attr", "name": <attribute>}`` — a float attribute;
    * ``{"kind": "cdf", "app": ..., "scheme": ..., "stat": median|max}`` —
      a statistic of one CDF in a ``.cdfs`` mapping (Figure 12);
    * ``{"kind": "curve", "key": ..., "stat": median|max}`` — a statistic
      of one curve in a plain ``{key: cdf points}`` mapping (Figure 15).
    """
    kind = select.get("kind")
    if kind == "table":
        header = [str(h) for h in result.header]
        try:
            col = header.index(str(select["col"]))
        except ValueError:
            raise KeyError(f"no column {select['col']!r} in {header}") from None
        row2 = select.get("row2")
        for row in result.rows:
            if str(row[0]) != str(select["row"]):
                continue
            if row2 is not None and str(row[1]) != str(row2):
                continue
            return float(row[col])
        raise KeyError(f"no row {select['row']!r} in table {result.title!r}")
    if kind == "attr":
        return float(getattr(result, select["name"]))
    if kind == "cdf":
        points = result.cdfs[select["app"]][select["scheme"]]
        return _stat_of_cdf(points, select.get("stat", "median"))
    if kind == "curve":
        key = select["key"]
        curves = {str(k): v for k, v in result.items()}
        return _stat_of_cdf(curves[str(key)], select.get("stat", "median"))
    raise ValueError(f"unknown selection kind {kind!r}")


# ------------------------------------------------------------------ file I/O


def load_baselines(path: str | Path) -> list[Baseline]:
    """Read ``baselines.json``; raises on schema mismatch."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA:
        raise ValueError(f"baselines schema {data.get('schema')!r} != {SCHEMA}")
    baselines = [Baseline.from_dict(entry) for entry in data.get("quantities", ())]
    seen: set[str] = set()
    for baseline in baselines:
        if baseline.id in seen:
            raise ValueError(f"duplicate baseline id {baseline.id!r}")
        seen.add(baseline.id)
    return baselines


def save_baselines(path: str | Path, baselines: list[Baseline], generator: str = "") -> Path:
    """Write ``baselines.json`` (sorted by id, stable formatting)."""
    path = Path(path)
    payload = {
        "schema": SCHEMA,
        "generator": generator,
        "quantities": [b.to_dict() for b in sorted(baselines, key=lambda b: b.id)],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    tmp.replace(path)
    return path
