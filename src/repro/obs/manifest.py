"""Per-run JSON manifests: one uniform layout for ``benchmarks/out/``.

Every producer of evaluation artifacts — the figure benchmarks, the
``repro run``/``repro report`` CLI — routes its writes through a
:class:`RunManifest`, so the output directory always has the same shape:

* ``<out_dir>/<artifact>.txt`` — rendered tables/series, one per artifact;
* ``<out_dir>/<run>.manifest.json`` — the manifest: which artifacts this
  run produced (with sizes and content digests), how the scenario engine
  was configured, how many scenarios simulated vs. came from cache, and
  an optional merged metrics snapshot.

Manifests are what CI uploads on a regression failure: enough to see
what was produced and from where, without re-running anything.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from .metrics import MetricsSnapshot

#: Manifest schema version; bump when the layout changes incompatibly.
SCHEMA = 1


@dataclass
class ArtifactEntry:
    """One artifact the run produced."""

    name: str
    path: str  # relative to the manifest's directory
    bytes: int
    sha256: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "bytes": self.bytes,
            "sha256": self.sha256,
        }


@dataclass
class RunManifest:
    """Collects one run's artifacts and engine facts, then saves itself."""

    name: str
    out_dir: Path
    command: str = ""
    engine: dict = field(default_factory=dict)
    artifacts: list[ArtifactEntry] = field(default_factory=list)
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)

    def __post_init__(self) -> None:
        self.out_dir = Path(self.out_dir)
        if not self.name or "/" in self.name:
            raise ValueError(f"manifest name must be a bare slug, got {self.name!r}")

    # ----------------------------------------------------------- recording

    def write_text(self, artifact_name: str, text: str) -> Path:
        """Write one rendered artifact and register it.

        The uniform layout contract: artifacts are ``<name>.txt`` directly
        under ``out_dir``, written atomically, trailing-newline
        terminated.  Re-writing the same artifact name replaces its
        entry instead of duplicating it.
        """
        if not artifact_name or "/" in artifact_name or artifact_name.startswith("."):
            raise ValueError(f"invalid artifact name {artifact_name!r}")
        self.out_dir.mkdir(parents=True, exist_ok=True)
        payload = text if text.endswith("\n") else text + "\n"
        path = self.out_dir / f"{artifact_name}.txt"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(payload)
        tmp.replace(path)
        entry = ArtifactEntry(
            name=artifact_name,
            path=path.name,
            bytes=len(payload.encode()),
            sha256=hashlib.sha256(payload.encode()).hexdigest(),
        )
        self.artifacts = [a for a in self.artifacts if a.name != artifact_name]
        self.artifacts.append(entry)
        return path

    def record_engine(self, **facts) -> None:
        """Merge engine facts (workers, cache dir, simulated/cached counts)."""
        self.engine.update(facts)

    def attach_metrics(self, snapshot: MetricsSnapshot) -> None:
        """Merge a metrics snapshot into the run-level aggregate."""
        self.metrics = self.metrics.merge(snapshot)

    # ------------------------------------------------------------- persist

    @property
    def path(self) -> Path:
        """Where :meth:`save` writes this manifest."""
        return self.out_dir / f"{self.name}.manifest.json"

    def to_dict(self) -> dict:
        """JSON-safe encoding."""
        return {
            "schema": SCHEMA,
            "name": self.name,
            "command": self.command,
            "engine": dict(sorted(self.engine.items())),
            "artifacts": [a.to_dict() for a in sorted(self.artifacts, key=lambda a: a.name)],
            "metrics": self.metrics.to_dict(),
        }

    def save(self) -> Path:
        """Atomically write ``<out_dir>/<name>.manifest.json``."""
        self.out_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n")
        tmp.replace(self.path)
        return self.path


def load_manifest(path: str | Path) -> RunManifest:
    """Load a saved manifest (artifact files are not re-read)."""
    path = Path(path)
    data = json.loads(path.read_text())
    if data.get("schema") != SCHEMA:
        raise ValueError(f"manifest schema {data.get('schema')!r} != {SCHEMA}")
    manifest = RunManifest(
        name=str(data["name"]),
        out_dir=path.parent,
        command=str(data.get("command", "")),
        engine=dict(data.get("engine", {})),
        metrics=MetricsSnapshot.from_dict(data.get("metrics", {})),
    )
    manifest.artifacts = [
        ArtifactEntry(
            name=str(a["name"]),
            path=str(a["path"]),
            bytes=int(a["bytes"]),
            sha256=str(a["sha256"]),
        )
        for a in data.get("artifacts", ())
    ]
    return manifest
