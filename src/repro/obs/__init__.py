"""Observability: deterministic metrics, simulated-clock spans, manifests.

TLC's premise is that unobserved per-layer loss is indistinguishable from
selfishness — so the simulator itself must be able to say *where* bytes
and latency went.  This package is the zero-dependency substrate:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (counters, gauges,
  histograms with fixed bucket edges) and :class:`MetricsSnapshot`, its
  serializable, mergeable value form.  Everything is deterministic: same
  simulation, same snapshot, bit for bit.
* :mod:`repro.obs.spans` — lightweight spans driven by the simulated
  :class:`~repro.netsim.events.EventLoop` clock, never wall time.
* :mod:`repro.obs.manifest` — the per-run JSON manifest every benchmark
  and CLI invocation writes under ``benchmarks/out/``, so artifact
  layouts are uniform and machine-checkable.
* :mod:`repro.obs.render` — the layer-by-layer accounting table behind
  the ``repro obs`` CLI subcommand.
* :mod:`repro.obs.baselines` — expected-value records with tolerances,
  the executable form of EXPERIMENTS.md's paper-vs-reproduced tables
  (``benchmarks/baselines.json``), checked by the golden regression
  suite.
"""

from .baselines import (
    Baseline,
    BaselineCheck,
    check_baseline,
    extract_quantity,
    load_baselines,
    save_baselines,
)
from .manifest import RunManifest, load_manifest
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot
from .render import byte_accounting, render_accounting
from .spans import Span, SpanRecorder

__all__ = [
    "Baseline",
    "BaselineCheck",
    "check_baseline",
    "extract_quantity",
    "load_baselines",
    "save_baselines",
    "RunManifest",
    "load_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "byte_accounting",
    "render_accounting",
    "Span",
    "SpanRecorder",
]
