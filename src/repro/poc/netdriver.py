"""Run the TLC negotiation over the simulated cellular network itself.

:class:`~repro.poc.protocol.NegotiationDriver` models the transport as
profile RTTs; this driver instead ships the CDR/CDA/PoC messages as real
packets on a dedicated signalling bearer (QCI 5, the IMS-signalling
class) across the full simulated path — device ↔ air ↔ eNodeB ↔ SPGW ↔
core.  Congestion, outages and air loss therefore affect negotiation
latency exactly as they would on the testbed, and a simple ARQ layer
(transfer sequence numbers + retransmission timers + duplicate-triggered
response replay) survives losing any message.

Crypto compute time is spent on the event loop using the endpoint's
device profile, so the elapsed *virtual* time decomposes into the same
crypto/network split the paper reports in Figure 17.
"""

from __future__ import annotations

import copy
import random
import struct
from dataclasses import dataclass

from ..cellular.identifiers import Imsi
from ..cellular.network import CellularNetwork
from ..core.plan import DataPlan
from ..core.strategies import Strategy
from ..crypto.rsa import PrivateKey
from ..edge.device import DeviceProfile, Z840
from ..netsim.events import Event, EventLoop
from ..netsim.packet import Direction, Packet
from .messages import Poc, Role
from .statemachine import TlcSession

_ARQ_HEADER = struct.Struct(">I")  # transfer sequence number

SIGNALLING_QCI = 5


@dataclass
class NetworkNegotiationResult:
    """Outcome of an over-the-network negotiation."""

    poc: Poc
    volume: int
    elapsed_s: float
    crypto_s: float
    messages_sent: int
    retransmissions: int


class _Endpoint:
    """One party's ARQ endpoint: dedup, retransmit, replay responses."""

    def __init__(
        self,
        loop: EventLoop,
        session: TlcSession,
        profile: DeviceProfile,
        rng: random.Random,
        send_raw,
        retransmit_timeout_s: float,
        on_progress=None,
    ) -> None:
        self.on_progress = on_progress
        self.loop = loop
        self.session = session
        self.profile = profile
        self.rng = rng
        self.send_raw = send_raw
        self.retransmit_timeout_s = retransmit_timeout_s
        self.tx_seq = 0
        self.last_rx_seq = -1
        self.last_sent: bytes | None = None
        self.timer: Event | None = None
        self.messages_sent = 0
        self.retransmissions = 0
        self.crypto_s = 0.0
        self.done = False

    # ---------------------------------------------------------------- send

    def send(self, payload: bytes, final: bool = False) -> None:
        frame = _ARQ_HEADER.pack(self.tx_seq) + payload
        self.tx_seq += 1
        self.last_sent = frame
        self.messages_sent += 1
        self.send_raw(frame)
        if final:
            self._cancel_timer()
        else:
            self._arm_timer()

    def _retransmit(self) -> None:
        if self.done or self.last_sent is None:
            return
        self.retransmissions += 1
        self.messages_sent += 1
        self.send_raw(self.last_sent)
        self._arm_timer()

    def _arm_timer(self) -> None:
        self._cancel_timer()
        self.timer = self.loop.schedule(self.retransmit_timeout_s, self._retransmit)

    def _cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None

    # ------------------------------------------------------------- receive

    def receive(self, frame: bytes) -> None:
        if len(frame) <= _ARQ_HEADER.size:
            return
        (rx_seq,) = _ARQ_HEADER.unpack(frame[: _ARQ_HEADER.size])
        if rx_seq <= self.last_rx_seq or self.done:
            # Duplicate (or post-completion retry): our response was
            # probably lost — replay it.  A *finished* endpoint must keep
            # doing this, or a lost final PoC deadlocks the peer.
            if self.last_sent is not None:
                self.retransmissions += 1
                self.messages_sent += 1
                self.send_raw(self.last_sent)
            return
        self.last_rx_seq = rx_seq
        self._cancel_timer()
        payload = frame[_ARQ_HEADER.size :]
        # Model the crypto processing time, then respond.
        before = copy.copy(self.session.stats)
        response = self.session.handle(payload)
        signs = self.session.stats.signatures_made - before.signatures_made
        verifies = self.session.stats.verifications_made - before.verifications_made
        delay = 0.0
        for _ in range(signs):
            delay += max(0.0001, self.rng.gauss(
                self.profile.sign_ms, self.profile.sign_ms * self.profile.crypto_jitter
            )) / 1000.0
        for _ in range(verifies):
            delay += max(0.00005, self.rng.gauss(
                self.profile.verify_ms, self.profile.verify_ms * self.profile.crypto_jitter
            )) / 1000.0
        self.crypto_s += delay
        if self.session.poc is not None and response is None:
            self.done = True
            self._cancel_timer()
            if self.on_progress is not None:
                self.loop.schedule(delay, self.on_progress)
            return
        if response is not None:
            final = self.session.poc is not None
            self.loop.schedule(delay, self.send, response, final)
            if final:
                self.done = True
                if self.on_progress is not None:
                    self.loop.schedule(delay, self.on_progress)


class NetworkNegotiation:
    """Drives one end-of-cycle negotiation over the live simulation."""

    def __init__(
        self,
        network: CellularNetwork,
        imsi: str,
        plan: DataPlan,
        cycle_start: float,
        edge_strategy: Strategy,
        operator_strategy: Strategy,
        edge_key: PrivateKey,
        operator_key: PrivateKey,
        rng: random.Random,
        edge_profile: DeviceProfile = Z840,
        operator_profile: DeviceProfile = Z840,
        retransmit_timeout_s: float = 0.5,
        deadline_s: float | None = None,
        flow_suffix: str = "",
    ) -> None:
        self.deadline_s = deadline_s
        self.network = network
        self.loop = network.loop
        self.imsi = imsi
        self.flow_id = f"tlc-signalling:{imsi}{flow_suffix}"
        self.network.create_bearer(Imsi(imsi), self.flow_id, qci=SIGNALLING_QCI)
        edge_session = TlcSession(
            Role.EDGE, plan, cycle_start, edge_strategy,
            edge_key, operator_key.public, rng,
        )
        operator_session = TlcSession(
            Role.OPERATOR, plan, cycle_start, operator_strategy,
            operator_key, edge_key.public, rng,
        )
        # The edge endpoint lives on the device: it receives downlink
        # signalling and responds uplink; the operator endpoint is in the
        # core behind the SPGW.
        self.edge_endpoint = _Endpoint(
            self.loop, edge_session, edge_profile, rng,
            self._send_uplink, retransmit_timeout_s, self._note_progress,
        )
        self.operator_endpoint = _Endpoint(
            self.loop, operator_session, operator_profile, rng,
            self._send_downlink, retransmit_timeout_s, self._note_progress,
        )
        network.register_uplink_sink(self.flow_id, self._deliver_to_operator)
        self._install_device_dispatch()
        self._frames: dict[int, bytes] = {}
        # In-flight signalling packets per direction, so frames whose
        # packet the network dropped can be reclaimed when the sender
        # supersedes them with a retransmission (stop-and-wait ARQ: only
        # the newest frame per direction can still make progress).
        self._outstanding: dict[Direction, list[Packet]] = {
            Direction.UPLINK: [],
            Direction.DOWNLINK: [],
        }
        self._started_at: float | None = None
        self._completed_at: float | None = None
        self.timed_out = False

    # ------------------------------------------------------------ plumbing

    def _install_device_dispatch(self) -> None:
        ue = self.network.enodeb.ue(self.imsi)
        previous = ue.deliver

        def dispatch(packet: Packet) -> None:
            if packet.flow_id == self.flow_id:
                frame = self._frames.pop(packet.pkt_id, None)
                if frame is not None:
                    self.edge_endpoint.receive(frame)
                return
            previous(packet)

        ue.deliver = dispatch

    def _track(self, packet: Packet, frame: bytes) -> None:
        """Register an in-flight frame, reclaiming superseded ones.

        Any earlier packet in the same direction that the network already
        resolved — dropped at some layer, or delivered (its frame was
        popped on receipt) — is purged from ``_frames``; without this,
        every retransmission on a lossy link leaks one entry forever.
        """
        outstanding = self._outstanding[packet.direction]
        still_in_flight = []
        for previous in outstanding:
            if previous.pkt_id not in self._frames:
                continue  # delivered: receipt popped the frame already
            if previous.dropped_at is not None:
                del self._frames[previous.pkt_id]
                continue
            still_in_flight.append(previous)
        still_in_flight.append(packet)
        self._outstanding[packet.direction] = still_in_flight
        self._frames[packet.pkt_id] = frame

    def _release_frames(self) -> None:
        """Drop all ARQ frame state once no endpoint can still need it."""
        self._frames.clear()
        for direction in self._outstanding:
            self._outstanding[direction] = []

    def _send_downlink(self, frame: bytes) -> None:
        packet = Packet(
            size=max(64, len(frame)),
            flow_id=self.flow_id,
            direction=Direction.DOWNLINK,
            qci=SIGNALLING_QCI,
            created_at=self.loop.now(),
        )
        self._track(packet, frame)
        self.network.send_downlink(packet)

    def _send_uplink(self, frame: bytes) -> None:
        packet = Packet(
            size=max(64, len(frame)),
            flow_id=self.flow_id,
            direction=Direction.UPLINK,
            qci=SIGNALLING_QCI,
            created_at=self.loop.now(),
        )
        self._track(packet, frame)
        self.network.access(self.imsi).send_uplink(packet)

    def _deliver_to_operator(self, packet: Packet) -> None:
        frame = self._frames.pop(packet.pkt_id, None)
        if frame is not None:
            self.operator_endpoint.receive(frame)

    # -------------------------------------------------------------- driving

    def start(self) -> None:
        """The operator initiates with its CDR (Figure 7's default)."""
        self._started_at = self.loop.now()
        if self.deadline_s is not None:
            self.loop.schedule(self.deadline_s, self._give_up)
        opening = self.operator_endpoint.session.start()
        self.operator_endpoint.send(opening)

    def _give_up(self) -> None:
        """Deadline expiry: stop retransmitting; no PoC, no payment.

        Mirrors the paper's liveness argument (§5.1): a negotiation that
        cannot complete produces no receipt, which hurts both parties —
        the operator cannot collect, the edge loses further service.
        """
        if self.complete:
            return
        self.timed_out = True
        for endpoint in (self.edge_endpoint, self.operator_endpoint):
            endpoint.done = True
            endpoint._cancel_timer()
        self._release_frames()

    def _note_progress(self) -> None:
        if self.complete and self._completed_at is None:
            self._completed_at = self.loop.now()
            # Both parties hold the PoC: no retransmission can ever need
            # a replay again, so the frame table can be emptied.
            self._release_frames()

    @property
    def complete(self) -> bool:
        """True once both endpoints hold the PoC."""
        return (
            self.edge_endpoint.session.poc is not None
            and self.operator_endpoint.session.poc is not None
        )

    def result(self) -> NetworkNegotiationResult:
        """Collect the outcome; raises if the negotiation hasn't finished."""
        poc = self.edge_endpoint.session.poc
        if poc is None or self._started_at is None or self._completed_at is None:
            raise RuntimeError("negotiation has not completed")
        return NetworkNegotiationResult(
            poc=poc,
            volume=poc.volume,
            elapsed_s=self._completed_at - self._started_at,
            crypto_s=self.edge_endpoint.crypto_s + self.operator_endpoint.crypto_s,
            messages_sent=(
                self.edge_endpoint.messages_sent + self.operator_endpoint.messages_sent
            ),
            retransmissions=(
                self.edge_endpoint.retransmissions
                + self.operator_endpoint.retransmissions
            ),
        )


