"""Wire formats for TLC's three protocol messages (§5.3.2).

    CDR_p = {T, c, s_p, n_p, x_p}_{K⁻_p}
    CDA_p = {T, c, s_p, n_p, x_p, CDR_peer}_{K⁻_p}
    PoC   = {T, c, x, CDA_peer}_{K⁻_p} ‖ n_e ‖ n_o

Messages are fixed-layout binary (struct-packed) with the RSA signature
over ``type ‖ role ‖ body``.  The embedded-message chain gives the PoC
both parties' signatures: the PoC is signed by its finalizer, the CDA
inside by the peer, and the CDR inside that by the finalizer again — an
unforgeable, undeniable record of the negotiated volume.

Sequence-number discipline: both parties stamp messages with the current
*negotiation round*, so a completed exchange always has ``s_e == s_o`` —
the coherence Algorithm 2 checks.

Sizes land near the paper's Figure 17 table (CDR 199 B, CDA 398 B,
PoC 796 B with RSA-1024): ours are 182 / 312 / 500 bytes — smaller
because the binary layout carries no Java serialization framing.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ..crypto.rsa import PrivateKey, PublicKey
from ..crypto.signing import sign as rsa_sign
from ..crypto.signing import verify as rsa_verify

NONCE_LEN = 16


class Role(enum.IntEnum):
    """Who signed a message."""

    EDGE = 0
    OPERATOR = 1

    @property
    def peer(self) -> "Role":
        """The counterpart role."""
        return Role.OPERATOR if self is Role.EDGE else Role.EDGE


class MessageType(enum.IntEnum):
    """TLC protocol message kinds."""

    CDR = 1
    CDA = 2
    POC = 3


class MessageError(ValueError):
    """Raised on malformed or mis-signed protocol messages."""


@dataclass(frozen=True)
class PlanParams:
    """The public data-plan parameters bound into every message."""

    t_start: float
    t_end: float
    c: float

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise MessageError(f"empty cycle ({self.t_start}, {self.t_end}]")
        if not 0.0 <= self.c <= 1.0:
            raise MessageError(f"c out of range: {self.c}")

    def pack(self) -> bytes:
        """Fixed 24-byte encoding."""
        return struct.pack(">ddd", self.t_start, self.t_end, self.c)

    @classmethod
    def unpack(cls, blob: bytes) -> "PlanParams":
        """Inverse of :meth:`pack`."""
        t_start, t_end, c = struct.unpack(">ddd", blob)
        return cls(t_start, t_end, c)


_CDR_BODY = struct.Struct(f">24sI{NONCE_LEN}sQ")  # plan, seq, nonce, volume
_EMBED_HEADER = struct.Struct(">I")  # length prefix for embedded messages
_POC_BODY_PREFIX = struct.Struct(">24sQ")  # plan, volume
_SIG_HEADER = struct.Struct(">H")  # length prefix for signatures


def _pack_signature(signature: bytes) -> bytes:
    return _SIG_HEADER.pack(len(signature)) + signature


def _split_signature(blob: bytes, offset: int) -> tuple[bytes, int]:
    """Read a length-prefixed signature starting at ``offset``."""
    end = offset + _SIG_HEADER.size
    if len(blob) < end:
        raise MessageError("truncated signature header")
    (sig_len,) = _SIG_HEADER.unpack(blob[offset:end])
    signature = blob[end : end + sig_len]
    if len(signature) != sig_len or sig_len == 0:
        raise MessageError("truncated signature")
    return signature, end + sig_len


def _signed_payload(msg_type: MessageType, role: Role, body: bytes) -> bytes:
    return bytes([msg_type.value, role.value]) + body


@dataclass(frozen=True)
class Cdr:
    """A signed Charging Data Record claim."""

    role: Role
    plan: PlanParams
    seq: int
    nonce: bytes
    volume: int
    signature: bytes

    @classmethod
    def build(
        cls,
        role: Role,
        plan: PlanParams,
        seq: int,
        nonce: bytes,
        volume: int,
        key: PrivateKey,
    ) -> "Cdr":
        """Create and sign a CDR."""
        if len(nonce) != NONCE_LEN:
            raise MessageError(f"nonce must be {NONCE_LEN} bytes")
        if volume < 0 or seq < 0:
            raise MessageError("volume and seq must be non-negative")
        body = _CDR_BODY.pack(plan.pack(), seq, nonce, volume)
        signature = rsa_sign(_signed_payload(MessageType.CDR, role, body), key)
        return cls(role, plan, seq, nonce, volume, signature)

    def body_bytes(self) -> bytes:
        """The signed body."""
        return _CDR_BODY.pack(self.plan.pack(), self.seq, self.nonce, self.volume)

    def encode(self) -> bytes:
        """Full wire encoding: type, role, body, signature."""
        return (
            _signed_payload(MessageType.CDR, self.role, self.body_bytes())
            + _pack_signature(self.signature)
        )

    @classmethod
    def decode(cls, blob: bytes) -> "Cdr":
        """Parse a wire-encoded CDR (signature not yet verified)."""
        if len(blob) <= 2 + _CDR_BODY.size:
            raise MessageError(f"bad CDR length {len(blob)}")
        if blob[0] != MessageType.CDR.value:
            raise MessageError(f"not a CDR (type={blob[0]})")
        role = Role(blob[1])
        plan_blob, seq, nonce, volume = _CDR_BODY.unpack(blob[2 : 2 + _CDR_BODY.size])
        signature, end = _split_signature(blob, 2 + _CDR_BODY.size)
        if end != len(blob):
            raise MessageError("trailing bytes after CDR")
        return cls(role, PlanParams.unpack(plan_blob), seq, nonce, volume, signature)

    def verify(self, key: PublicKey) -> bool:
        """Check the signature against the claimed role's public key."""
        payload = _signed_payload(MessageType.CDR, self.role, self.body_bytes())
        return rsa_verify(payload, self.signature, key)


@dataclass(frozen=True)
class Cda:
    """Charging Data Acceptance: own claim plus the peer's CDR, signed."""

    role: Role
    plan: PlanParams
    seq: int
    nonce: bytes
    volume: int
    peer_cdr: Cdr
    signature: bytes

    @classmethod
    def build(
        cls,
        role: Role,
        plan: PlanParams,
        seq: int,
        nonce: bytes,
        volume: int,
        peer_cdr: Cdr,
        key: PrivateKey,
    ) -> "Cda":
        """Create and sign a CDA embedding the accepted peer CDR."""
        if peer_cdr.role is role:
            raise MessageError("CDA must embed the *peer's* CDR")
        body = cls._body(plan, seq, nonce, volume, peer_cdr)
        signature = rsa_sign(_signed_payload(MessageType.CDA, role, body), key)
        return cls(role, plan, seq, nonce, volume, peer_cdr, signature)

    @staticmethod
    def _body(plan: PlanParams, seq: int, nonce: bytes, volume: int, peer: Cdr) -> bytes:
        embedded = peer.encode()
        return (
            _CDR_BODY.pack(plan.pack(), seq, nonce, volume)
            + _EMBED_HEADER.pack(len(embedded))
            + embedded
        )

    def body_bytes(self) -> bytes:
        """The signed body."""
        return self._body(self.plan, self.seq, self.nonce, self.volume, self.peer_cdr)

    def encode(self) -> bytes:
        """Full wire encoding."""
        return (
            _signed_payload(MessageType.CDA, self.role, self.body_bytes())
            + _pack_signature(self.signature)
        )

    @classmethod
    def decode(cls, blob: bytes) -> "Cda":
        """Parse a wire-encoded CDA."""
        if len(blob) < 2 + _CDR_BODY.size + _EMBED_HEADER.size + 1:
            raise MessageError(f"bad CDA length {len(blob)}")
        if blob[0] != MessageType.CDA.value:
            raise MessageError(f"not a CDA (type={blob[0]})")
        role = Role(blob[1])
        offset = 2
        plan_blob, seq, nonce, volume = _CDR_BODY.unpack(
            blob[offset : offset + _CDR_BODY.size]
        )
        offset += _CDR_BODY.size
        (embed_len,) = _EMBED_HEADER.unpack(blob[offset : offset + _EMBED_HEADER.size])
        offset += _EMBED_HEADER.size
        embedded = blob[offset : offset + embed_len]
        if len(embedded) != embed_len:
            raise MessageError("truncated embedded CDR")
        offset += embed_len
        signature, end = _split_signature(blob, offset)
        if end != len(blob):
            raise MessageError("trailing bytes after CDA")
        peer_cdr = Cdr.decode(embedded)
        return cls(
            role, PlanParams.unpack(plan_blob), seq, nonce, volume, peer_cdr, signature
        )

    def verify(self, key: PublicKey) -> bool:
        """Check the CDA's own signature (not the embedded CDR's)."""
        payload = _signed_payload(MessageType.CDA, self.role, self.body_bytes())
        return rsa_verify(payload, self.signature, key)


@dataclass(frozen=True)
class Poc:
    """Proof-of-Charging: the negotiated volume over the full chain."""

    role: Role  # the finalizer who signed the PoC
    plan: PlanParams
    volume: int
    peer_cda: Cda
    signature: bytes
    nonce_edge: bytes
    nonce_operator: bytes

    @classmethod
    def build(
        cls,
        role: Role,
        plan: PlanParams,
        volume: int,
        peer_cda: Cda,
        key: PrivateKey,
    ) -> "Poc":
        """Create and sign a PoC; the nonce trailer is derived from the chain."""
        if peer_cda.role is role:
            raise MessageError("PoC must embed the *peer's* CDA")
        if volume < 0:
            raise MessageError("volume must be non-negative")
        body = cls._body(plan, volume, peer_cda)
        signature = rsa_sign(_signed_payload(MessageType.POC, role, body), key)
        nonces = {
            peer_cda.role: peer_cda.nonce,
            peer_cda.peer_cdr.role: peer_cda.peer_cdr.nonce,
        }
        return cls(
            role,
            plan,
            volume,
            peer_cda,
            signature,
            nonce_edge=nonces[Role.EDGE],
            nonce_operator=nonces[Role.OPERATOR],
        )

    @staticmethod
    def _body(plan: PlanParams, volume: int, peer_cda: Cda) -> bytes:
        embedded = peer_cda.encode()
        return (
            _POC_BODY_PREFIX.pack(plan.pack(), volume)
            + _EMBED_HEADER.pack(len(embedded))
            + embedded
        )

    def body_bytes(self) -> bytes:
        """The signed body."""
        return self._body(self.plan, self.volume, self.peer_cda)

    def encode(self) -> bytes:
        """Full wire encoding including the ``n_e ‖ n_o`` trailer."""
        return (
            _signed_payload(MessageType.POC, self.role, self.body_bytes())
            + _pack_signature(self.signature)
            + self.nonce_edge
            + self.nonce_operator
        )

    @classmethod
    def decode(cls, blob: bytes) -> "Poc":
        """Parse a wire-encoded PoC."""
        min_len = 2 + _POC_BODY_PREFIX.size + _EMBED_HEADER.size + 1 + 2 * NONCE_LEN
        if len(blob) < min_len:
            raise MessageError(f"bad PoC length {len(blob)}")
        if blob[0] != MessageType.POC.value:
            raise MessageError(f"not a PoC (type={blob[0]})")
        role = Role(blob[1])
        offset = 2
        plan_blob, volume = _POC_BODY_PREFIX.unpack(
            blob[offset : offset + _POC_BODY_PREFIX.size]
        )
        offset += _POC_BODY_PREFIX.size
        (embed_len,) = _EMBED_HEADER.unpack(blob[offset : offset + _EMBED_HEADER.size])
        offset += _EMBED_HEADER.size
        embedded = blob[offset : offset + embed_len]
        if len(embedded) != embed_len:
            raise MessageError("truncated embedded CDA")
        peer_cda = Cda.decode(embedded)
        offset += embed_len
        signature, offset = _split_signature(blob, offset)
        nonce_edge = blob[offset : offset + NONCE_LEN]
        nonce_operator = blob[offset + NONCE_LEN : offset + 2 * NONCE_LEN]
        if len(nonce_operator) != NONCE_LEN or offset + 2 * NONCE_LEN != len(blob):
            raise MessageError("truncated PoC nonce trailer")
        return cls(
            role,
            PlanParams.unpack(plan_blob),
            volume,
            peer_cda,
            signature,
            nonce_edge,
            nonce_operator,
        )

    def verify(self, key: PublicKey) -> bool:
        """Check the PoC's own signature (not the embedded chain's)."""
        payload = _signed_payload(MessageType.POC, self.role, self.body_bytes())
        return rsa_verify(payload, self.signature, key)

    @property
    def claims(self) -> tuple[int, int]:
        """(edge claim, operator claim) recovered from the embedded chain."""
        outer = self.peer_cda
        inner = outer.peer_cdr
        if outer.role is Role.EDGE:
            return outer.volume, inner.volume
        return inner.volume, outer.volume


#: Legacy 4G LTE CDR payload size for the Figure-17 signalling comparison:
#: the binary-coded fields of a minimal OpenEPC record (no signature).
LEGACY_LTE_CDR_BYTES = 34
