"""A PoC ledger: multi-cycle receipts, audits, and dispute evidence.

Over months of service the parties accumulate one PoC per charging
cycle.  The ledger stores them in cycle order, audits the whole history
through the public verifier (each PoC must verify, bind consecutive
cycles, and never replay a nonce pair), and answers billing queries —
total charged volume, per-cycle breakdown — from nothing but the
receipts.  This is the artifact a court or the FCC would subpoena.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..core.plan import DataPlan
from ..crypto.rsa import PublicKey
from .messages import MessageError, PlanParams, Poc
from .verifier import PublicVerifier, VerificationFailure, VerificationReport


@dataclass(frozen=True)
class LedgerEntry:
    """One charging cycle's receipt."""

    cycle_index: int
    plan_params: PlanParams
    poc: Poc


@dataclass
class AuditReport:
    """Outcome of auditing an entire ledger."""

    ok: bool
    entries_checked: int
    total_volume: int
    failures: list[tuple[int, VerificationFailure]] = field(default_factory=list)


class PocLedger:
    """Cycle-ordered PoC storage with holistic auditing."""

    def __init__(self, plan: DataPlan) -> None:
        self.plan = plan
        self._entries: list[LedgerEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, poc: Poc) -> LedgerEntry:
        """Add the next cycle's PoC; cycles must be consecutive."""
        params = PlanParams(poc.plan.t_start, poc.plan.t_end, poc.plan.c)
        index = len(self._entries)
        if self._entries:
            previous = self._entries[-1].plan_params
            if params.t_start != previous.t_end:
                raise ValueError(
                    f"cycle {index} starts at {params.t_start}, expected "
                    f"{previous.t_end} (cycles must be consecutive)"
                )
        expected_duration = self.plan.cycle_duration_s
        if abs((params.t_end - params.t_start) - expected_duration) > 1e-6:
            raise ValueError(
                f"cycle {index} has duration {params.t_end - params.t_start}, "
                f"plan says {expected_duration}"
            )
        entry = LedgerEntry(index, params, poc)
        self._entries.append(entry)
        return entry

    def entry(self, cycle_index: int) -> LedgerEntry:
        """Fetch one cycle's receipt."""
        return self._entries[cycle_index]

    def total_volume(self) -> int:
        """Sum of negotiated charging volumes across all cycles."""
        return sum(entry.poc.volume for entry in self._entries)

    def volumes(self) -> list[int]:
        """Per-cycle charged volumes, in cycle order."""
        return [entry.poc.volume for entry in self._entries]

    # ----------------------------------------------------------- persistence

    def save(self, path: str | Path) -> Path:
        """Persist the ledger as JSON lines (PoCs base64-wire-encoded).

        The file is exactly what one party hands an auditor: receipts and
        nothing else — all integrity comes from re-verifying signatures.
        """
        path = Path(path)
        lines = []
        for entry in self._entries:
            lines.append(json.dumps({
                "cycle": entry.cycle_index,
                "t_start": entry.plan_params.t_start,
                "t_end": entry.plan_params.t_end,
                "c": entry.plan_params.c,
                "poc": base64.b64encode(entry.poc.encode()).decode("ascii"),
            }, separators=(",", ":")))
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    @classmethod
    def load(cls, path: str | Path, plan: DataPlan) -> "PocLedger":
        """Reload a saved ledger, re-validating structure on the way in.

        Raises :class:`ValueError` on malformed rows and
        :class:`~repro.poc.messages.MessageError` on undecodable PoCs;
        signature validity is the auditor's job (:meth:`audit`).
        """
        ledger = cls(plan)
        for line_number, line in enumerate(Path(path).read_text().splitlines(), 1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
                blob = base64.b64decode(row["poc"])
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(f"ledger line {line_number} malformed: {exc}") from exc
            poc = Poc.decode(blob)  # raises MessageError on corruption
            # Validate the row before mutating the ledger: appending first
            # would leave the bad entry behind when the index check fails.
            if row["cycle"] != len(ledger):
                raise ValueError(
                    f"ledger line {line_number}: cycle {row['cycle']} out of order"
                )
            ledger.append(poc)
        return ledger

    def audit(self, edge_key: PublicKey, operator_key: PublicKey) -> AuditReport:
        """Verify every receipt with a fresh third-party verifier.

        The shared verifier instance carries the replay registry across
        entries, so the same PoC appearing in two cycles is caught.
        """
        verifier = PublicVerifier(self.plan)
        failures: list[tuple[int, VerificationFailure]] = []
        total = 0
        for entry in self._entries:
            report: VerificationReport = verifier.verify(
                entry.poc, entry.plan_params, edge_key, operator_key
            )
            if report.ok:
                total += report.volume or 0
            else:
                assert report.failure is not None
                failures.append((entry.cycle_index, report.failure))
        return AuditReport(
            ok=not failures,
            entries_checked=len(self._entries),
            total_volume=total,
            failures=failures,
        )
