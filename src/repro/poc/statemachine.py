"""The Figure-7a protocol state machines.

Each party runs a :class:`TlcSession`: the initiator opens with its CDR;
the responder answers with a CDA (accept) or its own CDR (implicit
reject); the initiator closes with a PoC (accept) or re-claims with a
fresh CDR.  Rejections re-enter Algorithm 1 with tightened bounds, so the
session owns the per-round bound state and consults a
:class:`~repro.core.strategies.Strategy` for claims and decisions.

Sessions are transport-agnostic: :meth:`TlcSession.start` and
:meth:`TlcSession.handle` return the bytes to send (or None), and the
driver in :mod:`repro.poc.protocol` moves them between parties.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from ..core.plan import DataPlan
from ..core.strategies import Strategy
from ..crypto.rsa import PrivateKey, PublicKey
from .messages import (
    NONCE_LEN,
    Cda,
    Cdr,
    MessageError,
    MessageType,
    PlanParams,
    Poc,
    Role,
)


class SessionState(enum.Enum):
    """Figure 7a states (the sent-message naming of the paper)."""

    NULL = "Null"
    SENT_CDR = "CDR"
    SENT_CDA = "CDA"
    DONE = "PoC"


class ProtocolViolation(RuntimeError):
    """Raised when a peer message is invalid for the current state."""


@dataclass
class SessionStats:
    """Counters for the overhead evaluation (Figure 17)."""

    messages_sent: int = 0
    bytes_sent: int = 0
    signatures_made: int = 0
    verifications_made: int = 0
    rounds: int = 0


@dataclass
class _Bounds:
    """Algorithm 1's (x_L, x_U) negotiation bounds.

    The initial lower bound is −1 so a legitimate zero-volume claim
    (an idle cycle) is inside the open interval.
    """

    lower: int = -1
    upper: int | None = None

    def tighten(self, claim_a: int, claim_b: int) -> None:
        lo, hi = min(claim_a, claim_b), max(claim_a, claim_b)
        self.lower = max(self.lower, lo)
        self.upper = hi if self.upper is None else min(self.upper, hi)
        if self.upper < self.lower:
            self.upper = self.lower

    def degenerate(self, slack: int = 1) -> bool:
        return self.upper is not None and self.upper - self.lower <= slack


class TlcSession:
    """One party's protocol endpoint for one charging cycle."""

    def __init__(
        self,
        role: Role,
        plan: DataPlan,
        cycle_start: float,
        strategy: Strategy,
        private_key: PrivateKey,
        peer_public_key: PublicKey,
        rng: random.Random,
        max_rounds: int = 64,
    ) -> None:
        self.role = role
        self.plan = plan
        self.plan_params = PlanParams(cycle_start, cycle_start + plan.cycle_duration_s, plan.c)
        self.strategy = strategy
        self.private_key = private_key
        self.peer_public_key = peer_public_key
        self.rng = rng
        self.max_rounds = max_rounds
        self.state = SessionState.NULL
        self.stats = SessionStats()
        self.poc: Poc | None = None
        self._bounds = _Bounds()
        self._round = 0
        self._own_claim: int | None = None
        self._last_peer_claim: int | None = None

    # ------------------------------------------------------------ claiming

    def _nonce(self) -> bytes:
        return self.rng.getrandbits(8 * NONCE_LEN).to_bytes(NONCE_LEN, "big")

    def _propose(self) -> int:
        claim = self.strategy.propose(
            self._bounds.lower, self._bounds.upper, self._round, self._last_peer_claim
        )
        self._own_claim = claim
        return claim

    def _make_cdr(self) -> Cdr:
        self.stats.signatures_made += 1
        return Cdr.build(
            self.role,
            self.plan_params,
            seq=self._round,
            nonce=self._nonce(),
            volume=self._propose(),
            key=self.private_key,
        )

    def _emit(self, blob: bytes) -> bytes:
        self.stats.messages_sent += 1
        self.stats.bytes_sent += len(blob)
        return blob

    # ------------------------------------------------------------- driving

    def start(self) -> bytes:
        """Initiate the negotiation with our CDR."""
        if self.state is not SessionState.NULL:
            raise ProtocolViolation(f"cannot start from {self.state}")
        cdr = self._make_cdr()
        self.state = SessionState.SENT_CDR
        return self._emit(cdr.encode())

    def handle(self, blob: bytes) -> bytes | None:
        """Process a peer message; returns our response (None when done)."""
        if not blob:
            raise ProtocolViolation("empty message")
        msg_type = blob[0]
        if msg_type == MessageType.CDR.value:
            return self._handle_cdr(Cdr.decode(blob))
        if msg_type == MessageType.CDA.value:
            return self._handle_cda(Cda.decode(blob))
        if msg_type == MessageType.POC.value:
            self._handle_poc(Poc.decode(blob))
            return None
        raise ProtocolViolation(f"unknown message type {msg_type}")

    # ------------------------------------------------------------ handlers

    def _check_peer(self, role: Role, plan: PlanParams, ok: bool) -> None:
        if role is self.role:
            raise ProtocolViolation("peer message carries our own role")
        if plan != self.plan_params:
            raise ProtocolViolation("peer message binds a different data plan")
        if not ok:
            raise ProtocolViolation("peer signature verification failed")

    def _accepts(self, peer_claim: int) -> bool:
        own = self._own_claim if self._own_claim is not None else self._propose()
        if self._bounds.degenerate():
            return True  # nowhere left to move — settle (engine force-accept)
        if self._round >= self.max_rounds:
            return True
        return self.strategy.decide(peer_claim, own)

    def _reject_and_reclaim(self, peer_claim: int) -> bytes:
        """Implicit reject: claim under the current bounds, then tighten."""
        self._last_peer_claim = peer_claim
        cdr = self._make_cdr()
        self._bounds.tighten(cdr.volume, peer_claim)
        self._round += 1
        self.stats.rounds = self._round
        self.state = SessionState.SENT_CDR
        return self._emit(cdr.encode())

    def _handle_cdr(self, cdr: Cdr) -> bytes:
        self.stats.verifications_made += 1
        self._check_peer(cdr.role, cdr.plan, cdr.verify(self.peer_public_key))
        if self.state is SessionState.DONE:
            raise ProtocolViolation("negotiation already complete")
        if self._own_claim is not None:
            # Peer rejected our last claim and re-claimed: enter a new
            # round and re-propose under the tightened bounds.
            self._bounds.tighten(self._own_claim, cdr.volume)
            self._round += 1
            self.stats.rounds = self._round
            self._own_claim = None
            self._last_peer_claim = cdr.volume
        if self._accepts(cdr.volume):
            self.stats.signatures_made += 1
            cda = Cda.build(
                self.role,
                self.plan_params,
                seq=cdr.seq,  # align sequence numbers within the round
                nonce=self._nonce(),
                volume=self._own_claim if self._own_claim is not None else self._propose(),
                peer_cdr=cdr,
                key=self.private_key,
            )
            self.state = SessionState.SENT_CDA
            return self._emit(cda.encode())
        return self._reject_and_reclaim(cdr.volume)

    def _handle_cda(self, cda: Cda) -> bytes:
        self.stats.verifications_made += 2  # the CDA and its embedded CDR
        self._check_peer(cda.role, cda.plan, cda.verify(self.peer_public_key))
        if not cda.peer_cdr.verify(self.private_key.public):
            raise ProtocolViolation("CDA embeds a CDR we did not sign")
        if cda.peer_cdr.volume != self._own_claim:
            raise ProtocolViolation("CDA echoes a claim we did not make")
        if self._accepts(cda.volume):
            volume = int(round(self.plan.charge(*_claims_by_role(self.role, self._own_claim, cda))))
            self.stats.signatures_made += 1
            poc = Poc.build(self.role, self.plan_params, volume, cda, self.private_key)
            self.poc = poc
            self.state = SessionState.DONE
            self.stats.rounds = self._round + 1
            return self._emit(poc.encode())
        return self._reject_and_reclaim(cda.volume)

    def _handle_poc(self, poc: Poc) -> None:
        self.stats.verifications_made += 1
        self._check_peer(poc.role, poc.plan, poc.verify(self.peer_public_key))
        edge_claim, operator_claim = poc.claims
        expected = int(round(self.plan.charge(edge_claim, operator_claim)))
        if poc.volume != expected:
            raise ProtocolViolation(
                f"PoC volume {poc.volume} inconsistent with claims (expect {expected})"
            )
        self.poc = poc
        self.state = SessionState.DONE
        self.stats.rounds = self._round + 1


def _claims_by_role(own_role: Role, own_claim: int | None, peer_cda: Cda) -> tuple[int, int]:
    """Order (edge claim, operator claim) for the charging formula."""
    own = own_claim if own_claim is not None else 0
    if own_role is Role.EDGE:
        return own, peer_cda.volume
    return peer_cda.volume, own
