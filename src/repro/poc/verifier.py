"""Algorithm 2: public verification of a Proof-of-Charging.

An independent third party (the paper suggests the FCC, courts, or an
MVNO) receives ``(PoC, T, c, K⁺_e, K⁺_o)`` and checks, without ever
seeing the data transfer:

1. both signatures in the chain verify under the advertised public keys;
2. the data plan ``(T, c)`` bound into every layer matches the agreement;
3. the nonce trailer matches the chain and the sequence numbers cohere
   (replay defence) — and a stateful verifier additionally refuses to
   accept the same nonce pair twice;
4. replaying Algorithm 1's line 8 on the embedded claims reproduces the
   charged volume ``x``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.plan import DataPlan
from ..crypto.rsa import PublicKey
from .messages import Cda, Cdr, PlanParams, Poc, Role


class VerificationFailure(enum.Enum):
    """Why a PoC was rejected (Algorithm 2's false branches)."""

    BAD_POC_SIGNATURE = "poc-signature"
    BAD_CDA_SIGNATURE = "cda-signature"
    BAD_CDR_SIGNATURE = "cdr-signature"
    ROLE_MISMATCH = "role-mismatch"
    PLAN_MISMATCH = "inconsistent-data-plan"
    NONCE_MISMATCH = "nonce-mismatch"
    SEQUENCE_MISMATCH = "sequence-mismatch"
    REPLAYED = "replayed-poc"
    VOLUME_MISMATCH = "volume-mismatch"


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one verification request."""

    ok: bool
    failure: VerificationFailure | None = None
    volume: int | None = None
    edge_claim: int | None = None
    operator_claim: int | None = None


class PublicVerifier:
    """A third-party verifier with a replay registry."""

    def __init__(self, plan: DataPlan, metrics=None) -> None:
        self.plan = plan
        self._seen_nonces: set[bytes] = set()
        self.verified = 0
        self.rejected = 0
        self.metrics = metrics

    def verify(
        self,
        poc: Poc,
        expected_plan: PlanParams,
        edge_key: PublicKey,
        operator_key: PublicKey,
    ) -> VerificationReport:
        """Run Algorithm 2 on one PoC."""
        report = self._check(poc, expected_plan, edge_key, operator_key)
        if report.ok:
            self.verified += 1
        else:
            self.rejected += 1
        if self.metrics is not None:
            outcome = "ok" if report.ok else report.failure.value
            self.metrics.counter("poc.verify", outcome=outcome).inc()
        return report

    def _check(
        self,
        poc: Poc,
        expected_plan: PlanParams,
        edge_key: PublicKey,
        operator_key: PublicKey,
    ) -> VerificationReport:
        keys = {Role.EDGE: edge_key, Role.OPERATOR: operator_key}
        cda: Cda = poc.peer_cda
        cdr: Cdr = cda.peer_cdr

        # Chain roles must alternate: finalizer signs PoC over the peer's
        # CDA, which embeds the finalizer's own CDR.
        if cda.role is poc.role or cdr.role is not poc.role:
            return VerificationReport(False, VerificationFailure.ROLE_MISMATCH)

        # (1) Signatures, outermost first.
        if not poc.verify(keys[poc.role]):
            return VerificationReport(False, VerificationFailure.BAD_POC_SIGNATURE)
        if not cda.verify(keys[cda.role]):
            return VerificationReport(False, VerificationFailure.BAD_CDA_SIGNATURE)
        if not cdr.verify(keys[cdr.role]):
            return VerificationReport(False, VerificationFailure.BAD_CDR_SIGNATURE)

        # (2) Data-plan consistency through every layer.
        for plan in (poc.plan, cda.plan, cdr.plan):
            if plan != expected_plan:
                return VerificationReport(False, VerificationFailure.PLAN_MISMATCH)

        # (3) Replay defence: trailer nonces must match the chain, the
        # sequence numbers must cohere, and this nonce pair must be fresh.
        chain_nonces = {cda.role: cda.nonce, cdr.role: cdr.nonce}
        if (
            chain_nonces[Role.EDGE] != poc.nonce_edge
            or chain_nonces[Role.OPERATOR] != poc.nonce_operator
        ):
            return VerificationReport(False, VerificationFailure.NONCE_MISMATCH)
        if cda.seq != cdr.seq:
            return VerificationReport(False, VerificationFailure.SEQUENCE_MISMATCH)
        pair = poc.nonce_edge + poc.nonce_operator
        if pair in self._seen_nonces:
            return VerificationReport(False, VerificationFailure.REPLAYED)

        # (4) Replay the charging computation (Algorithm 1 line 8).
        edge_claim, operator_claim = poc.claims
        expected_volume = int(round(self.plan.charge(edge_claim, operator_claim)))
        if poc.volume != expected_volume:
            return VerificationReport(False, VerificationFailure.VOLUME_MISMATCH)

        self._seen_nonces.add(pair)
        return VerificationReport(
            True, None, volume=poc.volume,
            edge_claim=edge_claim, operator_claim=operator_claim,
        )
