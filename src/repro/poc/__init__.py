"""Publicly verifiable Proof-of-Charging: messages, protocol, verifier."""

from .messages import (
    LEGACY_LTE_CDR_BYTES,
    NONCE_LEN,
    Cda,
    Cdr,
    MessageError,
    MessageType,
    PlanParams,
    Poc,
    Role,
)
from .ledger import AuditReport, LedgerEntry, PocLedger
from .netdriver import NetworkNegotiation, NetworkNegotiationResult
from .protocol import ExchangeResult, NegotiationDriver
from .statemachine import ProtocolViolation, SessionState, SessionStats, TlcSession
from .verifier import PublicVerifier, VerificationFailure, VerificationReport

__all__ = [
    "LEGACY_LTE_CDR_BYTES",
    "NONCE_LEN",
    "Cda",
    "Cdr",
    "MessageError",
    "MessageType",
    "PlanParams",
    "Poc",
    "Role",
    "AuditReport",
    "LedgerEntry",
    "PocLedger",
    "NetworkNegotiation",
    "NetworkNegotiationResult",
    "ExchangeResult",
    "NegotiationDriver",
    "ProtocolViolation",
    "SessionState",
    "SessionStats",
    "TlcSession",
    "PublicVerifier",
    "VerificationFailure",
    "VerificationReport",
]
