"""Drives two TLC sessions to a Proof-of-Charging, with timing.

The negotiation runs at the *application layer* at the end of a charging
cycle (§5.3.2), so it never touches in-cycle data latency; what we model
here is the end-of-cycle cost the paper measures in Figure 17:

    negotiation time = Σ per-message crypto time + Σ one-way trips

Crypto times come from the parties' :class:`~repro.edge.device.DeviceProfile`
(sign/verify means with jitter), network trips from the profile's RTT.
The result carries the PoC, the elapsed time and its crypto/RTT split
(the paper reports 54.9 % crypto / 45.1 % round-trip on average).

The message channel can drop messages; a simple retransmission timer
recovers, since negotiation runs over the same lossy network it bills.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.plan import DataPlan
from ..core.strategies import Strategy
from ..crypto.rsa import PrivateKey
from ..edge.device import DeviceProfile, Z840
from .messages import Poc, Role
from .statemachine import SessionStats, TlcSession


@dataclass(frozen=True)
class ExchangeResult:
    """Outcome and cost of one end-of-cycle negotiation."""

    poc: Poc
    volume: int
    rounds: int
    elapsed_s: float
    crypto_s: float
    network_s: float
    messages: int
    bytes_on_wire: int
    retransmissions: int
    initiator_stats: SessionStats
    responder_stats: SessionStats

    @property
    def crypto_fraction(self) -> float:
        """Share of elapsed time spent on cryptographic computation."""
        if self.elapsed_s == 0:
            return 0.0
        return self.crypto_s / self.elapsed_s


class NegotiationDriver:
    """Runs a full CDR/CDA/PoC exchange between two parties."""

    def __init__(
        self,
        plan: DataPlan,
        cycle_start: float,
        edge_strategy: Strategy,
        operator_strategy: Strategy,
        edge_key: PrivateKey,
        operator_key: PrivateKey,
        rng: random.Random,
        edge_profile: DeviceProfile = Z840,
        operator_profile: DeviceProfile = Z840,
        initiator: Role = Role.OPERATOR,
        message_loss: float = 0.0,
        retransmit_timeout_s: float = 0.5,
        max_transmissions: int = 64,
        metrics=None,
    ) -> None:
        if not 0.0 <= message_loss < 1.0:
            raise ValueError(f"message loss must be in [0, 1), got {message_loss}")
        self.plan = plan
        self.rng = rng
        self.metrics = metrics
        self.initiator_role = initiator
        self.message_loss = message_loss
        self.retransmit_timeout_s = retransmit_timeout_s
        self.max_transmissions = max_transmissions
        self._profiles = {Role.EDGE: edge_profile, Role.OPERATOR: operator_profile}
        self._sessions = {
            Role.EDGE: TlcSession(
                Role.EDGE, plan, cycle_start, edge_strategy,
                edge_key, operator_key.public, rng,
            ),
            Role.OPERATOR: TlcSession(
                Role.OPERATOR, plan, cycle_start, operator_strategy,
                operator_key, edge_key.public, rng,
            ),
        }

    def _crypto_time(self, role: Role, stats_before: SessionStats, stats_after: SessionStats) -> float:
        profile = self._profiles[role]
        signs = stats_after.signatures_made - stats_before.signatures_made
        verifies = stats_after.verifications_made - stats_before.verifications_made
        total_ms = 0.0
        for _ in range(signs):
            total_ms += max(0.1, self.rng.gauss(profile.sign_ms, profile.sign_ms * profile.crypto_jitter))
        for _ in range(verifies):
            total_ms += max(0.05, self.rng.gauss(profile.verify_ms, profile.verify_ms * profile.crypto_jitter))
        return total_ms / 1000.0

    def _one_way_s(self) -> float:
        # One-way trip between the parties; the edge device's RTT to the
        # core dominates (the operator endpoint is in the core).
        edge_rtt_ms = self._profiles[Role.EDGE].negotiation_rtt_ms
        jittered = max(1.0, self.rng.gauss(edge_rtt_ms, 0.15 * edge_rtt_ms))
        return jittered / 2000.0

    def run(self) -> ExchangeResult:
        """Execute the exchange; raises if no PoC is reached."""
        import copy

        initiator = self._sessions[self.initiator_role]
        responder = self._sessions[self.initiator_role.peer]

        elapsed = 0.0
        crypto = 0.0
        network = 0.0
        retransmissions = 0

        before = copy.copy(initiator.stats)
        wire = initiator.start()
        dt = self._crypto_time(self.initiator_role, before, initiator.stats)
        crypto += dt
        elapsed += dt

        sender, receiver = initiator, responder
        while wire is not None:
            # Transit (with loss + retransmission timers).
            transmissions = 1
            while self.rng.random() < self.message_loss:
                if transmissions >= self.max_transmissions:
                    raise RuntimeError("negotiation channel unusable (all retransmissions lost)")
                transmissions += 1
                retransmissions += 1
                elapsed += self.retransmit_timeout_s
            trip = self._one_way_s()
            network += trip
            elapsed += trip

            before = copy.copy(receiver.stats)
            response = receiver.handle(wire)
            dt = self._crypto_time(receiver.role, before, receiver.stats)
            crypto += dt
            elapsed += dt

            wire = response
            sender, receiver = receiver, sender

        edge_session = self._sessions[Role.EDGE]
        operator_session = self._sessions[Role.OPERATOR]
        poc = edge_session.poc if edge_session.poc is not None else operator_session.poc
        if poc is None:
            raise RuntimeError("negotiation ended without a PoC")
        if self.metrics is not None:
            messages = (
                edge_session.stats.messages_sent + operator_session.stats.messages_sent
            )
            self.metrics.counter("poc.messages").inc(messages)
            self.metrics.counter("poc.wire_bytes").inc(
                edge_session.stats.bytes_sent + operator_session.stats.bytes_sent
            )
            self.metrics.counter("poc.retransmissions").inc(retransmissions)
        return ExchangeResult(
            poc=poc,
            volume=poc.volume,
            rounds=max(edge_session.stats.rounds, operator_session.stats.rounds),
            elapsed_s=elapsed,
            crypto_s=crypto,
            network_s=network,
            messages=edge_session.stats.messages_sent + operator_session.stats.messages_sent,
            bytes_on_wire=edge_session.stats.bytes_sent + operator_session.stats.bytes_sent,
            retransmissions=retransmissions,
            initiator_stats=initiator.stats,
            responder_stats=responder.stats,
        )
