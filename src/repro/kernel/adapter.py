"""Kernel selection: eligibility checks and lane construction.

The batched kernel (:mod:`repro.kernel.engine`) reproduces the reference
engine bit for bit *only* for the traffic shapes it mirrors.  This module
is the gatekeeper: :func:`build_scenario_lane` / :func:`build_session_lane`
inspect a fully-built runner and either return a ready
:class:`~repro.kernel.engine.LaneSpec` or a human-readable reason why the
UE must run on the reference engine.  ``kernel="auto"`` falls back
silently (the runner records the reason); ``kernel="batched"`` raises so
tests and benchmarks can assert the fast path was actually taken.

Selection is resolved per call from an explicit argument or the
``REPRO_SIM_KERNEL`` environment variable (``auto`` | ``batched`` |
``reference``), defaulting to ``auto``.
"""

from __future__ import annotations

import os

from ..cellular.mobility import HandoverProcess
from ..cellular.radio import RadioChannel
from ..netsim import Direction
from ..netsim.faults import FaultInjector
from .engine import _K_HO_BEGIN, _K_OUT_BEGIN, _K_RESET, _K_RSS, LaneSpec

__all__ = [
    "KERNELS",
    "resolve_kernel",
    "build_scenario_lane",
    "build_session_lane",
]

KERNELS = ("auto", "batched", "reference")

#: Above this frame rate the inter-frame gap (1/fps) drops below the
#: 2.5 ms downlink LAN+backhaul fold window and the kernel's event-order
#: proof no longer holds.  Every shipped workload profile is ≤ 100 fps.
MAX_BATCHED_FPS = 200.0


def resolve_kernel(explicit: str | None = None) -> str:
    """Resolve the kernel selection (explicit arg > env var > auto)."""
    kernel = explicit if explicit is not None else os.environ.get("REPRO_SIM_KERNEL", "auto")
    if kernel not in KERNELS:
        raise ValueError(f"unknown simulation kernel {kernel!r}; expected one of {KERNELS}")
    return kernel


def _absorb_events(loop, radio, handover, injector=None) -> tuple[tuple | None, str | None]:
    """Collect this UE's construction-time loop events for wheel replay.

    A freshly-built session legitimately holds pending events: the
    radio's first ``_begin_outage`` and ``_sample_rss``, the handover
    process's first ``_begin_handover`` (their RNG draws already
    happened at ``start()``), and the fault injector's armed
    ``_reset_modem`` counter resets.  The lane replays them on its
    wheel and cancels the originals at flush.  Anything *else* owned by
    this session's radio/handover/injector means the session is
    mid-flight — the lane refuses.  Other sessions' events (fleet
    shards share one loop) are ignored.
    """
    absorbed = []
    for event in loop._queue:
        if event.cancelled:
            continue
        owner = getattr(event.callback, "__self__", None)
        if owner is radio:
            func = getattr(event.callback, "__func__", None)
            if func is RadioChannel._begin_outage:
                absorbed.append((_K_OUT_BEGIN, event))
            elif func is RadioChannel._sample_rss:
                absorbed.append((_K_RSS, event))
            else:
                return None, "unrecognized radio event pending on the loop"
        elif handover is not None and owner is handover:
            if getattr(event.callback, "__func__", None) is HandoverProcess._begin_handover:
                absorbed.append((_K_HO_BEGIN, event))
            else:
                return None, "unrecognized handover event pending on the loop"
        elif injector is not None and owner is injector:
            if getattr(event.callback, "__func__", None) is FaultInjector._reset_modem:
                absorbed.append((_K_RESET, event))
            else:
                return None, "unrecognized fault-injector event pending on the loop"
    absorbed.sort(key=lambda pair: pair[1].seq)
    return tuple(absorbed), None


def _build_lane(
    *,
    config,
    loop,
    network,
    access,
    device,
    server,
    workload,
    counter_monitor,
    flow_id,
    fault_injector,
    handover=None,
    span_recorder=None,
) -> tuple[LaneSpec | None, str | None]:
    """Shared eligibility walk; returns (lane, None) or (None, reason)."""
    if config.workload.fps > MAX_BATCHED_FPS:
        return None, f"workload fps {config.workload.fps} above the kernel bound ({MAX_BATCHED_FPS})"
    if device.on_receive is not None or server.on_receive is not None:
        return None, "application on_receive hook installed"

    radio = access.radio
    if not radio.connected:
        return None, "radio disconnected at simulate start"
    if len(access._ul_buffer) != 0:
        return None, "uplink modem buffer is not empty"
    if radio.record_rss and len(radio.rss_history) != 1:
        return None, "RSS history not fresh"

    if flow_id in network.spgw._policers:
        return None, "token-bucket policer already installed"

    imsi = access.imsi
    enodeb = network.serving_enodeb(imsi)
    ue = enodeb.ue(imsi)
    if not ue.attached:
        return None, "UE detached at simulate start"
    if len(ue.dl_buffer) != 0:
        return None, "downlink buffer is not empty"

    bearer = network.bearers.by_flow(flow_id)
    if bearer is None:
        return None, "no bearer for this flow"
    if not bearer.active:
        return None, "bearer inactive at simulate start"

    is_uplink = config.direction is Direction.UPLINK
    air = enodeb.uplink_air if is_uplink else enodeb.downlink_air
    # The air sees the workload QCI on uplink (the SPGW stamps the bearer
    # QCI after the air hop) and the bearer QCI on downlink (stamped
    # before the eNodeB).
    air_qci = config.workload.qci if is_uplink else bearer.qci
    if air._foreground:
        return None, "air interface already carries foreground traffic"

    # Fresh-state contract: the kernel bulk-installs counter series, so
    # every flush target must be untouched.
    if workload.frames_sent != 0:
        return None, "workload already started"
    modem = access.modem
    if modem.ul_sent.total != 0 or modem.dl_received.total != 0:
        return None, "modem counters not fresh"
    if bearer.uplink.total != 0 or bearer.downlink.total != 0:
        return None, "bearer counters not fresh"
    if ue.rrc.state.name != "IDLE" or ue.rrc.setups != 0:
        return None, "RRC not idle at simulate start"
    for monitor in (device.ul_monitor, device.dl_monitor, server.ul_monitor, server.dl_monitor):
        if monitor.counter._times:
            return None, f"monitor {monitor.name!r} not fresh"

    absorbed, reason = _absorb_events(loop, radio, handover, fault_injector)
    if reason is not None:
        return None, reason

    # Path-kind fault schedules replay at the lane's injection points in
    # general mode; clock-only schedules (skew/drift apply in the shared
    # collect() phase) and schedules matching neither point keep the fold
    # loops — the reference draws no fault RNG for them either.  Armed
    # counter resets ride in via ``absorbed``.
    fault_view = None
    if fault_injector is not None:
        fault_view = fault_injector.lane_view(("uplink", "downlink"))

    # Outage, RSS, quota, handover and path-fault sessions run the
    # general-mode executor; everything else takes the faster fold loops.
    needs_general = (
        radio.profile.outages_enabled
        or radio.record_rss
        or flow_id in network.pcrf._quotas
        or handover is not None
        or bool(absorbed)
        or (fault_view is not None and fault_view.any_path_faults)
    )

    lane = LaneSpec(
        is_uplink=is_uplink,
        t0=loop.now(),
        workload=workload,
        radio=radio,
        air=air,
        air_qci=air_qci,
        rrc=ue.rrc,
        modem=modem,
        bearer=bearer,
        lan_s=network.config.lan_latency_s,
        backhaul_s=network.config.backhaul_latency_s,
        device=device,
        server=server,
        sla_budget=network.middlebox._budgets.get(flow_id),
        middlebox=network.middlebox,
        lan_link=network._lan_dl,
        backhaul_link=network._backhaul_ul,
        gateway_metrics=network.spgw.metrics,
        general=needs_general,
        ue=ue,
        access=access,
        spgw=network.spgw,
        mme=network.mme,
        flow_id=flow_id,
        handover=handover,
        rlf_timeout_s=enodeb.config.rlf_timeout_s,
        attach_delay_s=enodeb.config.attach_delay_s,
        span_recorder=span_recorder,
        absorbed=absorbed,
        fault_view=fault_view,
    )
    return lane, None


def build_scenario_lane(runner) -> tuple[LaneSpec | None, str | None]:
    """Lane for a single-UE :class:`~repro.experiments.runner.ScenarioRunner`."""
    lane, reason = _build_lane(
        config=runner.config,
        loop=runner.loop,
        network=runner.network,
        access=runner.access,
        device=runner.device,
        server=runner.server,
        workload=runner.workload,
        counter_monitor=runner.counter_monitor,
        flow_id=runner.flow_id,
        fault_injector=runner.fault_injector,
        handover=runner.handover,
        span_recorder=runner.metrics._spans,
    )
    if lane is not None and runner.loop.pending() != len(lane.absorbed):
        # Catch-all, checked last so specific reasons surface first: a
        # single-UE scenario loop must hold nothing beyond the absorbed
        # construction-time events or the lane would race whatever else
        # is scheduled on it.
        return None, "event loop already has pending events"
    return lane, reason


def build_session_lane(session) -> tuple[LaneSpec | None, str | None]:
    """Lane for one :class:`~repro.experiments.fleet_runner._UeSession`.

    Fleet eligibility is per-session: each UE owns its cell, so its air
    interfaces, RRC, modem, bearer and monitors are lane-private; the
    shared SPGW/link/middlebox totals the lane flushes are plain sums,
    insensitive to which engine produced each term.  The shard loop may
    legitimately hold pending events for *ineligible* sessions (their
    radio outage processes), so there is no global pending check here.
    """
    return _build_lane(
        config=session.config,
        loop=session.loop,
        network=session.network,
        access=session.access,
        device=session.device,
        server=session.server,
        workload=session.workload,
        counter_monitor=session.counter_monitor,
        flow_id=session.flow_id,
        fault_injector=session.fault_injector,
        handover=session.handover,
    )
