"""Batched per-UE simulation kernel (bit-identical fast path).

``repro.kernel`` steps eligible UEs over flat per-UE state instead of one
Python object per packet, reproducing the reference engine's results bit
for bit (same RNG draw order, same timestamps, same event-order ties).
The runners select it through :func:`resolve_kernel` — explicitly, via
the ``REPRO_SIM_KERNEL`` environment variable, or ``auto`` with silent
fallback to the reference engine for unsupported traffic shapes.
"""

from .adapter import (
    KERNELS,
    build_scenario_lane,
    build_session_lane,
    resolve_kernel,
)
from .engine import SETTLE_S, LaneSpec, run_lane

__all__ = [
    "KERNELS",
    "LaneSpec",
    "SETTLE_S",
    "build_scenario_lane",
    "build_session_lane",
    "resolve_kernel",
    "run_lane",
]
