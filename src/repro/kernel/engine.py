"""Batched per-UE simulation kernel: the flat-state lane engine.

The reference engine simulates one Python object per packet: every chunk
of every frame becomes a :class:`~repro.netsim.packet.Packet` that hops
through device → modem → air → backhaul → SPGW → server as a chain of
event-loop callbacks, each allocating closures and touching a dozen
objects.  At fleet scale that per-packet object hop dominates run time
(ROADMAP open item 1) without changing any number the charging study
reads.

This module replaces that hop with a **lane**: one UE's whole simulate()
phase run over flat per-UE state — plain ints, floats and lists — driven
by a private event wheel (a heap of tuples) instead of the shared event
loop.  The hot paths are two long, direction-specialized loops
(:meth:`_LaneRun._run_ul` / :meth:`_LaneRun._run_dl`) with every
per-packet value cached in locals; per-packet work shrinks to a few
dozen interpreter operations while reproducing the reference engine
**bit for bit**:

* every RNG draw is issued on the *same stream object* in the *same
  order* (workload sizes/jitter, air drop draws, radio RSS walk + loss
  draws);
* every float expression is copied operation-for-operation from the
  reference code (air drop probability, queue delay, RSS walk, frame
  sizing), never algebraically simplified — see the inline citations;
  ``min``/``max`` calls are unrolled into branches, which return the
  identical float;
* every counter write lands at the exact same simulated timestamp, so
  cycle-boundary queries (skewed or not) cannot tell the engines apart;
* event-wheel sequence numbers mirror the event loop's global schedule
  order, so same-time events fire in the same relative order (the
  tie-ordering contract below).

Tie-ordering contract
---------------------

The reference loop breaks time ties by schedule order (a global seq).
The wheel assigns its own per-lane seq at push time; pushes happen at
the same simulated instants as the reference's ``schedule`` calls with
two deliberate exceptions, both proven safe:

* the downlink LAN hop (+0.5 ms) and SPGW charge are *folded* into frame
  processing: nothing in the path schedules events with a delay inside
  (2 ms, 2.5 ms), so no push can land between the fold point and the
  reference's scheduling instant with a colliding timestamp (frame gaps
  are ≥ 5 ms — eligibility caps fps at 200 — air delays are ≥ 4 ms,
  counter checks ≥ 50 ms apart, the LAN hop is 0.5 ms);
* the uplink backhaul delivery (+2 ms) is folded into the air-delivery
  event: the reference's delivery event schedules nothing, and nothing
  that can fire inside the folded window reads the counters it writes
  (RRC counter checks read only the modem counters, which tick at send
  time).

RRC release timers are *lazy*: a scalar ``release_at`` checked before
every pop.  On a time tie the release fires first, matching the
reference, where the release timer is always armed earlier (at the last
data activity) than any event scheduled afterwards and so carries the
smaller seq.  Pending periodic-check events are invalidated by a
generation counter instead of heap surgery, mirroring timer ``cancel``.

Two executors share the wheel
----------------------------

Sessions whose path state cannot change mid-frame (no outages, no RSS
recording, no quota, no handover) run the **fold loops** above — the
fastest path, because whole frames collapse into straight-line
arithmetic.  Sessions with a radio outage process, RSS recording, a PCRF
quota or an X2 handover schedule run the **general-mode executor**
(:class:`_GeneralRun`): same private wheel, same flat mirrored state,
but per-packet-hop events like the reference engine, because an outage
window, an RLF detach, a policer refill or a handover break can land
between any two chunks.  General mode trades the fold speedup for
coverage — chaos-profile sessions still skip the shared event loop's
closure allocation and object hops.

Fault schedules run in general mode too: path-kind decisions
(burst-loss / reorder / duplicate / corrupt / blackout) are replayed at
the lane's uplink/downlink injection points through the injector's own
``decide_at`` — same "faults" RNG stream, same draw order, same trace
records — via a precomputed :class:`~repro.netsim.faults.LaneFaultView`;
counter resets are absorbed loop events replayed on the wheel; clock
skew/drift never touches the lane (both engines apply ``skew_at`` in the
shared ``collect()`` phase), so clock-only schedules keep the fold
loops.

What NO lane supports — app-level ``on_receive`` hooks, frame rates
above the tie-safety bound — is refused by the eligibility check in
:mod:`repro.kernel.adapter`, which falls back to the reference engine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from itertools import count as _count
from math import cos as _cos, exp as _exp, log as _log, sin as _sin, sqrt as _sqrt, tau as _TWOPI

# random.NV_MAGICCONST, same expression so the same float.
_NV_MAGIC = 4 * _exp(-0.5) / _sqrt(2.0)

from ..cellular.air import AirInterface, RateWindow
from ..cellular.bearer import Bearer
from ..cellular.gateway import TokenBucket
from ..cellular.qos import scheduler_priority
from ..cellular.radio import GOOD_RSS_DBM, RadioChannel, RssSample
from ..cellular.rrc import CounterCheckResponse, HardwareModem, RrcConnectionManager, RrcState
from ..netsim.packet import Direction, Packet
from ..obs.spans import Span

__all__ = ["LaneSpec", "run_lane", "SETTLE_S"]

#: Settle window after the charging horizon, matching the reference
#: ``loop.run_until(horizon + 2.0)`` in both runners.
SETTLE_S = 2.0

# Wheel event kinds (first tuple field after (time, seq)).
_K_FRAME = 0  # workload emits one frame
_K_ARRIVAL = 1  # DL chunk reaches the eNodeB (post LAN + SPGW + backhaul)
_K_DELIVER = 2  # air transmission completes (post propagation + queue + serialization)
_K_CHECK = 3  # periodic RRC COUNTER CHECK

# General-mode wheel event kinds (outage / quota / RSS / handover lanes).
_K_LAN = 4  # DL: one frame's chunks delivered by the LAN link (Link._deliver)
_K_BH = 5  # DL: one frame's surviving chunks arrive at the eNodeB over the backhaul
_K_GW = 6  # UL: one packet arrives at the SPGW over the backhaul link
_K_RLF = 7  # radio-link-failure timer (ENodeB._check_rlf)
_K_OUT_BEGIN = 8  # natural outage begins (RadioChannel._begin_outage)
_K_OUT_END = 9  # natural outage ends (RadioChannel._end_outage)
_K_REATTACH = 10  # post-RLF re-attach (ENodeB._reattach)
_K_HO_BEGIN = 11  # handover starts (HandoverProcess._begin_handover)
_K_HO_COMPLETE = 12  # handover interruption ends (HandoverProcess._complete_handover)
_K_RSS = 13  # periodic RSS sample (RadioChannel._sample_rss)
_K_RESET = 14  # armed counter reset (FaultInjector._reset_modem)
_K_UL_SEND = 15  # fault-delayed/duplicated uplink send (UeAccess.send_uplink)
_K_DL_DELIVER = 16  # fault-delayed/duplicated downlink delivery (ue.deliver)

_INF = float("inf")


class _Cum:
    """Bulk-built mirror of :class:`~repro.netsim.counters.CumulativeCounter`.

    The hot loops append (time, cumulative) points straight onto
    ``times``/``cums`` — same coalescing rule as ``CumulativeCounter.add``
    — and install them into the real counter in one shot at flush time.
    """

    __slots__ = ("times", "cums", "total")

    def __init__(self) -> None:
        self.times: list[float] = []
        self.cums: list[int] = []
        self.total = 0

    def flush_into(self, counter) -> None:
        """Install the accumulated points into a fresh CumulativeCounter."""
        if counter._times:
            raise RuntimeError("kernel flush target counter is not empty")
        counter._times = self.times
        counter._cums = self.cums
        counter._total = self.total


@dataclass
class LaneSpec:
    """Everything one lane needs, resolved by the adapter from live objects."""

    is_uplink: bool
    t0: float  # loop.now() at simulate start
    # Workload (the live FrameWorkload; its RNG stream is drawn in place).
    workload: object
    # Radio channel (live; RSS walk state and RNG stream used in place).
    radio: RadioChannel
    # The direction-relevant AirInterface of the serving cell.
    air: AirInterface
    #: QCI the air interface sees: the workload QCI on uplink (the SPGW
    #: stamps the bearer QCI *after* the air), the bearer QCI on downlink
    #: (stamped *before* the eNodeB).
    air_qci: int
    # RRC / modem.
    rrc: RrcConnectionManager
    modem: HardwareModem
    bearer: Bearer
    # Path latencies (NetworkConfig).
    lan_s: float
    backhaul_s: float
    # Endpoints.
    device: object
    server: object
    #: SLA age budget for this flow at the middlebox (None = none).
    sla_budget: float | None
    # Shared components receiving flushed totals.
    middlebox: object
    lan_link: object  # netsim.link.Link ("lan-dl"); DL lanes only
    backhaul_link: object  # netsim.link.Link ("backhaul-ul"); UL lanes only
    gateway_metrics: object  # spgw.metrics (MetricsRegistry or None)

    # ---- general mode (outage / quota / RSS / handover sessions) ----
    #: Run the general-mode executor (:class:`_GeneralRun`) instead of
    #: the direction-specialized fold loops.
    general: bool = False
    ue: object = None  # cellular.enodeb.UeContext
    access: object = None  # cellular.network.UeAccess
    spgw: object = None  # cellular.gateway.Spgw
    mme: object = None  # cellular.mme.Mme
    flow_id: str = ""
    handover: object = None  # cellular.mobility.HandoverProcess | None
    rlf_timeout_s: float = 5.0
    attach_delay_s: float = 0.5
    #: SpanRecorder receiving replayed ``radio.outage`` spans (single-UE
    #: scenario runs only; fleet sessions record no outage spans).
    span_recorder: object = None
    #: Pre-existing loop events absorbed into the lane as ``(kind,
    #: Event)`` pairs sorted by loop seq — the construction-time outage /
    #: RSS / handover / counter-reset chain heads.  Replayed on the wheel
    #: with negative seqs (they were scheduled before anything the lane
    #: pushes) and cancelled on flush so the caller's settle run cannot
    #: double-fire them.
    absorbed: tuple = ()
    #: :class:`~repro.netsim.faults.LaneFaultView` when the session has an
    #: active fault injector; None otherwise.  Path-kind decisions replay
    #: through it at the uplink/downlink injection points, counter resets
    #: through :meth:`~repro.netsim.faults.LaneFaultView.apply_reset`.
    fault_view: object = None


class _LaneRun:
    """One lane's execution state.  See the module docstring for the contract."""

    __slots__ = (
        "spec", "until", "end", "heap", "seq",
        # workload
        "wl_rng", "fps", "frame_dt", "packet_bytes", "mean_bitrate",
        "iframe_interval", "iframe_scale", "size_sigma",
        "frames_sent", "bytes_offered",
        # air
        "air_random", "capacity", "cap_usable", "prop", "max_qd",
        "bg", "my_priority", "split_general", "bg_higher", "bg_same",
        "win_samples", "win_bits",
        "off_p", "off_b", "drop_p", "drop_b", "trans_p", "trans_b",
        # radio
        "radio_rng", "rss", "rss_base", "rss_noise", "rss_floor",
        "rss_ceiling", "base_loss", "loss_at_floor",
        # rrc
        "connected", "release_at", "timeout", "check_dt", "gen", "sink",
        "setups", "releases", "checks_sent", "served",
        # counters
        "mod_cum", "bearer_cum", "dev_cum", "srv_cum",
        "charged", "received", "latencies",
        # path
        "lan_s", "bk_s", "sla",
        "link_sent_p", "link_sent_b", "link_del_p", "link_del_b",
        "mb_pass_p", "mb_pass_b", "mb_drop_p", "mb_drop_b",
    )

    def __init__(self, spec: LaneSpec, horizon: float, settle: float) -> None:
        self.spec = spec
        self.until = horizon
        self.end = horizon + settle
        self.heap: list[tuple] = []
        self.seq = 0

        profile = spec.workload.profile
        self.wl_rng = spec.workload._rng
        self.fps = profile.fps
        self.frame_dt = 1.0 / profile.fps
        self.packet_bytes = profile.packet_bytes
        self.mean_bitrate = profile.mean_bitrate_bps
        self.iframe_interval = profile.iframe_interval
        self.iframe_scale = profile.iframe_scale
        self.size_sigma = profile.size_sigma
        self.frames_sent = 0
        self.bytes_offered = 0

        air = spec.air
        self.air_random = air._rng.random
        self.capacity = air.capacity_bps
        # AirInterface.drop_probability recomputes capacity * usable_fraction
        # per call; the product is the same float every time.
        self.cap_usable = air.capacity_bps * air.usable_fraction
        self.prop = air.propagation_delay_s
        self.max_qd = air.max_queue_delay_s
        self.bg = air._background
        self.my_priority = scheduler_priority(spec.air_qci)
        # Background demand-split specialization: with at most one
        # background class the reference's set-union loop collapses to one
        # or two single-term bucket sums, which IEEE addition reproduces
        # exactly (x + 0.0 == x, 0.0 + x == x and a + b == b + a for the
        # non-negative rates here).  The hot loops then compute
        # ``higher = bg_higher; same = bg_same + rate``.
        self.split_general = False
        self.bg_higher = 0.0
        self.bg_same = 0.0
        if len(self.bg) == 1:
            ((bg_qci, bg_rate),) = self.bg.items()
            bg_priority = scheduler_priority(bg_qci)
            if bg_qci == spec.air_qci or bg_priority == self.my_priority:
                self.bg_same = bg_rate
            elif bg_priority < self.my_priority:
                self.bg_higher = bg_rate
            # else lower priority: invisible to this QCI's buckets
        elif len(self.bg) > 1:
            self.split_general = True  # general set-union mirror (_split)
        self.win_samples: deque[tuple[float, int]] = deque()
        self.win_bits = 0
        self.off_p = self.off_b = 0
        self.drop_p = self.drop_b = 0
        self.trans_p = self.trans_b = 0

        radio = spec.radio
        rp = radio.profile
        self.radio_rng = radio._rng
        self.rss = radio._current_rss
        self.rss_base = rp.base_rss_dbm
        self.rss_noise = rp.rss_noise_std
        self.rss_floor = rp.rss_floor_dbm
        self.rss_ceiling = rp.rss_ceiling_dbm
        self.base_loss = rp.base_loss
        self.loss_at_floor = rp.loss_at_floor

        rrc = spec.rrc
        self.connected = False  # rrc.state is IDLE at a fresh start
        self.release_at = _INF
        self.timeout = rrc.inactivity_timeout_s
        self.check_dt = rrc.counter_check_interval_s
        self.gen = 0
        self.sink = rrc.report_sink
        self.setups = 0
        self.releases = 0
        self.checks_sent = 0
        self.served = 0

        self.mod_cum = _Cum()  # modem counter for the lane's direction
        self.bearer_cum = _Cum()
        self.dev_cum = _Cum()  # device ul (UL) / dl (DL) monitor
        self.srv_cum = _Cum()  # server ul (UL) / dl (DL) monitor
        self.charged = 0
        self.received = 0
        self.latencies: list[float] = []

        self.lan_s = spec.lan_s
        self.bk_s = spec.backhaul_s
        self.sla = spec.sla_budget
        self.link_sent_p = self.link_sent_b = 0
        self.link_del_p = self.link_del_b = 0
        self.mb_pass_p = self.mb_pass_b = 0
        self.mb_drop_p = self.mb_drop_b = 0

    # ------------------------------------------------------------------ run

    def run(self) -> None:
        # FrameWorkload.start: jitter = rng.uniform(0.0, 1.0 / fps),
        # first frame at loop.now() + jitter.
        jitter = self.wl_rng.uniform(0.0, 1.0 / self.fps)
        self.seq += 1
        heappush(self.heap, (self.spec.t0 + jitter, self.seq, _K_FRAME, 0, 0))
        if self.spec.is_uplink:
            self._run_ul()
        else:
            self._run_dl()
        self._flush()

    # ---------------------------------------------------------- cold paths

    def _split(self, rate: float) -> tuple[float, float]:
        """General mirror of AirInterface._demand_split (≥ 2 bg classes).

        ``rate`` is the foreground window's already-expired rate_bps at
        the current time.  Same set construction, iteration order and
        float accumulation order as the reference.
        """
        my_priority = self.my_priority
        air_qci = self.spec.air_qci
        higher = 0.0
        same = 0.0
        for other in set(self.bg) | {air_qci}:
            load = self.bg.get(other, 0.0) + (rate if other == air_qci else 0.0)
            priority = scheduler_priority(other)
            if priority < my_priority:
                higher += load
            elif priority == my_priority:
                same += load
        return higher, same

    def _counter_check(self, t: float, ul_total: int, dl_total: int) -> None:
        # rrc.perform_counter_check + modem.counter_check at time t.
        self.checks_sent += 1
        self.served += 1
        if self.sink is not None:
            self.sink(CounterCheckResponse(t=t, uplink_bytes=ul_total, downlink_bytes=dl_total))

    # --------------------------------------------------------- uplink loop

    def _run_ul(self) -> None:
        # Hot state cached in locals; synced back to attributes at the end.
        heap = self.heap
        pop, push = heappop, heappush
        end = self.end
        until = self.until
        seq = self.seq

        frame_dt = self.frame_dt
        packet_bytes = self.packet_bytes
        fps = self.fps
        mean_bitrate = self.mean_bitrate
        iframe_n = self.iframe_interval
        iframe_scale = self.iframe_scale
        size_sigma = self.size_sigma
        wl_random = self.wl_rng.random
        frames_sent = self.frames_sent
        bytes_offered = self.bytes_offered

        air_random = self.air_random
        capacity = self.capacity
        cap_usable = self.cap_usable
        prop = self.prop
        max_qd = self.max_qd
        split_general = self.split_general
        bg_higher = self.bg_higher
        bg_same = self.bg_same
        win_samples = self.win_samples
        win_bits = self.win_bits
        off_p = off_b = drop_p = drop_b = trans_p = trans_b = 0

        radio_rng = self.radio_rng
        radio_random = radio_rng.random
        # random.gauss is inlined in the deliver branch (same algorithm,
        # same draws); its carry-over cache rides along as a local.
        gauss_next = radio_rng.gauss_next
        rss = self.rss
        rss_base = self.rss_base
        rss_noise = self.rss_noise
        rss_floor = self.rss_floor
        rss_ceiling = self.rss_ceiling
        base_loss = self.base_loss
        loss_at_floor = self.loss_at_floor

        connected = self.connected
        release_at = self.release_at
        timeout = self.timeout
        check_dt = self.check_dt
        gen = self.gen

        dev = self.dev_cum  # device.ul_monitor
        dev_times, dev_cums, dev_total = dev.times, dev.cums, dev.total
        mod = self.mod_cum  # modem.ul_sent
        mod_times, mod_cums, mod_total = mod.times, mod.cums, mod.total
        bearer = self.bearer_cum
        b_times, b_cums, b_total = bearer.times, bearer.cums, bearer.total
        srv = self.srv_cum  # server.ul_monitor
        s_times, s_cums, s_total = srv.times, srv.cums, srv.total
        latencies = self.latencies
        received = 0
        link_p = link_b = 0  # backhaul sent == delivered (pure delay, no loss)
        bk_s = self.bk_s

        while heap:
            te, _, kind, a, b = pop(heap)
            if te > end:
                break  # reference run_until(end) leaves later events undispatched
            # Lazy RRC release: the release timer was armed at the last
            # data activity, so on a time tie it holds the smaller loop
            # seq and fires before this event — process it first.
            if connected and release_at <= te:
                self._counter_check(release_at, mod_total, 0)
                self.releases += 1
                connected = False
                gen += 1
                release_at = _INF

            if kind == _K_DELIVER:
                # AirInterface._transmit -> ENodeB._air_deliver_ul.
                trans_p += 1
                trans_b += a
                # RadioChannel.survives_air: _walk_rss (gauss) then
                # random() >= loss_probability(current rss).
                z = gauss_next
                gauss_next = None
                if z is None:
                    x2pi = radio_random() * _TWOPI
                    g2rad = _sqrt(-2.0 * _log(1.0 - radio_random()))
                    z = _cos(x2pi) * g2rad
                    gauss_next = _sin(x2pi) * g2rad
                step = 0.0 + z * rss_noise  # gauss: mu + z * sigma, mu = 0.0
                drift = 0.25 * (rss_base - rss)
                rss = rss + drift + step
                if rss < rss_floor:
                    rss = rss_floor
                elif rss > rss_ceiling:
                    rss = rss_ceiling
                if rss >= GOOD_RSS_DBM:
                    loss = base_loss
                else:
                    span = GOOD_RSS_DBM - rss_floor
                    frac = (GOOD_RSS_DBM - rss) / span
                    if frac > 1.0:
                        frac = 1.0
                    loss = base_loss + frac * loss_at_floor
                    if loss > 1.0:
                        loss = 1.0
                if radio_random() >= loss:
                    # Backhaul link (pure delay) folded: its delivery event
                    # schedules nothing and nothing fired in (te, te + bk_s]
                    # reads the counters written here.
                    link_p += 1
                    link_b += a
                    tg = te + bk_s
                    # Spgw.receive_uplink: bearer charge + server sink.
                    b_total += a
                    if b_times and b_times[-1] == tg:
                        b_cums[-1] = b_total
                    else:
                        b_times.append(tg)
                        b_cums.append(b_total)
                    s_total += a  # server.ul_monitor.observe
                    if s_times and s_times[-1] == tg:
                        s_cums[-1] = s_total
                    else:
                        s_times.append(tg)
                        s_cums.append(s_total)
                    received += 1
                    latencies.append(tg - b)  # b = packet created_at
                # else: phy-rss loss

            elif kind == _K_FRAME:
                # FrameWorkload._emit_frame with sender = EdgeDevice.send.
                if te > until:
                    continue
                # _frame_size, op for op (incl. the property recompute and
                # the inlined lognormvariate = exp(normalvariate)).
                mean = mean_bitrate / 8.0 / fps
                if iframe_n > 0:
                    p_frame = mean * iframe_n / (iframe_n - 1 + iframe_scale)
                    mean = p_frame * (iframe_scale if frames_sent % iframe_n == 0 else 1.0)
                while True:
                    u1 = wl_random()
                    u2 = 1.0 - wl_random()
                    z = _NV_MAGIC * (u1 - 0.5) / u2
                    if z * z / 4.0 <= -_log(u2):
                        break
                size = _exp(0.0 + z * size_sigma) * mean
                remaining = int(size)
                if remaining < 64:
                    remaining = 64
                frames_sent += 1
                # All chunks of one frame land at the same te inside one
                # handler, so the per-chunk monitor/modem adds coalesce
                # into a single cumulative point — nothing reads the
                # counters between chunks.
                dev_total += remaining  # device.ul_monitor.observe
                if dev_times and dev_times[-1] == te:
                    dev_cums[-1] = dev_total
                else:
                    dev_times.append(te)
                    dev_cums.append(dev_total)
                mod_total += remaining  # access.send_uplink -> modem.count_uplink
                if mod_times and mod_times[-1] == te:
                    mod_cums[-1] = mod_total
                else:
                    mod_times.append(te)
                    mod_cums.append(mod_total)
                bytes_offered += remaining
                while remaining > 0:
                    chunk = remaining if remaining < packet_bytes else packet_bytes
                    # enodeb.receive_uplink -> rrc.on_data_activity:
                    # _setup (arming the periodic check) then release rearm.
                    if not connected:
                        connected = True
                        self.setups += 1
                        if check_dt is not None:
                            seq += 1
                            push(heap, (te + check_dt, seq, _K_CHECK, gen, 0))
                    release_at = te + timeout
                    # uplink_air.submit — RateWindow.observe(te, chunk):
                    bits = chunk * 8
                    win_samples.append((te, bits))
                    win_bits += bits
                    cutoff = te - 1.0  # window_s = 1.0 (reference default)
                    while win_samples and win_samples[0][0] <= cutoff:
                        win_bits -= win_samples.popleft()[1]
                    off_p += 1
                    off_b += chunk
                    # submit draws rng.random() before drop_probability.
                    u = air_random()
                    if split_general:
                        higher, same = self._split(win_bits / 1.0)
                    else:
                        higher = bg_higher
                        same = bg_same + win_bits / 1.0  # RateWindow.rate_bps
                    # drop_probability:
                    usable = cap_usable - higher
                    if usable < 0.0:
                        usable = 0.0
                    if same <= usable or same <= 0:
                        p = 0.0
                    elif usable <= 0:
                        p = 1.0
                    else:
                        p = 1.0 - usable / same
                    if u < p:
                        drop_p += 1
                        drop_b += chunk
                    else:
                        # queue_delay recomputes _demand_split at the same
                        # instant with unchanged state — reuse (higher, same).
                        rho = (higher + same) / capacity
                        if rho > 0.99:
                            rho = 0.99
                        if rho < 0.5:
                            qd = 0.0
                        else:
                            qd = 0.002 * rho / (1.0 - rho)
                            if qd > max_qd:
                                qd = max_qd
                        delay = prop + qd + chunk * 8.0 / capacity
                        seq += 1
                        push(heap, (te + delay, seq, _K_DELIVER, chunk, te))
                    remaining -= chunk
                seq += 1
                push(heap, (te + frame_dt, seq, _K_FRAME, 0, 0))

            else:  # _K_CHECK (stale generations are cancelled timers)
                if a == gen and connected:
                    self._counter_check(te, mod_total, 0)
                    seq += 1
                    push(heap, (te + check_dt, seq, _K_CHECK, gen, 0))

        # A release armed before the horizon's edge still fires inside the
        # settle window even with no later event to trigger the lazy check.
        if connected and release_at <= end:
            self._counter_check(release_at, mod_total, 0)
            self.releases += 1
            connected = False
            gen += 1
            release_at = _INF

        self.seq = seq
        self.frames_sent = frames_sent
        self.bytes_offered = bytes_offered
        self.win_bits = win_bits
        self.off_p, self.off_b = off_p, off_b
        self.drop_p, self.drop_b = drop_p, drop_b
        self.trans_p, self.trans_b = trans_p, trans_b
        self.rss = rss
        radio_rng.gauss_next = gauss_next
        self.connected = connected
        self.release_at = release_at
        self.gen = gen
        dev.total = dev_total
        mod.total = mod_total
        bearer.total = b_total
        srv.total = s_total
        self.received = received
        self.charged = b_total
        self.link_sent_p = self.link_del_p = link_p
        self.link_sent_b = self.link_del_b = link_b

    # ------------------------------------------------------- downlink loop

    def _run_dl(self) -> None:
        heap = self.heap
        pop, push = heappop, heappush
        end = self.end
        until = self.until
        seq = self.seq

        frame_dt = self.frame_dt
        packet_bytes = self.packet_bytes
        fps = self.fps
        mean_bitrate = self.mean_bitrate
        iframe_n = self.iframe_interval
        iframe_scale = self.iframe_scale
        size_sigma = self.size_sigma
        wl_random = self.wl_rng.random
        frames_sent = self.frames_sent
        bytes_offered = self.bytes_offered

        air_random = self.air_random
        capacity = self.capacity
        cap_usable = self.cap_usable
        prop = self.prop
        max_qd = self.max_qd
        split_general = self.split_general
        bg_higher = self.bg_higher
        bg_same = self.bg_same
        win_samples = self.win_samples
        win_bits = self.win_bits
        off_p = off_b = drop_p = drop_b = trans_p = trans_b = 0

        radio_rng = self.radio_rng
        radio_random = radio_rng.random
        # random.gauss is inlined in the deliver branch (same algorithm,
        # same draws); its carry-over cache rides along as a local.
        gauss_next = radio_rng.gauss_next
        rss = self.rss
        rss_base = self.rss_base
        rss_noise = self.rss_noise
        rss_floor = self.rss_floor
        rss_ceiling = self.rss_ceiling
        base_loss = self.base_loss
        loss_at_floor = self.loss_at_floor

        connected = self.connected
        release_at = self.release_at
        timeout = self.timeout
        check_dt = self.check_dt
        gen = self.gen

        dev = self.dev_cum  # device.dl_monitor
        dev_times, dev_cums, dev_total = dev.times, dev.cums, dev.total
        mod = self.mod_cum  # modem.dl_received
        mod_times, mod_cums, mod_total = mod.times, mod.cums, mod.total
        bearer = self.bearer_cum
        b_times, b_cums, b_total = bearer.times, bearer.cums, bearer.total
        srv = self.srv_cum  # server.dl_monitor
        s_times, s_cums, s_total = srv.times, srv.cums, srv.total
        lan_s = self.lan_s
        bk_s = self.bk_s
        sla = self.sla
        link_p = link_b = 0  # LAN sent == delivered (pure delay, no loss)
        mb_pass_p = mb_pass_b = mb_drop_p = mb_drop_b = 0

        while heap:
            te, _, kind, a, b = pop(heap)
            if te > end:
                break
            if connected and release_at <= te:
                self._counter_check(release_at, 0, mod_total)
                self.releases += 1
                connected = False
                gen += 1
                release_at = _INF

            if kind == _K_DELIVER:
                # AirInterface._transmit -> ENodeB._air_deliver_dl (the UE
                # stays attached and connected: no outages, no handovers).
                trans_p += 1
                trans_b += a
                z = gauss_next
                gauss_next = None
                if z is None:
                    x2pi = radio_random() * _TWOPI
                    g2rad = _sqrt(-2.0 * _log(1.0 - radio_random()))
                    z = _cos(x2pi) * g2rad
                    gauss_next = _sin(x2pi) * g2rad
                step = 0.0 + z * rss_noise  # gauss: mu + z * sigma, mu = 0.0
                drift = 0.25 * (rss_base - rss)
                rss = rss + drift + step
                if rss < rss_floor:
                    rss = rss_floor
                elif rss > rss_ceiling:
                    rss = rss_ceiling
                if rss >= GOOD_RSS_DBM:
                    loss = base_loss
                else:
                    span = GOOD_RSS_DBM - rss_floor
                    frac = (GOOD_RSS_DBM - rss) / span
                    if frac > 1.0:
                        frac = 1.0
                    loss = base_loss + frac * loss_at_floor
                    if loss > 1.0:
                        loss = 1.0
                if radio_random() >= loss:
                    mod_total += a  # modem.count_downlink
                    if mod_times and mod_times[-1] == te:
                        mod_cums[-1] = mod_total
                    else:
                        mod_times.append(te)
                        mod_cums.append(mod_total)
                    dev_total += a  # device.deliver -> dl_monitor.observe
                    if dev_times and dev_times[-1] == te:
                        dev_cums[-1] = dev_total
                    else:
                        dev_times.append(te)
                        dev_cums.append(dev_total)
                # else: phy-rss loss

            elif kind == _K_ARRIVAL:
                # One frame's chunks, delivered back to back as in the
                # reference.  Each is _forward_backhaul_dl's deliver ->
                # ENodeB.receive_downlink: rrc.on_data_activity then
                # downlink_air.submit.
                for chunk in a:
                    if not connected:
                        connected = True
                        self.setups += 1
                        if check_dt is not None:
                            seq += 1
                            push(heap, (te + check_dt, seq, _K_CHECK, gen, 0))
                    release_at = te + timeout
                    bits = chunk * 8
                    win_samples.append((te, bits))
                    win_bits += bits
                    cutoff = te - 1.0
                    while win_samples and win_samples[0][0] <= cutoff:
                        win_bits -= win_samples.popleft()[1]
                    off_p += 1
                    off_b += chunk
                    u = air_random()
                    if split_general:
                        higher, same = self._split(win_bits / 1.0)
                    else:
                        higher = bg_higher
                        same = bg_same + win_bits / 1.0
                    usable = cap_usable - higher
                    if usable < 0.0:
                        usable = 0.0
                    if same <= usable or same <= 0:
                        p = 0.0
                    elif usable <= 0:
                        p = 1.0
                    else:
                        p = 1.0 - usable / same
                    if u < p:
                        drop_p += 1
                        drop_b += chunk
                    else:
                        rho = (higher + same) / capacity
                        if rho > 0.99:
                            rho = 0.99
                        if rho < 0.5:
                            qd = 0.0
                        else:
                            qd = 0.002 * rho / (1.0 - rho)
                            if qd > max_qd:
                                qd = max_qd
                        delay = prop + qd + chunk * 8.0 / capacity
                        seq += 1
                        push(heap, (te + delay, seq, _K_DELIVER, chunk, 0))

            elif kind == _K_FRAME:
                # FrameWorkload._emit_frame with sender = EdgeServer.send,
                # folding the LAN hop (te + lan_s), SPGW charge and
                # middlebox SLA check.  The eNodeB arrival stays a real
                # wheel event: a counter check or release may fire between
                # the charge and the arrival.
                if te > until:
                    continue
                mean = mean_bitrate / 8.0 / fps
                if iframe_n > 0:
                    p_frame = mean * iframe_n / (iframe_n - 1 + iframe_scale)
                    mean = p_frame * (iframe_scale if frames_sent % iframe_n == 0 else 1.0)
                while True:
                    u1 = wl_random()
                    u2 = 1.0 - wl_random()
                    z = _NV_MAGIC * (u1 - 0.5) / u2
                    if z * z / 4.0 <= -_log(u2):
                        break
                size = _exp(0.0 + z * size_sigma) * mean
                remaining = int(size)
                if remaining < 64:
                    remaining = 64
                frames_sent += 1
                tg = te + lan_s  # the LAN link's schedule_at(depart + latency)
                # The reference fragments full packet_bytes chunks first,
                # then the remainder; every chunk of the frame takes the
                # same per-chunk writes at the same timestamps (server
                # monitor at te, LAN + charge at tg, SLA verdict tg - te),
                # so the whole frame folds into per-frame arithmetic.
                n_full, last = divmod(remaining, packet_bytes)
                chunks = (packet_bytes,) * n_full + ((last,) if last else ())
                s_total += remaining  # server.dl_monitor.observe
                if s_times and s_times[-1] == te:
                    s_cums[-1] = s_total
                else:
                    s_times.append(te)
                    s_cums.append(s_total)
                link_p += len(chunks)  # lan link send() + _deliver() at tg
                link_b += remaining
                b_total += remaining  # spgw.send_downlink charge at tg
                if b_times and b_times[-1] == tg:
                    b_cums[-1] = b_total
                else:
                    b_times.append(tg)
                    b_cums.append(b_total)
                bytes_offered += remaining
                # The reference schedules the next frame before the
                # backhaul arrivals exist (the LAN delivery at tg schedules
                # them), so the frame must carry the smaller seq.
                seq += 1
                push(heap, (te + frame_dt, seq, _K_FRAME, 0, 0))
                # SlaMiddlebox.process: loop.now() - created_at > budget
                # (charged, *then* dropped — that asymmetry is the point).
                if sla is not None and tg - te > sla:
                    mb_drop_p += len(chunks)
                    mb_drop_b += remaining
                else:
                    mb_pass_p += len(chunks)
                    mb_pass_b += remaining
                    # One frame's arrivals all land at the same t_arr with
                    # consecutive seqs in the reference, so nothing can
                    # interleave between them — batch them into one event.
                    t_arr = tg + bk_s  # _forward_backhaul_dl: schedule(+bk) at tg
                    seq += 1
                    push(heap, (t_arr, seq, _K_ARRIVAL, chunks, 0))

            else:  # _K_CHECK
                if a == gen and connected:
                    self._counter_check(te, 0, mod_total)
                    seq += 1
                    push(heap, (te + check_dt, seq, _K_CHECK, gen, 0))

        if connected and release_at <= end:
            self._counter_check(release_at, 0, mod_total)
            self.releases += 1
            connected = False
            gen += 1
            release_at = _INF

        self.seq = seq
        self.frames_sent = frames_sent
        self.bytes_offered = bytes_offered
        self.win_bits = win_bits
        self.off_p, self.off_b = off_p, off_b
        self.drop_p, self.drop_b = drop_p, drop_b
        self.trans_p, self.trans_b = trans_p, trans_b
        self.rss = rss
        radio_rng.gauss_next = gauss_next
        self.connected = connected
        self.release_at = release_at
        self.gen = gen
        dev.total = dev_total
        mod.total = mod_total
        bearer.total = b_total
        srv.total = s_total
        self.charged = b_total
        self.link_sent_p = self.link_del_p = link_p
        self.link_sent_b = self.link_del_b = link_b
        self.mb_pass_p, self.mb_pass_b = mb_pass_p, mb_pass_b
        self.mb_drop_p, self.mb_drop_b = mb_drop_p, mb_drop_b

    # ---------------------------------------------------------------- flush

    def _flush(self) -> None:
        """Install the lane's flat state into the live component objects."""
        spec = self.spec
        wl = spec.workload
        wl.frames_sent += self.frames_sent
        wl.bytes_offered += self.bytes_offered
        wl._until = self.until

        spec.radio._current_rss = self.rss

        air = spec.air
        if self.off_p:
            window = RateWindow()
            window._samples.extend(self.win_samples)
            window._bits = self.win_bits
            air._foreground[spec.air_qci] = window
        air.offered.packets += self.off_p
        air.offered.bytes += self.off_b
        air.dropped.packets += self.drop_p
        air.dropped.bytes += self.drop_b
        air.transmitted.packets += self.trans_p
        air.transmitted.bytes += self.trans_b

        modem = spec.modem
        self.mod_cum.flush_into(modem.ul_sent if spec.is_uplink else modem.dl_received)
        modem.counter_checks_served += self.served

        rrc = spec.rrc
        rrc.state = RrcState.CONNECTED if self.connected else RrcState.IDLE
        rrc.setups += self.setups
        rrc.releases += self.releases
        rrc.counter_checks_sent += self.checks_sent

        bearer = spec.bearer
        self.bearer_cum.flush_into(bearer.uplink if spec.is_uplink else bearer.downlink)
        if self.bearer_cum.times:  # Bearer._touch stamps
            if bearer.first_usage is None:
                bearer.first_usage = self.bearer_cum.times[0]
            bearer.last_usage = self.bearer_cum.times[-1]

        device = spec.device
        server = spec.server
        # Sender packet-sequence iterator: one next() per chunk sent.
        # Uplink submits every chunk to the air (off_p); downlink sends
        # every chunk onto the LAN link (link_sent_p).
        sender = device if spec.is_uplink else server
        sender._seq = _count(self.off_p if spec.is_uplink else self.link_sent_p)
        if spec.is_uplink:
            self.dev_cum.flush_into(device.ul_monitor.counter)
            self.srv_cum.flush_into(server.ul_monitor.counter)
            server.stats.received += self.received
            server.stats.latencies.extend(self.latencies)
            link = spec.backhaul_link
        else:
            self.srv_cum.flush_into(server.dl_monitor.counter)
            self.dev_cum.flush_into(device.dl_monitor.counter)
            link = spec.lan_link
        link.sent.packets += self.link_sent_p
        link.sent.bytes += self.link_sent_b
        link.delivered.packets += self.link_del_p
        link.delivered.bytes += self.link_del_b
        if link._m_sent is not None:
            link._m_sent.inc(self.link_sent_b)
            link._m_delivered.inc(self.link_del_b)

        middlebox = spec.middlebox
        middlebox.passed.packets += self.mb_pass_p
        middlebox.passed.bytes += self.mb_pass_b
        middlebox.dropped.packets += self.mb_drop_p
        middlebox.dropped.bytes += self.mb_drop_b

        # The gateway creates its charged counter lazily on the first
        # charged packet; mirror that so empty runs snapshot identically.
        if self.charged and spec.gateway_metrics is not None:
            direction = "UL" if spec.is_uplink else "DL"
            spec.gateway_metrics.counter(
                "cellular.gateway.charged_bytes", direction=direction
            ).inc(self.charged)


class _GeneralRun:
    """General-mode lane: outage, RSS, quota and handover sessions.

    The fold loops win their speedup by collapsing whole frames into
    straight-line arithmetic, which is only sound while the UE's path
    state cannot change mid-frame.  Outage windows, RLF detaches, PCRF
    policer refills and handover breaks all violate that invariant, so
    this executor keeps the reference engine's per-hop granularity —
    every packet hop is one wheel event — while still running on the
    private tuple wheel with flat mirrored state instead of the shared
    event loop with its closure allocations and object hops.

    State split
    -----------

    *Live*: anything keyed by explicit timestamps or consumed by RNG
    draws operates directly on the real objects — workload frame sizing,
    the radio (connectivity, RSS walk, outage bookkeeping, air-survival
    draws), cumulative counters (``CumulativeCounter.add`` takes an
    explicit ``t``), FlowStats, MME/bearer activation, metric counters.
    The real event-loop clock is *stale* during the lane (it never
    advances), so every reference code path that reads ``loop.now()`` —
    ``TrafficMonitor.observe``, ``HardwareModem.count_*``, ``Link.send``,
    ``TokenBucket`` — is mirrored with the wheel's event time instead of
    being called.

    *Mirrored and flushed*: RRC connection state (lazy release deadline
    plus a reserved seq for exact same-time ordering; generation-
    cancelled periodic checks), the two drop-tail queues (contents,
    bytes, and the handover-inflated capacity/drop-layer), the token
    bucket policer, the RLF timer generation, the handover save/restore
    pair, and the ``radio.outage`` span walk.

    Same-time event ordering follows the same tie contract as the fold
    loops; the only batched events are the downlink LAN and backhaul
    deliveries of one frame, whose reference events hold *consecutive*
    global seqs (nothing else schedules between them), so collapsing
    them into one wheel event preserves relative order exactly.
    """

    def __init__(self, spec: LaneSpec, horizon: float, settle: float) -> None:
        self.spec = spec
        self.until = horizon
        self.end = horizon + settle
        self.heap: list[tuple] = []
        self.seq = 0

        self.wl = spec.workload
        self.radio = spec.radio
        self.air = spec.air
        self.modem = spec.modem
        self.bearer = spec.bearer
        self.ue = spec.ue
        self.mme = spec.mme
        self.spgw = spec.spgw
        self.handover = spec.handover
        self.server = spec.server
        self.device = spec.device

        profile = spec.workload.profile
        self.frame_dt = 1.0 / profile.fps
        self.packet_bytes = profile.packet_bytes

        air = spec.air
        self.capacity = air.capacity_bps
        self.cap_usable = air.capacity_bps * air.usable_fraction
        self.prop = air.propagation_delay_s
        self.max_qd = air.max_queue_delay_s

        rp = spec.radio.profile
        self.mean_outage = rp.mean_outage_s
        self.mean_uptime = rp.mean_uptime_s
        self.rss_dt = rp.rss_sample_interval_s

        rrc = spec.rrc
        self.rrc_connected = False  # eligibility requires IDLE at start
        self.release_at = _INF
        self.release_seq = 0
        self.timeout = rrc.inactivity_timeout_s
        self.check_dt = rrc.counter_check_interval_s
        self.check_gen = 0
        self.sink = rrc.report_sink
        self.setups = 0
        self.releases = 0
        self.checks_sent = 0
        self.served = 0

        # Sender-side packet sequence mirror: EdgeDevice.send (UL) /
        # EdgeServer.send (DL) stamp ``seq=next(self._seq)`` on every
        # chunk; buffered packets carry it and the iterator position is
        # flushed back so a rebuilt queue is field-identical.
        self.send_seq = 0

        # Drop-tail queue mirrors: [(size, created_at, seq), ...] + bytes.
        self.dlq: list[tuple[int, float, int]] = []
        self.dlq_bytes = 0
        self.dlq_cap = spec.ue.dl_buffer.capacity_bytes
        self.dlq_layer = spec.ue.dl_buffer.drop_layer
        self.ulq: list[tuple[int, float, int]] = []
        self.ulq_bytes = 0
        self.ulq_cap = spec.access._ul_buffer.capacity_bytes

        # Token-bucket policer mirror (Spgw._policers[flow_id]).
        self.p_rate: float | None = None
        self.p_burst = 0.0
        self.p_tokens = 0.0
        self.p_last = 0.0

        # Gateway metric sums, flushed once (the registry's per-call key
        # formatting dominates the hot path; counters are plain sums so
        # one inc at flush is observably identical).
        self.charged_ul = 0
        self.charged_dl = 0
        self.drop_detached = 0
        self.drop_policed = 0

        self.rlf_gen = 0
        # Handover break save/restore mirror (HandoverProcess._saved_*).
        self.ho_saved_layer: str | None = None
        self.ho_saved_cap: int | None = None

        # Fault-schedule deciders: ``decide(t) -> (action, delay)`` per
        # injection point, or None when the schedule can never touch that
        # point (the reference draws no RNG there either).
        fv = spec.fault_view
        self.fault_ul = fv.decider("uplink") if fv is not None else None
        self.fault_dl = fv.decider("downlink") if fv is not None else None

        # radio.outage span mirror: closed (open_t, close_t) pairs plus
        # the currently-open outage, if any (scenario runs only).
        self.span_open_t: float | None = None
        self.spans: list[tuple[float, float]] = []

    # ----------------------------------------------------------- lifecycle

    def run(self) -> None:
        spec = self.spec
        # Absorbed construction-time events (the outage / RSS / handover
        # chain heads) predate every lane push, so they keep their
        # relative loop order via negative wheel seqs.
        n = len(spec.absorbed)
        for idx, (kind, event) in enumerate(spec.absorbed):
            # The Event rides along so _K_RESET can read its args; the
            # other absorbed kinds ignore the payload.
            heappush(self.heap, (event.time, idx - n, kind, event, 0))
        # FrameWorkload.start: first frame at t0 + uniform phase jitter.
        jitter = self.wl._rng.uniform(0.0, 1.0 / self.wl.profile.fps)
        self.seq += 1
        heappush(self.heap, (spec.t0 + jitter, self.seq, _K_FRAME, 0, 0))
        self._run()
        self._flush()

    def _push(self, t: float, kind: int, a=0, b=0) -> None:
        self.seq += 1
        heappush(self.heap, (t, self.seq, kind, a, b))

    def _run(self) -> None:
        heap = self.heap
        end = self.end
        is_ul = self.spec.is_uplink

        # The wheel never drains naturally — outage, RSS and handover
        # chains reschedule forever, exactly like the reference loop's
        # pending queue at run_until's horizon — so the loop exits via
        # the beyond-end break, leaving future events unprocessed.
        while heap:
            te, ev_seq, kind, a, b = heappop(heap)
            if te > end:
                break
            # Lazy RRC release with exact tie-breaking: the release
            # timer holds the seq reserved at the last data activity, so
            # on a time tie it fires first unless the popped event was
            # scheduled even earlier (an absorbed chain head or a
            # long-armed outage toggle carries the smaller seq).
            if self.rrc_connected:
                ra = self.release_at
                if ra < te or (ra == te and self.release_seq < ev_seq):
                    self._fire_release()

            if kind == _K_DELIVER:
                self._on_deliver(te, a, b, is_ul)
            elif kind == _K_FRAME:
                if te > self.until:
                    continue  # workload stopped; no reschedule
                if is_ul:
                    self._on_frame_ul(te)
                else:
                    self._on_frame_dl(te)
            elif kind == _K_LAN:
                self._on_lan(te, a, b)
            elif kind == _K_BH:
                self._on_bh(te, a, b)
            elif kind == _K_GW:
                self._on_gw(te, a, b)
            elif kind == _K_CHECK:
                # Stale generations are cancelled timers; a live timer
                # firing while IDLE does not re-arm (rrc._periodic_check).
                if a == self.check_gen and self.rrc_connected:
                    self._counter_check(te)
                    self._push(te + self.check_dt, _K_CHECK, self.check_gen)
            elif kind == _K_OUT_BEGIN:
                self._on_out_begin(te)
            elif kind == _K_OUT_END:
                self._on_out_end(te)
            elif kind == _K_RLF:
                self._on_rlf(a)
            elif kind == _K_REATTACH:
                self._on_reattach(te)
            elif kind == _K_HO_BEGIN:
                self._on_ho_begin(te)
            elif kind == _K_HO_COMPLETE:
                self._on_ho_complete(te)
            elif kind == _K_RESET:
                # Absorbed FaultInjector._reset_modem event: replay the
                # counter zeroing at the armed instant.
                modem, point = a.args
                self.spec.fault_view.apply_reset(modem, te, point)
            elif kind == _K_UL_SEND:
                # Fault-delayed (or duplicated) uplink send: the pipe's
                # deferred downstream(packet) = UeAccess.send_uplink.
                created, pkt_seq = b
                self._ul_send(te, a, created, pkt_seq)
            elif kind == _K_DL_DELIVER:
                # Fault-delayed (or duplicated) downlink delivery: the
                # pipe's deferred ue.deliver -> device.dl_monitor.
                self.device.dl_monitor.counter.add(te, a)
            else:  # _K_RSS
                radio = self.radio
                radio._walk_rss()
                radio.rss_history.append(
                    RssSample(te, radio.current_rss(), radio.connected)
                )
                self._push(te + self.rss_dt, _K_RSS)

        # A release armed before the horizon's edge still fires inside
        # the settle window even with no later event left to trigger
        # the lazy check.
        if self.rrc_connected and self.release_at <= end:
            self._fire_release()

    # ----------------------------------------------------------------- RRC

    def _counter_check(self, t: float) -> None:
        # rrc.perform_counter_check: the modem counters are live, so the
        # response reads their real totals at this wheel instant.
        self.checks_sent += 1
        self.served += 1
        if self.sink is not None:
            self.sink(CounterCheckResponse(
                t=t,
                uplink_bytes=self.modem.ul_sent.total,
                downlink_bytes=self.modem.dl_received.total,
            ))

    def _fire_release(self) -> None:
        # rrc._release_on_inactivity at the armed deadline.
        self._counter_check(self.release_at)
        self.releases += 1
        self.rrc_connected = False
        self.check_gen += 1
        self.release_at = _INF

    def _rrc_activity(self, te: float) -> None:
        # rrc.on_data_activity: _setup (periodic check armed first),
        # then the release timer re-armed — which consumes a loop seq on
        # *every* activity; reserve it so same-time ties resolve exactly
        # as the reference's.
        if not self.rrc_connected:
            self.rrc_connected = True
            self.setups += 1
            if self.check_dt is not None:
                self._push(te + self.check_dt, _K_CHECK, self.check_gen)
        self.seq += 1
        self.release_seq = self.seq
        self.release_at = te + self.timeout

    # ----------------------------------------------------------------- air

    def _air_submit(self, te: float, size: int, created: float, pkt_seq: int = 0) -> None:
        # AirInterface.submit with ``loop.now()`` == te made explicit.
        air = self.air
        qci = self.spec.air_qci
        window = air._foreground.get(qci)
        if window is None:
            window = RateWindow()
            air._foreground[qci] = window
        window.observe(te, size)
        air.offered.packets += 1
        air.offered.bytes += size
        u = air._rng.random()
        higher, same = air._demand_split(qci, te)
        # drop_probability, op for op (cap × usable_fraction is the same
        # float as the precomputed product; max/min unrolled).
        usable = self.cap_usable - higher
        if usable < 0.0:
            usable = 0.0
        if same <= usable or same <= 0:
            p = 0.0
        elif usable <= 0:
            p = 1.0
        else:
            p = 1.0 - usable / same
        if u < p:
            air.dropped.packets += 1
            air.dropped.bytes += size
            return
        # queue_delay re-runs _demand_split at the same instant with
        # unchanged window state — reuse (higher, same).
        rho = (higher + same) / self.capacity
        if rho > 0.99:
            rho = 0.99
        if rho < 0.5:
            qd = 0.0
        else:
            qd = 0.002 * rho / (1.0 - rho)
            if qd > self.max_qd:
                qd = self.max_qd
        delay = self.prop + qd + size * 8.0 / self.capacity
        self._push(te + delay, _K_DELIVER, size, (created, pkt_seq))

    # --------------------------------------------------------------- quota

    def _quota_check(self, t: float, size: int) -> bool:
        # Spgw._policed against the mirrored token bucket (the real
        # TokenBucket reads ``loop.now()`` in both ctor and admit, which
        # is stale here — t is the wheel event time).
        spgw = self.spgw
        if spgw.policy is None:
            return False
        used = self.bearer.uplink.total + self.bearer.downlink.total
        rate = spgw.policy.allowed_rate_bps(self.spec.flow_id, used)
        if rate is None:
            self.p_rate = None  # mirrors _policers.pop
            return False
        if self.p_rate is None or self.p_rate != rate:
            self.p_rate = rate
            self.p_burst = rate / 8.0
            self.p_tokens = self.p_burst
            self.p_last = t
        tokens = self.p_tokens + (t - self.p_last) * self.p_rate / 8.0
        if tokens > self.p_burst:
            tokens = self.p_burst
        self.p_last = t
        if tokens >= size:
            self.p_tokens = tokens - size
            return False
        self.p_tokens = tokens
        return True

    # -------------------------------------------------------------- queues

    def _dlq_push(self, size: int, created: float, pkt_seq: int) -> None:
        # ue.dl_buffer.push: tail drop against the (possibly handover-
        # inflated) mirrored capacity; FlowStats live on the real queue.
        q = self.ue.dl_buffer
        if self.dlq_bytes + size > self.dlq_cap:
            q.dropped.packets += 1
            q.dropped.bytes += size
            return
        self.dlq.append((size, created, pkt_seq))
        self.dlq_bytes += size
        q.enqueued.packets += 1
        q.enqueued.bytes += size

    def _ulq_push(self, size: int, created: float, pkt_seq: int) -> None:
        # access._ul_buffer.push (the modem's uplink buffer).
        q = self.spec.access._ul_buffer
        if self.ulq_bytes + size > self.ulq_cap:
            q.dropped.packets += 1
            q.dropped.bytes += size
            return
        self.ulq.append((size, created, pkt_seq))
        self.ulq_bytes += size
        q.enqueued.packets += 1
        q.enqueued.bytes += size

    def _drain_dlq(self, te: float) -> None:
        # ENodeB._drain_buffer: recovered packets re-enter the air with
        # their original created_at; no RRC activity on this path.
        if not self.dlq:
            return
        dlq = self.dlq
        self.dlq = []
        self.dlq_bytes = 0
        recovered = self.ue.buffered_recovered
        for size, created, pkt_seq in dlq:
            recovered.packets += 1
            recovered.bytes += size
            self._air_submit(te, size, created, pkt_seq)

    # -------------------------------------------------------------- frames

    def _ul_send(self, t: float, size: int, created: float, pkt_seq: int) -> None:
        # UeAccess.send_uplink at time t.  Fault-delayed sends fire here
        # after the frame handler returned, so attach and radio state are
        # re-read at fire time, exactly as the deferred reference call.
        # A detached UE's packet dies after the app-level count — no
        # modem count, no buffer, no stats.
        if not self.ue.attached:
            return
        self.modem.ul_sent.add(t, size)  # counts before the radio check
        if not self.radio.connected:
            self._ulq_push(size, created, pkt_seq)
        else:
            self._rrc_activity(t)
            self._air_submit(t, size, created, pkt_seq)

    def _on_frame_ul(self, te: float) -> None:
        # FrameWorkload._emit_frame with sender = EdgeDevice.send; frame
        # sizing runs live on the workload (its RNG and iframe counter).
        wl = self.wl
        remaining = wl._frame_size()
        wl.frames_sent += 1
        packet_bytes = self.packet_bytes
        dev_counter = self.device.ul_monitor.counter
        radio = self.radio
        attached = self.ue.attached
        fault = self.fault_ul
        while remaining > 0:
            chunk = remaining if remaining < packet_bytes else packet_bytes
            pkt_seq = self.send_seq  # device.send: seq=next(self._seq)
            self.send_seq += 1
            dev_counter.add(te, chunk)  # device.ul_monitor.observe
            wl.bytes_offered += chunk
            if fault is not None:
                # The injector pipe wraps access.send_uplink, so the fate
                # decision runs before the attached check, per chunk.
                action, delay = fault(te)
                if action is None:
                    self._ul_send(te, chunk, te, pkt_seq)
                elif action == "delay":
                    self._push(te + delay, _K_UL_SEND, chunk, (te, pkt_seq))
                elif action == "dup":
                    # Original now, the same packet again after the delay
                    # (the modem counts it twice, like the reference).
                    self._ul_send(te, chunk, te, pkt_seq)
                    self._push(te + delay, _K_UL_SEND, chunk, (te, pkt_seq))
                # drop: the chunk dies after the app-level count
            elif attached:
                # UeAccess.send_uplink: a detached UE's packet dies after
                # the app-level count — no modem count, no buffer, no stats.
                self.modem.ul_sent.add(te, chunk)  # counts before the radio check
                if not radio.connected:
                    self._ulq_push(chunk, te, pkt_seq)
                else:
                    self._rrc_activity(te)
                    self._air_submit(te, chunk, te, pkt_seq)
            remaining -= chunk
        self._push(te + self.frame_dt, _K_FRAME)

    def _on_frame_dl(self, te: float) -> None:
        # _emit_frame with sender = EdgeServer.send: per chunk the server
        # monitor counts and the LAN link accepts (depart = now, deliver
        # at te + lan_s).  One frame's LAN delivers hold consecutive
        # reference seqs, so they batch into a single wheel event pushed
        # before the next-frame event, preserving relative order.
        wl = self.wl
        remaining = wl._frame_size()
        wl.frames_sent += 1
        packet_bytes = self.packet_bytes
        srv_counter = self.server.dl_monitor.counter
        lan = self.spec.lan_link
        chunks = []
        while remaining > 0:
            chunk = remaining if remaining < packet_bytes else packet_bytes
            pkt_seq = self.send_seq  # server.send: seq=next(self._seq)
            self.send_seq += 1
            srv_counter.add(te, chunk)  # server.dl_monitor.observe
            lan.sent.packets += 1
            lan.sent.bytes += chunk
            if lan._m_sent is not None:
                lan._m_sent.inc(chunk)
            wl.bytes_offered += chunk
            chunks.append((chunk, pkt_seq))
            remaining -= chunk
        self._push(te + self.spec.lan_s, _K_LAN, tuple(chunks), te)
        self._push(te + self.frame_dt, _K_FRAME)

    # ---------------------------------------------------------------- hops

    def _on_lan(self, te: float, chunks: tuple, created: float) -> None:
        # Link._deliver → Spgw.send_downlink per chunk: charge (or drop)
        # at te, SLA verdict at the middlebox, then one batched backhaul
        # event for the surviving chunks (consecutive reference seqs).
        lan = self.spec.lan_link
        spgw = self.spgw
        sla = self.spec.sla_budget
        middlebox = self.spec.middlebox
        passed = []
        for chunk, pkt_seq in chunks:
            lan.delivered.packets += 1
            lan.delivered.bytes += chunk
            if lan._m_delivered is not None:
                lan._m_delivered.inc(chunk)
            if not self.bearer.active:
                spgw.detached_drops.packets += 1
                spgw.detached_drops.bytes += chunk
                self.drop_detached += chunk
                continue
            if self._quota_check(te, chunk):
                spgw.policed_drops.packets += 1
                spgw.policed_drops.bytes += chunk
                self.drop_policed += chunk
                continue
            self.bearer.count_downlink(te, chunk)
            self.charged_dl += chunk
            # SlaMiddlebox.process: age verdict on the charged packet.
            if sla is not None and te - created > sla:
                middlebox.dropped.packets += 1
                middlebox.dropped.bytes += chunk
                continue
            middlebox.passed.packets += 1
            middlebox.passed.bytes += chunk
            passed.append((chunk, pkt_seq))
        if passed:
            self._push(te + self.spec.backhaul_s, _K_BH, tuple(passed), created)

    def _on_bh(self, te: float, chunks: tuple, created: float) -> None:
        # Backhaul deliver → ENodeB.receive_downlink per chunk.
        for chunk, pkt_seq in chunks:
            if not self.ue.attached:
                self.ue.dropped_detached.packets += 1
                self.ue.dropped_detached.bytes += chunk
                continue
            self._rrc_activity(te)
            self._air_submit(te, chunk, created, pkt_seq)

    def _on_deliver(self, te: float, size: int, payload: tuple, is_ul: bool) -> None:
        # AirInterface._transmit → ENodeB._air_deliver_ul/_air_deliver_dl.
        created, pkt_seq = payload
        air = self.air
        air.transmitted.packets += 1
        air.transmitted.bytes += size
        radio = self.radio
        if is_ul:
            # _air_deliver_ul draws survival unconditionally.
            if radio.survives_air():
                link = self.spec.backhaul_link
                link.sent.packets += 1
                link.sent.bytes += size
                if link._m_sent is not None:
                    link._m_sent.inc(size)
                self._push(te + self.spec.backhaul_s, _K_GW, size, created)
            return
        ue = self.ue
        if not ue.attached:
            ue.dropped_detached.packets += 1
            ue.dropped_detached.bytes += size
        elif not radio.connected:
            self._dlq_push(size, created, pkt_seq)  # buffered for the outage drain
        elif radio.survives_air():
            self.modem.dl_received.add(te, size)  # modem.count_downlink
            fault = self.fault_dl
            if fault is not None:
                # The injector pipe wraps ue.deliver, so the fate decision
                # runs after the modem count, before the device monitor.
                action, delay = fault(te)
                if action is None:
                    self.device.dl_monitor.counter.add(te, size)
                elif action == "delay":
                    self._push(te + delay, _K_DL_DELIVER, size)
                elif action == "dup":
                    self.device.dl_monitor.counter.add(te, size)
                    self._push(te + delay, _K_DL_DELIVER, size)
                # drop: counted at the modem, never at the device
            else:
                self.device.dl_monitor.counter.add(te, size)  # device.deliver
        # else: phy-rss loss, counted nowhere

    def _on_gw(self, te: float, size: int, created: float) -> None:
        # Backhaul Link._deliver → Spgw.receive_uplink.
        link = self.spec.backhaul_link
        link.delivered.packets += 1
        link.delivered.bytes += size
        if link._m_delivered is not None:
            link._m_delivered.inc(size)
        spgw = self.spgw
        if not self.bearer.active:
            spgw.detached_drops.packets += 1
            spgw.detached_drops.bytes += size
            self.drop_detached += size
            return
        if self._quota_check(te, size):
            spgw.policed_drops.packets += 1
            spgw.policed_drops.bytes += size
            self.drop_policed += size
            return
        self.bearer.count_uplink(te, size)
        self.charged_ul += size
        # EdgeServer._receive_uplink via the registered SPGW sink.
        server = self.server
        server.ul_monitor.counter.add(te, size)
        server.stats.received += 1
        server.stats.latencies.append(te - created)

    # -------------------------------------------------------------- outage

    def _outage_start_callbacks(self, te: float) -> None:
        # Registration order: ENodeB._on_outage_start (arms the RLF
        # timer), then the scenario runner's span-open callback.
        self._push(te + self.spec.rlf_timeout_s, _K_RLF, self.rlf_gen)
        if self.spec.span_recorder is not None and self.span_open_t is None:
            self.span_open_t = te

    def _outage_end_callbacks(self, te: float) -> None:
        # Registration order: ENodeB._on_outage_end, then
        # UeAccess._drain_ul_buffer, then the runner's span close.
        self.rlf_gen += 1  # cancels the armed RLF timer
        ue = self.ue
        if not ue.attached:
            self._push(te + self.spec.attach_delay_s, _K_REATTACH)
        else:
            self._drain_dlq(te)
        if ue.attached and self.ulq:
            ulq = self.ulq
            self.ulq = []
            self.ulq_bytes = 0
            for size, created, pkt_seq in ulq:
                # Each buffered packet replays receive_uplink.
                self._rrc_activity(te)
                self._air_submit(te, size, created, pkt_seq)
        if self.spec.span_recorder is not None and self.span_open_t is not None:
            self.spans.append((self.span_open_t, te))
            self.span_open_t = None

    def _on_out_begin(self, te: float) -> None:
        # RadioChannel._begin_outage.  Firing while already disconnected
        # (inside a handover break) kills the natural chain permanently —
        # the reference returns without rescheduling; preserved quirk.
        radio = self.radio
        if not radio.connected:
            return
        radio.connected = False
        radio.outage_count += 1
        radio._outage_started_at = te
        self._outage_start_callbacks(te)
        outage = radio._rng.expovariate(1.0 / self.mean_outage)
        self._push(te + outage, _K_OUT_END)

    def _on_out_end(self, te: float) -> None:
        # RadioChannel._end_outage.
        radio = self.radio
        if radio.connected:
            return
        radio.connected = True
        if radio._outage_started_at is not None:
            radio.total_outage_time += te - radio._outage_started_at
            radio._outage_started_at = None
        self._outage_end_callbacks(te)
        uptime = radio._rng.expovariate(1.0 / self.mean_uptime)
        self._push(te + uptime, _K_OUT_BEGIN)

    def _on_rlf(self, gen: int) -> None:
        # ENodeB._check_rlf: stale generations are cancelled timers.
        if gen != self.rlf_gen:
            return
        ue = self.ue
        if self.radio.connected or not ue.attached:
            return
        ue.rlf_count += 1
        # rrc.abort(): leave CONNECTED without a counter check.
        if self.rrc_connected:
            self.rrc_connected = False
            self.releases += 1
            self.check_gen += 1
            self.release_at = _INF
        ue.attached = False
        # Buffered downlink dies silently (mark_dropped only, no stats).
        self.dlq.clear()
        self.dlq_bytes = 0
        self.mme.detach(ue.imsi, cause="radio-link-failure")

    def _on_reattach(self, te: float) -> None:
        # ENodeB._reattach after the attach delay.
        ue = self.ue
        if ue.attached or not self.radio.connected:
            return
        ue.attached = True
        self.mme.attach(ue.imsi)
        self._drain_dlq(te)

    # ------------------------------------------------------------ handover

    def _ho_schedule_next(self, te: float) -> None:
        # HandoverProcess._schedule_next (the jitter draw happens even
        # when the handover itself was skipped).
        config = self.handover.config
        jitter = self.handover._rng.uniform(
            1 - config.interval_jitter, 1 + config.interval_jitter
        )
        self._push(te + config.interval_s * jitter, _K_HO_BEGIN)

    def _on_ho_begin(self, te: float) -> None:
        # HandoverProcess._begin_handover.
        ho = self.handover
        ue = self.ue
        if not ue.attached or not self.radio.connected:
            self._ho_schedule_next(te)
            return
        ho.handovers += 1
        buffered = self.dlq
        self.dlq = []
        self.dlq_bytes = 0
        if ho.config.x2_forwarding:
            # Capacity is raised before re-queueing (preserved packets
            # must never tail-drop); restored at completion.
            self.ho_saved_cap = self.dlq_cap
            self.dlq_cap *= 4
            for size, created, pkt_seq in buffered:
                ho.forwarded.packets += 1
                ho.forwarded.bytes += size
                self._dlq_push(size, created, pkt_seq)
        else:
            for size, created, pkt_seq in buffered:
                ho.dropped.packets += 1
                ho.dropped.bytes += size
        self.ho_saved_layer = self.dlq_layer
        self.dlq_layer = "link-mobility"
        # radio.force_outage_start(): bookkeeping + callbacks, no draws,
        # no end event — the completion forces the end.
        radio = self.radio
        radio.connected = False
        radio.outage_count += 1
        radio._outage_started_at = te
        self._outage_start_callbacks(te)
        self._push(te + ho.config.interruption_s, _K_HO_COMPLETE)

    def _on_ho_complete(self, te: float) -> None:
        # HandoverProcess._complete_handover: end the forced break, then
        # restore drop layer and capacity, then schedule the next one.
        radio = self.radio
        if not radio.connected:  # force_outage_end (no-op when connected)
            radio.connected = True
            if radio._outage_started_at is not None:
                radio.total_outage_time += te - radio._outage_started_at
                radio._outage_started_at = None
            self._outage_end_callbacks(te)
        if self.ho_saved_layer is not None:
            self.dlq_layer = self.ho_saved_layer
            self.ho_saved_layer = None
        if self.ho_saved_cap is not None:
            self.dlq_cap = self.ho_saved_cap
            self.ho_saved_cap = None
        self._ho_schedule_next(te)

    # --------------------------------------------------------------- flush

    def _flush(self) -> None:
        spec = self.spec
        spec.workload._until = self.until

        rrc = spec.rrc
        rrc.state = RrcState.CONNECTED if self.rrc_connected else RrcState.IDLE
        rrc.setups += self.setups
        rrc.releases += self.releases
        rrc.counter_checks_sent += self.checks_sent
        spec.modem.counter_checks_served += self.served

        # Rebuild the drop-tail queue contents as real packets (sizes and
        # created_at are what the drain path observes; the qci mirrors
        # where each direction's packets are stamped: SPGW stamps the
        # bearer QCI before the eNodeB buffers downlink, uplink buffers
        # hold pre-SPGW packets with the workload QCI).
        profile = spec.workload.profile
        dl_buffer = spec.ue.dl_buffer
        dl_buffer.capacity_bytes = self.dlq_cap
        dl_buffer.drop_layer = self.dlq_layer
        for size, created, pkt_seq in self.dlq:
            dl_buffer._queue.append(Packet(
                size=size,
                flow_id=spec.flow_id,
                direction=Direction.DOWNLINK,
                qci=spec.bearer.qci,
                transport=profile.transport,
                created_at=created,
                seq=pkt_seq,
            ))
        dl_buffer._bytes = self.dlq_bytes
        ul_buffer = spec.access._ul_buffer
        for size, created, pkt_seq in self.ulq:
            ul_buffer._queue.append(Packet(
                size=size,
                flow_id=spec.flow_id,
                direction=Direction.UPLINK,
                qci=profile.qci,
                transport=profile.transport,
                created_at=created,
                seq=pkt_seq,
            ))
        ul_buffer._bytes = self.ulq_bytes

        # Sender packet-sequence iterator: device.send / server.send
        # consumed one per chunk; park the real iterator at the mirror.
        sender = spec.device if spec.is_uplink else spec.server
        sender._seq = _count(self.send_seq)

        if self.handover is not None:
            self.handover._saved_drop_layer = self.ho_saved_layer
            self.handover._saved_capacity = self.ho_saved_cap

        # Token-bucket policer: a rate currently enforced means a bucket
        # is installed; rebuild it with the mirrored fill state.
        if self.p_rate is not None:
            policer = TokenBucket(self.spgw.loop, self.p_rate)
            policer._tokens = self.p_tokens
            policer._last = self.p_last
            self.spgw._policers[spec.flow_id] = policer

        # Gateway metric counters, created lazily like the reference's
        # first-hit path so empty runs snapshot identically.
        metrics = spec.gateway_metrics
        if metrics is not None:
            if self.drop_detached:
                metrics.counter(
                    "cellular.gateway.drop_bytes", reason="detached"
                ).inc(self.drop_detached)
            if self.drop_policed:
                metrics.counter(
                    "cellular.gateway.drop_bytes", reason="policed"
                ).inc(self.drop_policed)
            if self.charged_ul:
                metrics.counter(
                    "cellular.gateway.charged_bytes", direction="UL"
                ).inc(self.charged_ul)
            if self.charged_dl:
                metrics.counter(
                    "cellular.gateway.charged_bytes", direction="DL"
                ).inc(self.charged_dl)

        # Replay radio.outage spans into the runner's recorder.  The
        # recorder's _close reads the (stale) clock and would reject
        # ends before "now", so closed ends are assigned directly; a
        # still-open outage stays open with the recorder's depth counter
        # elevated, exactly as live recording would leave it mid-outage.
        rec = spec.span_recorder
        if rec is not None:
            for open_t, close_t in self.spans:
                span = Span("radio.outage", open_t, rec._open, rec)
                rec._open += 1
                rec._spans.append(span)
                span.end = close_t
                rec._open -= 1
            if self.span_open_t is not None:
                span = Span("radio.outage", self.span_open_t, rec._open, rec)
                rec._open += 1
                rec._spans.append(span)

        # The absorbed construction-time events were replayed on the
        # wheel; cancel the loop originals so the caller's settle
        # run_until cannot double-fire them.
        for _, event in spec.absorbed:
            event.cancel()


def run_lane(spec: LaneSpec, horizon: float, settle: float = SETTLE_S) -> None:
    """Run one eligible UE's simulate() phase on the batched kernel.

    Replays the exact draw order, timestamps and same-time event order of
    the reference engine (see the module docstring), writing results back
    into the live component objects.  The caller advances the shared loop
    clock afterwards (``loop.run_until(horizon + settle)``), exactly as
    the reference path does.  ``spec.general`` selects the general-mode
    executor (outage / quota / RSS / handover sessions) over the fold
    loops.
    """
    if spec.general:
        _GeneralRun(spec, horizon, settle).run()
    else:
        _LaneRun(spec, horizon, settle).run()
