"""Batched per-UE simulation kernel: the flat-state lane engine.

The reference engine simulates one Python object per packet: every chunk
of every frame becomes a :class:`~repro.netsim.packet.Packet` that hops
through device → modem → air → backhaul → SPGW → server as a chain of
event-loop callbacks, each allocating closures and touching a dozen
objects.  At fleet scale that per-packet object hop dominates run time
(ROADMAP open item 1) without changing any number the charging study
reads.

This module replaces that hop with a **lane**: one UE's whole simulate()
phase run over flat per-UE state — plain ints, floats and lists — driven
by a private event wheel (a heap of tuples) instead of the shared event
loop.  The hot paths are two long, direction-specialized loops
(:meth:`_LaneRun._run_ul` / :meth:`_LaneRun._run_dl`) with every
per-packet value cached in locals; per-packet work shrinks to a few
dozen interpreter operations while reproducing the reference engine
**bit for bit**:

* every RNG draw is issued on the *same stream object* in the *same
  order* (workload sizes/jitter, air drop draws, radio RSS walk + loss
  draws);
* every float expression is copied operation-for-operation from the
  reference code (air drop probability, queue delay, RSS walk, frame
  sizing), never algebraically simplified — see the inline citations;
  ``min``/``max`` calls are unrolled into branches, which return the
  identical float;
* every counter write lands at the exact same simulated timestamp, so
  cycle-boundary queries (skewed or not) cannot tell the engines apart;
* event-wheel sequence numbers mirror the event loop's global schedule
  order, so same-time events fire in the same relative order (the
  tie-ordering contract below).

Tie-ordering contract
---------------------

The reference loop breaks time ties by schedule order (a global seq).
The wheel assigns its own per-lane seq at push time; pushes happen at
the same simulated instants as the reference's ``schedule`` calls with
two deliberate exceptions, both proven safe:

* the downlink LAN hop (+0.5 ms) and SPGW charge are *folded* into frame
  processing: nothing in the path schedules events with a delay inside
  (2 ms, 2.5 ms), so no push can land between the fold point and the
  reference's scheduling instant with a colliding timestamp (frame gaps
  are ≥ 5 ms — eligibility caps fps at 200 — air delays are ≥ 4 ms,
  counter checks ≥ 50 ms apart, the LAN hop is 0.5 ms);
* the uplink backhaul delivery (+2 ms) is folded into the air-delivery
  event: the reference's delivery event schedules nothing, and nothing
  that can fire inside the folded window reads the counters it writes
  (RRC counter checks read only the modem counters, which tick at send
  time).

RRC release timers are *lazy*: a scalar ``release_at`` checked before
every pop.  On a time tie the release fires first, matching the
reference, where the release timer is always armed earlier (at the last
data activity) than any event scheduled afterwards and so carries the
smaller seq.  Pending periodic-check events are invalidated by a
generation counter instead of heap surgery, mirroring timer ``cancel``.

What a lane does NOT support — radio outage processes, fault injection,
handovers, PCRF quotas, app-level ``on_receive`` hooks — is refused by
the eligibility check in :mod:`repro.kernel.adapter`, which falls back
to the reference engine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from math import cos as _cos, exp as _exp, log as _log, sin as _sin, sqrt as _sqrt, tau as _TWOPI

# random.NV_MAGICCONST, same expression so the same float.
_NV_MAGIC = 4 * _exp(-0.5) / _sqrt(2.0)

from ..cellular.air import AirInterface, RateWindow
from ..cellular.bearer import Bearer
from ..cellular.qos import scheduler_priority
from ..cellular.radio import GOOD_RSS_DBM, RadioChannel
from ..cellular.rrc import CounterCheckResponse, HardwareModem, RrcConnectionManager, RrcState

__all__ = ["LaneSpec", "run_lane", "SETTLE_S"]

#: Settle window after the charging horizon, matching the reference
#: ``loop.run_until(horizon + 2.0)`` in both runners.
SETTLE_S = 2.0

# Wheel event kinds (first tuple field after (time, seq)).
_K_FRAME = 0  # workload emits one frame
_K_ARRIVAL = 1  # DL chunk reaches the eNodeB (post LAN + SPGW + backhaul)
_K_DELIVER = 2  # air transmission completes (post propagation + queue + serialization)
_K_CHECK = 3  # periodic RRC COUNTER CHECK

_INF = float("inf")


class _Cum:
    """Bulk-built mirror of :class:`~repro.netsim.counters.CumulativeCounter`.

    The hot loops append (time, cumulative) points straight onto
    ``times``/``cums`` — same coalescing rule as ``CumulativeCounter.add``
    — and install them into the real counter in one shot at flush time.
    """

    __slots__ = ("times", "cums", "total")

    def __init__(self) -> None:
        self.times: list[float] = []
        self.cums: list[int] = []
        self.total = 0

    def flush_into(self, counter) -> None:
        """Install the accumulated points into a fresh CumulativeCounter."""
        if counter._times:
            raise RuntimeError("kernel flush target counter is not empty")
        counter._times = self.times
        counter._cums = self.cums
        counter._total = self.total


@dataclass
class LaneSpec:
    """Everything one lane needs, resolved by the adapter from live objects."""

    is_uplink: bool
    t0: float  # loop.now() at simulate start
    # Workload (the live FrameWorkload; its RNG stream is drawn in place).
    workload: object
    # Radio channel (live; RSS walk state and RNG stream used in place).
    radio: RadioChannel
    # The direction-relevant AirInterface of the serving cell.
    air: AirInterface
    #: QCI the air interface sees: the workload QCI on uplink (the SPGW
    #: stamps the bearer QCI *after* the air), the bearer QCI on downlink
    #: (stamped *before* the eNodeB).
    air_qci: int
    # RRC / modem.
    rrc: RrcConnectionManager
    modem: HardwareModem
    bearer: Bearer
    # Path latencies (NetworkConfig).
    lan_s: float
    backhaul_s: float
    # Endpoints.
    device: object
    server: object
    #: SLA age budget for this flow at the middlebox (None = none).
    sla_budget: float | None
    # Shared components receiving flushed totals.
    middlebox: object
    lan_link: object  # netsim.link.Link ("lan-dl"); DL lanes only
    backhaul_link: object  # netsim.link.Link ("backhaul-ul"); UL lanes only
    gateway_metrics: object  # spgw.metrics (MetricsRegistry or None)


class _LaneRun:
    """One lane's execution state.  See the module docstring for the contract."""

    __slots__ = (
        "spec", "until", "end", "heap", "seq",
        # workload
        "wl_rng", "fps", "frame_dt", "packet_bytes", "mean_bitrate",
        "iframe_interval", "iframe_scale", "size_sigma",
        "frames_sent", "bytes_offered",
        # air
        "air_random", "capacity", "cap_usable", "prop", "max_qd",
        "bg", "my_priority", "split_general", "bg_higher", "bg_same",
        "win_samples", "win_bits",
        "off_p", "off_b", "drop_p", "drop_b", "trans_p", "trans_b",
        # radio
        "radio_rng", "rss", "rss_base", "rss_noise", "rss_floor",
        "rss_ceiling", "base_loss", "loss_at_floor",
        # rrc
        "connected", "release_at", "timeout", "check_dt", "gen", "sink",
        "setups", "releases", "checks_sent", "served",
        # counters
        "mod_cum", "bearer_cum", "dev_cum", "srv_cum",
        "charged", "received", "latencies",
        # path
        "lan_s", "bk_s", "sla",
        "link_sent_p", "link_sent_b", "link_del_p", "link_del_b",
        "mb_pass_p", "mb_pass_b", "mb_drop_p", "mb_drop_b",
    )

    def __init__(self, spec: LaneSpec, horizon: float, settle: float) -> None:
        self.spec = spec
        self.until = horizon
        self.end = horizon + settle
        self.heap: list[tuple] = []
        self.seq = 0

        profile = spec.workload.profile
        self.wl_rng = spec.workload._rng
        self.fps = profile.fps
        self.frame_dt = 1.0 / profile.fps
        self.packet_bytes = profile.packet_bytes
        self.mean_bitrate = profile.mean_bitrate_bps
        self.iframe_interval = profile.iframe_interval
        self.iframe_scale = profile.iframe_scale
        self.size_sigma = profile.size_sigma
        self.frames_sent = 0
        self.bytes_offered = 0

        air = spec.air
        self.air_random = air._rng.random
        self.capacity = air.capacity_bps
        # AirInterface.drop_probability recomputes capacity * usable_fraction
        # per call; the product is the same float every time.
        self.cap_usable = air.capacity_bps * air.usable_fraction
        self.prop = air.propagation_delay_s
        self.max_qd = air.max_queue_delay_s
        self.bg = air._background
        self.my_priority = scheduler_priority(spec.air_qci)
        # Background demand-split specialization: with at most one
        # background class the reference's set-union loop collapses to one
        # or two single-term bucket sums, which IEEE addition reproduces
        # exactly (x + 0.0 == x, 0.0 + x == x and a + b == b + a for the
        # non-negative rates here).  The hot loops then compute
        # ``higher = bg_higher; same = bg_same + rate``.
        self.split_general = False
        self.bg_higher = 0.0
        self.bg_same = 0.0
        if len(self.bg) == 1:
            ((bg_qci, bg_rate),) = self.bg.items()
            bg_priority = scheduler_priority(bg_qci)
            if bg_qci == spec.air_qci or bg_priority == self.my_priority:
                self.bg_same = bg_rate
            elif bg_priority < self.my_priority:
                self.bg_higher = bg_rate
            # else lower priority: invisible to this QCI's buckets
        elif len(self.bg) > 1:
            self.split_general = True  # general set-union mirror (_split)
        self.win_samples: deque[tuple[float, int]] = deque()
        self.win_bits = 0
        self.off_p = self.off_b = 0
        self.drop_p = self.drop_b = 0
        self.trans_p = self.trans_b = 0

        radio = spec.radio
        rp = radio.profile
        self.radio_rng = radio._rng
        self.rss = radio._current_rss
        self.rss_base = rp.base_rss_dbm
        self.rss_noise = rp.rss_noise_std
        self.rss_floor = rp.rss_floor_dbm
        self.rss_ceiling = rp.rss_ceiling_dbm
        self.base_loss = rp.base_loss
        self.loss_at_floor = rp.loss_at_floor

        rrc = spec.rrc
        self.connected = False  # rrc.state is IDLE at a fresh start
        self.release_at = _INF
        self.timeout = rrc.inactivity_timeout_s
        self.check_dt = rrc.counter_check_interval_s
        self.gen = 0
        self.sink = rrc.report_sink
        self.setups = 0
        self.releases = 0
        self.checks_sent = 0
        self.served = 0

        self.mod_cum = _Cum()  # modem counter for the lane's direction
        self.bearer_cum = _Cum()
        self.dev_cum = _Cum()  # device ul (UL) / dl (DL) monitor
        self.srv_cum = _Cum()  # server ul (UL) / dl (DL) monitor
        self.charged = 0
        self.received = 0
        self.latencies: list[float] = []

        self.lan_s = spec.lan_s
        self.bk_s = spec.backhaul_s
        self.sla = spec.sla_budget
        self.link_sent_p = self.link_sent_b = 0
        self.link_del_p = self.link_del_b = 0
        self.mb_pass_p = self.mb_pass_b = 0
        self.mb_drop_p = self.mb_drop_b = 0

    # ------------------------------------------------------------------ run

    def run(self) -> None:
        # FrameWorkload.start: jitter = rng.uniform(0.0, 1.0 / fps),
        # first frame at loop.now() + jitter.
        jitter = self.wl_rng.uniform(0.0, 1.0 / self.fps)
        self.seq += 1
        heappush(self.heap, (self.spec.t0 + jitter, self.seq, _K_FRAME, 0, 0))
        if self.spec.is_uplink:
            self._run_ul()
        else:
            self._run_dl()
        self._flush()

    # ---------------------------------------------------------- cold paths

    def _split(self, rate: float) -> tuple[float, float]:
        """General mirror of AirInterface._demand_split (≥ 2 bg classes).

        ``rate`` is the foreground window's already-expired rate_bps at
        the current time.  Same set construction, iteration order and
        float accumulation order as the reference.
        """
        my_priority = self.my_priority
        air_qci = self.spec.air_qci
        higher = 0.0
        same = 0.0
        for other in set(self.bg) | {air_qci}:
            load = self.bg.get(other, 0.0) + (rate if other == air_qci else 0.0)
            priority = scheduler_priority(other)
            if priority < my_priority:
                higher += load
            elif priority == my_priority:
                same += load
        return higher, same

    def _counter_check(self, t: float, ul_total: int, dl_total: int) -> None:
        # rrc.perform_counter_check + modem.counter_check at time t.
        self.checks_sent += 1
        self.served += 1
        if self.sink is not None:
            self.sink(CounterCheckResponse(t=t, uplink_bytes=ul_total, downlink_bytes=dl_total))

    # --------------------------------------------------------- uplink loop

    def _run_ul(self) -> None:
        # Hot state cached in locals; synced back to attributes at the end.
        heap = self.heap
        pop, push = heappop, heappush
        end = self.end
        until = self.until
        seq = self.seq

        frame_dt = self.frame_dt
        packet_bytes = self.packet_bytes
        fps = self.fps
        mean_bitrate = self.mean_bitrate
        iframe_n = self.iframe_interval
        iframe_scale = self.iframe_scale
        size_sigma = self.size_sigma
        wl_random = self.wl_rng.random
        frames_sent = self.frames_sent
        bytes_offered = self.bytes_offered

        air_random = self.air_random
        capacity = self.capacity
        cap_usable = self.cap_usable
        prop = self.prop
        max_qd = self.max_qd
        split_general = self.split_general
        bg_higher = self.bg_higher
        bg_same = self.bg_same
        win_samples = self.win_samples
        win_bits = self.win_bits
        off_p = off_b = drop_p = drop_b = trans_p = trans_b = 0

        radio_rng = self.radio_rng
        radio_random = radio_rng.random
        # random.gauss is inlined in the deliver branch (same algorithm,
        # same draws); its carry-over cache rides along as a local.
        gauss_next = radio_rng.gauss_next
        rss = self.rss
        rss_base = self.rss_base
        rss_noise = self.rss_noise
        rss_floor = self.rss_floor
        rss_ceiling = self.rss_ceiling
        base_loss = self.base_loss
        loss_at_floor = self.loss_at_floor

        connected = self.connected
        release_at = self.release_at
        timeout = self.timeout
        check_dt = self.check_dt
        gen = self.gen

        dev = self.dev_cum  # device.ul_monitor
        dev_times, dev_cums, dev_total = dev.times, dev.cums, dev.total
        mod = self.mod_cum  # modem.ul_sent
        mod_times, mod_cums, mod_total = mod.times, mod.cums, mod.total
        bearer = self.bearer_cum
        b_times, b_cums, b_total = bearer.times, bearer.cums, bearer.total
        srv = self.srv_cum  # server.ul_monitor
        s_times, s_cums, s_total = srv.times, srv.cums, srv.total
        latencies = self.latencies
        received = 0
        link_p = link_b = 0  # backhaul sent == delivered (pure delay, no loss)
        bk_s = self.bk_s

        while heap:
            te, _, kind, a, b = pop(heap)
            if te > end:
                break  # reference run_until(end) leaves later events undispatched
            # Lazy RRC release: the release timer was armed at the last
            # data activity, so on a time tie it holds the smaller loop
            # seq and fires before this event — process it first.
            if connected and release_at <= te:
                self._counter_check(release_at, mod_total, 0)
                self.releases += 1
                connected = False
                gen += 1
                release_at = _INF

            if kind == _K_DELIVER:
                # AirInterface._transmit -> ENodeB._air_deliver_ul.
                trans_p += 1
                trans_b += a
                # RadioChannel.survives_air: _walk_rss (gauss) then
                # random() >= loss_probability(current rss).
                z = gauss_next
                gauss_next = None
                if z is None:
                    x2pi = radio_random() * _TWOPI
                    g2rad = _sqrt(-2.0 * _log(1.0 - radio_random()))
                    z = _cos(x2pi) * g2rad
                    gauss_next = _sin(x2pi) * g2rad
                step = 0.0 + z * rss_noise  # gauss: mu + z * sigma, mu = 0.0
                drift = 0.25 * (rss_base - rss)
                rss = rss + drift + step
                if rss < rss_floor:
                    rss = rss_floor
                elif rss > rss_ceiling:
                    rss = rss_ceiling
                if rss >= GOOD_RSS_DBM:
                    loss = base_loss
                else:
                    span = GOOD_RSS_DBM - rss_floor
                    frac = (GOOD_RSS_DBM - rss) / span
                    if frac > 1.0:
                        frac = 1.0
                    loss = base_loss + frac * loss_at_floor
                    if loss > 1.0:
                        loss = 1.0
                if radio_random() >= loss:
                    # Backhaul link (pure delay) folded: its delivery event
                    # schedules nothing and nothing fired in (te, te + bk_s]
                    # reads the counters written here.
                    link_p += 1
                    link_b += a
                    tg = te + bk_s
                    # Spgw.receive_uplink: bearer charge + server sink.
                    b_total += a
                    if b_times and b_times[-1] == tg:
                        b_cums[-1] = b_total
                    else:
                        b_times.append(tg)
                        b_cums.append(b_total)
                    s_total += a  # server.ul_monitor.observe
                    if s_times and s_times[-1] == tg:
                        s_cums[-1] = s_total
                    else:
                        s_times.append(tg)
                        s_cums.append(s_total)
                    received += 1
                    latencies.append(tg - b)  # b = packet created_at
                # else: phy-rss loss

            elif kind == _K_FRAME:
                # FrameWorkload._emit_frame with sender = EdgeDevice.send.
                if te > until:
                    continue
                # _frame_size, op for op (incl. the property recompute and
                # the inlined lognormvariate = exp(normalvariate)).
                mean = mean_bitrate / 8.0 / fps
                if iframe_n > 0:
                    p_frame = mean * iframe_n / (iframe_n - 1 + iframe_scale)
                    mean = p_frame * (iframe_scale if frames_sent % iframe_n == 0 else 1.0)
                while True:
                    u1 = wl_random()
                    u2 = 1.0 - wl_random()
                    z = _NV_MAGIC * (u1 - 0.5) / u2
                    if z * z / 4.0 <= -_log(u2):
                        break
                size = _exp(0.0 + z * size_sigma) * mean
                remaining = int(size)
                if remaining < 64:
                    remaining = 64
                frames_sent += 1
                # All chunks of one frame land at the same te inside one
                # handler, so the per-chunk monitor/modem adds coalesce
                # into a single cumulative point — nothing reads the
                # counters between chunks.
                dev_total += remaining  # device.ul_monitor.observe
                if dev_times and dev_times[-1] == te:
                    dev_cums[-1] = dev_total
                else:
                    dev_times.append(te)
                    dev_cums.append(dev_total)
                mod_total += remaining  # access.send_uplink -> modem.count_uplink
                if mod_times and mod_times[-1] == te:
                    mod_cums[-1] = mod_total
                else:
                    mod_times.append(te)
                    mod_cums.append(mod_total)
                bytes_offered += remaining
                while remaining > 0:
                    chunk = remaining if remaining < packet_bytes else packet_bytes
                    # enodeb.receive_uplink -> rrc.on_data_activity:
                    # _setup (arming the periodic check) then release rearm.
                    if not connected:
                        connected = True
                        self.setups += 1
                        if check_dt is not None:
                            seq += 1
                            push(heap, (te + check_dt, seq, _K_CHECK, gen, 0))
                    release_at = te + timeout
                    # uplink_air.submit — RateWindow.observe(te, chunk):
                    bits = chunk * 8
                    win_samples.append((te, bits))
                    win_bits += bits
                    cutoff = te - 1.0  # window_s = 1.0 (reference default)
                    while win_samples and win_samples[0][0] <= cutoff:
                        win_bits -= win_samples.popleft()[1]
                    off_p += 1
                    off_b += chunk
                    # submit draws rng.random() before drop_probability.
                    u = air_random()
                    if split_general:
                        higher, same = self._split(win_bits / 1.0)
                    else:
                        higher = bg_higher
                        same = bg_same + win_bits / 1.0  # RateWindow.rate_bps
                    # drop_probability:
                    usable = cap_usable - higher
                    if usable < 0.0:
                        usable = 0.0
                    if same <= usable or same <= 0:
                        p = 0.0
                    elif usable <= 0:
                        p = 1.0
                    else:
                        p = 1.0 - usable / same
                    if u < p:
                        drop_p += 1
                        drop_b += chunk
                    else:
                        # queue_delay recomputes _demand_split at the same
                        # instant with unchanged state — reuse (higher, same).
                        rho = (higher + same) / capacity
                        if rho > 0.99:
                            rho = 0.99
                        if rho < 0.5:
                            qd = 0.0
                        else:
                            qd = 0.002 * rho / (1.0 - rho)
                            if qd > max_qd:
                                qd = max_qd
                        delay = prop + qd + chunk * 8.0 / capacity
                        seq += 1
                        push(heap, (te + delay, seq, _K_DELIVER, chunk, te))
                    remaining -= chunk
                seq += 1
                push(heap, (te + frame_dt, seq, _K_FRAME, 0, 0))

            else:  # _K_CHECK (stale generations are cancelled timers)
                if a == gen and connected:
                    self._counter_check(te, mod_total, 0)
                    seq += 1
                    push(heap, (te + check_dt, seq, _K_CHECK, gen, 0))

        # A release armed before the horizon's edge still fires inside the
        # settle window even with no later event to trigger the lazy check.
        if connected and release_at <= end:
            self._counter_check(release_at, mod_total, 0)
            self.releases += 1
            connected = False
            gen += 1
            release_at = _INF

        self.seq = seq
        self.frames_sent = frames_sent
        self.bytes_offered = bytes_offered
        self.win_bits = win_bits
        self.off_p, self.off_b = off_p, off_b
        self.drop_p, self.drop_b = drop_p, drop_b
        self.trans_p, self.trans_b = trans_p, trans_b
        self.rss = rss
        radio_rng.gauss_next = gauss_next
        self.connected = connected
        self.release_at = release_at
        self.gen = gen
        dev.total = dev_total
        mod.total = mod_total
        bearer.total = b_total
        srv.total = s_total
        self.received = received
        self.charged = b_total
        self.link_sent_p = self.link_del_p = link_p
        self.link_sent_b = self.link_del_b = link_b

    # ------------------------------------------------------- downlink loop

    def _run_dl(self) -> None:
        heap = self.heap
        pop, push = heappop, heappush
        end = self.end
        until = self.until
        seq = self.seq

        frame_dt = self.frame_dt
        packet_bytes = self.packet_bytes
        fps = self.fps
        mean_bitrate = self.mean_bitrate
        iframe_n = self.iframe_interval
        iframe_scale = self.iframe_scale
        size_sigma = self.size_sigma
        wl_random = self.wl_rng.random
        frames_sent = self.frames_sent
        bytes_offered = self.bytes_offered

        air_random = self.air_random
        capacity = self.capacity
        cap_usable = self.cap_usable
        prop = self.prop
        max_qd = self.max_qd
        split_general = self.split_general
        bg_higher = self.bg_higher
        bg_same = self.bg_same
        win_samples = self.win_samples
        win_bits = self.win_bits
        off_p = off_b = drop_p = drop_b = trans_p = trans_b = 0

        radio_rng = self.radio_rng
        radio_random = radio_rng.random
        # random.gauss is inlined in the deliver branch (same algorithm,
        # same draws); its carry-over cache rides along as a local.
        gauss_next = radio_rng.gauss_next
        rss = self.rss
        rss_base = self.rss_base
        rss_noise = self.rss_noise
        rss_floor = self.rss_floor
        rss_ceiling = self.rss_ceiling
        base_loss = self.base_loss
        loss_at_floor = self.loss_at_floor

        connected = self.connected
        release_at = self.release_at
        timeout = self.timeout
        check_dt = self.check_dt
        gen = self.gen

        dev = self.dev_cum  # device.dl_monitor
        dev_times, dev_cums, dev_total = dev.times, dev.cums, dev.total
        mod = self.mod_cum  # modem.dl_received
        mod_times, mod_cums, mod_total = mod.times, mod.cums, mod.total
        bearer = self.bearer_cum
        b_times, b_cums, b_total = bearer.times, bearer.cums, bearer.total
        srv = self.srv_cum  # server.dl_monitor
        s_times, s_cums, s_total = srv.times, srv.cums, srv.total
        lan_s = self.lan_s
        bk_s = self.bk_s
        sla = self.sla
        link_p = link_b = 0  # LAN sent == delivered (pure delay, no loss)
        mb_pass_p = mb_pass_b = mb_drop_p = mb_drop_b = 0

        while heap:
            te, _, kind, a, b = pop(heap)
            if te > end:
                break
            if connected and release_at <= te:
                self._counter_check(release_at, 0, mod_total)
                self.releases += 1
                connected = False
                gen += 1
                release_at = _INF

            if kind == _K_DELIVER:
                # AirInterface._transmit -> ENodeB._air_deliver_dl (the UE
                # stays attached and connected: no outages, no handovers).
                trans_p += 1
                trans_b += a
                z = gauss_next
                gauss_next = None
                if z is None:
                    x2pi = radio_random() * _TWOPI
                    g2rad = _sqrt(-2.0 * _log(1.0 - radio_random()))
                    z = _cos(x2pi) * g2rad
                    gauss_next = _sin(x2pi) * g2rad
                step = 0.0 + z * rss_noise  # gauss: mu + z * sigma, mu = 0.0
                drift = 0.25 * (rss_base - rss)
                rss = rss + drift + step
                if rss < rss_floor:
                    rss = rss_floor
                elif rss > rss_ceiling:
                    rss = rss_ceiling
                if rss >= GOOD_RSS_DBM:
                    loss = base_loss
                else:
                    span = GOOD_RSS_DBM - rss_floor
                    frac = (GOOD_RSS_DBM - rss) / span
                    if frac > 1.0:
                        frac = 1.0
                    loss = base_loss + frac * loss_at_floor
                    if loss > 1.0:
                        loss = 1.0
                if radio_random() >= loss:
                    mod_total += a  # modem.count_downlink
                    if mod_times and mod_times[-1] == te:
                        mod_cums[-1] = mod_total
                    else:
                        mod_times.append(te)
                        mod_cums.append(mod_total)
                    dev_total += a  # device.deliver -> dl_monitor.observe
                    if dev_times and dev_times[-1] == te:
                        dev_cums[-1] = dev_total
                    else:
                        dev_times.append(te)
                        dev_cums.append(dev_total)
                # else: phy-rss loss

            elif kind == _K_ARRIVAL:
                # One frame's chunks, delivered back to back as in the
                # reference.  Each is _forward_backhaul_dl's deliver ->
                # ENodeB.receive_downlink: rrc.on_data_activity then
                # downlink_air.submit.
                for chunk in a:
                    if not connected:
                        connected = True
                        self.setups += 1
                        if check_dt is not None:
                            seq += 1
                            push(heap, (te + check_dt, seq, _K_CHECK, gen, 0))
                    release_at = te + timeout
                    bits = chunk * 8
                    win_samples.append((te, bits))
                    win_bits += bits
                    cutoff = te - 1.0
                    while win_samples and win_samples[0][0] <= cutoff:
                        win_bits -= win_samples.popleft()[1]
                    off_p += 1
                    off_b += chunk
                    u = air_random()
                    if split_general:
                        higher, same = self._split(win_bits / 1.0)
                    else:
                        higher = bg_higher
                        same = bg_same + win_bits / 1.0
                    usable = cap_usable - higher
                    if usable < 0.0:
                        usable = 0.0
                    if same <= usable or same <= 0:
                        p = 0.0
                    elif usable <= 0:
                        p = 1.0
                    else:
                        p = 1.0 - usable / same
                    if u < p:
                        drop_p += 1
                        drop_b += chunk
                    else:
                        rho = (higher + same) / capacity
                        if rho > 0.99:
                            rho = 0.99
                        if rho < 0.5:
                            qd = 0.0
                        else:
                            qd = 0.002 * rho / (1.0 - rho)
                            if qd > max_qd:
                                qd = max_qd
                        delay = prop + qd + chunk * 8.0 / capacity
                        seq += 1
                        push(heap, (te + delay, seq, _K_DELIVER, chunk, 0))

            elif kind == _K_FRAME:
                # FrameWorkload._emit_frame with sender = EdgeServer.send,
                # folding the LAN hop (te + lan_s), SPGW charge and
                # middlebox SLA check.  The eNodeB arrival stays a real
                # wheel event: a counter check or release may fire between
                # the charge and the arrival.
                if te > until:
                    continue
                mean = mean_bitrate / 8.0 / fps
                if iframe_n > 0:
                    p_frame = mean * iframe_n / (iframe_n - 1 + iframe_scale)
                    mean = p_frame * (iframe_scale if frames_sent % iframe_n == 0 else 1.0)
                while True:
                    u1 = wl_random()
                    u2 = 1.0 - wl_random()
                    z = _NV_MAGIC * (u1 - 0.5) / u2
                    if z * z / 4.0 <= -_log(u2):
                        break
                size = _exp(0.0 + z * size_sigma) * mean
                remaining = int(size)
                if remaining < 64:
                    remaining = 64
                frames_sent += 1
                tg = te + lan_s  # the LAN link's schedule_at(depart + latency)
                # The reference fragments full packet_bytes chunks first,
                # then the remainder; every chunk of the frame takes the
                # same per-chunk writes at the same timestamps (server
                # monitor at te, LAN + charge at tg, SLA verdict tg - te),
                # so the whole frame folds into per-frame arithmetic.
                n_full, last = divmod(remaining, packet_bytes)
                chunks = (packet_bytes,) * n_full + ((last,) if last else ())
                s_total += remaining  # server.dl_monitor.observe
                if s_times and s_times[-1] == te:
                    s_cums[-1] = s_total
                else:
                    s_times.append(te)
                    s_cums.append(s_total)
                link_p += len(chunks)  # lan link send() + _deliver() at tg
                link_b += remaining
                b_total += remaining  # spgw.send_downlink charge at tg
                if b_times and b_times[-1] == tg:
                    b_cums[-1] = b_total
                else:
                    b_times.append(tg)
                    b_cums.append(b_total)
                bytes_offered += remaining
                # The reference schedules the next frame before the
                # backhaul arrivals exist (the LAN delivery at tg schedules
                # them), so the frame must carry the smaller seq.
                seq += 1
                push(heap, (te + frame_dt, seq, _K_FRAME, 0, 0))
                # SlaMiddlebox.process: loop.now() - created_at > budget
                # (charged, *then* dropped — that asymmetry is the point).
                if sla is not None and tg - te > sla:
                    mb_drop_p += len(chunks)
                    mb_drop_b += remaining
                else:
                    mb_pass_p += len(chunks)
                    mb_pass_b += remaining
                    # One frame's arrivals all land at the same t_arr with
                    # consecutive seqs in the reference, so nothing can
                    # interleave between them — batch them into one event.
                    t_arr = tg + bk_s  # _forward_backhaul_dl: schedule(+bk) at tg
                    seq += 1
                    push(heap, (t_arr, seq, _K_ARRIVAL, chunks, 0))

            else:  # _K_CHECK
                if a == gen and connected:
                    self._counter_check(te, 0, mod_total)
                    seq += 1
                    push(heap, (te + check_dt, seq, _K_CHECK, gen, 0))

        if connected and release_at <= end:
            self._counter_check(release_at, 0, mod_total)
            self.releases += 1
            connected = False
            gen += 1
            release_at = _INF

        self.seq = seq
        self.frames_sent = frames_sent
        self.bytes_offered = bytes_offered
        self.win_bits = win_bits
        self.off_p, self.off_b = off_p, off_b
        self.drop_p, self.drop_b = drop_p, drop_b
        self.trans_p, self.trans_b = trans_p, trans_b
        self.rss = rss
        radio_rng.gauss_next = gauss_next
        self.connected = connected
        self.release_at = release_at
        self.gen = gen
        dev.total = dev_total
        mod.total = mod_total
        bearer.total = b_total
        srv.total = s_total
        self.charged = b_total
        self.link_sent_p = self.link_del_p = link_p
        self.link_sent_b = self.link_del_b = link_b
        self.mb_pass_p, self.mb_pass_b = mb_pass_p, mb_pass_b
        self.mb_drop_p, self.mb_drop_b = mb_drop_p, mb_drop_b

    # ---------------------------------------------------------------- flush

    def _flush(self) -> None:
        """Install the lane's flat state into the live component objects."""
        spec = self.spec
        wl = spec.workload
        wl.frames_sent += self.frames_sent
        wl.bytes_offered += self.bytes_offered
        wl._until = self.until

        spec.radio._current_rss = self.rss

        air = spec.air
        if self.off_p:
            window = RateWindow()
            window._samples.extend(self.win_samples)
            window._bits = self.win_bits
            air._foreground[spec.air_qci] = window
        air.offered.packets += self.off_p
        air.offered.bytes += self.off_b
        air.dropped.packets += self.drop_p
        air.dropped.bytes += self.drop_b
        air.transmitted.packets += self.trans_p
        air.transmitted.bytes += self.trans_b

        modem = spec.modem
        self.mod_cum.flush_into(modem.ul_sent if spec.is_uplink else modem.dl_received)
        modem.counter_checks_served += self.served

        rrc = spec.rrc
        rrc.state = RrcState.CONNECTED if self.connected else RrcState.IDLE
        rrc.setups += self.setups
        rrc.releases += self.releases
        rrc.counter_checks_sent += self.checks_sent

        bearer = spec.bearer
        self.bearer_cum.flush_into(bearer.uplink if spec.is_uplink else bearer.downlink)
        if self.bearer_cum.times:  # Bearer._touch stamps
            if bearer.first_usage is None:
                bearer.first_usage = self.bearer_cum.times[0]
            bearer.last_usage = self.bearer_cum.times[-1]

        device = spec.device
        server = spec.server
        if spec.is_uplink:
            self.dev_cum.flush_into(device.ul_monitor.counter)
            self.srv_cum.flush_into(server.ul_monitor.counter)
            server.stats.received += self.received
            server.stats.latencies.extend(self.latencies)
            link = spec.backhaul_link
        else:
            self.srv_cum.flush_into(server.dl_monitor.counter)
            self.dev_cum.flush_into(device.dl_monitor.counter)
            link = spec.lan_link
        link.sent.packets += self.link_sent_p
        link.sent.bytes += self.link_sent_b
        link.delivered.packets += self.link_del_p
        link.delivered.bytes += self.link_del_b
        if link._m_sent is not None:
            link._m_sent.inc(self.link_sent_b)
            link._m_delivered.inc(self.link_del_b)

        middlebox = spec.middlebox
        middlebox.passed.packets += self.mb_pass_p
        middlebox.passed.bytes += self.mb_pass_b
        middlebox.dropped.packets += self.mb_drop_p
        middlebox.dropped.bytes += self.mb_drop_b

        # The gateway creates its charged counter lazily on the first
        # charged packet; mirror that so empty runs snapshot identically.
        if self.charged and spec.gateway_metrics is not None:
            direction = "UL" if spec.is_uplink else "DL"
            spec.gateway_metrics.counter(
                "cellular.gateway.charged_bytes", direction=direction
            ).inc(self.charged)


def run_lane(spec: LaneSpec, horizon: float, settle: float = SETTLE_S) -> None:
    """Run one eligible UE's simulate() phase on the batched kernel.

    Replays the exact draw order, timestamps and same-time event order of
    the reference engine (see the module docstring), writing results back
    into the live component objects.  The caller advances the shared loop
    clock afterwards (``loop.run_until(horizon + settle)``), exactly as
    the reference path does.
    """
    _LaneRun(spec, horizon, settle).run()
