"""Mixed-strategy analysis of the charging game (linear programming).

Theorem 3 rests on Von Neumann's minimax theorem: the discretized
charging game's value exists and the pure claim pair ``(x̂_o, x̂_e)`` is a
saddle point.  The paper argues this analytically (Appendix C); here we
*compute* it — solving the zero-sum matrix game with scipy's LP solver —
so the property tests can confirm three stronger statements on arbitrary
instances:

* the LP game value equals ``x̂`` (no mixed strategy does better),
* the edge's optimal mixture puts (essentially) all mass on ``x̂_o``,
* the operator's optimal mixture puts all mass on ``x̂_e``.

That is: even allowed to randomize, neither party gains anything over
TLC's deterministic 1-round claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from .game import GameInstance


@dataclass(frozen=True)
class MixedSolution:
    """Solution of the discretized zero-sum charging game."""

    value: float
    edge_strategy: np.ndarray  # distribution over edge claims (minimizer)
    operator_strategy: np.ndarray  # distribution over operator claims
    claims: np.ndarray  # the discretized claim grid (shared)


def solve_mixed(game: GameInstance, grid_points: int = 17) -> MixedSolution:
    """Solve the matrix game over a feasible-claim grid.

    The edge (row player) picks a distribution over claims minimizing the
    expected charge; the operator (column player) maximizes it.  Solved
    as the standard LP: minimize v s.t. for every operator column j,
    Σ_i p_i · charge(claim_i, claim_j) ≤ v, Σ p = 1, p ≥ 0.
    """
    span = game.x_hat_e - game.x_hat_o
    count = min(grid_points, span + 1) if span else 1
    claims = np.unique(
        np.round(np.linspace(game.x_hat_o, game.x_hat_e, count)).astype(np.int64)
    )
    n = len(claims)
    payoff = np.empty((n, n))
    for i, edge_claim in enumerate(claims):
        for j, operator_claim in enumerate(claims):
            payoff[i, j] = game.charge(int(edge_claim), int(operator_claim))

    edge_strategy = _solve_lp(payoff, minimize=True)
    operator_strategy = _solve_lp(payoff, minimize=False)
    value = float(edge_strategy @ payoff @ operator_strategy)
    return MixedSolution(value, edge_strategy, operator_strategy, claims)


def _solve_lp(payoff: np.ndarray, minimize: bool) -> np.ndarray:
    """Optimal mixture for one side of a zero-sum matrix game."""
    n = payoff.shape[0]
    # Variables: [p_1..p_n, v].  Minimizer: min v with A^T p ≤ v.
    # Maximizer: max v (i.e. min −v) with A q ≥ v.
    c = np.zeros(n + 1)
    c[-1] = 1.0 if minimize else -1.0
    matrix = payoff.T if minimize else -payoff
    a_ub = np.hstack([matrix, (-1.0 if minimize else 1.0) * np.ones((matrix.shape[0], 1))])
    b_ub = np.zeros(matrix.shape[0])
    a_eq = np.zeros((1, n + 1))
    a_eq[0, :n] = 1.0
    b_eq = np.ones(1)
    bounds = [(0.0, None)] * n + [(None, None)]
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
                     method="highs")
    if not result.success:  # pragma: no cover - highs is robust on these LPs
        raise RuntimeError(f"LP solve failed: {result.message}")
    mixture = np.clip(result.x[:n], 0.0, None)
    return mixture / mixture.sum()
