"""Negotiation strategies for Algorithm 1.

Every strategy answers two questions each round:

* :meth:`Strategy.propose` — which volume to claim, given the current
  bounds ``(x_L, x_U)`` and what the counterpart claimed last round;
* :meth:`Strategy.decide` — whether to accept the counterpart's claim.

The accept/reject rule is the cross-check from the paper's Theorem 2
proof: the operator rejects any edge claim *below* its own received
record (it would lose revenue it can prove it is owed), and the edge
rejects any operator claim *above* its own sent record (it would pay for
bytes it can prove it never sent).  Everything else is strategy-specific.

Strategies implemented:

* :class:`HonestStrategy` — claim the party's truthful record.
* :class:`OptimalStrategy` — the paper's minimax/maximin play (§5.1):
  the edge claims its estimate of the *received* volume, the operator its
  estimate of the *sent* volume; converges in 1 round (Theorem 4).
* :class:`RandomSelfishStrategy` — selfish but strategy-unaware play used
  for the paper's ``TLC-random`` baseline: uniform under-/over-claims,
  narrowing with the bounds over rounds (Figure 16b's 2.7–4.6 rounds).
* :class:`StubbornStrategy` — insists on a fixed untruthful claim
  (the misbehaviour §5.1 discusses: it only prolongs negotiation).
* :class:`BoundViolatingStrategy` — ignores the line-12 constraint; the
  engine lets the counterpart detect and reject it.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass


class PartyRole(enum.Enum):
    """Which side of the negotiation a strategy plays."""

    EDGE = "edge"
    OPERATOR = "operator"


@dataclass(frozen=True)
class PartyKnowledge:
    """A party's private information about the cycle.

    ``own_record`` is the volume this party is responsible for reporting
    (sent for the edge, received for the operator); ``other_estimate`` is
    its best inference of the counterpart's metric (§5.2: the operator
    infers x̂_e from its gateway, the edge infers x̂_o from its monitors).
    """

    role: PartyRole
    own_record: int
    other_estimate: int

    def __post_init__(self) -> None:
        if self.own_record < 0 or self.other_estimate < 0:
            raise ValueError("party knowledge must be non-negative")


def clamp_to_bounds(value: int, x_lower: int, x_upper: int | None) -> int:
    """Pull a desired claim into the open interval ``(x_L, x_U)``.

    With integer volumes the tightest admissible claims are ``x_L + 1``
    and ``x_U − 1``; when the interval has no interior the nearer bound is
    used (the engine force-converges such degenerate intervals).
    """
    lo = x_lower + 1
    if x_upper is None:
        return max(lo, value)
    hi = max(lo, x_upper - 1)
    return min(hi, max(lo, value))


class Strategy:
    """Base class: truthful claim, cross-check acceptance.

    ``accept_tolerance`` relaxes the cross-check by a relative margin: the
    operator accepts edge claims down to ``record·(1 − tol)`` and the edge
    accepts operator claims up to ``record·(1 + tol)``.  Zero (default)
    gives the strict rule of the Theorem 2 proof; deployments set a few
    percent to absorb charging-record measurement error (Figure 18) and
    negotiation cost, which is how the paper's prototype converges in one
    round despite imperfect records.
    """

    def __init__(self, knowledge: PartyKnowledge, accept_tolerance: float = 0.0) -> None:
        if accept_tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {accept_tolerance}")
        self.knowledge = knowledge
        self.accept_tolerance = accept_tolerance

    # -- claiming -------------------------------------------------------

    def target_claim(self) -> int:
        """The volume this strategy aims to report (before bounds)."""
        return self.knowledge.own_record

    def propose(
        self,
        x_lower: int,
        x_upper: int | None,
        round_index: int,
        last_other_claim: int | None,
    ) -> int:
        """Claim for this round, respecting the current bounds."""
        return clamp_to_bounds(self.target_claim(), x_lower, x_upper)

    # -- deciding -------------------------------------------------------

    def decide(self, other_claim: int, own_claim: int) -> bool:
        """Accept or reject the counterpart's claim (cross-check rule)."""
        record = self.knowledge.own_record
        if self.knowledge.role is PartyRole.OPERATOR:
            # Reject edge claims below what we know was received.
            return other_claim >= record * (1.0 - self.accept_tolerance)
        # Edge: reject operator claims above what we know was sent.
        return other_claim <= record * (1.0 + self.accept_tolerance)


class HonestStrategy(Strategy):
    """Reports the truthful record every round."""


class OptimalStrategy(Strategy):
    """The paper's rational play: claim the *counterpart's* metric.

    Edge minimax: claim x̂_o (Appendix C, Eq. 5); operator maximin:
    claim x̂_e.  Under rejections (possible with noisy records) the claim
    walks toward the counterpart's last claim, converging geometrically.
    """

    def target_claim(self) -> int:
        return self.knowledge.other_estimate

    def propose(
        self,
        x_lower: int,
        x_upper: int | None,
        round_index: int,
        last_other_claim: int | None,
    ) -> int:
        target = self.target_claim()
        if round_index > 0 and last_other_claim is not None:
            target = (target + last_other_claim) // 2
        # A rational party never concedes past its own provable record:
        # the operator never claims below what it received, the edge never
        # above what it sent.  Against a tampering counterpart this keeps
        # Theorem 2's bound (or stalls the negotiation — no PoC, no pay).
        if self.knowledge.role is PartyRole.OPERATOR:
            target = max(target, self.knowledge.own_record)
        else:
            target = min(target, self.knowledge.own_record)
        return clamp_to_bounds(target, x_lower, x_upper)


class RandomSelfishStrategy(Strategy):
    """Selfish but unaware of the optimal strategy (``TLC-random``).

    Each round the edge draws uniformly *below* its sent record and the
    operator uniformly *above* its received record, clipped to the
    current bounds; the spread narrows as the bounds do, so rejection
    rounds converge (2.7–4.6 rounds on the paper's workloads).
    """

    def __init__(
        self,
        knowledge: PartyKnowledge,
        rng: random.Random,
        spread: float = 0.12,
        accept_tolerance: float = 0.015,
    ) -> None:
        super().__init__(knowledge, accept_tolerance=accept_tolerance)
        if not 0.0 < spread <= 1.0:
            raise ValueError(f"spread must be in (0, 1], got {spread}")
        self.rng = rng
        self.spread = spread

    def propose(
        self,
        x_lower: int,
        x_upper: int | None,
        round_index: int,
        last_other_claim: int | None,
    ) -> int:
        record = self.knowledge.own_record
        if self.knowledge.role is PartyRole.EDGE:
            # Under-claim: uniform in [(1 − spread)·record, record] — the
            # paper's "uniformly chooses the volume smaller than x̂_e".
            lo = int(record * (1.0 - self.spread))
            hi = record
        else:
            # Over-claim: uniform in [record, (1 + spread)·record].
            lo = record
            hi = int(record * (1.0 + self.spread)) + 1
        draw = self.rng.randint(min(lo, hi), max(lo, hi))
        return clamp_to_bounds(draw, x_lower, x_upper)


class StubbornStrategy(Strategy):
    """Insists on one fixed claim and rejects everything else.

    Models the misbehaviour of §5.1: the negotiation drags on (the engine
    eventually force-converges the shrinking bounds), and the stubborn
    party gains nothing — it only delays its own payment/service.
    """

    def __init__(self, knowledge: PartyKnowledge, fixed_claim: int) -> None:
        super().__init__(knowledge)
        if fixed_claim < 0:
            raise ValueError(f"claim must be non-negative, got {fixed_claim}")
        self.fixed_claim = fixed_claim

    def target_claim(self) -> int:
        return self.fixed_claim

    def decide(self, other_claim: int, own_claim: int) -> bool:
        return other_claim == self.fixed_claim


class BoundViolatingStrategy(Strategy):
    """Ignores the line-12 bound constraint (buggy or malicious stack).

    The engine does not clamp these claims; the counterpart observes the
    violation and rejects, as the paper prescribes.
    """

    def __init__(self, knowledge: PartyKnowledge, fixed_claim: int) -> None:
        super().__init__(knowledge)
        self.fixed_claim = fixed_claim

    def propose(
        self,
        x_lower: int,
        x_upper: int | None,
        round_index: int,
        last_other_claim: int | None,
    ) -> int:
        return self.fixed_claim  # deliberately unclamped
