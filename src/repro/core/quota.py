"""Quota-triggered charging cycles (§5.2).

The paper notes Algorithm 1 "only runs at the end of the cycle (e.g.,
bill cycle stops, or **the charging volume exceeds a pre-defined
quota**)".  This module implements the second trigger: a
:class:`QuotaWatcher` monitors a gateway-side counter and closes the
charging cycle early when the charged volume crosses the quota — so a
prepaid edge vendor negotiates (and pays) per quota tranche rather than
per wall-clock month, and the operator can gate further service on the
PoC of the previous tranche.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..netsim.counters import CumulativeCounter
from ..netsim.events import EventLoop
from .plan import ChargingCycle

CycleClosed = Callable[[ChargingCycle, int], None]


@dataclass(frozen=True)
class QuotaTrigger:
    """Why a cycle closed."""

    cycle: ChargingCycle
    charged_bytes: int
    by_quota: bool  # False = wall-clock cycle end


class QuotaWatcher:
    """Closes charging cycles on quota *or* wall-clock, whichever first."""

    def __init__(
        self,
        loop: EventLoop,
        counter: CumulativeCounter,
        quota_bytes: int,
        max_cycle_s: float,
        poll_interval_s: float = 1.0,
    ) -> None:
        if quota_bytes <= 0:
            raise ValueError(f"quota must be positive, got {quota_bytes}")
        if max_cycle_s <= 0 or poll_interval_s <= 0:
            raise ValueError("cycle length and poll interval must be positive")
        self.loop = loop
        self.counter = counter
        self.quota_bytes = quota_bytes
        self.max_cycle_s = max_cycle_s
        self.poll_interval_s = poll_interval_s
        self.triggers: list[QuotaTrigger] = []
        self._cycle_started_at = loop.now()
        self._cycle_base_bytes = counter.total
        self._running = False

    def start(self) -> None:
        """Begin watching (idempotent start is an error)."""
        if self._running:
            raise RuntimeError("quota watcher already running")
        self._running = True
        self._cycle_started_at = self.loop.now()
        self._cycle_base_bytes = self.counter.total
        self.loop.schedule(self.poll_interval_s, self._poll)

    def stop(self) -> None:
        """Stop watching; no further cycles close."""
        self._running = False

    @property
    def current_usage(self) -> int:
        """Bytes charged in the open cycle so far."""
        return self.counter.total - self._cycle_base_bytes

    def _poll(self) -> None:
        if not self._running:
            return
        now = self.loop.now()
        usage = self.current_usage
        elapsed = now - self._cycle_started_at
        if usage >= self.quota_bytes:
            self._close(now, usage, by_quota=True)
        elif elapsed >= self.max_cycle_s:
            self._close(now, usage, by_quota=False)
        self.loop.schedule(self.poll_interval_s, self._poll)

    def _close(self, now: float, usage: int, by_quota: bool) -> None:
        cycle = ChargingCycle(self._cycle_started_at, now)
        self.triggers.append(QuotaTrigger(cycle, usage, by_quota))
        self._cycle_started_at = now
        self._cycle_base_bytes = self.counter.total
