"""Alternating-offers bargaining strategies (Rubinstein 1982, Nash 1953).

The paper grounds TLC in bargaining theory (§9, references [55, 56]):
the negotiation is "inspired by the bargaining theory, but generalizes
this model from the economics to the cellular edge setting".  This
module supplies the classic comparators:

* :class:`RubinsteinStrategy` — alternating offers with a per-round
  discount factor δ: each rejection costs the party a fraction of the
  surplus, so impatient parties concede toward the Rubinstein split of
  the contested interval ``[x̂_o, x̂_e]``;
* :func:`rubinstein_split` — the closed-form first-mover share
  ``(1 − δ₂) / (1 − δ₁δ₂)`` the infinite-horizon game converges to.

They slot into the same :class:`~repro.core.negotiation.NegotiationEngine`
as TLC's strategies, which lets the ablation benchmarks compare TLC's
1-round minimax play against classical concession dynamics.
"""

from __future__ import annotations

from .strategies import PartyKnowledge, PartyRole, Strategy, clamp_to_bounds


def rubinstein_split(delta_proposer: float, delta_responder: float) -> float:
    """First proposer's equilibrium share of the contested surplus."""
    for delta in (delta_proposer, delta_responder):
        if not 0.0 < delta < 1.0:
            raise ValueError(f"discount factor must be in (0, 1), got {delta}")
    return (1.0 - delta_responder) / (1.0 - delta_proposer * delta_responder)


class RubinsteinStrategy(Strategy):
    """Discounted alternating-offers play over the claim interval.

    The party starts at its preferred end of the contested interval (the
    edge at its received estimate, the operator at its sent estimate)
    and, each round it sees rejected, concedes a δ-driven fraction of
    the remaining distance toward the counterpart's last claim.  It
    accepts once the counterpart's claim is within its concession point.
    """

    def __init__(
        self,
        knowledge: PartyKnowledge,
        delta: float = 0.9,
        accept_tolerance: float = 0.0,
    ) -> None:
        super().__init__(knowledge, accept_tolerance=accept_tolerance)
        if not 0.0 < delta < 1.0:
            raise ValueError(f"discount factor must be in (0, 1), got {delta}")
        self.delta = delta
        self._round = 0

    def _preferred(self) -> int:
        if self.knowledge.role is PartyRole.EDGE:
            return min(self.knowledge.own_record, self.knowledge.other_estimate)
        return max(self.knowledge.own_record, self.knowledge.other_estimate)

    def _reservation(self) -> int:
        """The record beyond which the party will not concede."""
        return self.knowledge.own_record

    def propose(
        self,
        x_lower: int,
        x_upper: int | None,
        round_index: int,
        last_other_claim: int | None,
    ) -> int:
        self._round = round_index
        target = self._preferred()
        if round_index > 0 and last_other_claim is not None:
            # Concede (1 − δ^round) of the way toward the counterpart.
            concession = 1.0 - self.delta ** round_index
            target = int(round(target + (last_other_claim - target) * concession))
        # Never concede past the provable record.
        if self.knowledge.role is PartyRole.OPERATOR:
            target = max(target, self._reservation())
        else:
            target = min(target, self._reservation())
        return clamp_to_bounds(target, x_lower, x_upper)

    def decide(self, other_claim: int, own_claim: int) -> bool:
        # Accept anything at least as good as our current concession
        # point; impatience (low δ) widens what counts as acceptable.
        concession = 1.0 - self.delta ** max(1, self._round + 1)
        if self.knowledge.role is PartyRole.EDGE:
            acceptable = own_claim + (self.knowledge.own_record - own_claim) * concession
            within_record = other_claim <= self.knowledge.own_record * (
                1.0 + self.accept_tolerance
            )
            return within_record and other_claim <= acceptable
        acceptable = own_claim - (own_claim - self.knowledge.own_record) * concession
        within_record = other_claim >= self.knowledge.own_record * (
            1.0 - self.accept_tolerance
        )
        return within_record and other_claim >= acceptable
