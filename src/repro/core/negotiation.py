"""Algorithm 1: the loss-selfishness cancellation engine.

Runs the paper's negotiation between an edge strategy and an operator
strategy:

1. both parties claim a volume inside the open bounds ``(x_L, x_U)``;
2. both decide accept/reject on the counterpart's claim (a claim that
   violates the bounds is auto-rejected — the constraint is visible to
   both sides, line 12);
3. on double accept the charging volume is fixed by line 8 and the
   negotiation stops;
4. otherwise the bounds shrink to ``[min claim, max claim]`` and the
   parties re-claim.

Because volumes are integral and the bounds strictly nest, the engine
force-converges once the interval has (almost) no interior — mirroring
the paper's argument that neither party benefits from dragging the
negotiation out (§5.1).  ``max_rounds`` is a safety valve for adversarial
strategy pairs; hitting it marks the result as not converged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .plan import DataPlan
from .strategies import Strategy


@dataclass(frozen=True)
class RoundRecord:
    """Transcript of one negotiation round."""

    round_index: int
    x_lower: int
    x_upper: int | None
    edge_claim: int
    operator_claim: int
    edge_accepts: bool
    operator_accepts: bool
    edge_claim_in_bounds: bool
    operator_claim_in_bounds: bool


@dataclass(frozen=True)
class NegotiationResult:
    """Outcome of Algorithm 1."""

    volume: int
    rounds: int
    converged: bool
    forced: bool
    transcript: tuple[RoundRecord, ...] = field(repr=False, default=())

    @property
    def final_claims(self) -> tuple[int, int]:
        """The (edge, operator) claims the result was computed from."""
        last = self.transcript[-1]
        return last.edge_claim, last.operator_claim


def _in_open_bounds(claim: int, x_lower: int, x_upper: int | None) -> bool:
    if x_upper is None:
        return claim > x_lower
    if x_upper - x_lower <= 2:
        # Degenerate interval: the nearest admissible integers *are* the
        # bounds; treat boundary claims as conforming.
        return x_lower <= claim <= x_upper
    return x_lower < claim < x_upper


class NegotiationEngine:
    """Drives one charging cycle's negotiation to a charging volume."""

    def __init__(
        self,
        plan: DataPlan,
        edge: Strategy,
        operator: Strategy,
        max_rounds: int = 64,
        convergence_slack: int = 1,
    ) -> None:
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        self.plan = plan
        self.edge = edge
        self.operator = operator
        self.max_rounds = max_rounds
        self.convergence_slack = convergence_slack

    def run(self) -> NegotiationResult:
        """Execute Algorithm 1 and return the negotiated volume."""
        x_lower = -1  # so that a legitimate zero-volume claim is in bounds
        x_upper: int | None = None
        transcript: list[RoundRecord] = []
        last_edge_claim: int | None = None
        last_operator_claim: int | None = None

        for round_index in range(self.max_rounds):
            edge_claim = self.edge.propose(
                x_lower, x_upper, round_index, last_operator_claim
            )
            operator_claim = self.operator.propose(
                x_lower, x_upper, round_index, last_edge_claim
            )
            edge_in_bounds = _in_open_bounds(edge_claim, x_lower, x_upper)
            operator_in_bounds = _in_open_bounds(operator_claim, x_lower, x_upper)

            # A bound-violating claim is rejected outright by the peer.
            edge_accepts = operator_in_bounds and self.edge.decide(
                operator_claim, edge_claim
            )
            operator_accepts = edge_in_bounds and self.operator.decide(
                edge_claim, operator_claim
            )

            transcript.append(
                RoundRecord(
                    round_index=round_index,
                    x_lower=x_lower,
                    x_upper=x_upper,
                    edge_claim=edge_claim,
                    operator_claim=operator_claim,
                    edge_accepts=edge_accepts,
                    operator_accepts=operator_accepts,
                    edge_claim_in_bounds=edge_in_bounds,
                    operator_claim_in_bounds=operator_in_bounds,
                )
            )

            if edge_accepts and operator_accepts:
                volume = int(round(self.plan.charge(edge_claim, operator_claim)))
                return NegotiationResult(
                    volume=volume,
                    rounds=round_index + 1,
                    converged=True,
                    forced=False,
                    transcript=tuple(transcript),
                )

            # Line 12: tighten the bounds to the span of this round's claims
            # (only claims that respected the previous bounds count).
            claims = [
                claim
                for claim, ok in (
                    (edge_claim, edge_in_bounds),
                    (operator_claim, operator_in_bounds),
                )
                if ok
            ]
            if claims:
                new_lower = min(claims)
                new_upper = max(claims)
                x_lower = max(x_lower, new_lower)
                x_upper = new_upper if x_upper is None else min(x_upper, new_upper)
                if x_upper < x_lower:
                    x_upper = x_lower

            # Degenerate interval: neither party can move — settle it.
            if x_upper is not None and x_upper - x_lower <= self.convergence_slack:
                volume = int(round(self.plan.charge(edge_claim, operator_claim)))
                volume = min(max(volume, x_lower), x_upper)
                return NegotiationResult(
                    volume=volume,
                    rounds=round_index + 1,
                    converged=True,
                    forced=True,
                    transcript=tuple(transcript),
                )

            last_edge_claim = edge_claim
            last_operator_claim = operator_claim

        # Safety valve: settle on the last claims without convergence.
        volume = int(round(self.plan.charge(last_edge_claim or 0, last_operator_claim or 0)))
        return NegotiationResult(
            volume=volume,
            rounds=self.max_rounds,
            converged=False,
            forced=True,
            transcript=tuple(transcript),
        )
