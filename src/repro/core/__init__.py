"""TLC's core: the loss-selfishness cancellation and its analysis.

Implements the paper's primary contribution — the charging model (Eq. 1),
Algorithm 1's negotiation, the negotiation strategies, the zero-sum game
analysis behind Theorems 2–4, the gap metrics of the evaluation, and the
Appendix-D generalization to non-edge charging.
"""

from .bargaining import RubinsteinStrategy, rubinstein_split
from .economics import Market, MarketConfig, MarketState, OperatorModel
from .game import GameInstance
from .gap import (
    SchemeOutcome,
    absolute_gap,
    expected_charge,
    gap_ratio,
    legacy_charge,
    reduction_ratio,
)
from .generic import GenericDownlinkInstance
from .mixed import MixedSolution, solve_mixed
from .negotiation import NegotiationEngine, NegotiationResult, RoundRecord
from .plan import ChargingCycle, DataPlan
from .quota import QuotaTrigger, QuotaWatcher
from .records import CycleUsage
from .strategies import (
    BoundViolatingStrategy,
    HonestStrategy,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
    RandomSelfishStrategy,
    Strategy,
    StubbornStrategy,
    clamp_to_bounds,
)

__all__ = [
    "RubinsteinStrategy",
    "rubinstein_split",
    "Market",
    "MarketConfig",
    "MarketState",
    "OperatorModel",
    "GameInstance",
    "SchemeOutcome",
    "absolute_gap",
    "expected_charge",
    "gap_ratio",
    "legacy_charge",
    "reduction_ratio",
    "GenericDownlinkInstance",
    "MixedSolution",
    "solve_mixed",
    "NegotiationEngine",
    "NegotiationResult",
    "RoundRecord",
    "ChargingCycle",
    "DataPlan",
    "QuotaTrigger",
    "QuotaWatcher",
    "CycleUsage",
    "BoundViolatingStrategy",
    "HonestStrategy",
    "OptimalStrategy",
    "PartyKnowledge",
    "PartyRole",
    "RandomSelfishStrategy",
    "Strategy",
    "StubbornStrategy",
    "clamp_to_bounds",
]
