"""Game-theoretic analysis of the loss-selfishness cancellation.

Implements the zero-sum analysis of the paper's Appendix B/C in executable
form: worst-case charges, minimax/maximin values over the feasible claim
interval ``[x̂_o, x̂_e]`` (Theorem 2's bound defines the feasible set), and
a pure-strategy Nash equilibrium checker.  The property-based tests use
these to verify Theorems 2 and 3 numerically over arbitrary instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import DataPlan


@dataclass(frozen=True)
class GameInstance:
    """One cycle's game: ground truth and the plan's loss weight."""

    x_hat_e: int
    x_hat_o: int
    c: float

    def __post_init__(self) -> None:
        if self.x_hat_o < 0 or self.x_hat_e < self.x_hat_o:
            raise ValueError(
                f"need 0 ≤ x̂_o ≤ x̂_e, got ({self.x_hat_e}, {self.x_hat_o})"
            )
        if not 0.0 <= self.c <= 1.0:
            raise ValueError(f"c must be in [0, 1], got {self.c}")

    @property
    def plan(self) -> DataPlan:
        """A plan carrying this instance's loss weight."""
        return DataPlan(c=self.c, cycle_duration_s=3600.0)

    @property
    def expected(self) -> float:
        """The ground-truth charge x̂ = x̂_o + c·(x̂_e − x̂_o)."""
        return self.x_hat_o + self.c * (self.x_hat_e - self.x_hat_o)

    def charge(self, x_e: float, x_o: float) -> float:
        """Payoff (the charge) for one claim pair."""
        return self.plan.charge(x_e, x_o)

    # ----------------------------------------------------- analytic values

    def edge_worst_case(self, x_e: float) -> float:
        """max over feasible x_o of the charge, for a fixed edge claim.

        Feasible operator claims are ``[x̂_o, x̂_e]`` (Theorem 2).  Per
        Appendix C the maximum is attained at ``x_o = x̂_e`` whenever
        ``x_e < x̂_e``, giving ``(1 − c)·x_e + c·x̂_e``.
        """
        below = x_e  # best the operator can do with x_o ≤ x_e is x_o = x_e
        above = (1.0 - self.c) * x_e + self.c * self.x_hat_e
        return max(below, above)

    def operator_worst_case(self, x_o: float) -> float:
        """min over feasible x_e of the charge, for a fixed operator claim."""
        above = x_o  # edge claiming x_e ≥ x_o leaves x = x_o at best
        below = (1.0 - self.c) * self.x_hat_o + self.c * x_o
        return min(above, below)

    def edge_minimax_claim(self) -> int:
        """The edge's optimal claim: x_e = x̂_o (Appendix C, Eq. 5)."""
        return self.x_hat_o

    def operator_maximin_claim(self) -> int:
        """The operator's optimal claim: x_o = x̂_e."""
        return self.x_hat_e

    def minimax_value(self) -> float:
        """min_x_e max_x_o x — equals x̂ for rational play (Theorem 3)."""
        return self.edge_worst_case(self.edge_minimax_claim())

    def maximin_value(self) -> float:
        """max_x_o min_x_e x — equals x̂ for rational play (Theorem 3)."""
        return self.operator_worst_case(self.operator_maximin_claim())

    # ------------------------------------------------------ grid verifiers

    def _feasible_grid(self, steps: int) -> list[int]:
        span = self.x_hat_e - self.x_hat_o
        if span == 0:
            return [self.x_hat_o]
        count = min(steps, span + 1)
        return sorted(
            {self.x_hat_o + round(i * span / (count - 1)) for i in range(count)}
        )

    def minimax_value_grid(self, steps: int = 64) -> float:
        """Brute-force min_x_e max_x_o over a feasible-claim grid."""
        grid = self._feasible_grid(steps)
        return min(max(self.charge(xe, xo) for xo in grid) for xe in grid)

    def maximin_value_grid(self, steps: int = 64) -> float:
        """Brute-force max_x_o min_x_e over a feasible-claim grid."""
        grid = self._feasible_grid(steps)
        return max(min(self.charge(xe, xo) for xe in grid) for xo in grid)

    def is_pure_nash(self, x_e: int, x_o: int, steps: int = 64) -> bool:
        """True if neither party can improve by deviating on the grid.

        The edge improves by lowering the charge; the operator by raising
        it.  ``(x̂_o, x̂_e)`` is the unique pure equilibrium (Appendix C).
        """
        grid = self._feasible_grid(steps)
        value = self.charge(x_e, x_o)
        edge_can_improve = any(self.charge(xe, x_o) < value - 1e-9 for xe in grid)
        operator_can_improve = any(self.charge(x_e, xo) > value + 1e-9 for xo in grid)
        return not edge_can_improve and not operator_can_improve
