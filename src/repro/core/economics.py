"""Economic deployment incentives (§8 of the paper).

The paper argues both sides profit from deploying TLC:

* the **edge** deploys it to escape legacy 4G/5G's unbounded
  over-charging;
* the **operator** deploys it for competitive advantage — "if operator A
  deploys TLC but operator B does not, B's users may switch to A to
  avoid over-billing", an effect the paper grounds in the up-to-25 %
  monthly churn of prepaid/MVNO customers.

This module makes that argument executable: a small market of operators
(with or without TLC, with a selfish over-charging factor) serving
subscribers who churn away from operators that over-bill them.  The
simulation is deliberately coarse — monthly rounds, proportional churn —
because the claim under test is directional: *the TLC operator's revenue
overtakes the over-charging legacy operator's*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netsim.rng import StreamRegistry


@dataclass
class OperatorModel:
    """One operator's market posture."""

    name: str
    deploys_tlc: bool
    overcharge_factor: float = 1.0  # legacy selfish markup on usage
    price_per_gb: float = 10.0

    def __post_init__(self) -> None:
        if self.overcharge_factor < 1.0:
            raise ValueError("overcharge factor below 1 would be under-billing")
        if self.deploys_tlc and self.overcharge_factor != 1.0:
            raise ValueError("a TLC operator cannot sustain an over-charge: "
                             "the negotiation bound caps it")

    def bill(self, usage_gb: float) -> float:
        """The monthly bill for one subscriber's usage."""
        return usage_gb * self.price_per_gb * self.overcharge_factor


@dataclass
class MarketConfig:
    """Churn dynamics."""

    subscribers: int = 10_000
    monthly_usage_gb: float = 15.0
    base_churn: float = 0.05  # background switching (any reason)
    overbilling_churn: float = 0.25  # the paper's prepaid/MVNO churn ceiling
    detection_probability: float = 0.3  # chance a user notices over-billing

    def __post_init__(self) -> None:
        if not 0 <= self.base_churn <= 1 or not 0 <= self.overbilling_churn <= 1:
            raise ValueError("churn rates must be probabilities")


@dataclass
class MarketState:
    """Evolving market shares and cumulative revenue."""

    shares: dict[str, int]
    revenue: dict[str, float] = field(default_factory=dict)
    months: int = 0


class Market:
    """A churn-driven duopoly/oligopoly of cellular operators."""

    def __init__(
        self,
        operators: list[OperatorModel],
        config: MarketConfig | None = None,
        rng: StreamRegistry | None = None,
    ) -> None:
        if len(operators) < 2:
            raise ValueError("a market needs at least two operators")
        names = [op.name for op in operators]
        if len(set(names)) != len(names):
            raise ValueError("operator names must be unique")
        self.operators = {op.name: op for op in operators}
        self.config = config if config is not None else MarketConfig()
        self._rng = (rng if rng is not None else StreamRegistry(0)).stream("market")
        per_operator = self.config.subscribers // len(operators)
        self.state = MarketState(
            shares={op.name: per_operator for op in operators},
            revenue={op.name: 0.0 for op in operators},
        )

    def _churn_rate(self, operator: OperatorModel) -> float:
        rate = self.config.base_churn
        if operator.overcharge_factor > 1.0:
            # Over-billed users who notice leave at the elevated rate.
            excess = min(1.0, (operator.overcharge_factor - 1.0) * 10)
            rate += (
                self.config.overbilling_churn
                * self.config.detection_probability
                * excess
            )
        return min(1.0, rate)

    def step_month(self) -> None:
        """One billing month: revenue accrual, then churn redistribution."""
        config = self.config
        leavers: dict[str, int] = {}
        for name, operator in self.operators.items():
            subscribers = self.state.shares[name]
            self.state.revenue[name] += subscribers * operator.bill(config.monthly_usage_gb)
            expected = subscribers * self._churn_rate(operator)
            leavers[name] = min(subscribers, round(self._rng.gauss(expected, expected * 0.1)))
        # Leavers pick a new operator, favouring trusted (TLC) ones.
        pool = sum(max(0, n) for n in leavers.values())
        weights = {
            name: (2.0 if op.deploys_tlc else 1.0) / max(1.0, op.overcharge_factor)
            for name, op in self.operators.items()
        }
        total_weight = sum(weights.values())
        for name, count in leavers.items():
            self.state.shares[name] -= max(0, count)
        assigned = 0
        names = list(self.operators)
        for i, name in enumerate(names):
            if i == len(names) - 1:
                grant = pool - assigned
            else:
                grant = int(pool * weights[name] / total_weight)
            self.state.shares[name] += grant
            assigned += grant
        self.state.months += 1

    def run(self, months: int) -> MarketState:
        """Simulate ``months`` billing cycles; returns the final state."""
        if months <= 0:
            raise ValueError("months must be positive")
        for _ in range(months):
            self.step_month()
        return self.state

    def market_share(self, name: str) -> float:
        """Current share of the subscriber base."""
        total = sum(self.state.shares.values())
        return self.state.shares[name] / total if total else 0.0
