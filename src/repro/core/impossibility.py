"""Theorem 1, executable: consistency vs. availability under loss.

Appendix A proves (as a CAP variant) that no charging design can
guarantee both (1) a consistent view of the traffic counters at the edge
and the operator and (2) that every charging query eventually returns,
when the network can lose data arbitrarily: a lost update is
indistinguishable from no traffic.

This module builds the two ends of the trade-off as tiny distributed
counters over a lossy one-way channel:

* :class:`ConsistentCounterPair` (the "CP" design) acknowledges every
  update and *suspends charging queries* while any update is unacked —
  consistent always, but a partition stalls queries indefinitely and the
  synchronization traffic delays data;
* :class:`AvailableCounterPair` (the "AP" design — what 4G/5G and TLC's
  in-cycle behaviour actually do) answers queries immediately from local
  state — always available, but the two sides diverge by exactly the
  lost bytes (the charging gap).

TLC's resolution is neither: accept the in-cycle divergence, then cancel
it at cycle end via the negotiation — which is why Theorem 1 is bypassed
rather than violated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..netsim.events import EventLoop


@dataclass
class LossyChannel:
    """A one-way channel that delivers or silently drops updates."""

    loop: EventLoop
    deliver: Callable[[int], None]
    latency_s: float = 0.01
    partitioned: bool = False
    dropped: int = 0

    def send(self, nbytes: int) -> None:
        if self.partitioned:
            self.dropped += 1
            return
        self.loop.schedule(self.latency_s, self.deliver, nbytes)


@dataclass
class QueryOutcome:
    """Result of one charging query."""

    answered: bool
    value: int | None = None
    consistent: bool | None = None


class ConsistentCounterPair:
    """CP design: synchronized counters, blocking queries.

    The sender counts only after the receiver acknowledges, and a query
    is answered only when no update is in flight — so any answer is
    consistent, but availability dies with the channel.
    """

    def __init__(self, loop: EventLoop, latency_s: float = 0.01) -> None:
        self.loop = loop
        self.sender_count = 0
        self.receiver_count = 0
        self._unacked = 0
        self.forward = LossyChannel(loop, self._on_receive, latency_s)
        self._ack_channel = LossyChannel(loop, self._on_ack, latency_s)
        self.data_delay_total = 0.0
        self._pending_since: dict[int, float] = {}
        self._seq = 0

    def transfer(self, nbytes: int) -> None:
        """Offer one data unit; counting waits for the round trip."""
        self._unacked += 1
        self._seq += 1
        self._pending_since[self._seq] = self.loop.now()
        self.forward.send(nbytes)

    def _on_receive(self, nbytes: int) -> None:
        self.receiver_count += nbytes
        self._ack_channel.send(nbytes)

    def _on_ack(self, nbytes: int) -> None:
        self.sender_count += nbytes
        self._unacked -= 1
        seq, started = next(iter(self._pending_since.items()))
        del self._pending_since[seq]
        self.data_delay_total += self.loop.now() - started

    def query(self) -> QueryOutcome:
        """Charging query: suspended while any update is unacked."""
        if self._unacked > 0:
            return QueryOutcome(answered=False)
        return QueryOutcome(
            answered=True,
            value=self.sender_count,
            consistent=self.sender_count == self.receiver_count,
        )

    def partition(self, on: bool = True) -> None:
        """Cut (or restore) both directions of the channel."""
        self.forward.partitioned = on
        self._ack_channel.partitioned = on


class AvailableCounterPair:
    """AP design: independent counters, immediate queries."""

    def __init__(self, loop: EventLoop, latency_s: float = 0.01) -> None:
        self.loop = loop
        self.sender_count = 0
        self.receiver_count = 0
        self.forward = LossyChannel(loop, self._on_receive, latency_s)

    def transfer(self, nbytes: int) -> None:
        """Offer one data unit; the sender counts unconditionally."""
        self.sender_count += nbytes
        self.forward.send(nbytes)

    def _on_receive(self, nbytes: int) -> None:
        self.receiver_count += nbytes

    def query(self) -> QueryOutcome:
        """Always answers; consistency is whatever the loss left behind."""
        return QueryOutcome(
            answered=True,
            value=self.sender_count,
            consistent=self.sender_count == self.receiver_count,
        )

    @property
    def divergence(self) -> int:
        """The charging gap: bytes counted by one side only."""
        return self.sender_count - self.receiver_count

    def partition(self, on: bool = True) -> None:
        """Cut (or restore) the data channel."""
        self.forward.partitioned = on
