"""Charging-gap metrics and the legacy 4G/5G baseline.

The paper's three headline metrics:

* absolute gap ``Δ = |x − x̂|`` (Table 2, MB/hr),
* relative gap ratio ``ε = Δ / x̂`` (Table 2, Figure 13/14),
* charge-reduction ratio ``μ = (x_legacy − x_TLC) / x_legacy``
  (Figure 15: how much less the edge pays under TLC than under the
  gateway-count charging of legacy 4G/5G; 0 when ``c = 1``).

The legacy baseline charges exactly what the gateway counted — which, by
the *position* of the gateway in the path, equals the received volume for
uplink and (nearly) the sent volume for downlink.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import DataPlan
from .records import CycleUsage


def absolute_gap(charged: float, expected: float) -> float:
    """Δ = |x − x̂| in bytes."""
    return abs(charged - expected)


def gap_ratio(charged: float, expected: float) -> float:
    """ε = Δ / x̂; 0 for an idle cycle with a correct zero charge."""
    if expected == 0:
        return 0.0 if charged == 0 else float("inf")
    return absolute_gap(charged, expected) / expected


def reduction_ratio(legacy_charge: float, tlc_charge: float) -> float:
    """μ = (x_legacy − x_TLC) / x_legacy (Figure 15's metric)."""
    if legacy_charge == 0:
        return 0.0
    return (legacy_charge - tlc_charge) / legacy_charge


def legacy_charge(usage: CycleUsage) -> int:
    """What legacy 4G/5G bills: the gateway's own count, unnegotiated."""
    return usage.gateway_count


@dataclass(frozen=True)
class SchemeOutcome:
    """One charging scheme's result on one cycle."""

    scheme: str
    charged: int
    expected: float
    rounds: int = 1

    @property
    def delta(self) -> float:
        """Absolute charging gap Δ for this cycle."""
        return absolute_gap(self.charged, self.expected)

    @property
    def epsilon(self) -> float:
        """Relative charging-gap ratio ε for this cycle."""
        return gap_ratio(self.charged, self.expected)


def expected_charge(usage: CycleUsage, plan: DataPlan) -> float:
    """Ground-truth x̂ for a cycle under a plan."""
    return plan.expected_charge(usage.true_sent, usage.true_received)
