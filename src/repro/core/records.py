"""Usage records: what each party knows about one charging cycle.

Ground truth vs. measurement is the crux of this reproduction: the
simulator knows the exact ``(x̂_e, x̂_o)``, while the negotiating parties
only hold their measured (skewed, quantized, possibly tampered) views.
TLC's residual gap in Table 2 is precisely the measurement error, and the
theorems hold with respect to what the parties can observe.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.packet import Direction
from .plan import ChargingCycle


@dataclass(frozen=True)
class CycleUsage:
    """Everything known about one (flow, cycle, direction).

    Ground truth:

    * ``true_sent`` — bytes the edge endpoint actually emitted (x̂_e),
    * ``true_received`` — bytes the edge endpoint actually received (x̂_o),
    * ``gateway_count`` — bytes the SPGW counted (the legacy 4G/5G charge).

    Party measurements (what enters the negotiation):

    * ``edge_sent_record`` — edge's record of its own sent volume,
    * ``edge_received_estimate`` — edge's inference of x̂_o (§5.2),
    * ``operator_received_record`` — operator's record of the received
      volume (gateway for UL, RRC COUNTER CHECK for DL),
    * ``operator_sent_estimate`` — operator's inference of x̂_e.
    """

    cycle: ChargingCycle
    direction: Direction
    flow_id: str
    true_sent: int
    true_received: int
    gateway_count: int
    edge_sent_record: int
    edge_received_estimate: int
    operator_received_record: int
    operator_sent_estimate: int

    def __post_init__(self) -> None:
        for name in (
            "true_sent",
            "true_received",
            "gateway_count",
            "edge_sent_record",
            "edge_received_estimate",
            "operator_received_record",
            "operator_sent_estimate",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.true_received > self.true_sent:
            raise ValueError(
                "ground truth violated: received "
                f"{self.true_received} > sent {self.true_sent}"
            )

    @property
    def loss_bytes(self) -> int:
        """Ground-truth data loss in the cycle: x̂_e − x̂_o."""
        return self.true_sent - self.true_received

    @property
    def loss_fraction(self) -> float:
        """Loss as a fraction of sent bytes (0 for an idle cycle)."""
        if self.true_sent == 0:
            return 0.0
        return self.loss_bytes / self.true_sent

    def scaled_to_hour(self, volume_bytes: float) -> float:
        """Convert a per-cycle volume to the paper's MB/hr normalization."""
        hours = self.cycle.duration / 3600.0
        return volume_bytes / 1e6 / hours
