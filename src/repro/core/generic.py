"""TLC for generic (non-edge) mobile data charging — Appendix D.

When the application server lives on the public Internet rather than
co-located with the cellular core, downlink data can be lost *between the
server and the 4G/5G core*.  The edge's sent-record then measures
``x̂'_e ≥ x̂_e`` (the core-received volume), and negotiating with it
over-charges by exactly

    x̂' − x̂ = c · (x̂'_e − x̂_e)

— bounded by the Internet-side loss, which still beats legacy 4G/5G's
unbounded over-charging.  This module makes that bound executable.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import DataPlan


@dataclass(frozen=True)
class GenericDownlinkInstance:
    """Ground truth for one generic-charging downlink cycle.

    ``internet_sent`` is x̂'_e (what the Internet server emitted),
    ``core_received`` is x̂_e (what reached the 4G/5G core), and
    ``device_received`` is x̂_o.
    """

    internet_sent: int
    core_received: int
    device_received: int

    def __post_init__(self) -> None:
        if not 0 <= self.device_received <= self.core_received <= self.internet_sent:
            raise ValueError(
                "need 0 ≤ x̂_o ≤ x̂_e ≤ x̂'_e, got "
                f"({self.internet_sent}, {self.core_received}, {self.device_received})"
            )

    @property
    def internet_loss(self) -> int:
        """Bytes lost between the Internet server and the cellular core."""
        return self.internet_sent - self.core_received

    def ideal_charge(self, plan: DataPlan) -> float:
        """x̂ — the charge if the edge could report the core-received volume."""
        return plan.expected_charge(self.core_received, self.device_received)

    def negotiated_charge(self, plan: DataPlan) -> float:
        """x̂' — what rational negotiation reaches with the Internet record."""
        return plan.expected_charge(self.internet_sent, self.device_received)

    def overcharge(self, plan: DataPlan) -> float:
        """The over-charge x̂' − x̂ = c·(x̂'_e − x̂_e)."""
        return self.negotiated_charge(plan) - self.ideal_charge(plan)

    def overcharge_bound(self, plan: DataPlan) -> float:
        """Appendix D's bound: c times the Internet-side loss."""
        return plan.c * self.internet_loss
