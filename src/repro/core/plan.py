"""Data plans and the charging formula (Equation 1 of the paper).

A plan fixes the lost-data charging weight ``c ∈ [0, 1]`` and the charging
cycle: ``c = 0`` charges only what the edge node received, ``c = 1``
charges everything sent.  The paper is neutral on ``c`` — it is whatever
the data plan says — and so are we; every experiment sweeps it.

The negotiated charging volume (Algorithm 1, line 8) is

    x = x_o + c·(x_e − x_o)   if x_o ≤ x_e
    x = x_e + c·(x_o − x_e)   otherwise

symmetric in the claims, so the rational claim flip (edge claims the
received volume, operator claims the sent volume) lands on the same value
as honest claims do.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChargingCycle:
    """One charging cycle ``T = (T_start, T_end]`` in virtual seconds."""

    t_start: float
    t_end: float

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ValueError(f"empty charging cycle: ({self.t_start}, {self.t_end}]")

    @property
    def duration(self) -> float:
        """Cycle length in seconds."""
        return self.t_end - self.t_start

    def contains(self, t: float) -> bool:
        """Membership in the half-open interval ``(t_start, t_end]``."""
        return self.t_start < t <= self.t_end


@dataclass(frozen=True)
class DataPlan:
    """The agreement between the edge app vendor and the operator.

    Only ``c`` and the cycle length enter TLC's protocol; price, quota and
    throttle speed ride along for the PCRF policy layer.
    """

    c: float = 0.5
    cycle_duration_s: float = 3600.0
    price_per_gb: float = 10.0
    quota_bytes: int | None = None
    throttle_bps: float = 128_000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.c <= 1.0:
            raise ValueError(f"charging weight c must be in [0, 1], got {self.c}")
        if self.cycle_duration_s <= 0:
            raise ValueError(f"cycle duration must be positive, got {self.cycle_duration_s}")

    def charge(self, x_e: float, x_o: float) -> float:
        """Negotiated charging volume for a claim pair (Algorithm 1 line 8)."""
        if x_e < 0 or x_o < 0:
            raise ValueError(f"claims must be non-negative, got ({x_e}, {x_o})")
        if x_o <= x_e:
            return x_o + self.c * (x_e - x_o)
        return x_e + self.c * (x_o - x_e)

    def expected_charge(self, x_hat_e: float, x_hat_o: float) -> float:
        """Ground-truth charging volume ``x̂ = x̂_o + c·(x̂_e − x̂_o)`` (Eq. 1)."""
        if x_hat_o > x_hat_e:
            raise ValueError(
                f"ground truth requires x̂_o ≤ x̂_e, got ({x_hat_e}, {x_hat_o})"
            )
        return x_hat_o + self.c * (x_hat_e - x_hat_o)

    def cycles(self, n: int, t_start: float = 0.0) -> list[ChargingCycle]:
        """The first ``n`` consecutive charging cycles starting at ``t_start``."""
        if n < 0:
            raise ValueError(f"cycle count must be non-negative, got {n}")
        return [
            ChargingCycle(
                t_start + i * self.cycle_duration_s,
                t_start + (i + 1) * self.cycle_duration_s,
            )
            for i in range(n)
        ]
