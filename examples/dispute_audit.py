"""A billing dispute: selfish charging, the Theorem-2 bound, and the audit.

Reconstructs the situations behind the paper's motivating lawsuit
(§3.3): an operator inflates its records to over-bill, an edge vendor
doctors ``netstat`` to under-pay, and both meet TLC's negotiation.
Then a forged PoC and a replayed PoC land on the public verifier's
desk, and Algorithm 2 catches both.

Run:  python examples/dispute_audit.py
"""

import random

from repro.core import (
    DataPlan,
    HonestStrategy,
    NegotiationEngine,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
)
from repro.crypto import generate_keypair
from repro.poc import (
    NegotiationDriver,
    PlanParams,
    Poc,
    PublicVerifier,
)

SENT, RECEIVED = 1_000_000_000, 930_000_000  # 1 GB sent, 7% lost
PLAN = DataPlan(c=0.5, cycle_duration_s=3600.0)
EXPECTED = PLAN.expected_charge(SENT, RECEIVED)


def negotiate(edge, operator):
    return NegotiationEngine(PLAN, edge, operator, max_rounds=32).run()


def scenario_overbilling_operator() -> None:
    print("— Scenario 1: the operator inflates its CDRs by 40% —")
    inflated = int(RECEIVED * 1.4)
    result = negotiate(
        HonestStrategy(PartyKnowledge(PartyRole.EDGE, SENT, RECEIVED), accept_tolerance=0.02),
        OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, inflated, inflated), accept_tolerance=0.02),
    )
    print(f"  legacy 4G/5G would bill : {inflated:,} B (nothing checks the CDR)")
    if result.converged:
        print(f"  TLC settles at          : {result.volume:,} B "
              f"(edge's sent record caps the claim: ≤ {SENT:,})")
        assert result.volume <= SENT * 1.03
    else:
        print("  TLC: no agreement — the honest edge kept rejecting, the "
              "operator holds no PoC and cannot collect")


def scenario_underpaying_edge() -> None:
    print("\n— Scenario 2: the edge halves its netstat numbers —")
    doctored = SENT // 2
    result = negotiate(
        OptimalStrategy(PartyKnowledge(PartyRole.EDGE, doctored, doctored), accept_tolerance=0.02),
        HonestStrategy(PartyKnowledge(PartyRole.OPERATOR, RECEIVED, SENT), accept_tolerance=0.02),
    )
    if result.converged:
        print(f"  TLC settles at          : {result.volume:,} B "
              f"(operator's received record floors it: ≥ {RECEIVED:,})")
        assert result.volume >= RECEIVED * 0.97
    else:
        print("  TLC: no agreement — the operator rejects every low-ball "
              "claim; the edge gets no PoC and thus no further service")


def scenario_forgery_and_replay() -> None:
    print("\n— Scenario 3: the audit desk (FCC) —")
    rng = random.Random(99)
    edge_key = generate_keypair(1024, rng)
    operator_key = generate_keypair(1024, rng)
    result = NegotiationDriver(
        PLAN, 0.0,
        OptimalStrategy(PartyKnowledge(PartyRole.EDGE, SENT, RECEIVED)),
        OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, RECEIVED, SENT)),
        edge_key, operator_key, rng,
    ).run()
    params = PlanParams(0.0, 3600.0, PLAN.c)
    verifier = PublicVerifier(PLAN)

    genuine = verifier.verify(result.poc, params, edge_key.public, operator_key.public)
    print(f"  genuine PoC             : ok={genuine.ok}, x={genuine.volume:,} B")

    forged = Poc(
        result.poc.role, result.poc.plan, result.poc.volume + 50_000_000,
        result.poc.peer_cda, result.poc.signature,
        result.poc.nonce_edge, result.poc.nonce_operator,
    )
    forged_report = verifier.verify(forged, params, edge_key.public, operator_key.public)
    print(f"  PoC with +50MB forged   : ok={forged_report.ok} "
          f"({forged_report.failure.value})")

    replay = verifier.verify(result.poc, params, edge_key.public, operator_key.public)
    print(f"  same PoC replayed       : ok={replay.ok} ({replay.failure.value})")


def main() -> None:
    print(f"cycle ground truth: sent {SENT:,} B, received {RECEIVED:,} B, "
          f"fair charge {EXPECTED:,.0f} B (c={PLAN.c})\n")
    scenario_overbilling_operator()
    scenario_underpaying_edge()
    scenario_forgery_and_replay()
    print("\nTLC bounds what a selfish party can claim, and the PoC makes the "
          "outcome provable to anyone.")


if __name__ == "__main__":
    main()
