"""A full billing epoch: cycles → over-the-network PoCs → ledger → audit.

The most end-to-end scenario in the repository.  A WebCam vendor runs
several charging cycles on the simulated LTE network; at each cycle end
the TLC negotiation executes *over the same network* (CDR/CDA/PoC as
real QCI-5 signalling packets with ARQ), the receipt lands in a
:class:`~repro.poc.PocLedger`, and finally an auditor verifies the whole
history and reconciles the bill against ground truth.

Run:  python examples/monthly_billing.py
"""

import random

from repro.core import DataPlan, OptimalStrategy, PartyKnowledge, PartyRole
from repro.crypto import generate_keypair
from repro.edge.device import EL20, Z840
from repro.experiments.runner import ScenarioRunner
from repro.experiments.scenarios import WEBCAM_UDP_UL
from repro.poc import NetworkNegotiation, PocLedger

N_CYCLES = 5


def main() -> None:
    config = WEBCAM_UDP_UL.with_(n_cycles=N_CYCLES, seed=13, background_mbps=120.0)
    plan = DataPlan(c=config.c, cycle_duration_s=config.cycle_duration_s)
    rng = random.Random(13)
    edge_key = generate_keypair(1024, rng)
    operator_key = generate_keypair(1024, rng)
    ledger = PocLedger(plan)

    print(f"billing epoch: {N_CYCLES} cycles of congested UDP WebCam uplink\n")
    runner = ScenarioRunner(config)
    horizon = N_CYCLES * config.cycle_duration_s
    runner.workload.start(until=horizon)

    expected_total = 0.0
    for k in range(N_CYCLES):
        t_end = (k + 1) * config.cycle_duration_s
        runner.loop.run_until(t_end)
        runner.network.enodeb.ue(str(runner.device.imsi)).rrc.perform_counter_check()
        usage = runner._cycle_usage(k * config.cycle_duration_s, t_end, 0.0, 0.0)
        expected = plan.expected_charge(usage.true_sent, usage.true_received)
        expected_total += expected

        negotiation = NetworkNegotiation(
            runner.network, str(runner.device.imsi), plan, usage.cycle.t_start,
            OptimalStrategy(
                PartyKnowledge(PartyRole.EDGE, usage.edge_sent_record,
                               usage.edge_received_estimate),
                accept_tolerance=0.05,
            ),
            OptimalStrategy(
                PartyKnowledge(PartyRole.OPERATOR, usage.operator_received_record,
                               usage.operator_sent_estimate),
                accept_tolerance=0.05,
            ),
            edge_key, operator_key, rng,
            edge_profile=EL20, operator_profile=Z840,
            flow_suffix=f":cycle{k}",
        )
        negotiation.start()
        runner.loop.run_until(t_end + 5.0)
        result = negotiation.result()
        ledger.append(result.poc)
        print(f"  cycle {k}: charged {result.volume / 1e6:7.2f} MB "
              f"(x̂ {expected / 1e6:7.2f} MB) — negotiated over the air in "
              f"{result.elapsed_s * 1000:5.1f} ms, {result.messages_sent} msgs"
              f"{', ' + str(result.retransmissions) + ' retx' if result.retransmissions else ''}")

    print(f"\nledger: {len(ledger)} receipts, total {ledger.total_volume() / 1e6:.2f} MB "
          f"(ground truth {expected_total / 1e6:.2f} MB)")

    audit = ledger.audit(edge_key.public, operator_key.public)
    print(f"third-party audit: ok={audit.ok}, {audit.entries_checked} receipts verified, "
          f"{audit.total_volume / 1e6:.2f} MB confirmed")
    gap = abs(ledger.total_volume() - expected_total) / expected_total
    print(f"epoch charging gap vs ground truth: {gap:.2%}")


if __name__ == "__main__":
    main()
