"""Generic mobile data charging — Appendix D of the paper.

TLC as built targets the cellular *edge*, where the app server is
co-located with the core.  For an ordinary Internet service, downlink
data can also be lost between the server and the 4G/5G core, which the
edge's sent-record cannot distinguish from cellular loss.  Appendix D
shows the resulting over-charge is still *bounded*: exactly
``c · (Internet-side loss)`` — unlike legacy 4G/5G's unbounded selfish
charging.

This example samples cycles with varying Internet loss, negotiates each
with the paper's rational strategies, and checks the measured over-charge
against the analytic bound.

Run:  python examples/generic_mobile_charging.py
"""

import random

from repro.core import (
    DataPlan,
    GenericDownlinkInstance,
    NegotiationEngine,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
)


def main() -> None:
    plan = DataPlan(c=0.5, cycle_duration_s=3600.0)
    rng = random.Random(8)
    print("generic downlink charging: server on the public Internet\n")
    print(f"{'inet loss':>10s} {'cell loss':>10s} {'ideal x̂ (MB)':>13s} "
          f"{'negotiated (MB)':>16s} {'over-charge':>12s} {'bound':>8s}")

    for internet_loss_pct in (0, 1, 3, 5, 10):
        internet_sent = 1_000_000_000
        core_received = int(internet_sent * (1 - internet_loss_pct / 100))
        cellular_loss = rng.uniform(0.02, 0.06)
        device_received = int(core_received * (1 - cellular_loss))
        instance = GenericDownlinkInstance(internet_sent, core_received, device_received)

        # The edge vendor's sent-record is the *Internet* server's count;
        # the operator's received-record comes from the device as usual.
        result = NegotiationEngine(
            plan,
            OptimalStrategy(PartyKnowledge(PartyRole.EDGE, internet_sent, device_received)),
            OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, device_received, internet_sent)),
        ).run()

        ideal = instance.ideal_charge(plan)
        overcharge = result.volume - ideal
        bound = instance.overcharge_bound(plan)
        print(f"{internet_loss_pct:>9d}% {cellular_loss:>9.1%} {ideal / 1e6:>13.1f} "
              f"{result.volume / 1e6:>16.1f} {overcharge / 1e6:>10.1f}MB "
              f"{bound / 1e6:>6.1f}MB")
        assert overcharge <= bound + 1

    print("\nThe over-charge never exceeds c × (Internet-side loss) — Appendix D's")
    print("bound — so even outside the edge, TLC beats legacy 4G/5G's unbounded")
    print("selfish charging.  (Full downlink support is the paper's future work.)")


if __name__ == "__main__":
    main()
