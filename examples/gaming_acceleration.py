"""Online gaming acceleration: QoS priority vs. the charging gap.

Tencent's King-of-Glory acceleration (§2.2) maps player-control traffic
onto a dedicated QCI-7 LTE session.  This example runs the same gaming
trace twice under a saturated cell — once as best-effort QCI 9, once
accelerated at QCI 7 — and shows both effects the paper reports:
strict priority protects latency *and* shrinks the loss-induced
charging gap (Figure 12d: gaming's gap is negligible even congested).

Run:  python examples/gaming_acceleration.py
"""

from dataclasses import replace

from repro.experiments import run_scenario
from repro.experiments.scenarios import GAMING_DL


def run_variant(qci: int, label: str):
    workload = replace(GAMING_DL.workload, name=f"gaming-qci{qci}", qci=qci)
    config = GAMING_DL.with_(
        name=f"gaming-qci{qci}-dl",
        workload=workload,
        n_cycles=4,
        background_mbps=160.0,  # saturated cell
        base_loss=0.0,          # isolate the congestion effect
        seed=3,
    )
    result = run_scenario(config)
    loss = sum(u.loss_bytes for u in result.usages)
    sent = sum(u.true_sent for u in result.usages) or 1
    print(f"{label:24s} loss {loss / sent:6.2%}   "
          f"legacy gap {result.mean_delta_mb_per_hr('legacy'):6.3f} MB/hr "
          f"(ε {result.mean_epsilon('legacy'):5.2%})   "
          f"TLC gap {result.mean_delta_mb_per_hr('tlc-optimal'):6.3f} MB/hr")
    return result


def main() -> None:
    print("King-of-Glory downlink under 160 Mbps background traffic\n")
    best_effort = run_variant(9, "best-effort (QCI 9)")
    accelerated = run_variant(7, "accelerated (QCI 7)")

    be_loss = sum(u.loss_bytes for u in best_effort.usages)
    acc_loss = sum(u.loss_bytes for u in accelerated.usages)
    print(f"\nQCI-7 priority eliminates {1 - acc_loss / max(be_loss, 1):.0%} of the "
          "congestion loss the best-effort session suffers —")
    print("higher QoS keeps both the game playable and the bill honest, "
          "and TLC closes what little gap remains.")


if __name__ == "__main__":
    main()
