"""Targeted-advertisement WebCam streaming (§2.2 of the paper).

The Moscow-billboard scenario: roadside cameras stream car images over
LTE 24×7 to an edge server that picks ads.  The advertiser pays by
volume, wants no over-billing, and cannot afford added latency.

This example runs the full simulated stack — camera workload, radio,
eNodeB, SPGW charging, RRC COUNTER CHECK — across several charging
cycles under congestion, then compares what the vendor pays under
legacy 4G/5G vs. TLC.

Run:  python examples/targeted_ads_webcam.py
"""

from repro.experiments import run_scenario
from repro.experiments.scenarios import WEBCAM_RTSP_UL


def main() -> None:
    config = WEBCAM_RTSP_UL.with_(
        n_cycles=6,
        cycle_duration_s=60.0,  # compressed cycles; volumes report as MB/hr
        background_mbps=140.0,  # a congested cell on the highway
        seed=7,
    )
    print(f"scenario     : {config.name} (RTSP 1080p30 uplink, "
          f"{config.background_mbps:.0f} Mbps background)")
    result = run_scenario(config)
    print(f"stream rate  : {result.measured_bitrate_bps / 1e6:.2f} Mbps "
          f"({result.measured_bitrate_bps * 3600 / 8 / 1e6:.0f} MB/hr)")

    loss = sum(u.loss_bytes for u in result.usages)
    sent = sum(u.true_sent for u in result.usages)
    print(f"data loss    : {loss / 1e6:.2f} MB of {sent / 1e6:.1f} MB "
          f"({loss / sent:.1%}) — charged by the gateway, never delivered\n")

    print(f"{'scheme':14s} {'gap Δ (MB/hr)':>14s} {'gap ratio ε':>12s} {'rounds':>7s}")
    for scheme in ("legacy", "tlc-random", "tlc-optimal"):
        print(
            f"{scheme:14s} {result.mean_delta_mb_per_hr(scheme):>14.2f} "
            f"{result.mean_epsilon(scheme):>11.2%} {result.mean_rounds(scheme):>7.1f}"
        )

    reduction = 1 - (
        result.mean_delta_mb_per_hr("tlc-optimal") / result.mean_delta_mb_per_hr("legacy")
    )
    print(f"\nTLC-optimal cuts the advertiser's charging gap by {reduction:.0%} "
          f"(paper: 80.2% for RTSP WebCam)")


if __name__ == "__main__":
    main()
