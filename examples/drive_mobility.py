"""A drive test: real inter-cell handovers under TLC accounting.

The targeted-ad cameras of §2.2 are roadside, but the *cars* they track —
and V2X devices generally (§8) — move through cells.  This example puts a
streaming device on a two-cell network, drives it back and forth with X2
handovers every few seconds, and accounts the cycle with TLC:

* the SPGW charges continuously across cells (one operator, one gateway);
* the modem's counters travel with the UE, so the RRC COUNTER CHECK
  record stays continuous — tamper resilience survives mobility;
* handover interruptions cost a little loss (less with X2), which TLC's
  negotiation cancels like any other loss class.

Run:  python examples/drive_mobility.py
"""

from repro.cellular import CellularNetwork, NetworkConfig, RadioProfile, make_test_imsi
from repro.core import (
    DataPlan,
    NegotiationEngine,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
)
from repro.edge import CounterCheckMonitor, EdgeDevice, EdgeServer
from repro.netsim import Direction, EventLoop, StreamRegistry
from repro.workloads import VRIDGE_GVSP, FrameWorkload

DURATION_S = 120.0
HANDOVER_EVERY_S = 8.0
INTERRUPTION_S = 0.3  # roaming-style break: no-X2 overflows the buffer


def run_drive(x2_forwarding: bool, seed: int = 21):
    loop = EventLoop()
    net = CellularNetwork(loop, StreamRegistry(seed), NetworkConfig(n_cells=2))
    imsi = make_test_imsi(1)
    flow = "dashcam"
    counter_monitor = CounterCheckMonitor(loop)
    device = EdgeDevice(loop, imsi, flow)
    access = net.attach_device(
        imsi, RadioProfile(), deliver=device.deliver,
        counter_report_sink=counter_monitor.on_report, cell=0,
    )
    device.bind(access)
    net.create_bearer(imsi, flow)
    server = EdgeServer(loop, net, flow)
    # A heavy downlink feed to the vehicle (in-car VR/AR passenger scenario).
    workload = FrameWorkload(loop, StreamRegistry(seed), VRIDGE_GVSP, server)
    workload.start(until=DURATION_S)
    # Drive: alternate cells every few seconds.
    cell = 0
    t = HANDOVER_EVERY_S
    while t < DURATION_S:
        cell = 1 - cell
        loop.schedule_at(t, net.handover, imsi, cell, INTERRUPTION_S, x2_forwarding)
        t += HANDOVER_EVERY_S
    loop.run_until(DURATION_S + 2.0)
    net.serving_enodeb(imsi).ue(str(imsi)).rrc.perform_counter_check()

    sent = server.dl_monitor.true_usage(0, DURATION_S + 2)
    received = device.dl_monitor.true_usage(0, DURATION_S + 2)
    charged = net.gateway_usage(flow, 0, DURATION_S + 2, Direction.DOWNLINK)
    rrc_record = counter_monitor.reported_usage(0, DURATION_S + 2)
    return net, sent, received, charged, rrc_record


def main() -> None:
    print(f"drive test: {DURATION_S:.0f}s of streaming, handover every "
          f"{HANDOVER_EVERY_S:.0f}s between two cells\n")
    plan = DataPlan(c=0.5, cycle_duration_s=DURATION_S)
    for x2 in (False, True):
        net, sent, received, charged, rrc = run_drive(x2)
        loss = sent - received
        label = "with X2 forwarding" if x2 else "no X2 (buffer discarded)"
        result = NegotiationEngine(
            plan,
            OptimalStrategy(PartyKnowledge(PartyRole.EDGE, sent, received),
                            accept_tolerance=0.05),
            OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, rrc, charged),
                            accept_tolerance=0.05),
        ).run()
        expected = plan.expected_charge(sent, received)
        print(f"{label}:")
        print(f"  handovers            : {net.handovers}")
        print(f"  sent / received      : {sent / 1e6:.2f} / {received / 1e6:.2f} MB "
              f"(mobility loss {loss / max(sent, 1):.2%})")
        print(f"  gateway charged      : {charged / 1e6:.2f} MB  <- legacy bill")
        print(f"  RRC record (continuous across cells): {rrc / 1e6:.2f} MB")
        print(f"  TLC negotiated       : {result.volume / 1e6:.2f} MB "
              f"(x̂ = {expected / 1e6:.2f} MB) in {result.rounds} round(s)\n")
    print("X2 forwarding recovers the buffered tail of each handover; either")
    print("way, TLC charges the agreed weight of what was actually lost.")


if __name__ == "__main__":
    main()
