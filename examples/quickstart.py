"""Quickstart: negotiate one charging cycle and publicly verify the PoC.

The minimal TLC lifecycle, with no network simulation: two parties hold
usage records for a cycle, run the loss-selfishness cancellation with
their rational (minimax/maximin) strategies, produce a signed
Proof-of-Charging, and a third party verifies it with Algorithm 2.

Run:  python examples/quickstart.py
"""

import random

from repro import DataPlan, NegotiationDriver, PublicVerifier, Role
from repro.core import OptimalStrategy, PartyKnowledge, PartyRole
from repro.crypto import generate_keypair
from repro.poc import PlanParams


def main() -> None:
    # --- Setup: the data plan and both parties' key pairs (§5.3.1). -----
    plan = DataPlan(c=0.5, cycle_duration_s=3600.0)  # charge half the lost data
    rng = random.Random(2019)
    edge_key = generate_keypair(1024, rng)
    operator_key = generate_keypair(1024, rng)

    # --- The cycle's records: the edge sent 1 GB, 7% was lost. ----------
    sent_bytes = 1_000_000_000
    received_bytes = 930_000_000
    print(f"edge sent      : {sent_bytes:>13,} B")
    print(f"network got    : {received_bytes:>13,} B   (loss {sent_bytes - received_bytes:,} B)")
    expected = plan.expected_charge(sent_bytes, received_bytes)
    print(f"fair charge x̂  : {expected:>13,.0f} B   (= x̂_o + c·(x̂_e − x̂_o))")

    # --- Negotiation (Algorithm 1 over the CDR/CDA/PoC protocol). -------
    # Each party claims its *estimate of the other's metric* — the
    # optimal minimax/maximin play that converges in one round.
    driver = NegotiationDriver(
        plan,
        cycle_start=0.0,
        edge_strategy=OptimalStrategy(
            PartyKnowledge(PartyRole.EDGE, sent_bytes, received_bytes)
        ),
        operator_strategy=OptimalStrategy(
            PartyKnowledge(PartyRole.OPERATOR, received_bytes, sent_bytes)
        ),
        edge_key=edge_key,
        operator_key=operator_key,
        rng=rng,
        initiator=Role.OPERATOR,
    )
    result = driver.run()
    print(f"\nnegotiated x   : {result.volume:>13,} B in {result.rounds} round(s), "
          f"{result.messages} messages ({result.bytes_on_wire} B on the wire)")
    assert result.volume == int(expected)

    # --- Public verification (Algorithm 2), e.g. by the FCC. ------------
    verifier = PublicVerifier(plan)
    report = verifier.verify(
        result.poc,
        PlanParams(0.0, 3600.0, plan.c),
        edge_key.public,
        operator_key.public,
    )
    print(f"\nthird-party verification: ok={report.ok}")
    print(f"  claims recovered from the PoC chain: edge={report.edge_claim:,}, "
          f"operator={report.operator_claim:,}")

    # A replayed PoC is rejected — the nonce registry catches it.
    replay = verifier.verify(
        result.poc, PlanParams(0.0, 3600.0, plan.c), edge_key.public, operator_key.public
    )
    print(f"  replaying the same PoC: ok={replay.ok} ({replay.failure.value})")


if __name__ == "__main__":
    main()
