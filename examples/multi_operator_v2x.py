"""Multi-operator V2X edge (§8's multi-access extension).

A vehicular edge app bonds two operators' networks for coverage.  TLC
runs one independent negotiation per operator (each with its own
tamper-resilient monitor), and the per-operator charges must add up to
the expected total.

Run:  python examples/multi_operator_v2x.py
"""

from repro.experiments.multi_operator import OperatorShare, run_multi_operator
from repro.experiments.scenarios import WEBCAM_UDP_UL


def main() -> None:
    shares = [OperatorShare("operator-A", 0.65), OperatorShare("operator-B", 0.35)]
    config = WEBCAM_UDP_UL.with_(name="v2x-camera", cycle_duration_s=60.0)
    print("V2X roadside camera splitting uplink across two operators (65/35)\n")

    result = run_multi_operator(config, shares, seed=5, n_cycles=4)
    for name, scenario in result.per_operator.items():
        print(f"{name}: {scenario.measured_bitrate_bps / 1e6:.2f} Mbps, "
              f"legacy gap {scenario.mean_delta_mb_per_hr('legacy'):.2f} MB/hr, "
              f"TLC gap {scenario.mean_delta_mb_per_hr('tlc-optimal'):.2f} MB/hr, "
              f"{scenario.mean_rounds('tlc-optimal'):.1f} round(s)")

    print(f"\ncombined expected charge : {result.total_expected() / 1e6:.2f} MB")
    print(f"combined TLC charge      : {result.total_charged('tlc-optimal') / 1e6:.2f} MB "
          f"(gap {result.combined_gap_ratio('tlc-optimal'):.2%})")
    print(f"combined legacy charge   : {result.total_charged('legacy') / 1e6:.2f} MB "
          f"(gap {result.combined_gap_ratio('legacy'):.2%})")
    print("\nPer-operator negotiation keeps each bill independently bounded "
          "and verifiable; the totals reconcile.")


if __name__ == "__main__":
    main()
