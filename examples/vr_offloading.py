"""Edge-based VR offloading with end-of-cycle PoC construction.

The Verizon/Envrmnt scenario (§2.2): a VR headset offloads rendering to
the operator's edge; 1080p60 graphical frames stream downlink over GVSP
at ~9 Mbps.  Heavy volume makes selfish charging tempting and loss
expensive, so this example takes one cycle's *measured records* all the
way through the signed CDR → CDA → PoC exchange and third-party
verification — the complete TLC pipeline on simulated traffic.

Run:  python examples/vr_offloading.py
"""

import random

from repro.core import DataPlan, OptimalStrategy, PartyKnowledge, PartyRole
from repro.crypto import generate_keypair
from repro.edge.device import EL20, Z840
from repro.experiments.runner import ScenarioRunner
from repro.experiments.scenarios import VRIDGE_DL
from repro.poc import NegotiationDriver, PlanParams, PublicVerifier


def main() -> None:
    config = VRIDGE_DL.with_(n_cycles=1, cycle_duration_s=120.0, seed=42,
                             background_mbps=120.0)
    print("simulating one VR charging cycle (GVSP downlink, congested cell)...")
    runner = ScenarioRunner(config)
    runner.simulate()
    usage = runner.collect()[0]

    print(f"  server sent            : {usage.true_sent / 1e6:9.2f} MB")
    print(f"  headset received       : {usage.true_received / 1e6:9.2f} MB")
    print(f"  gateway counted        : {usage.gateway_count / 1e6:9.2f} MB  <- legacy bill")
    print(f"  edge's record          : {usage.edge_sent_record / 1e6:9.2f} MB")
    print(f"  operator's RRC record  : {usage.operator_received_record / 1e6:9.2f} MB")

    plan = DataPlan(c=config.c, cycle_duration_s=config.cycle_duration_s)
    expected = plan.expected_charge(usage.true_sent, usage.true_received)
    print(f"  fair charge x̂          : {expected / 1e6:9.2f} MB (c={plan.c})")

    # End-of-cycle negotiation with real RSA-1024 signatures.  The edge
    # endpoint is an EL20-class gateway, the operator runs in the core.
    rng = random.Random(42)
    edge_key = generate_keypair(1024, rng)
    operator_key = generate_keypair(1024, rng)
    driver = NegotiationDriver(
        plan, usage.cycle.t_start,
        OptimalStrategy(
            PartyKnowledge(PartyRole.EDGE, usage.edge_sent_record,
                           usage.edge_received_estimate),
            accept_tolerance=0.05,
        ),
        OptimalStrategy(
            PartyKnowledge(PartyRole.OPERATOR, usage.operator_received_record,
                           usage.operator_sent_estimate),
            accept_tolerance=0.05,
        ),
        edge_key, operator_key, rng,
        edge_profile=EL20, operator_profile=Z840,
    )
    result = driver.run()
    legacy_gap = abs(usage.gateway_count - expected)
    tlc_gap = abs(result.volume - expected)
    print(f"\nnegotiation: {result.rounds} round(s), {result.elapsed_s * 1000:.1f} ms "
          f"({result.crypto_fraction:.0%} crypto), PoC {len(result.poc.encode())} B")
    print(f"  TLC charge             : {result.volume / 1e6:9.2f} MB")
    print(f"  charging gap           : legacy {legacy_gap / 1e6:.2f} MB "
          f"-> TLC {tlc_gap / 1e6:.2f} MB")

    report = PublicVerifier(plan).verify(
        result.poc,
        PlanParams(usage.cycle.t_start, usage.cycle.t_end, plan.c),
        edge_key.public, operator_key.public,
    )
    print(f"\npublic verification (e.g. FCC): ok={report.ok} — the PoC proves both "
          f"parties signed off on {report.volume / 1e6:.2f} MB")


if __name__ == "__main__":
    main()
