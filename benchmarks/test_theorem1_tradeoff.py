"""Theorem 1's loss-latency trade-off, made concrete.

The paper proves (§3.3, Appendix A) that any design closing the
loss-induced gap by synchronizing charging records must delay traffic.
This benchmark runs the same lossy uplink twice:

* **UDP** — the edge-native choice: low latency, but the gateway counts
  less than the app sent (a charging gap proportional to the loss);
* **TCP-like ARQ** — recovery closes the sent-vs-received gap, but mean
  delivery latency grows by the retransmission delays, and the gateway
  additionally charges every retransmission (spurious ones included —
  the [12] over-charging vector).

TLC's answer is to accept the gap during the cycle and cancel it at the
end — which is why the UDP row plus TLC is the paper's operating point.
"""

from repro.cellular import CellularNetwork, RadioProfile, make_test_imsi
from repro.edge import EdgeDevice, EdgeServer, ReliableUplinkSession
from repro.netsim import Direction, EventLoop, StreamRegistry

PAYLOAD = 600_000
LOSS = 0.15


def _run_udp():
    loop = EventLoop()
    net = CellularNetwork(loop, StreamRegistry(7))
    imsi = make_test_imsi(1)
    device = EdgeDevice(loop, imsi, "udp-app")
    access = net.attach_device(imsi, RadioProfile(base_loss=LOSS), deliver=device.deliver)
    device.bind(access)
    net.create_bearer(imsi, "udp-app")
    server = EdgeServer(loop, net, "udp-app")
    for i in range(PAYLOAD // 1400):
        loop.schedule_at(i * 0.002, device.send, 1400)
    loop.run_until(10.0)
    sent = device.ul_monitor.total
    received = net.gateway_usage("udp-app", 0, loop.now(), Direction.UPLINK)
    latencies = server.stats.latencies
    return {
        "sent": sent,
        "goodput": received,
        "gap": sent - received,
        "charged": received,
        "latency_ms": 1000 * sum(latencies) / max(1, len(latencies)),
    }


def _run_tcp():
    loop = EventLoop()
    net = CellularNetwork(loop, StreamRegistry(7))
    imsi = make_test_imsi(1)
    device = EdgeDevice(loop, imsi, "tcp-app")
    access = net.attach_device(imsi, RadioProfile(base_loss=LOSS), deliver=device.deliver)
    device.bind(access)
    net.create_bearer(imsi, "tcp-app")
    server = EdgeServer(loop, net, "tcp-app")
    session = ReliableUplinkSession(loop, device, server, rto_s=0.15)
    session.offer(PAYLOAD)
    loop.run_until(30.0)
    charged = net.gateway_usage("tcp-app", 0, loop.now(), Direction.UPLINK)
    return {
        "sent": device.ul_monitor.total,
        "goodput": session.goodput_bytes,
        "gap": PAYLOAD - session.goodput_bytes,
        "charged": charged,
        "latency_ms": 1000 * session.mean_delivery_latency(),
        "spurious": session.sender.spurious_retransmissions,
        "overhead": session.sender.overhead_ratio,
    }


def test_theorem1_loss_latency_tradeoff(benchmark, archive):
    udp, tcp = benchmark.pedantic(lambda: (_run_udp(), _run_tcp()), rounds=1, iterations=1)

    archive(
        "theorem1_tradeoff",
        "Theorem 1: loss-latency trade-off on a 15%-loss uplink\n"
        f"  UDP: gap {udp['gap'] / 1e3:7.1f} kB "
        f"({udp['gap'] / udp['sent']:.1%} of sent), "
        f"mean latency {udp['latency_ms']:5.1f} ms\n"
        f"  TCP: gap {tcp['gap'] / 1e3:7.1f} kB, "
        f"mean latency {tcp['latency_ms']:5.1f} ms, "
        f"charged/goodput {tcp['charged'] / max(1, tcp['goodput']):.2f}x "
        f"({tcp['spurious']} spurious retransmissions)",
    )

    # UDP leaves a loss-proportional gap at low latency.
    assert udp["gap"] / udp["sent"] > 0.08
    # TCP closes the gap...
    assert tcp["gap"] == 0
    # ...but delays delivery...
    assert tcp["latency_ms"] > 2 * udp["latency_ms"]
    # ...and the gateway charges the recovery traffic on top of goodput.
    assert tcp["charged"] > tcp["goodput"] * 1.05
