"""Shared helpers for the figure/table regeneration benchmarks.

Each benchmark regenerates one of the paper's tables or figures, prints
the rendered rows/series (captured into ``bench_output.txt`` by the
harness invocation) and archives them under ``benchmarks/out/`` so
EXPERIMENTS.md can reference exact reproduced numbers.
"""

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture()
def archive(out_dir, capsys):
    """Return a writer that prints and persists a rendered result."""

    def _archive(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (out_dir / f"{name}.txt").write_text(text + "\n")

    return _archive
