"""Shared helpers for the figure/table regeneration benchmarks.

Each benchmark regenerates one of the paper's tables or figures, prints
the rendered rows/series (captured into ``bench_output.txt`` by the
harness invocation) and archives them under ``benchmarks/out/`` so
EXPERIMENTS.md can reference exact reproduced numbers.  Archival goes
through :class:`repro.obs.RunManifest`, so every artifact lands in the
uniform ``out/<name>.txt`` layout and a session-level
``bench.manifest.json`` records names, sizes, digests and the engine
configuration of the producing run.

Scenario execution goes through :mod:`repro.experiments.parallel`:
``REPRO_WORKERS=N`` fans the scenario sweeps out over N processes, and
results land in the content-addressed cache under ``benchmarks/.cache/``
so a re-run only simulates scenarios whose config changed.  Set
``REPRO_CACHE_DIR=off`` to force every scenario to simulate.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import parallel
from repro.obs import RunManifest

OUT_DIR = Path(__file__).parent / "out"
CACHE_DIR = Path(__file__).parent / ".cache"


@pytest.fixture(scope="session", autouse=True)
def scenario_engine():
    """Point the default engine at the benchmark cache (env-overridable)."""
    workers = int(os.environ.get("REPRO_WORKERS", "0") or 0)
    cache_dir = os.environ.get("REPRO_CACHE_DIR", str(CACHE_DIR))
    if cache_dir.lower() in ("", "0", "off", "none"):
        cache_dir = None
    parallel.configure(workers=workers, cache_dir=cache_dir)
    yield
    parallel.configure(workers=0, cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def bench_manifest(out_dir, scenario_engine):
    """Session manifest indexing every artifact the benchmarks archive."""
    manifest = RunManifest(
        name="bench", out_dir=out_dir, command="pytest benchmarks"
    )
    manifest.record_engine(
        workers=parallel._default_workers,
        cache_dir=str(parallel._default_cache.directory)
        if parallel._default_cache
        else None,
    )
    yield manifest
    manifest.save()


@pytest.fixture()
def archive(bench_manifest, capsys):
    """Return a writer that prints and persists a rendered result."""

    def _archive(name: str, text: str) -> None:
        print(f"\n{text}\n")
        bench_manifest.write_text(name, text)

    return _archive
