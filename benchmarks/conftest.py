"""Shared helpers for the figure/table regeneration benchmarks.

Each benchmark regenerates one of the paper's tables or figures, prints
the rendered rows/series (captured into ``bench_output.txt`` by the
harness invocation) and archives them under ``benchmarks/out/`` so
EXPERIMENTS.md can reference exact reproduced numbers.

Scenario execution goes through :mod:`repro.experiments.parallel`:
``REPRO_WORKERS=N`` fans the scenario sweeps out over N processes, and
results land in the content-addressed cache under ``benchmarks/.cache/``
so a re-run only simulates scenarios whose config changed.  Set
``REPRO_CACHE_DIR=off`` to force every scenario to simulate.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import parallel

OUT_DIR = Path(__file__).parent / "out"
CACHE_DIR = Path(__file__).parent / ".cache"


@pytest.fixture(scope="session", autouse=True)
def scenario_engine():
    """Point the default engine at the benchmark cache (env-overridable)."""
    workers = int(os.environ.get("REPRO_WORKERS", "0") or 0)
    cache_dir = os.environ.get("REPRO_CACHE_DIR", str(CACHE_DIR))
    if cache_dir.lower() in ("", "0", "off", "none"):
        cache_dir = None
    parallel.configure(workers=workers, cache_dir=cache_dir)
    yield
    parallel.configure(workers=0, cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture()
def archive(out_dir, capsys):
    """Return a writer that prints and persists a rendered result."""

    def _archive(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (out_dir / f"{name}.txt").write_text(text + "\n")

    return _archive
