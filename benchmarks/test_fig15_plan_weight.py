"""Figure 15: TLC-optimal's charge reduction μ across data plans c.

Paper shape: smaller c ⇒ larger reductions over legacy (legacy
over-charges lost downlink data that a small-c plan doesn't bill);
at c = 1 TLC coincides with honest legacy and μ ≈ 0.
"""

from repro.experiments.figures import figure15, render_figure15


def _median(points):
    return points[len(points) // 2][0] if points else 0.0


def test_figure15_plan_weight_sweep(benchmark, archive):
    curves = benchmark.pedantic(figure15, kwargs={"n_cycles": 3}, rounds=1, iterations=1)
    archive("figure15", render_figure15(curves))

    medians = {c: _median(points) for c, points in curves.items()}
    assert medians[0.0] > medians[0.25] > medians[0.5] > medians[0.75]
    assert abs(medians[1.0]) < 2.0  # c = 1: TLC ≈ honest legacy
    assert medians[0.0] > 3.0  # percent: c = 0 reduces the most
