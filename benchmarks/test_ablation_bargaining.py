"""Ablation: TLC's minimax play vs. classical Rubinstein bargaining.

The paper positions TLC as bargaining theory generalized to the cellular
edge (§9).  The generalization buys something concrete: classical
alternating-offers concession needs multiple rounds and lands wherever
the discount factors point, while TLC's cross-checked minimax play hits
the data plan's x̂ in one round.  This bench quantifies both.
"""

import statistics

from repro.core import DataPlan, NegotiationEngine, OptimalStrategy, PartyKnowledge, PartyRole
from repro.core.bargaining import RubinsteinStrategy

X_E, X_O = 1_000_000, 900_000
EXPECTED = 950_000  # c = 0.5
PLAN = DataPlan(c=0.5)


def _edge(cls=OptimalStrategy, **kw):
    return cls(PartyKnowledge(PartyRole.EDGE, X_E, X_O), **kw)


def _operator(cls=OptimalStrategy, **kw):
    return cls(PartyKnowledge(PartyRole.OPERATOR, X_O, X_E), **kw)


def test_ablation_bargaining_vs_minimax(benchmark, archive):
    def run():
        rows = []
        tlc = NegotiationEngine(PLAN, _edge(), _operator()).run()
        rows.append(("TLC minimax", 1.0, tlc.rounds, tlc.volume))
        for delta in (0.95, 0.8, 0.6):
            results = [
                NegotiationEngine(
                    PLAN,
                    _edge(RubinsteinStrategy, delta=delta),
                    _operator(RubinsteinStrategy, delta=delta),
                ).run()
            ]
            rows.append((
                f"Rubinstein δ={delta}",
                delta,
                statistics.mean(r.rounds for r in results),
                statistics.mean(r.volume for r in results),
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"Ablation: bargaining dynamics (x̂ = {EXPECTED:,})",
        f"{'strategy':20s} {'rounds':>7s} {'outcome':>10s} {'gap':>9s}",
    ]
    for label, _, mean_rounds, volume in rows:
        lines.append(
            f"{label:20s} {mean_rounds:>7.1f} {volume:>10,.0f} "
            f"{abs(volume - EXPECTED):>9,.0f}"
        )
    archive("ablation_bargaining", "\n".join(lines))

    tlc_row = rows[0]
    assert tlc_row[2] == 1 and tlc_row[3] == EXPECTED
    for label, delta, mean_rounds, volume in rows[1:]:
        assert mean_rounds >= 2, label  # concession takes rounds
        assert X_O <= volume <= X_E, label  # but stays bounded


def test_economics_deployment_incentive(benchmark, archive):
    """§8's market argument: the over-charging legacy operator bleeds
    subscribers to the TLC operator until its revenue ranking flips."""
    from repro.core.economics import Market, MarketConfig, OperatorModel
    from repro.netsim.rng import StreamRegistry

    def run():
        market = Market(
            [
                OperatorModel("TLC operator", deploys_tlc=True),
                OperatorModel("legacy +8%", deploys_tlc=False, overcharge_factor=1.08),
            ],
            MarketConfig(),
            StreamRegistry(11),
        )
        trajectory = []
        for month in (6, 12, 24, 36):
            market.run(month - market.state.months)
            trajectory.append(
                (month, market.market_share("TLC operator"),
                 market.state.revenue["TLC operator"],
                 market.state.revenue["legacy +8%"])
            )
        return trajectory

    trajectory = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: §8 deployment incentives (10k subscribers, 25% churn pool)",
             f"{'month':>6s} {'TLC share':>10s} {'TLC rev':>12s} {'legacy rev':>12s}"]
    for month, share, tlc_rev, legacy_rev in trajectory:
        lines.append(f"{month:>6d} {share:>9.1%} {tlc_rev:>12,.0f} {legacy_rev:>12,.0f}")
    archive("ablation_economics", "\n".join(lines))

    # Share drains monotonically toward the TLC operator...
    shares = [row[1] for row in trajectory]
    assert shares == sorted(shares)
    assert shares[-1] > 0.65
    # ...and cumulative revenue eventually flips despite the 8 % markup.
    final = trajectory[-1]
    assert final[2] > final[3]
