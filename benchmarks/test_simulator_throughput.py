"""Simulator performance: events/second and end-to-end packet rate.

Not a paper figure — housekeeping numbers a user sizing an experiment
campaign needs: how fast the DES core dispatches, and how many packets
per wall-second the full cellular path sustains.
"""

from repro.cellular import CellularNetwork, RadioProfile, make_test_imsi
from repro.edge import EdgeDevice, EdgeServer
from repro.netsim import EventLoop, StreamRegistry


def test_event_loop_dispatch_rate(benchmark):
    """Raw DES dispatch throughput (empty callbacks)."""

    def run():
        loop = EventLoop()
        for i in range(20_000):
            loop.schedule_at(i * 1e-6, _noop)
        return loop.run()

    dispatched = benchmark(run)
    assert dispatched == 20_000


def _noop():
    pass


def test_end_to_end_packet_rate(benchmark, archive):
    """Uplink packets through device → air → eNodeB → SPGW → server."""

    def run():
        loop = EventLoop()
        net = CellularNetwork(loop, StreamRegistry(1))
        imsi = make_test_imsi(1)
        device = EdgeDevice(loop, imsi, "perf")
        access = net.attach_device(imsi, RadioProfile(), deliver=device.deliver)
        device.bind(access)
        net.create_bearer(imsi, "perf")
        server = EdgeServer(loop, net, "perf")
        n = 5_000
        for i in range(n):
            loop.schedule_at(i * 0.001, device.send, 1000)
        loop.run()
        return server.stats.received

    received = benchmark(run)
    # The default radio's RSS walk can graze -95 dBm: a handful of air
    # losses over 5k packets is physical, not a harness bug.
    assert received >= 4_980
    packets_per_s = 5_000 / benchmark.stats["mean"]
    archive(
        "simulator_throughput",
        f"Simulator throughput on this host: {packets_per_s:,.0f} "
        "end-to-end packets/wall-second (full UL path)",
    )
