"""Simulator performance: events/second and end-to-end packet rate.

Not a paper figure — housekeeping numbers a user sizing an experiment
campaign needs: how fast the DES core dispatches, how many packets per
wall-second the full cellular path sustains, and how much the batched
per-UE kernel buys over the reference event-per-packet engine.
"""

import time

from repro.cellular import CellularNetwork, RadioProfile, make_test_imsi
from repro.edge import EdgeDevice, EdgeServer
from repro.experiments.runner import ScenarioRunner
from repro.experiments.scenarios import VRIDGE_DL, WEBCAM_UDP_UL
from repro.netsim import EventLoop, StreamRegistry


def test_event_loop_dispatch_rate(benchmark):
    """Raw DES dispatch throughput (empty callbacks)."""

    def run():
        loop = EventLoop()
        for i in range(20_000):
            loop.schedule_at(i * 1e-6, _noop)
        return loop.run()

    dispatched = benchmark(run)
    assert dispatched == 20_000


def _noop():
    pass


def test_end_to_end_packet_rate(benchmark, archive):
    """Uplink packets through device → air → eNodeB → SPGW → server."""

    def run():
        loop = EventLoop()
        net = CellularNetwork(loop, StreamRegistry(1))
        imsi = make_test_imsi(1)
        device = EdgeDevice(loop, imsi, "perf")
        access = net.attach_device(imsi, RadioProfile(), deliver=device.deliver)
        device.bind(access)
        net.create_bearer(imsi, "perf")
        server = EdgeServer(loop, net, "perf")
        n = 5_000
        for i in range(n):
            loop.schedule_at(i * 0.001, device.send, 1000)
        loop.run()
        return server.stats.received

    received = benchmark(run)
    # The default radio's RSS walk can graze -95 dBm: a handful of air
    # losses over 5k packets is physical, not a harness bug.
    assert received >= 4_980
    packets_per_s = 5_000 / benchmark.stats["mean"]
    archive(
        "simulator_throughput",
        f"Simulator throughput on this host: {packets_per_s:,.0f} "
        "end-to-end packets/wall-second (full UL path)",
    )


def _timed_simulate(config, kernel):
    """One scenario run; returns (air packets offered, cpu seconds)."""
    runner = ScenarioRunner(config, kernel=kernel)
    t0 = time.process_time()
    runner.simulate()
    dt = time.process_time() - t0
    assert runner.kernel_used == kernel
    enb = runner.network.enodeb
    packets = enb.uplink_air.offered.packets + enb.downlink_air.offered.packets
    return packets, dt


def test_scenario_kernel_speedup(archive):
    """Batched kernel vs. reference engine on the full scenario path.

    CPU time (``time.process_time``), interleaved reference/batched
    iterations, min of ``ROUNDS`` — the only methodology that survives
    a noisy shared host; wall-clock on this class of machine jitters by
    2-4x and would make any threshold meaningless.  The speedup target
    (10x) is a release gate for the batched kernel: measured headroom on
    the reference host is ~11x uplink / ~13x downlink.
    """
    ROUNDS = 5
    rows = [f"{'scenario':>12} {'packets':>8} {'ref pkt/s':>10} {'batched pkt/s':>14} {'speedup':>8}"]
    ref_cpu = batched_cpu = 0.0
    for scenario in (WEBCAM_UDP_UL, VRIDGE_DL):
        config = scenario.with_(n_cycles=2, cycle_duration_s=60.0)
        t_ref = t_bat = float("inf")
        packets = 0
        for _ in range(ROUNDS):  # interleaved: ambient load hits both alike
            packets, dt = _timed_simulate(config, "reference")
            t_ref = min(t_ref, dt)
            p2, dt = _timed_simulate(config, "batched")
            t_bat = min(t_bat, dt)
            assert p2 == packets  # bit-exact parity implies identical traffic
        ref_cpu += t_ref
        batched_cpu += t_bat
        rows.append(
            f"{scenario.name:>12} {packets:>8} {packets / t_ref:>10,.0f} "
            f"{packets / t_bat:>14,.0f} {t_ref / t_bat:>7.1f}x"
        )

    pooled = ref_cpu / batched_cpu
    rows.append(f"pooled speedup (sum ref cpu / sum batched cpu): {pooled:.1f}x")
    archive("kernel_speedup", "\n".join(rows))
    assert pooled >= 10.0, f"batched kernel speedup regressed: {pooled:.2f}x < 10x"


def test_fleet_chaos_kernel_speedup(archive):
    """General-mode lanes vs. the reference engine at fleet scale.

    Outage sessions can't take the fold loops (path state changes
    mid-frame), so they ride the per-hop general executor — a smaller
    win per event, but one that *grows* with population because the
    reference pays O(log N) heap dispatch on a shared 1000-UE loop
    while lanes stay per-UE.  Gate: ≥5x pooled CPU on a 1000-UE fleet
    under a chaos-adjacent outage profile (measured ~6x on the
    reference host).  Same methodology as the scenario gate above:
    process_time, interleaved, min of ROUNDS.
    """
    from repro.experiments.fleet import FleetConfig, build_shards
    from repro.experiments.fleet_runner import FleetShardRunner

    ROUNDS = 2
    config = FleetConfig(
        ues=1000,
        shard_size=1000,
        seed=3,
        n_cycles=2,
        cycle_duration_s=10.0,
        outage_eta=0.1,
    )
    (shard,) = build_shards(config)
    t_ref = t_bat = float("inf")
    for _ in range(ROUNDS):
        for kernel in ("reference", "batched"):
            runner = FleetShardRunner(shard, kernel=kernel)
            t0 = time.process_time()
            runner.run()
            dt = time.process_time() - t0
            assert set(runner.kernel_used.values()) == {kernel}
            if kernel == "reference":
                t_ref = min(t_ref, dt)
            else:
                t_bat = min(t_bat, dt)

    speedup = t_ref / t_bat
    archive(
        "fleet_chaos_speedup",
        f"1000-UE chaos fleet (outage_eta=0.1): reference {t_ref:.1f}s cpu, "
        f"batched general-mode {t_bat:.1f}s cpu, speedup {speedup:.1f}x",
    )
    assert speedup >= 5.0, f"chaos fleet speedup regressed: {speedup:.2f}x < 5x"


def test_fleet_chaos_profile_kernel_speedup(archive):
    """The outage fleet above, plus the full canned ``chaos`` fault
    profile (burst loss, reordering, duplication, blackout windows,
    counter resets, clock drift) replayed inside the lanes.

    Fault decisions are pure per-packet Python on both engines, so the
    profile *narrows* the gap versus the outage-only gate — but the
    lane's segment-bisected decision windows keep it ≥5x pooled CPU
    (measured ~5.5x on the reference host; the reference engine pays a
    per-packet fnmatch walk over every spec on top of shared-heap
    dispatch).  One round: each engine pass is minutes of CPU here and
    ``process_time`` is already immune to wall-clock jitter.
    """
    from repro.experiments.fleet import FleetConfig, build_shards
    from repro.experiments.fleet_runner import FleetShardRunner

    config = FleetConfig(
        ues=1000,
        shard_size=1000,
        seed=3,
        n_cycles=2,
        cycle_duration_s=10.0,
        outage_eta=0.1,
        fault_profile="chaos",
    )
    (shard,) = build_shards(config)
    timings = {}
    for kernel in ("reference", "batched"):
        runner = FleetShardRunner(shard, kernel=kernel)
        t0 = time.process_time()
        runner.run()
        timings[kernel] = time.process_time() - t0
        # The acceptance bar: no session falls back — the old
        # "fault injection active" refusal is gone.
        assert set(runner.kernel_used.values()) == {kernel}

    speedup = timings["reference"] / timings["batched"]
    archive(
        "fleet_chaos_profile_speedup",
        f"1000-UE chaos fleet (outage_eta=0.1 + canned 'chaos' fault profile): "
        f"reference {timings['reference']:.1f}s cpu, batched general-mode "
        f"{timings['batched']:.1f}s cpu, speedup {speedup:.1f}x",
    )
    assert speedup >= 5.0, f"chaos-profile fleet speedup regressed: {speedup:.2f}x < 5x"
