"""Figure 16: latency friendliness.

16a — RTT within the charging cycle is unchanged by TLC (it does no
in-cycle work).  16b — at cycle end, TLC-optimal negotiates in 1 round;
TLC-random needs ~2.7–4.6 (the paper's measured range).
"""

from repro.experiments.figures import figure16a, figure16b


def test_figure16a_in_cycle_rtt(benchmark, archive):
    table = benchmark.pedantic(figure16a, kwargs={"pings": 150}, rounds=1, iterations=1)
    archive("figure16a", table.render())

    for device, without, with_tlc in table.rows:
        assert abs(with_tlc - without) / without < 0.12, device
    rtts = {row[0]: row[1] for row in table.rows}
    # Device ordering from the paper: EL20 fastest, Pixel slowest.
    assert rtts["HPE EL20"] < rtts["S7 Edge"] < rtts["Pixel 2 XL"]


def test_figure16b_negotiation_rounds(benchmark, archive):
    table = benchmark.pedantic(figure16b, kwargs={"n_cycles": 4}, rounds=1, iterations=1)
    archive("figure16b", table.render())

    for app, random_rounds, optimal_rounds in table.rows:
        assert optimal_rounds <= 1.3, f"{app}: optimal not ~1 round"
        assert 1.0 <= random_rounds <= 8.0, f"{app}: random rounds implausible"
    # Random needs more rounds than optimal somewhere (paper: everywhere).
    assert any(row[1] > row[2] + 0.5 for row in table.rows)
