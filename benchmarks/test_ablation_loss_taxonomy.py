"""Ablation: the full §3.1 loss taxonomy under one roof.

Runs the same downlink workload with each loss class switched on in
isolation — PHY intermittent connectivity, link-layer handover mobility
(with and without X2 forwarding), IP congestion, and application-layer
SLA drops — and shows that TLC's gap reduction is agnostic to *where*
the data was lost, as the paper's Eq.-1 formulation promises.
"""

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import VRIDGE_DL

CONDITIONS = [
    ("baseline (phy floor)", {}),
    ("phy-intermittent η=10%", {"outage_eta": 0.10}),
    # Roaming-style handovers (reference [10]): 300 ms breaks, no X2.
    ("link-mobility (HO/5s)", {"handover_interval_s": 5.0,
                               "handover_interruption_s": 0.3, "base_loss": 0.0}),
    ("link-mobility + X2", {"handover_interval_s": 5.0,
                            "handover_interruption_s": 0.3,
                            "handover_x2": True, "base_loss": 0.0}),
    ("ip-congestion 150Mbps", {"background_mbps": 150.0}),
    ("app-sla 40ms budget", {"sla_budget_s": 0.040, "background_mbps": 140.0}),
]


def test_ablation_loss_taxonomy(benchmark, archive):
    def run_all():
        rows = []
        for label, overrides in CONDITIONS:
            result = run_scenario(VRIDGE_DL.with_(n_cycles=3, seed=77, **overrides))
            loss = sum(u.loss_bytes for u in result.usages)
            sent = sum(u.true_sent for u in result.usages) or 1
            rows.append(
                (
                    label,
                    loss / sent,
                    result.mean_epsilon("legacy"),
                    result.mean_epsilon("tlc-optimal"),
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Ablation: §3.1 loss taxonomy, VR downlink (ε = relative charging gap)",
        f"{'condition':26s} {'loss':>7s} {'legacy ε':>9s} {'TLC ε':>7s}",
    ]
    for label, loss, legacy_eps, tlc_eps in rows:
        lines.append(f"{label:26s} {loss:>6.1%} {legacy_eps:>8.1%} {tlc_eps:>6.1%}")
    archive("ablation_loss_taxonomy", "\n".join(lines))

    by_label = {r[0]: r for r in rows}
    # Every loss class inflates legacy's gap above the baseline...
    baseline_eps = by_label["baseline (phy floor)"][2]
    for label in ("phy-intermittent η=10%", "link-mobility (HO/5s)",
                  "ip-congestion 150Mbps", "app-sla 40ms budget"):
        assert by_label[label][2] > baseline_eps, label
    # ...X2 forwarding recovers part of the mobility loss...
    assert by_label["link-mobility + X2"][1] < by_label["link-mobility (HO/5s)"][1]
    # ...and TLC-optimal stays below legacy for every class.
    for label, loss, legacy_eps, tlc_eps in rows:
        assert tlc_eps < legacy_eps + 0.005, label
