"""Figure 4: per-second time series under intermittent connectivity.

Paper: mean outage 1.93 s produces a 10.6 MB gap in 300 s of downlink
UDP WebCam; buffering recovers part of an outage; RSS collapses to
≈ −125 dBm in the gray (disconnected) regions.
"""

from repro.experiments.figures import figure4


def test_figure4_intermittent_connectivity(benchmark, archive):
    series = benchmark.pedantic(
        figure4, kwargs={"duration_s": 300.0}, rounds=1, iterations=1
    )
    archive("figure04", series.render())

    assert 0.8 <= series.mean_outage_s <= 4.0
    assert 3.0 <= series.total_gap_mb <= 25.0  # paper: 10.6 MB
    # RSS floor during outages (the gray areas of the figure).
    disconnected_rss = [
        rss for rss, up in zip(series.rss_dbm, series.connected) if not up
    ]
    assert disconnected_rss and max(disconnected_rss) <= -120.0
    # The network keeps charging while the device receives nothing.
    gap_grew = series.cumulative_gap_mb[-1] > 1.0
    assert gap_grew
