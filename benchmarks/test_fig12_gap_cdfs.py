"""Figure 12: CDFs of the per-cycle charging gap, legacy vs. TLC.

Paper shape (c = 0.5): TLC-optimal's CDF dominates TLC-random's, which
dominates legacy 4G/5G's, for all four applications.
"""

import statistics

from repro.experiments.figures import figure12


def test_figure12_gap_cdfs(benchmark, archive):
    result = benchmark.pedantic(figure12, kwargs={"n_cycles": 4}, rounds=1, iterations=1)
    archive("figure12", result.render())

    for app, schemes in result.cdfs.items():
        means = {
            scheme: statistics.mean(v for v, _ in points)
            for scheme, points in schemes.items()
        }
        assert means["tlc-optimal"] < means["legacy"], app
        # Random selfish play sits at or below legacy on average too.
        assert means["tlc-random"] < means["legacy"] * 1.2, app
