"""Fleet scaling: residual gap vs. population size.

Not a paper figure — the scale claim behind the reproduction's fleet
engine: simulating N heterogeneous subscribers through the shared EPC
must (a) keep TLC-optimal's fleet-wide residual gap well under legacy's,
(b) keep each archetype's per-UE gap in the same band as a standalone
single-UE run of the same scenario config, and (c) hold those properties
as the population grows (the aggregate is streamed, so only the bands —
not the memory — depend on N).
"""

from repro.experiments.fleet import FleetConfig, assign_ues, run_fleet
from repro.experiments.runner import run_scenario

CYCLES = 2
CYCLE_S = 15.0


def _fleet(ues: int) -> FleetConfig:
    return FleetConfig(
        ues=ues, shard_size=4, seed=11, n_cycles=CYCLES, cycle_duration_s=CYCLE_S
    )


def test_fleet_gap_vs_population(benchmark, archive):
    populations = (8, 16)
    results = {}

    def run_all():
        for n in populations:
            results[n] = run_fleet(_fleet(n), cache=False)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"{'population':>10} {'legacy Δ':>10} {'optimal Δ':>10} {'random Δ':>10}"]
    for n in populations:
        result = results[n]
        lines.append(
            f"{n:>10} {result.mean_gap('legacy'):>10.3f} "
            f"{result.mean_gap('tlc-optimal'):>10.3f} "
            f"{result.mean_gap('tlc-random'):>10.3f}"
        )
    archive("fleet_scale", "\n".join(lines))

    for n in populations:
        result = results[n]
        assert result.population == n
        # The paper's ordering survives aggregation: TLC-optimal beats
        # both the unnegotiated gateway count and selfish-random claims.
        assert result.mean_gap("tlc-optimal") < result.mean_gap("legacy")
        assert result.mean_gap("tlc-optimal") < result.mean_gap("tlc-random")
        # Negotiations settle: every TLC cycle converges under the cap.
        for scheme in ("tlc-optimal", "tlc-honest"):
            assert result.convergence_ratio(scheme) >= 0.95, scheme

    # Growing the population refines, not distorts, the aggregate: the
    # fleet-wide optimal mean stays in the same decade.
    small, large = results[populations[0]], results[populations[-1]]
    lo = min(small.mean_gap("tlc-optimal"), large.mean_gap("tlc-optimal"))
    hi = max(small.mean_gap("tlc-optimal"), large.mean_gap("tlc-optimal"))
    assert hi <= 10 * max(lo, 0.05), (lo, hi)


def test_fleet_archetype_gaps_match_single_ue_bands(archive):
    """Each archetype's fleet mean gap lands in the single-UE band.

    For every archetype present in the fleet, run one member UE's exact
    scenario config standalone through :func:`run_scenario`; the fleet's
    per-archetype mean must agree within an order of magnitude — shard
    co-residence (shared SPGW/OFCS, per-UE cells) must not change the
    charging physics.
    """
    fleet = _fleet(16)
    result = run_fleet(fleet, cache=False)

    reference = {}
    for ue in assign_ues(fleet):
        if ue.archetype not in reference:
            single = run_scenario(ue.config)
            reference[ue.archetype] = {
                "legacy": single.mean_delta_mb_per_hr("legacy"),
                "tlc-optimal": single.mean_delta_mb_per_hr("tlc-optimal"),
            }

    lines = [f"{'archetype':<22} {'fleet opt Δ':>12} {'single opt Δ':>13}"]
    for archetype, bands in sorted(reference.items()):
        fleet_mean = result.archetype_mean_gap(archetype, "tlc-optimal")
        lines.append(f"{archetype:<22} {fleet_mean:>12.3f} {bands['tlc-optimal']:>13.3f}")
        # Bands, not equality: the radio realization differs (shard vs.
        # scenario stream registry), the physics must not.  The floor
        # keeps near-zero gaps (gaming) from tripping the ratio.
        floor = 0.5  # MB/hr
        lo = min(fleet_mean, bands["tlc-optimal"])
        hi = max(fleet_mean, bands["tlc-optimal"])
        assert hi <= 12 * max(lo, floor), (archetype, lo, hi)
    archive("fleet_single_ue_bands", "\n".join(lines))
