"""Figure 11c: the experimental dataset summary.

The paper's testbed campaign produced 914,565 / 58,903 / 31,448 charging
data records and 171.6 GB / 314 MB / 112.5 GB of charged volume for
WebCam / gaming / VRidge.  This bench runs the reproduction's campaign
(compressed cycles), emits real Trace-1 XML CDRs from the OFCS — one per
RRC counter-check epoch, as OpenEPC does — and reports the equivalent
dataset table, plus one rendered CDR for inspection.
"""

from repro.experiments.runner import ScenarioRunner
from repro.experiments.scenarios import GAMING_DL, VRIDGE_DL, WEBCAM_UDP_UL


def _campaign(config, n_cycles=4, cdr_period_s=5.0):
    runner = ScenarioRunner(config.with_(n_cycles=n_cycles))
    horizon = n_cycles * config.cycle_duration_s
    runner.workload.start(until=horizon)
    # Emit CDRs at the OpenEPC-like reporting period while traffic runs.
    t = cdr_period_s
    while t <= horizon:
        runner.loop.run_until(t)
        runner.network.ofcs.close_cycle(runner.flow_id)
        t += cdr_period_s
    records = runner.network.ofcs.records
    volume = sum(r.datavolume_uplink + r.datavolume_downlink for r in records)
    return records, volume


def test_dataset_summary(benchmark, archive):
    def run():
        table = {}
        for label, config in [
            ("WebCam stream", WEBCAM_UDP_UL),
            ("Online gaming", GAMING_DL),
            ("VRidge", VRIDGE_DL),
        ]:
            records, volume = _campaign(config)
            table[label] = (records, volume)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Figure 11c: experimental dataset (reproduction campaign)",
        f"{'app':16s} {'# CDRs':>8s} {'charged volume':>16s}",
    ]
    for label, (records, volume) in table.items():
        lines.append(f"{label:16s} {len(records):>8d} {volume / 1e6:>13.1f} MB")
    lines.append("(paper, 1-hour cycles: 914,565 / 58,903 / 31,448 CDRs; "
                 "171.6 GB / 314 MB / 112.5 GB)")
    sample = table["WebCam stream"][0][3]
    lines.append("\nsample Trace-1 CDR:\n" + sample.to_xml())
    archive("figure11c_dataset", "\n".join(lines))

    for label, (records, volume) in table.items():
        assert len(records) >= 40, label
        assert volume > 0, label
    # Relative volumes preserve the paper's ordering:
    # VRidge >> WebCam >> gaming.
    assert table["VRidge"][1] > table["WebCam stream"][1] > table["Online gaming"][1]
    # Every record parses back from its XML form.
    records, _ = table["WebCam stream"]
    from repro.cellular.ofcs import CdrRecord

    reparsed = CdrRecord.from_xml(records[0].to_xml(), flow_id=records[0].flow_id)
    assert reparsed == records[0]
