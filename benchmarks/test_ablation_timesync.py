"""Ablation: time-synchronization quality vs. TLC's residual gap.

Figure 18's closing remark: the charging-record errors "are due to the
asynchronous charging cycle between edge and network, and can be reduced
with time synchronizations (e.g., via NTP)".  This ablation sweeps the
cycle-boundary skew (as a fraction of cycle length) and confirms the
mechanism: TLC-optimal's residual gap scales with clock quality, down to
(near) zero under perfect sync — while legacy's loss-driven gap doesn't
care about clocks at all.
"""

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import WEBCAM_UDP_UL

SKEW_LEVELS = [
    ("perfect sync", 0.0, 0.0),
    ("tight NTP (0.5%)", 0.005, 0.005),
    ("paper's testbed", 0.017, 0.024),
    ("sloppy clocks (5%)", 0.05, 0.05),
]


def test_ablation_time_synchronization(benchmark, archive):
    def run():
        rows = []
        for label, edge_std, operator_std in SKEW_LEVELS:
            result = run_scenario(
                WEBCAM_UDP_UL.with_(
                    n_cycles=6,
                    seed=17,
                    edge_skew_rel_std=edge_std,
                    operator_skew_rel_std=operator_std,
                )
            )
            rows.append(
                (
                    label,
                    result.mean_epsilon("legacy") * 100,
                    result.mean_epsilon("tlc-optimal") * 100,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: clock sync quality vs residual gap (UDP WebCam UL, ε %)",
        f"{'sync quality':20s} {'legacy ε':>9s} {'TLC ε':>7s}",
    ]
    for label, legacy_eps, tlc_eps in rows:
        lines.append(f"{label:20s} {legacy_eps:>8.2f}% {tlc_eps:>6.2f}%")
    archive("ablation_timesync", "\n".join(lines))

    by_label = {r[0]: r for r in rows}
    # Perfect sync drives TLC-optimal's gap to (near) zero.
    assert by_label["perfect sync"][2] < 0.2
    # Residual gap grows with skew.
    tlc_series = [r[2] for r in rows]
    assert tlc_series == sorted(tlc_series)
    # Legacy's loss-driven gap is clock-agnostic (within noise).
    legacy_series = [r[1] for r in rows]
    assert max(legacy_series) - min(legacy_series) < 1.5
