"""Ablations of TLC's design choices (DESIGN.md §6).

Not paper figures — these quantify why the design is the way it is:

* strategy matrix: what an honest party loses against a rational one
  (the paper's §5.2 caveat on mixed honesty);
* acceptance tolerance: rounds vs. residual gap trade-off;
* RRC COUNTER CHECK vs. tamperable user-space monitors (§5.4's strawmen).
"""

import random
import statistics

from repro.core import (
    DataPlan,
    HonestStrategy,
    NegotiationEngine,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
)
from repro.edge.tamper import ScalingTamper
from repro.experiments.runner import ScenarioRunner
from repro.experiments.scenarios import VRIDGE_DL

X_E, X_O = 1_000_000, 930_000
PLAN = DataPlan(c=0.5)


def _negotiate(edge_cls, operator_cls):
    edge = edge_cls(PartyKnowledge(PartyRole.EDGE, X_E, X_O))
    operator = operator_cls(PartyKnowledge(PartyRole.OPERATOR, X_O, X_E))
    return NegotiationEngine(PLAN, edge, operator).run()


def test_ablation_strategy_matrix(benchmark, archive):
    """Honest play is exploitable; rational-vs-rational is exact."""

    def matrix():
        return {
            (e_name, o_name): _negotiate(e_cls, o_cls).volume
            for e_name, e_cls in [("honest", HonestStrategy), ("rational", OptimalStrategy)]
            for o_name, o_cls in [("honest", HonestStrategy), ("rational", OptimalStrategy)]
        }

    volumes = benchmark.pedantic(matrix, rounds=1, iterations=1)
    expected = 965_000
    lines = ["Ablation: strategy matrix (x̂ = 965,000)"]
    for pair, volume in volumes.items():
        lines.append(f"  edge={pair[0]:8s} operator={pair[1]:8s} -> x={volume}")
    archive("ablation_strategies", "\n".join(lines))

    assert volumes[("honest", "honest")] == expected
    assert volumes[("rational", "rational")] == expected
    # A rational operator extracts more from an honest edge, and vice
    # versa — but always within the Theorem 2 bound.
    assert expected <= volumes[("honest", "rational")] <= X_E
    assert X_O <= volumes[("rational", "honest")] <= expected


def test_ablation_acceptance_tolerance(benchmark, archive):
    """Tolerance trades negotiation rounds against residual gap."""

    def sweep():
        rows = []
        for tol in (0.0, 0.01, 0.03, 0.05):
            rounds, gaps = [], []
            for seed in range(40):
                rng = random.Random(seed)
                noisy_e = int(X_E * rng.gauss(1.0, 0.02))
                noisy_o = int(X_O * rng.gauss(1.0, 0.02))
                edge = OptimalStrategy(
                    PartyKnowledge(PartyRole.EDGE, noisy_e, noisy_o), accept_tolerance=tol
                )
                operator = OptimalStrategy(
                    PartyKnowledge(PartyRole.OPERATOR, noisy_o, noisy_e), accept_tolerance=tol
                )
                result = NegotiationEngine(PLAN, edge, operator).run()
                rounds.append(result.rounds)
                gaps.append(abs(result.volume - 965_000) / 965_000)
            rows.append((tol, statistics.mean(rounds), statistics.mean(gaps) * 100))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: acceptance tolerance under 2% record noise",
             "  tol    rounds   gap(%)"]
    for tol, mean_rounds, gap_pct in rows:
        lines.append(f"  {tol:<5}  {mean_rounds:6.2f}  {gap_pct:6.2f}")
    archive("ablation_tolerance", "\n".join(lines))

    # Strict cross-checks need the most rounds under noisy records.
    assert rows[0][1] >= rows[-1][1]
    # With 5% tolerance, noisy optimal play is effectively 1-round.
    assert rows[-1][1] <= 1.6


def test_ablation_rrc_vs_userspace_monitor(benchmark, archive):
    """§5.4's strawman 1 vs. TLC: a tampering edge wipes out a user-space
    operator monitor, while the RRC record is untouched."""

    def run():
        runner = ScenarioRunner(VRIDGE_DL.with_(n_cycles=2, seed=91))
        runner.simulate()
        usage = runner.collect()[0]
        # Strawman 1: the operator reads the device's user-space counter,
        # which a selfish edge scales down to 30 %.
        strawman_view = ScalingTamper(runner.device.dl_monitor, 0.3)
        strawman_record = strawman_view.reported_usage(
            usage.cycle.t_start, usage.cycle.t_end
        )
        return usage, strawman_record

    usage, strawman_record = benchmark.pedantic(run, rounds=1, iterations=1)
    rrc_record = usage.operator_received_record
    truth = usage.true_received
    archive(
        "ablation_monitors",
        "Ablation: operator downlink record source under edge tampering\n"
        f"  ground truth received : {truth}\n"
        f"  RRC COUNTER CHECK     : {rrc_record} "
        f"({abs(rrc_record - truth) / truth:.1%} error)\n"
        f"  user-space (tampered) : {strawman_record} "
        f"({abs(strawman_record - truth) / truth:.1%} error)",
    )
    assert abs(rrc_record - truth) / truth < 0.1
    assert strawman_record < truth * 0.5  # the strawman collapses
