"""Extension of Figure 17: negotiation cost under real network conditions.

The paper measures PoC negotiation on an idle testbed.  Running the
protocol *over the simulated network* (QCI-5 signalling + ARQ) shows how
the end-of-cycle exchange behaves when the cell is not idle: congestion
barely moves it (priority signalling), while air loss costs whole
retransmission timeouts — and in every case the in-cycle data path is
untouched, which is the design's point.
"""

import random
import statistics

from repro.cellular import CellularNetwork, RadioProfile, make_test_imsi
from repro.core import DataPlan, OptimalStrategy, PartyKnowledge, PartyRole
from repro.crypto import generate_keypair
from repro.edge import EdgeDevice
from repro.edge.device import EL20, Z840
from repro.netsim import EventLoop, StreamRegistry
from repro.poc import NetworkNegotiation

CONDITIONS = [
    ("idle cell", dict()),
    ("congested 160 Mbps", dict(background_bps=160e6)),
    ("air loss 20%", dict(base_loss=0.2)),
    ("loss 20% + congestion", dict(base_loss=0.2, background_bps=160e6)),
]


def _negotiate_once(seed, edge_key, operator_key, base_loss=0.0, background_bps=0.0):
    loop = EventLoop()
    network = CellularNetwork(loop, StreamRegistry(seed))
    imsi = make_test_imsi(1)
    device = EdgeDevice(loop, imsi, "app")
    access = network.attach_device(
        imsi, RadioProfile(base_loss=base_loss), deliver=device.deliver
    )
    device.bind(access)
    network.create_bearer(imsi, "app")
    if background_bps:
        network.set_background_load(background_bps, background_bps)
    negotiation = NetworkNegotiation(
        network, str(imsi), DataPlan(c=0.5, cycle_duration_s=60.0), 0.0,
        OptimalStrategy(PartyKnowledge(PartyRole.EDGE, 1_000_000, 930_000)),
        OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, 930_000, 1_000_000)),
        edge_key, operator_key, random.Random(seed),
        edge_profile=EL20, operator_profile=Z840,
        retransmit_timeout_s=0.3,
    )
    negotiation.start()
    loop.run_until(60.0)
    return negotiation.result()


def test_negotiation_under_network_conditions(benchmark, archive):
    rng = random.Random(55)
    edge_key = generate_keypair(1024, rng)
    operator_key = generate_keypair(1024, rng)

    def run():
        rows = []
        for label, overrides in CONDITIONS:
            results = [
                _negotiate_once(seed, edge_key, operator_key, **overrides)
                for seed in range(20, 32)
            ]
            rows.append((
                label,
                statistics.mean(r.elapsed_s for r in results) * 1000,
                statistics.mean(r.retransmissions for r in results),
                all(r.volume == 965_000 for r in results),
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Figure 17 extension: over-the-network negotiation (EL20 edge)",
             f"{'condition':24s} {'mean ms':>9s} {'retx':>6s} {'correct':>8s}"]
    for label, ms, retx, correct in rows:
        lines.append(f"{label:24s} {ms:>9.1f} {retx:>6.2f} {str(correct):>8s}")
    archive("figure17_network", "\n".join(lines))

    by_label = dict((r[0], r) for r in rows)
    # Every condition converges on the correct volume.
    assert all(r[3] for r in rows)
    # Congestion alone barely moves the prioritized signalling.
    assert by_label["congested 160 Mbps"][1] < by_label["idle cell"][1] * 2.5
    # Air loss costs retransmission timeouts.
    assert by_label["air loss 20%"][1] > by_label["idle cell"][1]
    assert by_label["air loss 20%"][2] > 0
