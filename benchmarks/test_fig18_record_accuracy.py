"""Figure 18: accuracy of TLC's tamper-resilient charging records.

Paper: operator γo mean 2.0 % (95 % ≤ 7.7 %), edge γe mean 1.2 %
(95 % ≤ 2.9 %); uplink records are exact (mechanisms reused as-is).
"""

from repro.experiments.figures import figure18


def test_figure18_downlink_record_errors(benchmark, archive):
    table = benchmark.pedantic(figure18, kwargs={"n_cycles": 16}, rounds=1, iterations=1)
    archive("figure18", table.render())

    operator_row = {r[0]: r for r in table.rows}["operator γo (RRC)"]
    edge_row = {r[0]: r for r in table.rows}["edge γe (server)"]
    # Means within a factor ~2 of the paper's 2.0 % / 1.2 %.
    assert 0.8 <= operator_row[1] <= 4.0
    assert 0.4 <= edge_row[1] <= 2.5
    # p95 below the paper's reported tails.
    assert operator_row[2] <= 10.0
    assert edge_row[2] <= 6.0
