"""Figure 13: charging-gap ratio vs. congestion, per scheme.

Paper shape: legacy's ratio climbs toward ~30 % at 160 Mbps background
while TLC-optimal stays flat; QCI-7 gaming is insulated throughout.
"""

from repro.experiments.figures import figure13


def test_figure13_gap_ratio_under_congestion(benchmark, archive):
    table = benchmark.pedantic(figure13, kwargs={"n_cycles": 3}, rounds=1, iterations=1)
    archive("figure13", table.render())

    by_key = {(row[0], row[1]): row[2:] for row in table.rows}
    for app in ("webcam-rtsp-ul", "webcam-udp-ul", "vridge-gvsp-dl"):
        legacy = by_key[(app, "legacy")]
        optimal = by_key[(app, "tlc-optimal")]
        # Legacy blows up with congestion; optimal stays flat and low.
        assert legacy[-1] > 10.0, f"{app}: legacy ratio too low at 160 Mbps"
        assert legacy[-1] > 4 * legacy[0] or legacy[0] > 2.0
        assert max(optimal) < 6.0, f"{app}: optimal ratio not flat"
        assert optimal[-1] < legacy[-1]

    # Gaming rides QCI 7: congestion barely moves any scheme.
    gaming_legacy = by_key[("gaming-qci7-dl", "legacy")]
    assert max(gaming_legacy) < 8.0
