"""Crypto microbenchmarks: the primitive costs under Figure 17.

RSA-1024 sign/verify and the full message-construction path; these are
the real-compute anchors for the device-profile timing model.
"""

import random

from repro.crypto import generate_keypair, sign, verify
from repro.poc.messages import Cda, Cdr, PlanParams, Poc, Role

PLAN = PlanParams(0.0, 3600.0, 0.5)


def _keys(bits=1024):
    rng = random.Random(81)
    return generate_keypair(bits, rng), generate_keypair(bits, rng)


def test_rsa1024_sign(benchmark):
    key, _ = _keys()
    message = b"charging-record" * 10
    signature = benchmark(lambda: sign(message, key))
    assert len(signature) == 128


def test_rsa1024_verify(benchmark):
    key, _ = _keys()
    message = b"charging-record" * 10
    signature = sign(message, key)
    assert benchmark(lambda: verify(message, signature, key.public))


def test_keypair_generation_1024(benchmark):
    rng = random.Random(83)
    key = benchmark.pedantic(
        lambda: generate_keypair(1024, rng), rounds=3, iterations=1
    )
    assert key.n.bit_length() == 1024


def test_full_message_chain_build(benchmark, archive):
    """CDR → CDA → PoC construction, and the Figure 17 size table."""
    edge_key, operator_key = _keys()

    def build_chain():
        cdr = Cdr.build(Role.OPERATOR, PLAN, 0, bytes(16), 1_000_000, operator_key)
        cda = Cda.build(Role.EDGE, PLAN, 0, bytes(range(16)), 930_000, cdr, edge_key)
        return Poc.build(Role.OPERATOR, PLAN, 965_000, cda, operator_key)

    poc = benchmark(build_chain)
    cdr_len = len(poc.peer_cda.peer_cdr.encode())
    cda_len = len(poc.peer_cda.encode())
    poc_len = len(poc.encode())
    archive(
        "figure17_sizes",
        "Figure 17 message sizes (bytes, RSA-1024)\n"
        f"LTE CDR=34  TLC CDR={cdr_len}  TLC CDA={cda_len}  TLC PoC={poc_len}\n"
        f"total signalling={cdr_len + cda_len + poc_len} over 3 messages\n"
        "(paper: 34 / 199 / 398 / 796; total 1,393 over 3 messages)",
    )
    # Same order of magnitude and the same structural relations.
    assert 150 <= cdr_len <= 260
    assert 280 <= cda_len <= 480
    assert 450 <= poc_len <= 900
