"""Table 2: average charging gap per app per scheme (c = 0.5).

Paper rows (Δ MB/hr legacy → optimal): RTSP 16.56 → 3.27 (80.2 %),
UDP 54.68 → 15.59 (71.5 %), VRidge 384.49 → 48.07 (87.5 %),
gaming 0.34 → 0.18 (47.1 %).  The reproduction must preserve who wins
and the rough reduction factors.
"""

from repro.experiments.figures import table2


def test_table2_average_charging_gap(benchmark, archive):
    table = benchmark.pedantic(table2, kwargs={"n_cycles": 4}, rounds=1, iterations=1)
    archive("table2", table.render())

    rows = {row[0]: row for row in table.rows}

    # Bitrates reproduce the paper's measured averages.
    assert abs(rows["webcam-rtsp-ul"][1] - 0.77) < 0.15
    assert abs(rows["webcam-udp-ul"][1] - 1.73) < 0.3
    assert abs(rows["vridge-gvsp-dl"][1] - 9.0) < 1.3
    assert abs(rows["gaming-qci7-dl"][1] - 0.02) < 0.01

    # TLC-optimal reduces the gap substantially for every app.
    for app, min_reduction in [
        ("webcam-rtsp-ul", 0.4),
        ("webcam-udp-ul", 0.5),
        ("vridge-gvsp-dl", 0.6),
        ("gaming-qci7-dl", 0.3),
    ]:
        legacy_delta, optimal_delta = rows[app][2], rows[app][4]
        reduction = 1 - optimal_delta / legacy_delta
        assert reduction >= min_reduction, f"{app}: only {reduction:.0%} reduction"

    # TLC-optimal's relative gap stays small (paper: ≤ 2.5 %).
    for row in table.rows:
        assert row[5] <= 3.5, f"{row[0]}: optimal ε {row[5]:.1f}%"
