"""Reconciliation-service soak: sustained load, pooled settlement
throughput, and crash-resume under a realistic fleet.

Not a paper figure — operational numbers for the live-TLC subsystem:

* ingest→settle latency percentiles (virtual seconds on the simulated
  clock) under a sustained fleet replay with chaotic ingestion;
* pooled vs inline shard settlement: the process pool must take the
  simulation CPU out of the service process (≥2× less main-process CPU
  per settled shard) while producing a bit-identical ledger, and —
  given enough cores — cut wall-clock time ≥2×;
* a kill-and-resume round trip on the same fleet, byte-compared.
"""

import json
import os
import time

from repro.experiments.fleet import FleetConfig
from repro.netsim.faults import FAULT_PROFILES
from repro.service import (
    ReplayConfig,
    ServiceConfig,
    SettlementLedger,
    replay_fleet,
    resume_fleet_replay,
)

# 16 shards of 4 UEs, two cycles: big enough that per-shard simulation
# cost (~30 ms) dominates service bookkeeping.
FLEET = FleetConfig(ues=64, shard_size=4, seed=9, n_cycles=2, cycle_duration_s=20.0)
REPLAY = ReplayConfig(duration_s=120.0)


def test_sustained_soak_latency_profile(archive):
    """Chaotic sustained replay; per-kind ingest→settle latency."""
    replay = ReplayConfig(
        duration_s=120.0, ingest_faults=FAULT_PROFILES["chaos"]
    )
    result, stats, service = replay_fleet(FLEET, replay)
    assert stats.dropped == 0 and result is not None
    assert service.crashed_workers() == []
    snapshot = service.metrics.snapshot()
    rows = [
        "Service soak (64 UEs / 16 shards, chaos ingest profile)",
        f"  submissions: {stats.submitted}  accepted: {stats.accepted}  "
        f"retries: {stats.retries}  waves: {stats.waves}",
    ]
    for kind in ("shard", "poc", "probe"):
        key = f"service.latency{{kind={kind}}}"
        if key not in snapshot.histograms:
            continue
        p = snapshot.percentiles(key)
        rows.append(
            f"  {kind:<6} latency (virtual s): p50={p['p50']:.3f}  "
            f"p95={p['p95']:.3f}  p99={p['p99']:.3f}"
        )
    assert any("shard" in row for row in rows[2:])
    archive("service_soak_latency", "\n".join(rows))


def _timed_replay(pool_workers):
    """One cold replay; returns (ledger text, main-process cpu s, wall s)."""
    config = ServiceConfig(workers=4, pool_workers=pool_workers)
    cpu0, wall0 = time.process_time(), time.perf_counter()
    result, stats, service = replay_fleet(FLEET, REPLAY, service_config=config)
    cpu, wall = time.process_time() - cpu0, time.perf_counter() - wall0
    assert stats.dropped == 0 and result is not None
    assert service.report.simulated == 16  # cold: nothing came from cache
    return service.ledger.text(), cpu, wall


def test_pooled_settlement_throughput(archive):
    """Pool offload: same bytes, ≥2× less main-process CPU per shard."""
    inline_text, inline_cpu, inline_wall = _timed_replay(pool_workers=0)
    pooled_text, pooled_cpu, pooled_wall = _timed_replay(pool_workers=2)
    assert pooled_text == inline_text  # bit-identical ledger

    cpu_ratio = inline_cpu / pooled_cpu
    wall_ratio = inline_wall / pooled_wall
    cores = os.cpu_count() or 1
    archive(
        "service_pooled_throughput",
        "Pooled settlement (16 shards, 4 workers, pool of 2, "
        f"{cores} cores):\n"
        f"  inline : {inline_cpu:.3f} cpu-s  {inline_wall:.3f} wall-s\n"
        f"  pooled : {pooled_cpu:.3f} cpu-s  {pooled_wall:.3f} wall-s\n"
        f"  main-process cpu ratio : {cpu_ratio:.2f}x\n"
        f"  wall-clock ratio       : {wall_ratio:.2f}x",
    )
    # The pool's whole point: shard simulation leaves the service
    # process.  This holds even on a single-core host.
    assert cpu_ratio >= 2.0
    if cores >= 4:
        # With real parallelism available, it must also be faster.
        assert wall_ratio >= 2.0


def test_kill_and_resume_round_trip(archive, tmp_path):
    """Truncate the soak fleet's ledger at 50% and resume to identity."""
    path = tmp_path / "full.jsonl"
    result, stats, service = replay_fleet(
        FLEET, REPLAY, ledger=SettlementLedger(path)
    )
    assert stats.dropped == 0 and result is not None
    raw = path.read_bytes()
    wounded = tmp_path / "wounded.jsonl"
    wounded.write_bytes(raw[: len(raw) // 2])
    resumed, stats2, service2 = resume_fleet_replay(FLEET, wounded, replay=REPLAY)
    assert stats2.dropped == 0 and resumed is not None
    assert service2.ledger.text() == service.ledger.text()
    assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
        result.to_dict(), sort_keys=True
    )
    archive(
        "service_kill_resume",
        f"Kill-and-resume: {len(raw)}-byte ledger cut at 50%, resumed to a "
        f"byte-identical settlement view ({len(service.ledger.lines)} lines, "
        f"{stats2.submitted} re-submissions, {stats2.waves} recovery waves)",
    )
