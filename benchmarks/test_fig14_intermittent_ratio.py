"""Figure 14: charging-gap ratio vs. intermittent disconnectivity η.

Paper shape: legacy's ratio grows with η (up to ~17 % at η = 15 %);
TLC reduces more gap the heavier the intermittent connectivity.
"""

from repro.experiments.figures import figure14


def test_figure14_gap_vs_disconnectivity(benchmark, archive):
    table = benchmark.pedantic(figure14, kwargs={"n_cycles": 4}, rounds=1, iterations=1)
    archive("figure14", table.render())

    rows = {row[0]: row[1:] for row in table.rows}
    legacy, optimal = rows["legacy"], rows["tlc-optimal"]

    # Legacy grows with η; roughly monotone across the sweep ends.
    assert legacy[-1] > 1.5 * legacy[0]
    assert legacy[-1] > 6.0  # percent at η = 15 %
    # TLC-optimal stays low and below legacy everywhere.
    assert all(o < l for o, l in zip(optimal, legacy))
    assert max(optimal) < 4.0
