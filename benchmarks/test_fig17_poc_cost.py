"""Figure 17: Proof-of-Charging cost.

Two layers:

* the device-profile model regenerates the per-device negotiation /
  verification table (paper: EL20 65.8 ms, Pixel 105.5 ms, S7 93.7 ms
  negotiation; crypto ≈ 54.9 % of it; 1,393 B / 3 messages signalling);
* real pytest-benchmark timings of this host's RSA-1024 negotiation and
  Algorithm 2 verification — the source of the paper's "230 K PoC
  verifications per hour on one workstation" scalability claim.
"""

import random

from repro.core import DataPlan, OptimalStrategy, PartyKnowledge, PartyRole
from repro.crypto import generate_keypair
from repro.experiments.figures import figure17
from repro.poc import NegotiationDriver, PlanParams, PublicVerifier
from repro.edge.device import Z840

PLAN = DataPlan(c=0.5, cycle_duration_s=3600.0)
PLAN_PARAMS = PlanParams(0.0, 3600.0, 0.5)


def test_figure17_device_profile_table(benchmark, archive):
    table = benchmark.pedantic(
        figure17, kwargs={"samples": 40}, rounds=1, iterations=1
    )
    archive("figure17", table.render())

    times = {row[0]: row[1] for row in table.rows[:4]}
    # Paper negotiation means ±40 %.
    assert 45 <= times["HPE EL20"] <= 95
    assert 70 <= times["Pixel 2 XL"] <= 150
    assert 60 <= times["S7 Edge"] <= 135
    assert times["HP Z840"] < times["HPE EL20"]
    # Crypto share near the paper's 54.9 % on the phones.
    crypto = {row[0]: row[2] for row in table.rows[:4]}
    assert 40 <= crypto["Pixel 2 XL"] <= 70


def _make_negotiation(rng, edge_key, operator_key):
    return NegotiationDriver(
        PLAN, 0.0,
        OptimalStrategy(PartyKnowledge(PartyRole.EDGE, 1_000_000, 930_000)),
        OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, 930_000, 1_000_000)),
        edge_key, operator_key, rng,
        edge_profile=Z840, operator_profile=Z840,
    )


def test_real_poc_negotiation_throughput(benchmark):
    """Wall-clock RSA-1024 CDR→CDA→PoC exchange on this host."""
    rng = random.Random(71)
    edge_key = generate_keypair(1024, rng)
    operator_key = generate_keypair(1024, rng)

    result = benchmark(lambda: _make_negotiation(rng, edge_key, operator_key).run())
    assert result.volume == 965_000


def test_real_poc_verification_throughput(benchmark, archive):
    """Algorithm 2 wall-clock: the paper's 230 K/hr ≈ 64 verifications/s
    on a 2015 workstation; any modern host should beat that comfortably."""
    rng = random.Random(72)
    edge_key = generate_keypair(1024, rng)
    operator_key = generate_keypair(1024, rng)
    poc = _make_negotiation(rng, edge_key, operator_key).run().poc

    def verify_once():
        # A fresh verifier per call: the replay registry must not trip.
        report = PublicVerifier(PLAN).verify(
            poc, PLAN_PARAMS, edge_key.public, operator_key.public
        )
        assert report.ok
        return report

    benchmark(verify_once)
    per_hour = 3600.0 / benchmark.stats["mean"]
    archive(
        "figure17_throughput",
        f"PoC verification on this host: {per_hour:,.0f}/hour "
        f"(paper: 230,000/hour on an HP Z840)",
    )
    assert per_hour > 230_000
