"""Figure 3: raw charging gap vs. iperf background traffic.

Paper values (MB/hr): WebCam RTSP 8.28 → 98.16, WebCam UDP 59.04 → 252,
VRidge GVSP 80.64 → 982.8 across 0 → 160 Mbps background.
"""

from repro.experiments.figures import figure3


def test_figure3_congestion_gap(benchmark, archive):
    table = benchmark.pedantic(figure3, kwargs={"n_cycles": 4}, rounds=1, iterations=1)
    archive("figure03", table.render())

    by_app = {row[0]: row[1:] for row in table.rows}
    # Clean-radio gaps land near the paper's §3.2 numbers.
    assert 4 <= by_app["webcam-rtsp-ul"][0] <= 16
    assert 35 <= by_app["webcam-udp-ul"][0] <= 90
    assert 50 <= by_app["vridge-gvsp-dl"][0] <= 130
    # Congestion amplifies the gap (the figure's headline shape).
    for app, values in by_app.items():
        assert values[-1] > 3 * values[0], f"{app}: no congestion amplification"
