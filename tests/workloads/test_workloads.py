"""Workload generators: bitrate fidelity, framing, packetization."""

import pytest

from repro.netsim import EventLoop, StreamRegistry
from repro.netsim.packet import Direction, Packet, Transport
from repro.workloads import (
    CONGESTION_SWEEP_MBPS,
    KING_OF_GLORY,
    VRIDGE_GVSP,
    WEBCAM_RTSP,
    WEBCAM_UDP,
    FrameWorkload,
    WorkloadProfile,
    iperf_profile,
)


class CollectingSender:
    def __init__(self):
        self.packets = []

    def send(self, size, qci=9, transport=Transport.UDP):
        packet = Packet(
            size=size, flow_id="w", direction=Direction.UPLINK,
            qci=qci, transport=transport,
        )
        self.packets.append(packet)
        return packet


def run_workload(profile, duration=30.0, seed=1):
    loop = EventLoop()
    sender = CollectingSender()
    workload = FrameWorkload(loop, StreamRegistry(seed), profile, sender)
    workload.start(until=duration)
    loop.run_until(duration + 1.0)
    return workload, sender


class TestBitrateFidelity:
    @pytest.mark.parametrize(
        "profile,target_mbps",
        [
            (WEBCAM_RTSP, 0.77),
            (WEBCAM_UDP, 1.73),
            (VRIDGE_GVSP, 9.0),
            (KING_OF_GLORY, 0.02),
        ],
    )
    def test_achieved_bitrate_near_paper_average(self, profile, target_mbps):
        """Each workload must land on the paper's measured bitrate."""
        workload, _ = run_workload(profile, duration=60.0)
        achieved = workload.achieved_bitrate_bps(60.0) / 1e6
        assert achieved == pytest.approx(target_mbps, rel=0.15)

    def test_frame_pacing(self):
        workload, _ = run_workload(WEBCAM_UDP, duration=10.0)
        assert workload.frames_sent == pytest.approx(10 * 30, abs=3)


class TestFraming:
    def test_iframes_are_larger(self):
        """GoP structure: the periodic I-frame dominates P-frames."""
        profile = WorkloadProfile(
            name="gop", mean_bitrate_bps=1e6, fps=10.0,
            iframe_interval=10, iframe_scale=5.0, size_sigma=0.0,
            packet_bytes=10**6,  # no fragmentation: one send per frame
        )
        loop = EventLoop()
        frames = []

        class FrameSender:
            def send(self, size, qci=9, transport=Transport.UDP):
                frames.append(size)
                return Packet(size=size, flow_id="w", direction=Direction.UPLINK)

        workload = FrameWorkload(loop, StreamRegistry(1), profile, FrameSender())
        workload.start(until=5.0)
        loop.run_until(6.0)
        # With sigma=0 and one packet per frame, sizes alternate I/P cleanly.
        assert max(frames) > 3 * min(frames)

    def test_mean_frame_size_preserved_with_gop(self):
        profile = WorkloadProfile(
            name="gop", mean_bitrate_bps=1e6, fps=10.0,
            iframe_interval=10, iframe_scale=5.0, size_sigma=0.0,
            packet_bytes=10**6,
        )
        workload, sender = run_workload(profile, duration=60.0)
        achieved = workload.achieved_bitrate_bps(60.0)
        assert achieved == pytest.approx(1e6, rel=0.1)

    def test_fragmentation_at_packet_bytes(self):
        profile = WorkloadProfile(
            name="frag", mean_bitrate_bps=1e6, fps=1.0, packet_bytes=1400, size_sigma=0.0
        )
        _, sender = run_workload(profile, duration=5.0)
        assert all(p.size <= 1400 for p in sender.packets)
        assert any(p.size == 1400 for p in sender.packets)

    def test_minimum_frame_size(self):
        profile = WorkloadProfile(
            name="tiny", mean_bitrate_bps=100.0, fps=10.0, size_sigma=0.0
        )
        _, sender = run_workload(profile, duration=5.0)
        assert all(p.size >= 64 for p in sender.packets)


class TestQosMarking:
    def test_gaming_rides_qci7(self):
        _, sender = run_workload(KING_OF_GLORY, duration=5.0)
        assert all(p.qci == 7 for p in sender.packets)

    def test_webcam_rides_default_qci(self):
        _, sender = run_workload(WEBCAM_RTSP, duration=5.0)
        assert all(p.qci == 9 for p in sender.packets)


class TestIperf:
    def test_profile_rate(self):
        profile = iperf_profile(50e6)
        workload, _ = run_workload(profile, duration=10.0)
        assert workload.achieved_bitrate_bps(10.0) == pytest.approx(50e6, rel=0.05)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            iperf_profile(0)

    def test_sweep_matches_paper_points(self):
        assert CONGESTION_SWEEP_MBPS == (0, 100, 120, 140, 160)


class TestValidation:
    def test_rejects_bad_bitrate(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", mean_bitrate_bps=0, fps=30)

    def test_rejects_bad_packet_bytes(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", mean_bitrate_bps=1e6, fps=30, packet_bytes=0)

    def test_deterministic_for_seed(self):
        a, sa = run_workload(WEBCAM_UDP, duration=5.0, seed=3)
        b, sb = run_workload(WEBCAM_UDP, duration=5.0, seed=3)
        assert [p.size for p in sa.packets] == [p.size for p in sb.packets]
