"""Parallel scenario engine: codec, cache, and serial/parallel identity."""

import json
import threading

import pytest

from repro.experiments import parallel
from repro.experiments.parallel import (
    ResultCache,
    RunReport,
    config_from_dict,
    config_to_dict,
    derive_seed,
    result_from_dict,
    result_to_dict,
    run_scenarios,
    scenario_key,
)
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import GAMING_DL, WEBCAM_RTSP_UL

# Short, cheap scenarios: the gaming workload is ~20 kbps, so even four
# of these simulate in a couple of seconds.
FAST = [
    GAMING_DL.with_(n_cycles=2, cycle_duration_s=15.0, seed=7),
    GAMING_DL.with_(n_cycles=2, cycle_duration_s=15.0, seed=8, background_mbps=120.0),
    GAMING_DL.with_(n_cycles=2, cycle_duration_s=15.0, seed=9, outage_eta=0.1),
    GAMING_DL.with_(n_cycles=2, cycle_duration_s=15.0, seed=10, base_loss=0.08),
]


def outcome_volumes(result):
    return {
        scheme: [o.charged for o in outcomes]
        for scheme, outcomes in result.outcomes.items()
    }


class TestCodec:
    def test_config_round_trip(self):
        for config in (GAMING_DL, WEBCAM_RTSP_UL.with_(outage_eta=0.12, c=0.75)):
            assert config_from_dict(config_to_dict(config)) == config

    def test_config_dict_is_json_safe(self):
        json.dumps(config_to_dict(WEBCAM_RTSP_UL))

    def test_result_round_trip(self):
        result = run_scenario(FAST[0])
        decoded = result_from_dict(result_to_dict(result))
        assert decoded.config == result.config
        assert decoded.usages == result.usages
        assert decoded.outcomes == result.outcomes
        assert decoded.measured_bitrate_bps == result.measured_bitrate_bps

    def test_result_round_trip_through_json(self):
        result = run_scenario(FAST[0])
        decoded = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert decoded.usages == result.usages
        assert decoded.outcomes == result.outcomes

    def test_version_mismatch_rejected(self):
        data = result_to_dict(run_scenario(FAST[0]))
        data["version"] = -1
        with pytest.raises(ValueError, match="codec version"):
            result_from_dict(data)

    def test_forward_version_config_keys_ignored(self):
        """A v(N+1)-shaped config dict (new fields) must still decode.

        An older binary pointed at a newer cache directory reads entries
        whose configs carry fields it doesn't know; those must round-trip
        on the shared fields instead of crashing the sweep.
        """
        data = config_to_dict(GAMING_DL)
        data["future_knob"] = 42
        data["another_subsystem"] = {"nested": True}
        data["workload"]["future_codec"] = "av2"
        assert config_from_dict(data) == GAMING_DL


class TestKeys:
    def test_key_stable_and_sensitive(self):
        a = scenario_key(GAMING_DL)
        assert a == scenario_key(GAMING_DL)
        assert a != scenario_key(GAMING_DL.with_(seed=2))
        assert a != scenario_key(GAMING_DL.with_(base_loss=0.02))
        assert a != scenario_key(WEBCAM_RTSP_UL)

    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "webcam:0") == derive_seed(1, "webcam:0")
        assert derive_seed(1, "webcam:0") != derive_seed(1, "webcam:1")
        assert derive_seed(1, "webcam:0") != derive_seed(2, "webcam:0")


class TestParallelIdentity:
    def test_parallel_bit_identical_to_serial(self):
        serial = run_scenarios(FAST, workers=0, cache=None)
        fanned = run_scenarios(FAST, workers=4, cache=None)
        for s, p in zip(serial, fanned):
            assert outcome_volumes(s) == outcome_volumes(p)
            assert s.usages == p.usages
            assert s.measured_bitrate_bps == p.measured_bitrate_bps

    def test_order_preserved(self):
        results = run_scenarios(FAST, workers=2, cache=None)
        assert [r.config for r in results] == FAST


class TestResultCache:
    def test_second_run_simulates_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = RunReport()
        cold = run_scenarios(FAST[:2], workers=0, cache=cache, report=first)
        assert (first.simulated, first.cached) == (2, 0)

        second = RunReport()
        warm = run_scenarios(FAST[:2], workers=0, cache=cache, report=second)
        assert (second.simulated, second.cached) == (0, 2)
        for a, b in zip(cold, warm):
            assert outcome_volumes(a) == outcome_volumes(b)
            assert a.usages == b.usages

    def test_changed_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_scenarios(FAST[:1], workers=0, cache=cache)
        report = RunReport()
        run_scenarios(
            [FAST[0].with_(seed=99)], workers=0, cache=cache, report=report
        )
        assert report.simulated == 1

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_scenarios(FAST[:1], workers=0, cache=cache)
        cache.path_for(FAST[0]).write_text("{ truncated garbage")
        report = RunReport()
        run_scenarios(FAST[:1], workers=0, cache=cache, report=report)
        assert report.simulated == 1  # re-simulated, file replaced
        assert cache.get(FAST[0]) is not None

    def test_concurrent_publish_same_key_never_corrupts(self, tmp_path):
        """Racing writers stage through unique temp files.

        With a shared ``.tmp`` staging name, two publishers of the same
        key could interleave write/rename and publish garbage; with
        pid+uuid temp names every published file is one writer's complete
        payload.  Threads share a pid, so this exercises the uuid half of
        the uniqueness too.
        """
        cache = ResultCache(tmp_path / "cache")
        payloads = [{"version": 1, "writer": i, "blob": "x" * 4096} for i in range(8)]
        barrier = threading.Barrier(len(payloads))

        def publish(payload):
            barrier.wait()
            for _ in range(20):
                cache.put_data("contended-key", payload)

        threads = [threading.Thread(target=publish, args=(p,)) for p in payloads]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        final = cache.get_data("contended-key")
        assert final in payloads  # some complete payload, never a splice
        leftovers = list((tmp_path / "cache").glob("*.tmp"))
        assert leftovers == []

    def test_get_data_drops_non_dict_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put_data("k", {"ok": 1})
        cache.path_for_key("k").write_text("[1, 2, 3]")  # parses, wrong shape
        assert cache.get_data("k") is None
        assert not cache.has("k")

    def test_cache_false_disables(self, tmp_path):
        parallel.configure(workers=0, cache_dir=tmp_path / "default-cache")
        try:
            run_scenarios(FAST[:1], cache=True)
            report = RunReport()
            run_scenarios(FAST[:1], cache=False, report=report)
            assert report.simulated == 1
            report = RunReport()
            run_scenarios(FAST[:1], cache=True, report=report)
            assert report.cached == 1
        finally:
            parallel.configure(workers=0, cache_dir=None)
