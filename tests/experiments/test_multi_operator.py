"""Multi-operator extension (§8)."""

import pytest

from repro.experiments.multi_operator import OperatorShare, run_multi_operator
from repro.experiments.scenarios import WEBCAM_UDP_UL


@pytest.fixture(scope="module")
def result():
    shares = [OperatorShare("operator-A", 0.6), OperatorShare("operator-B", 0.4)]
    return run_multi_operator(WEBCAM_UDP_UL, shares, seed=7, n_cycles=2)


class TestMultiOperator:
    def test_one_result_per_operator(self, result):
        assert set(result.per_operator) == {"operator-A", "operator-B"}

    def test_traffic_split_by_share(self, result):
        a = result.per_operator["operator-A"].measured_bitrate_bps
        b = result.per_operator["operator-B"].measured_bitrate_bps
        assert a / (a + b) == pytest.approx(0.6, abs=0.08)

    def test_combined_optimal_gap_small(self, result):
        assert result.combined_gap_ratio("tlc-optimal") < 0.05

    def test_combined_beats_legacy(self, result):
        assert result.combined_gap_ratio("tlc-optimal") < result.combined_gap_ratio("legacy")

    def test_total_charged_positive(self, result):
        assert result.total_charged("tlc-optimal") > 0

    def test_rounds_aggregate(self, result):
        assert result.mean_rounds("tlc-optimal") >= 1.0


class TestValidation:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            run_multi_operator(WEBCAM_UDP_UL, [OperatorShare("x", 0.5)], n_cycles=1)

    def test_share_fraction_bounds(self):
        with pytest.raises(ValueError):
            OperatorShare("x", 0.0)
        with pytest.raises(ValueError):
            OperatorShare("x", 1.5)
