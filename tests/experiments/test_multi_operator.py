"""Multi-operator extension (§8) and its signed settlement path."""

import random

import pytest

from repro.crypto import generate_keypair
from repro.experiments.multi_operator import OperatorShare, run_multi_operator
from repro.experiments.scenarios import WEBCAM_UDP_UL
from repro.poc.messages import Poc
from repro.poc.verifier import PublicVerifier


@pytest.fixture(scope="module")
def result():
    shares = [OperatorShare("operator-A", 0.6), OperatorShare("operator-B", 0.4)]
    return run_multi_operator(WEBCAM_UDP_UL, shares, seed=7, n_cycles=2)


@pytest.fixture(scope="module")
def edge_key():
    return generate_keypair(512, random.Random(101))


@pytest.fixture(scope="module")
def operator_keys():
    return {
        "operator-A": generate_keypair(512, random.Random(102)),
        "operator-B": generate_keypair(512, random.Random(103)),
    }


@pytest.fixture(scope="module")
def settlement(result, edge_key, operator_keys):
    return result.settle(edge_key, operator_keys, seed=5)


class TestMultiOperator:
    def test_one_result_per_operator(self, result):
        assert set(result.per_operator) == {"operator-A", "operator-B"}

    def test_traffic_split_by_share(self, result):
        a = result.per_operator["operator-A"].measured_bitrate_bps
        b = result.per_operator["operator-B"].measured_bitrate_bps
        assert a / (a + b) == pytest.approx(0.6, abs=0.08)

    def test_combined_optimal_gap_small(self, result):
        assert result.combined_gap_ratio("tlc-optimal") < 0.05

    def test_combined_beats_legacy(self, result):
        assert result.combined_gap_ratio("tlc-optimal") < result.combined_gap_ratio("legacy")

    def test_total_charged_positive(self, result):
        assert result.total_charged("tlc-optimal") > 0

    def test_rounds_aggregate(self, result):
        assert result.mean_rounds("tlc-optimal") >= 1.0


class TestSettlement:
    def test_one_receipt_per_operator_cycle(self, settlement):
        assert {op: len(rs) for op, rs in settlement.receipts.items()} == {
            "operator-A": 2,
            "operator-B": 2,
        }

    def test_every_receipt_passes_algorithm2(self, settlement):
        assert settlement.audit() == []

    def test_receipts_are_real_signed_pocs(self, settlement):
        for receipts in settlement.receipts.values():
            for receipt in receipts:
                # Round-trips the wire encoding: these are the bytes a
                # vendor would actually submit to the service.
                blob = receipt.poc.encode()
                assert Poc.decode(blob).volume == receipt.volume

    def test_volumes_within_theorem2_bracket(self, result, settlement):
        for operator, receipts in settlement.receipts.items():
            usages = result.per_operator[operator].usages
            for receipt in receipts:
                usage = usages[receipt.cycle_index]
                x_e = max(usage.edge_sent_record, usage.operator_sent_estimate)
                x_o = min(
                    usage.operator_received_record, usage.edge_received_estimate
                )
                # Theorem 2: negotiation lands between the two parties'
                # views (±1 byte of integer rounding).
                assert x_o - 1 <= receipt.volume <= x_e + 1

    def test_total_volume_tracks_scheme_accounting(self, result, settlement):
        charged = result.total_charged("tlc-optimal")
        assert settlement.total_volume() == pytest.approx(charged, rel=0.02)

    def test_tampered_volume_fails_audit(self, settlement):
        receipt = settlement.receipts["operator-A"][0]
        forged = Poc(
            receipt.poc.role, receipt.poc.plan, receipt.poc.volume + 1,
            receipt.poc.peer_cda, receipt.poc.signature,
            receipt.poc.nonce_edge, receipt.poc.nonce_operator,
        )
        report = PublicVerifier(settlement.plan).verify(
            forged, receipt.plan_params,
            settlement.edge_public,
            settlement.operator_publics["operator-A"],
        )
        assert not report.ok

    def test_replayed_receipt_rejected(self, settlement):
        receipt = settlement.receipts["operator-A"][0]
        verifier = PublicVerifier(settlement.plan)
        args = (
            receipt.poc, receipt.plan_params,
            settlement.edge_public, settlement.operator_publics["operator-A"],
        )
        assert verifier.verify(*args).ok
        replay = verifier.verify(*args)
        assert not replay.ok
        assert replay.failure.value == "replayed-poc"

    def test_wrong_operator_key_fails(self, settlement):
        receipt = settlement.receipts["operator-A"][0]
        report = PublicVerifier(settlement.plan).verify(
            receipt.poc, receipt.plan_params,
            settlement.edge_public,
            settlement.operator_publics["operator-B"],  # not A's key
        )
        assert not report.ok

    def test_missing_keypair_is_an_error(self, result, edge_key, operator_keys):
        with pytest.raises(ValueError, match="operator-B"):
            result.settle(edge_key, {"operator-A": operator_keys["operator-A"]})


class TestValidation:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            run_multi_operator(WEBCAM_UDP_UL, [OperatorShare("x", 0.5)], n_cycles=1)

    def test_share_fraction_bounds(self):
        with pytest.raises(ValueError):
            OperatorShare("x", 0.0)
        with pytest.raises(ValueError):
            OperatorShare("x", 1.5)
