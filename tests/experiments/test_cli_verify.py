"""The auditor CLI: ``python -m repro verify <ledger>``."""

import random

import pytest

from repro.core import DataPlan, OptimalStrategy, PartyKnowledge, PartyRole
from repro.crypto import generate_keypair
from repro.crypto.keyfiles import save_public_key
from repro.experiments.cli import main
from repro.poc import NegotiationDriver, PocLedger

PLAN = DataPlan(c=0.5, cycle_duration_s=60.0)


@pytest.fixture(scope="module")
def audit_setup(tmp_path_factory):
    base = tmp_path_factory.mktemp("audit")
    rng = random.Random(83)
    edge_key = generate_keypair(512, rng)
    operator_key = generate_keypair(512, rng)
    ledger = PocLedger(PLAN)
    for k in range(3):
        driver = NegotiationDriver(
            PLAN, k * 60.0,
            OptimalStrategy(PartyKnowledge(PartyRole.EDGE, 1_000_000, 900_000)),
            OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, 900_000, 1_000_000)),
            edge_key, operator_key, rng,
        )
        ledger.append(driver.run().poc)
    ledger_path = ledger.save(base / "receipts.jsonl")
    edge_pub = save_public_key(edge_key.public, base / "edge.pub")
    operator_pub = save_public_key(operator_key.public, base / "operator.pub")
    return ledger_path, edge_pub, operator_pub


class TestVerifyCommand:
    def test_clean_ledger_passes(self, audit_setup, capsys):
        ledger, edge_pub, operator_pub = audit_setup
        code = main([
            "verify", str(ledger),
            "--edge-key", str(edge_pub),
            "--operator-key", str(operator_pub),
            "--cycle-seconds", "60",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out
        assert "2,850,000" in out  # 3 × 950,000 verified bytes

    def test_swapped_keys_fail(self, audit_setup, capsys):
        ledger, edge_pub, operator_pub = audit_setup
        code = main([
            "verify", str(ledger),
            "--edge-key", str(operator_pub),
            "--operator-key", str(edge_pub),
            "--cycle-seconds", "60",
        ])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_missing_key_file_is_usage_error(self, audit_setup, capsys):
        ledger, edge_pub, _ = audit_setup
        code = main([
            "verify", str(ledger),
            "--edge-key", str(edge_pub),
            "--operator-key", "/nonexistent.pub",
            "--cycle-seconds", "60",
        ])
        assert code == 2
        assert "cannot load keys" in capsys.readouterr().err

    def test_wrong_cycle_length_rejects_ledger(self, audit_setup, capsys):
        ledger, edge_pub, operator_pub = audit_setup
        code = main([
            "verify", str(ledger),
            "--edge-key", str(edge_pub),
            "--operator-key", str(operator_pub),
            "--cycle-seconds", "3600",
        ])
        assert code == 1
        assert "ledger rejected" in capsys.readouterr().err
