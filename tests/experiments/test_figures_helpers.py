"""Rendering and helper utilities of the figures module."""

from repro.experiments.figures import Figure12Result, TableResult, _fmt


class TestTableRendering:
    def test_columns_align(self):
        table = TableResult("Title", ("name", "value"), [("short", 1.0), ("a-much-longer-name", 22.5)])
        lines = table.render().splitlines()
        assert lines[0] == "Title"
        # Header and rows share column offsets.
        value_col = lines[1].index("value")
        assert lines[2][value_col - 1] == " "
        assert "22.50" in lines[3]

    def test_floats_two_decimals(self):
        assert _fmt(3.14159) == "3.14"

    def test_non_floats_passthrough(self):
        assert _fmt("abc") == "abc"
        assert _fmt(7) == "7"

    def test_empty_rows_render_header_only(self):
        table = TableResult("T", ("a", "b"))
        assert len(table.render().splitlines()) == 2


class TestFigure12Rendering:
    def test_summarizes_median_and_max(self):
        result = Figure12Result(
            cdfs={"app": {"legacy": [(1.0, 33.3), (2.0, 66.6), (9.0, 100.0)]}}
        )
        text = result.render()
        assert "median=" in text and "max=" in text
        assert "9.00" in text

    def test_empty_cdf_safe(self):
        result = Figure12Result(cdfs={"app": {"legacy": []}})
        assert "0.00" in result.render()
