"""Scenario configuration semantics."""

import dataclasses

import pytest

from repro.experiments.scenarios import (
    ALL_APPS,
    FIG3_APPS,
    GAMING_DL,
    VRIDGE_DL,
    WEBCAM_RTSP_UL,
    WEBCAM_UDP_UL,
    ScenarioConfig,
)
from repro.netsim import Direction


class TestCatalogue:
    def test_four_apps_match_table2(self):
        assert len(ALL_APPS) == 4
        assert {a.name for a in ALL_APPS} == {
            "webcam-rtsp-ul", "webcam-udp-ul", "vridge-gvsp-dl", "gaming-qci7-dl",
        }

    def test_fig3_subset(self):
        assert set(FIG3_APPS) <= set(ALL_APPS)
        assert GAMING_DL not in FIG3_APPS  # gaming joined in Table 2 only

    def test_directions_match_paper(self):
        assert WEBCAM_RTSP_UL.direction is Direction.UPLINK
        assert WEBCAM_UDP_UL.direction is Direction.UPLINK
        assert VRIDGE_DL.direction is Direction.DOWNLINK
        assert GAMING_DL.direction is Direction.DOWNLINK

    def test_workload_bitrates_match_paper_averages(self):
        assert WEBCAM_RTSP_UL.workload.mean_bitrate_bps == pytest.approx(0.77e6)
        assert WEBCAM_UDP_UL.workload.mean_bitrate_bps == pytest.approx(1.73e6)
        assert VRIDGE_DL.workload.mean_bitrate_bps == pytest.approx(9.0e6)
        assert GAMING_DL.workload.mean_bitrate_bps == pytest.approx(0.02e6)

    def test_gaming_rides_qci7(self):
        assert GAMING_DL.workload.qci == 7


class TestWith:
    def test_with_overrides_single_field(self):
        modified = WEBCAM_UDP_UL.with_(background_mbps=120.0)
        assert modified.background_mbps == 120.0
        assert modified.workload is WEBCAM_UDP_UL.workload

    def test_with_does_not_mutate_original(self):
        WEBCAM_UDP_UL.with_(seed=999)
        assert WEBCAM_UDP_UL.seed == 1

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            WEBCAM_UDP_UL.seed = 2

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            WEBCAM_UDP_UL.with_(nonexistent_field=1)

    def test_mobility_defaults_off(self):
        config = ScenarioConfig(
            name="x", workload=WEBCAM_UDP_UL.workload, direction=Direction.UPLINK
        )
        assert config.handover_interval_s is None
        assert config.sla_budget_s is None
