"""ScenarioRunner: record extraction and scheme evaluation."""

import pytest

from repro.experiments.runner import SCHEMES, ScenarioRunner, run_scenario
from repro.experiments.scenarios import GAMING_DL, VRIDGE_DL, WEBCAM_UDP_UL
from repro.netsim import Direction


@pytest.fixture(scope="module")
def udp_result():
    return run_scenario(WEBCAM_UDP_UL.with_(n_cycles=4, seed=11))


@pytest.fixture(scope="module")
def vr_result():
    return run_scenario(VRIDGE_DL.with_(n_cycles=3, seed=12))


class TestGroundTruth:
    def test_one_usage_per_cycle(self, udp_result):
        assert len(udp_result.usages) == 4

    def test_received_never_exceeds_sent(self, udp_result, vr_result):
        for usage in udp_result.usages + vr_result.usages:
            assert usage.true_received <= usage.true_sent

    def test_uplink_gateway_equals_received(self, udp_result):
        """UL: the gateway *is* the receiving record."""
        for usage in udp_result.usages:
            assert usage.gateway_count == usage.operator_received_record

    def test_downlink_gateway_equals_sent_estimate(self, vr_result):
        for usage in vr_result.usages:
            assert usage.gateway_count == usage.operator_sent_estimate

    def test_loss_present_with_base_loss(self, udp_result):
        total_loss = sum(u.loss_bytes for u in udp_result.usages)
        assert total_loss > 0

    def test_records_close_to_truth(self, udp_result):
        """Measured records err by a few percent, not wildly."""
        for usage in udp_result.usages:
            assert usage.edge_sent_record == pytest.approx(usage.true_sent, rel=0.2)
            assert usage.operator_received_record == pytest.approx(
                usage.true_received, rel=0.2
            )

    def test_bitrate_near_profile(self, udp_result):
        assert udp_result.measured_bitrate_bps == pytest.approx(1.73e6, rel=0.2)


class TestSchemes:
    def test_all_schemes_evaluated_per_cycle(self, udp_result):
        for scheme in SCHEMES:
            assert len(udp_result.outcomes[scheme]) == 4

    def test_optimal_beats_legacy_on_lossy_uplink(self, udp_result):
        assert udp_result.mean_delta_mb_per_hr("tlc-optimal") < udp_result.mean_delta_mb_per_hr("legacy")

    def test_optimal_converges_in_one_round_mostly(self, udp_result):
        assert udp_result.mean_rounds("tlc-optimal") <= 1.5

    def test_legacy_is_single_shot(self, udp_result):
        assert udp_result.mean_rounds("legacy") == 1.0

    def test_expected_charge_consistent_across_schemes(self, udp_result):
        for a, b in zip(udp_result.outcomes["legacy"], udp_result.outcomes["tlc-optimal"]):
            assert a.expected == b.expected

    def test_gaps_mb_per_hr_length(self, udp_result):
        assert len(udp_result.gaps_mb_per_hr("legacy")) == 4


class TestConditions:
    def test_congestion_grows_legacy_gap(self):
        clean = run_scenario(VRIDGE_DL.with_(n_cycles=2, seed=5))
        congested = run_scenario(VRIDGE_DL.with_(n_cycles=2, seed=5, background_mbps=160.0))
        assert congested.mean_delta_mb_per_hr("legacy") > 2 * clean.mean_delta_mb_per_hr("legacy")

    def test_gaming_protected_under_congestion(self):
        congested = run_scenario(GAMING_DL.with_(n_cycles=2, seed=5, background_mbps=160.0))
        assert congested.mean_epsilon("legacy") < 0.08

    def test_outages_grow_legacy_gap(self):
        clean = run_scenario(WEBCAM_UDP_UL.with_(n_cycles=2, seed=6, base_loss=0.0))
        flaky = run_scenario(
            WEBCAM_UDP_UL.with_(n_cycles=2, seed=6, base_loss=0.0, outage_eta=0.12)
        )
        assert flaky.mean_epsilon("legacy") > clean.mean_epsilon("legacy")

    def test_deterministic_given_seed(self):
        a = run_scenario(WEBCAM_UDP_UL.with_(n_cycles=2, seed=9))
        b = run_scenario(WEBCAM_UDP_UL.with_(n_cycles=2, seed=9))
        assert [u.true_sent for u in a.usages] == [u.true_sent for u in b.usages]
        assert a.outcomes["tlc-random"][0].charged == b.outcomes["tlc-random"][0].charged


class TestDirectionSemantics:
    def test_uplink_runner_counts_device_side(self, udp_result):
        assert all(u.direction is Direction.UPLINK for u in udp_result.usages)

    def test_downlink_runner_counts_server_side(self, vr_result):
        assert all(u.direction is Direction.DOWNLINK for u in vr_result.usages)


class TestUplinkRecordExactness:
    def test_uplink_records_are_exact(self):
        """Paper: 'For the uplink, TLC achieves 100 % accuracy' — the
        operator's record *is* the gateway counter."""
        result = run_scenario(WEBCAM_UDP_UL.with_(n_cycles=3, seed=61))
        for usage in result.usages:
            assert usage.operator_received_record == usage.gateway_count
