"""Figure 16a's RTT measurement utility."""

import statistics

import pytest

from repro.edge.device import EL20, PIXEL_2XL
from repro.experiments.latency import measure_rtt


class TestRtt:
    def test_returns_one_sample_per_ping(self):
        rtts = measure_rtt(EL20, pings=40, seed=2)
        assert len(rtts) == 40

    def test_rtt_near_device_profile(self):
        rtts = measure_rtt(EL20, pings=60, seed=2)
        assert statistics.mean(rtts) == pytest.approx(EL20.rtt_ms, rel=0.3)

    def test_slower_device_higher_rtt(self):
        fast = statistics.mean(measure_rtt(EL20, pings=40, seed=3))
        slow = statistics.mean(measure_rtt(PIXEL_2XL, pings=40, seed=3))
        assert slow > fast

    def test_tlc_does_not_move_in_cycle_rtt(self):
        """The paper's Figure 16a claim: TLC adds no in-cycle latency."""
        without = statistics.mean(measure_rtt(EL20, pings=80, seed=4, tlc_enabled=False))
        with_tlc = statistics.mean(measure_rtt(EL20, pings=80, seed=4, tlc_enabled=True))
        assert with_tlc == pytest.approx(without, rel=0.1)

    def test_congestion_raises_rtt(self):
        clean = statistics.mean(measure_rtt(EL20, pings=40, seed=5))
        congested = statistics.mean(
            measure_rtt(EL20, pings=40, seed=5, background_mbps=120.0)
        )
        assert congested > clean
