"""Smoke tests for every figure/table generator (tiny configurations).

These verify each generator runs, produces the right row/series shape,
and reproduces the paper's qualitative orderings — the full-size runs
live in ``benchmarks/``.
"""

import pytest

from repro.experiments import figures


class TestFigure3:
    @pytest.fixture(scope="class")
    def table(self):
        return figures.figure3(n_cycles=2)

    def test_three_apps(self, table):
        assert len(table.rows) == 3

    def test_gap_grows_with_congestion(self, table):
        for row in table.rows:
            values = row[1:]
            assert values[-1] > values[0]

    def test_render_contains_title(self, table):
        assert "Figure 3" in table.render()


class TestFigure4:
    @pytest.fixture(scope="class")
    def series(self):
        return figures.figure4(duration_s=120.0)

    def test_per_second_series(self, series):
        assert len(series.times) == 120
        assert len(series.rss_dbm) == 120

    def test_gap_is_cumulative_nondecreasing_mostly(self, series):
        """Buffer drains can dent the gap (t≈240 s in the paper) but the
        series must end above where it started."""
        assert series.cumulative_gap_mb[-1] >= series.cumulative_gap_mb[0]

    def test_outages_present(self, series):
        assert not all(series.connected)

    def test_mean_outage_near_configured(self, series):
        assert 0.5 <= series.mean_outage_s <= 6.0


class TestFigure12AndTable2:
    def test_figure12_cdfs_shape(self):
        result = figures.figure12(n_cycles=1)
        assert len(result.cdfs) == 4
        for schemes in result.cdfs.values():
            assert set(schemes) == {"legacy", "tlc-random", "tlc-optimal"}
            for points in schemes.values():
                assert points[-1][1] == 100.0

    def test_table2_optimal_beats_legacy(self):
        table = figures.table2(n_cycles=1)
        for row in table.rows:
            legacy_delta, optimal_delta = row[2], row[4]
            assert optimal_delta < legacy_delta


class TestFigure13:
    def test_rows_per_app_and_scheme(self):
        table = figures.figure13(n_cycles=1)
        assert len(table.rows) == 4 * 3

    def test_optimal_flat_under_congestion(self):
        table = figures.figure13(n_cycles=1)
        for row in table.rows:
            if row[1] == "tlc-optimal":
                assert max(row[2:]) < 8.0  # percent


class TestFigure14:
    def test_legacy_grows_with_eta(self):
        table = figures.figure14(n_cycles=1)
        legacy = next(r for r in table.rows if r[0] == "legacy")
        assert legacy[-1] > legacy[1]

    def test_optimal_below_legacy(self):
        table = figures.figure14(n_cycles=1)
        legacy = next(r for r in table.rows if r[0] == "legacy")
        optimal = next(r for r in table.rows if r[0] == "tlc-optimal")
        assert sum(optimal[1:]) < sum(legacy[1:])


class TestFigure15:
    def test_mu_decreases_with_c(self):
        curves = figures.figure15(n_cycles=1)
        medians = {}
        for c, points in curves.items():
            medians[c] = points[len(points) // 2][0] if points else 0.0
        assert medians[0.0] >= medians[0.5] >= medians[1.0]

    def test_c_one_collapses_to_zero(self):
        curves = figures.figure15(n_cycles=1)
        points = curves[1.0]
        median = points[len(points) // 2][0]
        assert abs(median) < 2.0


class TestFigure16:
    def test_16a_tlc_adds_no_latency(self):
        table = figures.figure16a(pings=40)
        for device, without, with_tlc in table.rows:
            assert with_tlc == pytest.approx(without, rel=0.15)

    def test_16b_optimal_one_round(self):
        table = figures.figure16b(n_cycles=1)
        for row in table.rows:
            assert row[2] <= 1.5  # TLC-optimal column

    def test_16b_random_more_rounds(self):
        table = figures.figure16b(n_cycles=1)
        assert any(row[1] > row[2] for row in table.rows)


class TestFigure17:
    @pytest.fixture(scope="class")
    def table(self):
        return figures.figure17(samples=6, key_bits=512)

    def test_four_devices_plus_sizes(self, table):
        assert len(table.rows) == 5

    def test_workstation_fastest(self, table):
        times = {row[0]: row[1] for row in table.rows[:4]}
        assert times["HP Z840"] == min(times.values())

    def test_crypto_fraction_near_paper(self, table):
        """Paper: 54.9 % crypto on average (phones)."""
        phone_rows = [r for r in table.rows[:4] if r[0] != "HP Z840"]
        for row in phone_rows:
            assert 35 <= row[2] <= 75


class TestFigure18:
    def test_error_summaries(self):
        table = figures.figure18(n_cycles=6)
        operator_row = table.rows[0]
        edge_row = table.rows[1]
        # Paper: γo mean 2.0 %, γe mean 1.2 % — allow generous band.
        assert 0.5 <= operator_row[1] <= 5.0
        assert 0.3 <= edge_row[1] <= 3.5
        assert operator_row[2] >= operator_row[1]  # p95 ≥ mean
