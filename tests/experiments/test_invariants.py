"""Property-based invariants over randomized scenario configurations.

Hypothesis draws small scenario variations (loss, congestion, outages,
plan weight) and checks the structural facts every run must satisfy —
the counting geometry, scheme bounds and Theorem 2 at the system level.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import VRIDGE_DL, WEBCAM_UDP_UL
from repro.netsim import Direction

conditions = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=50),
        "c": st.sampled_from([0.0, 0.25, 0.5, 1.0]),
        "base_loss": st.sampled_from([0.0, 0.03, 0.1]),
        "background_mbps": st.sampled_from([0.0, 140.0]),
    }
)


@settings(max_examples=10, deadline=None)
@given(conditions)
def test_uplink_scenario_invariants(overrides):
    result = run_scenario(WEBCAM_UDP_UL.with_(n_cycles=2, **overrides))
    plan_c = overrides["c"]
    for usage, legacy, optimal in zip(
        result.usages, result.outcomes["legacy"], result.outcomes["tlc-optimal"]
    ):
        # Counting geometry.
        assert usage.true_received <= usage.true_sent
        assert usage.gateway_count == usage.operator_received_record
        # Expected charge interpolates the truth pair.
        assert usage.true_received <= legacy.expected <= usage.true_sent
        # Uplink legacy bills the received volume: gap = c · loss, up to
        # the in-flight traffic crossing the cycle boundary (~path RTT).
        boundary_slack = usage.true_sent * 0.001 + 2
        assert legacy.delta == pytest.approx(
            plan_c * usage.loss_bytes, abs=boundary_slack
        )
        # System-level Theorem 2 (records err by a few percent at most).
        assert optimal.charged >= usage.true_received * 0.90
        assert optimal.charged <= usage.true_sent * 1.10


@settings(max_examples=8, deadline=None)
@given(conditions)
def test_downlink_scenario_invariants(overrides):
    result = run_scenario(VRIDGE_DL.with_(n_cycles=2, **overrides))
    plan_c = overrides["c"]
    for usage, legacy in zip(result.usages, result.outcomes["legacy"]):
        assert usage.direction is Direction.DOWNLINK
        # DL gateway counts at/above what the device received, at/below
        # what the server sent (lossless LAN).
        assert usage.true_received <= usage.gateway_count <= usage.true_sent
        # Downlink legacy bills the gateway count: gap = (1−c) · loss, up
        # to in-flight boundary traffic.
        boundary_slack = usage.true_sent * 0.001 + 2
        assert legacy.delta == pytest.approx(
            (1.0 - plan_c) * usage.loss_bytes, abs=boundary_slack
        )
