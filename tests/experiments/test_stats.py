"""Statistics helpers."""

import pytest

from repro.experiments.stats import Summary, cdf_points, mb, percentile


class TestCdf:
    def test_sorted_with_percentiles(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [
            (1.0, pytest.approx(100 / 3)),
            (2.0, pytest.approx(200 / 3)),
            (3.0, pytest.approx(100.0)),
        ]

    def test_empty(self):
        assert cdf_points([]) == []

    def test_last_point_is_100(self):
        assert cdf_points([5, 9, 1])[-1][1] == 100.0


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_p95_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 95) == 95

    def test_p100_is_max(self):
        assert percentile([4, 8, 2], 100) == 8

    def test_p0_is_min_by_nearest_rank(self):
        assert percentile([4, 8, 2], 0) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_pct(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummary:
    def test_summary_fields(self):
        summary = Summary.of([1.0, 2.0, 3.0, 10.0])
        assert summary.mean == 4.0
        assert summary.max == 10.0
        assert summary.n == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Summary.of([])


class TestUnits:
    def test_mb_is_decimal(self):
        assert mb(5_000_000) == 5.0
