"""CSV export of figure data."""

import csv

from repro.experiments import figures
from repro.experiments.export import (
    export_cdfs,
    export_curves,
    export_figure4,
    export_table,
)


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestTableExport:
    def test_header_and_rows(self, tmp_path):
        table = figures.TableResult("t", ("a", "b"), [("x", 1.5), ("y", 2.5)])
        path = export_table(table, tmp_path / "t.csv")
        rows = read_csv(path)
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["x", "1.5"]
        assert len(rows) == 3

    def test_creates_parent_dirs(self, tmp_path):
        table = figures.TableResult("t", ("a",), [("x",)])
        path = export_table(table, tmp_path / "deep" / "nested" / "t.csv")
        assert path.exists()


class TestSeriesExport:
    def test_figure4_per_second_rows(self, tmp_path):
        series = figures.Figure4Series(
            times=[1.0, 2.0],
            device_rate_mbps=[1.5, 1.6],
            network_rate_mbps=[1.7, 1.8],
            cumulative_gap_mb=[0.1, 0.2],
            rss_dbm=[-85.0, -120.0],
            connected=[True, False],
            mean_outage_s=2.0,
            total_gap_mb=0.2,
        )
        path = export_figure4(series, tmp_path / "fig4.csv")
        rows = read_csv(path)
        assert len(rows) == 3
        assert rows[1][0] == "1.0"
        assert rows[2][5] == "False"

    def test_cdf_export_one_file_per_curve(self, tmp_path):
        result = figures.Figure12Result(
            cdfs={
                "app-a": {"legacy": [(1.0, 50.0), (2.0, 100.0)]},
                "app-b": {"tlc-optimal": [(0.5, 100.0)]},
            }
        )
        paths = export_cdfs(result, tmp_path)
        assert len(paths) == 2
        rows = read_csv(sorted(paths)[0])
        assert rows[0] == ["gap_mb_per_hr", "percentile"]

    def test_curve_family_long_form(self, tmp_path):
        curves = {0.0: [(5.0, 100.0)], 0.5: [(2.0, 50.0), (3.0, 100.0)]}
        path = export_curves(curves, tmp_path / "f15.csv", "mu")
        rows = read_csv(path)
        assert rows[0] == ["parameter", "mu", "percentile"]
        assert len(rows) == 4


class TestCliCsvFlag:
    def test_run_with_csv_export(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["run", "figure16a", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "figure16a.csv").exists()
        rows = read_csv(tmp_path / "figure16a.csv")
        assert rows[0] == ["device", "w/o TLC", "w/ TLC"]
