"""Fleet engine: assignment, sharding, streaming aggregation, determinism."""

import json

import pytest

from repro.experiments.fleet import (
    ARCHETYPES,
    FleetAccumulator,
    FleetConfig,
    _simulate_shard_to_dict,
    assign_ues,
    build_shards,
    fleet_shard_key,
    run_fleet,
    shard_from_dict,
    shard_result_to_dict,
    shard_to_dict,
    zipf_weights,
)
from repro.experiments.fleet_runner import simulate_shard
from repro.experiments.parallel import ResultCache, RunReport

# Small and cheap: 8 UEs, two 10 s cycles.  Archetype draws at this seed
# cover several workloads; everything downstream is deterministic.
FAST = FleetConfig(ues=8, shard_size=2, seed=3, n_cycles=2, cycle_duration_s=10.0)


def aggregate_json(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestConfig:
    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            FleetConfig(ues=0)

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ValueError):
            FleetConfig(ues=4, shard_size=0)

    def test_rejects_unknown_archetype(self):
        with pytest.raises(ValueError):
            FleetConfig(ues=4, mix=("no-such-app",))

    def test_to_dict_json_safe(self):
        json.dumps(FAST.to_dict())

    def test_rejects_unknown_fault_profile(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            FleetConfig(ues=4, fault_profile="gremlins")


class TestAssignment:
    def test_zipf_weights_normalized_and_rank_ordered(self):
        weights = zipf_weights(5, 1.1)
        assert abs(sum(weights) - 1.0) < 1e-12
        assert weights == sorted(weights, reverse=True)

    def test_assignment_deterministic(self):
        assert assign_ues(FAST) == assign_ues(FAST)

    def test_assignment_independent_of_population_size(self):
        """UE #i is the same subscriber in a fleet of 8 or of 32."""
        small = assign_ues(FAST)
        large = assign_ues(FleetConfig(
            ues=32, shard_size=2, seed=3, n_cycles=2, cycle_duration_s=10.0
        ))
        assert large[: len(small)] == small

    def test_assignment_independent_of_shard_size(self):
        wide = FleetConfig(ues=8, shard_size=8, seed=3, n_cycles=2,
                           cycle_duration_s=10.0)
        assert assign_ues(FAST) == assign_ues(wide)

    def test_seed_changes_assignment(self):
        other = FleetConfig(ues=8, shard_size=2, seed=4, n_cycles=2,
                            cycle_duration_s=10.0)
        assert [u.seed for u in assign_ues(FAST)] != [u.seed for u in assign_ues(other)]

    def test_per_ue_config_resolved(self):
        for ue in assign_ues(FAST):
            assert ue.config.seed == ue.seed
            assert ue.config.n_cycles == FAST.n_cycles
            assert ue.config.cycle_duration_s == FAST.cycle_duration_s
            assert ue.config.workload == ARCHETYPES[ue.archetype].workload

    def test_fault_profile_resolves_per_ue_and_changes_shard_key(self):
        from repro.netsim.faults import FAULT_PROFILES

        chaotic = FleetConfig(
            ues=8, shard_size=2, seed=3, n_cycles=2, cycle_duration_s=10.0,
            fault_profile="chaos",
        )
        for ue in assign_ues(chaotic):
            assert ue.config.faults == FAULT_PROFILES["chaos"]
        # The profile rides inside each UE's ScenarioConfig, so the
        # content-addressed shard cache can never serve a faultless
        # result for a chaotic sweep.
        assert fleet_shard_key(build_shards(chaotic)[0]) != fleet_shard_key(
            build_shards(FAST)[0]
        )


class TestShards:
    def test_shard_cut_covers_population_in_order(self):
        shards = build_shards(FAST)
        flattened = [ue for shard in shards for ue in shard.ues]
        assert flattened == assign_ues(FAST)
        assert [s.index for s in shards] == list(range(len(shards)))

    def test_shard_codec_round_trip(self):
        shard = build_shards(FAST)[0]
        assert shard_from_dict(json.loads(json.dumps(shard_to_dict(shard)))) == shard

    def test_shard_key_stable_and_sensitive(self):
        shards = build_shards(FAST)
        assert fleet_shard_key(shards[0]) == fleet_shard_key(shards[0])
        assert fleet_shard_key(shards[0]) != fleet_shard_key(shards[1])
        reseeded = build_shards(FleetConfig(
            ues=8, shard_size=2, seed=4, n_cycles=2, cycle_duration_s=10.0
        ))
        assert fleet_shard_key(shards[0]) != fleet_shard_key(reseeded[0])


class TestShardRunner:
    def test_shard_result_deterministic(self):
        shard = build_shards(FAST)[0]
        a = shard_result_to_dict(simulate_shard(shard))
        b = shard_result_to_dict(simulate_shard(shard))
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_every_ue_summarized(self):
        shard = build_shards(FAST)[1]
        result = simulate_shard(shard)
        assert [ue.ue_index for ue in result.ues] == [ue.index for ue in shard.ues]
        for ue in result.ues:
            assert ue.cycles == FAST.n_cycles
            assert set(ue.mean_gap_mb_hr) == {
                "legacy", "tlc-optimal", "tlc-random", "tlc-honest"
            }

    def test_standard_mix_all_batched_no_fallback_counters(self):
        """Every archetype in the standard mix rides the batched kernel.

        The ``kernel.fallback{reason=...}`` counter is the observable
        contract: absent entirely means no session fell back — outage,
        quota, RSS and handover shapes included.
        """
        from repro.experiments.fleet_runner import FleetShardRunner

        runner = FleetShardRunner(build_shards(FAST)[0], kernel="auto")
        result = runner.run()
        assert set(runner.kernel_used.values()) == {"batched"}
        assert runner.kernel_fallback_reasons == {}
        assert not any(
            key.startswith("kernel.fallback") for key in result.metrics.counters
        )

    def test_chaos_overrides_all_batched(self):
        from repro.experiments.fleet_runner import FleetShardRunner

        chaos = FleetConfig(
            ues=4,
            shard_size=4,
            seed=3,
            n_cycles=2,
            cycle_duration_s=10.0,
            outage_eta=0.1,
            handover_interval_s=5.0,
            handover_x2=True,
            quota_bytes=100_000,
        )
        runner = FleetShardRunner(build_shards(chaos)[0], kernel="auto")
        result = runner.run()
        assert set(runner.kernel_used.values()) == {"batched"}
        assert not any(
            key.startswith("kernel.fallback") for key in result.metrics.counters
        )

    def test_metric_cardinality_population_free(self):
        """Merged fleet metrics must not grow with the population."""
        import re

        small = simulate_shard(build_shards(FAST)[0]).metrics
        wide_config = FleetConfig(ues=8, shard_size=8, seed=3, n_cycles=2,
                                  cycle_duration_s=10.0)
        wide = simulate_shard(build_shards(wide_config)[0]).metrics
        for snapshot in (small, wide):
            keys = {**snapshot.counters, **snapshot.gauges, **snapshot.histograms}
            # No key names an individual subscriber (ue<index>, IMSI).
            assert not any(re.search(r"ue\d|imsi", key) for key in keys)
        # A 4x-larger shard adds at most the bounded archetype labels,
        # never per-UE keys: cardinality is O(metric names), not O(UEs).
        assert len(wide.gauges) <= len(small.gauges) + len(ARCHETYPES)
        assert len(wide.counters) <= len(small.counters) + 2 * len(ARCHETYPES)


class TestAccumulator:
    def _shard_dicts(self):
        return [
            _simulate_shard_to_dict(shard_to_dict(shard))
            for shard in build_shards(FAST)
        ]

    def test_permuted_arrival_is_bit_identical(self):
        datas = self._shard_dicts()
        in_order = FleetAccumulator()
        for data in datas:
            in_order.add(data)
        reference = aggregate_json(in_order.finalize(FAST, RunReport()))
        for permutation in ([3, 0, 2, 1], [1, 0, 3, 2], [3, 2, 1, 0]):
            accumulator = FleetAccumulator()
            for index in permutation:
                accumulator.add(datas[index])
            assert aggregate_json(
                accumulator.finalize(FAST, RunReport())
            ) == reference

    def test_duplicate_shard_rejected(self):
        datas = self._shard_dicts()
        accumulator = FleetAccumulator()
        accumulator.add(datas[0])
        with pytest.raises(ValueError, match="folded twice"):
            accumulator.add(datas[0])

    def test_missing_shard_detected_at_finalize(self):
        datas = self._shard_dicts()
        accumulator = FleetAccumulator()
        accumulator.add(datas[0])
        accumulator.add(datas[2])  # shard 1 never arrives
        with pytest.raises(ValueError, match="incomplete"):
            accumulator.finalize(FAST, RunReport())

    def test_ue_sink_streams_rows_in_index_order(self):
        rows = []
        run_fleet(FAST, workers=0, cache=False, ue_sink=rows.append)
        assert [row["index"] for row in rows] == list(range(FAST.ues))
        assert all("mean_gap_mb_hr" in row for row in rows)


class TestRunFleet:
    def test_parallel_bit_identical_to_serial(self):
        serial = run_fleet(FAST, workers=0, cache=False)
        fanned = run_fleet(FAST, workers=2, cache=False)
        assert aggregate_json(serial) == aggregate_json(fanned)

    def test_aggregate_shape(self):
        result = run_fleet(FAST, workers=0, cache=False)
        assert result.population == FAST.ues
        assert result.n_shards == 4
        assert sum(result.archetype_counts.values()) == FAST.ues
        assert result.gap_stats["legacy"].n == FAST.ues
        assert result.metrics.gauges["fleet.shard.ues"] == FAST.ues
        assert 0.0 <= result.convergence_ratio("tlc-optimal") <= 1.0
        assert result.render()  # renders without raising

    def test_second_run_is_all_cache_hits_and_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold_report = RunReport()
        cold = run_fleet(FAST, workers=0, cache=cache, report=cold_report)
        assert (cold_report.simulated, cold_report.cached) == (4, 0)
        warm_report = RunReport()
        warm = run_fleet(FAST, workers=0, cache=cache, report=warm_report)
        assert (warm_report.simulated, warm_report.cached) == (0, 4)
        assert aggregate_json(cold) == aggregate_json(warm)

    def test_corrupt_cache_entry_resimulated(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        reference = run_fleet(FAST, workers=0, cache=cache)
        key = fleet_shard_key(build_shards(FAST)[2])
        cache.path_for_key(key).write_text("{ not json")
        report = RunReport()
        result = run_fleet(FAST, workers=0, cache=cache, report=report)
        assert (report.simulated, report.cached) == (1, 3)
        assert aggregate_json(result) == aggregate_json(reference)

    def test_shard_size_one_and_uneven_tail(self):
        """Populations that don't divide evenly still cover every UE."""
        uneven = FleetConfig(ues=5, shard_size=2, seed=3, n_cycles=2,
                             cycle_duration_s=10.0)
        result = run_fleet(uneven, workers=0, cache=False)
        assert result.population == 5
        assert result.n_shards == 3
