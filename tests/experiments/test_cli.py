"""CLI behaviour (fast paths only; figure generation is benched)."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_names(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_every_benchmarked_figure_is_exposed(self):
        expected = {
            "figure3", "figure4", "figure12", "table2", "figure13",
            "figure14", "figure15", "figure16a", "figure16b",
            "figure17", "figure18",
        }
        assert expected == set(EXPERIMENTS)


class TestRun:
    def test_run_fast_experiment(self, capsys):
        assert main(["run", "figure16a"]) == 0
        out = capsys.readouterr().out
        assert "Figure 16a" in out
        assert "w/ TLC" in out
