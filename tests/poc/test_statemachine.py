"""TlcSession: the Figure-7a state machines."""

import random

import pytest

from repro.core.plan import DataPlan
from repro.core.strategies import (
    HonestStrategy,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
    StubbornStrategy,
)
from repro.poc.messages import Cdr, MessageType, PlanParams, Role
from repro.poc.statemachine import ProtocolViolation, SessionState, TlcSession

X_E, X_O = 1_000_000, 930_000


def make_sessions(edge_key, operator_key, edge_strategy=None, operator_strategy=None, c=0.5):
    plan = DataPlan(c=c, cycle_duration_s=3600.0)
    edge = TlcSession(
        Role.EDGE, plan, 0.0,
        edge_strategy or OptimalStrategy(PartyKnowledge(PartyRole.EDGE, X_E, X_O)),
        edge_key, operator_key.public, random.Random(1),
    )
    operator = TlcSession(
        Role.OPERATOR, plan, 0.0,
        operator_strategy or OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, X_O, X_E)),
        operator_key, edge_key.public, random.Random(2),
    )
    return edge, operator


def pump(initiator, responder):
    """Shuttle messages until someone stops responding."""
    wire = initiator.start()
    sender, receiver = initiator, responder
    hops = 0
    while wire is not None:
        hops += 1
        assert hops < 300, "protocol did not terminate"
        wire, (sender, receiver) = receiver.handle(wire), (receiver, sender)
    return initiator, responder


class TestHappyPath:
    def test_operator_initiated_completes(self, edge_key, operator_key):
        edge, operator = make_sessions(edge_key, operator_key)
        pump(operator, edge)
        assert edge.state is SessionState.DONE
        assert operator.state is SessionState.DONE

    def test_both_parties_hold_same_poc_volume(self, edge_key, operator_key):
        edge, operator = make_sessions(edge_key, operator_key)
        pump(operator, edge)
        assert edge.poc is not None and operator.poc is not None
        assert edge.poc.volume == operator.poc.volume == 965_000

    def test_edge_initiated_symmetric(self, edge_key, operator_key):
        edge, operator = make_sessions(edge_key, operator_key)
        pump(edge, operator)
        assert edge.poc.volume == 965_000

    def test_optimal_play_three_messages(self, edge_key, operator_key):
        """1-round = CDR, CDA, PoC — the paper's 3-message figure."""
        edge, operator = make_sessions(edge_key, operator_key)
        pump(operator, edge)
        total = edge.stats.messages_sent + operator.stats.messages_sent
        assert total == 3

    def test_honest_play_same_charge(self, edge_key, operator_key):
        edge, operator = make_sessions(
            edge_key, operator_key,
            HonestStrategy(PartyKnowledge(PartyRole.EDGE, X_E, X_O)),
            HonestStrategy(PartyKnowledge(PartyRole.OPERATOR, X_O, X_E)),
        )
        pump(operator, edge)
        assert edge.poc.volume == 965_000


class TestRejectionPaths:
    def test_stubborn_operator_forces_reclaims(self, edge_key, operator_key):
        """Case 2/3 of Figure 7b: rejection re-enters with a CDR."""
        edge, operator = make_sessions(
            edge_key, operator_key,
            operator_strategy=StubbornStrategy(
                PartyKnowledge(PartyRole.OPERATOR, X_O, X_E), fixed_claim=2_000_000
            ),
        )
        pump(operator, edge)
        total = edge.stats.messages_sent + operator.stats.messages_sent
        assert total > 3  # took more than the minimal exchange

    def test_negotiation_still_terminates(self, edge_key, operator_key):
        edge, operator = make_sessions(
            edge_key, operator_key,
            edge_strategy=StubbornStrategy(
                PartyKnowledge(PartyRole.EDGE, X_E, X_O), fixed_claim=1
            ),
        )
        pump(operator, edge)
        assert edge.state is SessionState.DONE


class TestProtocolViolations:
    def test_cannot_start_twice(self, edge_key, operator_key):
        edge, operator = make_sessions(edge_key, operator_key)
        operator.start()
        with pytest.raises(ProtocolViolation):
            operator.start()

    def test_rejects_forged_signature(self, edge_key, operator_key, intruder_key):
        edge, operator = make_sessions(edge_key, operator_key)
        forged = Cdr.build(
            Role.OPERATOR, PlanParams(0.0, 3600.0, 0.5), 0, bytes(16), 10**9, intruder_key
        )
        with pytest.raises(ProtocolViolation, match="signature"):
            edge.handle(forged.encode())

    def test_rejects_own_role_message(self, edge_key, operator_key):
        edge, operator = make_sessions(edge_key, operator_key)
        own = Cdr.build(Role.EDGE, PlanParams(0.0, 3600.0, 0.5), 0, bytes(16), 1, edge_key)
        with pytest.raises(ProtocolViolation, match="role"):
            edge.handle(own.encode())

    def test_rejects_wrong_plan_binding(self, edge_key, operator_key):
        edge, operator = make_sessions(edge_key, operator_key)
        wrong_plan = Cdr.build(
            Role.OPERATOR, PlanParams(0.0, 3600.0, 0.9), 0, bytes(16), 100, operator_key
        )
        with pytest.raises(ProtocolViolation, match="plan"):
            edge.handle(wrong_plan.encode())

    def test_rejects_empty_message(self, edge_key, operator_key):
        edge, _ = make_sessions(edge_key, operator_key)
        with pytest.raises(ProtocolViolation):
            edge.handle(b"")

    def test_rejects_unknown_type(self, edge_key, operator_key):
        edge, _ = make_sessions(edge_key, operator_key)
        with pytest.raises(ProtocolViolation):
            edge.handle(bytes([99]) + bytes(100))

    def test_poc_volume_must_match_claims(self, edge_key, operator_key):
        """A finalizer announcing a volume inconsistent with the signed
        claims is caught immediately by the counterpart."""
        edge, operator = make_sessions(edge_key, operator_key)
        wire = operator.start()
        cda_wire = edge.handle(wire)
        poc_wire = operator.handle(cda_wire)
        assert poc_wire is not None and poc_wire[0] == MessageType.POC.value
        # Corrupt the volume field and re-sign is impossible; flip a byte
        # in the announced volume region instead (signature then fails) —
        # so craft a *consistent-looking* PoC with the wrong volume.
        from repro.poc.messages import Poc

        good = Poc.decode(poc_wire)
        bad = Poc.build(good.role, good.plan, good.volume + 1, good.peer_cda, operator_key)
        with pytest.raises(ProtocolViolation, match="inconsistent"):
            edge.handle(bad.encode())


class TestStats:
    def test_signature_and_verification_counts_minimal_run(self, edge_key, operator_key):
        edge, operator = make_sessions(edge_key, operator_key)
        pump(operator, edge)
        # Operator: sign CDR + sign PoC; verify CDA + embedded CDR.
        assert operator.stats.signatures_made == 2
        assert operator.stats.verifications_made == 2
        # Edge: sign CDA; verify CDR + PoC.
        assert edge.stats.signatures_made == 1
        assert edge.stats.verifications_made == 2

    def test_bytes_sent_accumulate(self, edge_key, operator_key):
        edge, operator = make_sessions(edge_key, operator_key)
        pump(operator, edge)
        assert operator.stats.bytes_sent > 0
        assert edge.stats.bytes_sent > 0
