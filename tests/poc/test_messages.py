"""CDR / CDA / PoC wire formats."""

import pytest

from repro.poc.messages import (
    LEGACY_LTE_CDR_BYTES,
    NONCE_LEN,
    Cda,
    Cdr,
    MessageError,
    PlanParams,
    Poc,
    Role,
)

PLAN = PlanParams(0.0, 3600.0, 0.5)
NONCE_A = bytes(range(16))
NONCE_B = bytes(range(16, 32))


def make_cdr(operator_key, volume=1000, seq=0):
    return Cdr.build(Role.OPERATOR, PLAN, seq, NONCE_A, volume, operator_key)


def make_cda(edge_key, operator_key, volume=900):
    return Cda.build(Role.EDGE, PLAN, 0, NONCE_B, volume, make_cdr(operator_key), edge_key)


class TestPlanParams:
    def test_pack_roundtrip(self):
        assert PlanParams.unpack(PLAN.pack()) == PLAN

    def test_rejects_empty_cycle(self):
        with pytest.raises(MessageError):
            PlanParams(10.0, 10.0, 0.5)

    def test_rejects_bad_c(self):
        with pytest.raises(MessageError):
            PlanParams(0.0, 1.0, 1.5)


class TestCdr:
    def test_encode_decode_roundtrip(self, operator_key):
        cdr = make_cdr(operator_key)
        assert Cdr.decode(cdr.encode()) == cdr

    def test_signature_verifies_under_signer_key(self, operator_key, edge_key):
        cdr = make_cdr(operator_key)
        assert cdr.verify(operator_key.public)
        assert not cdr.verify(edge_key.public)

    def test_tampered_volume_breaks_signature(self, operator_key):
        cdr = make_cdr(operator_key)
        blob = bytearray(cdr.encode())
        blob[50] ^= 0xFF  # inside the volume field region
        tampered = Cdr.decode(bytes(blob))
        assert not tampered.verify(operator_key.public)

    def test_rejects_wrong_nonce_length(self, operator_key):
        with pytest.raises(MessageError):
            Cdr.build(Role.OPERATOR, PLAN, 0, b"short", 100, operator_key)

    def test_rejects_negative_volume(self, operator_key):
        with pytest.raises(MessageError):
            Cdr.build(Role.OPERATOR, PLAN, 0, NONCE_A, -1, operator_key)

    def test_decode_rejects_wrong_type(self, operator_key, edge_key):
        cda = make_cda(edge_key, operator_key)
        with pytest.raises(MessageError):
            Cdr.decode(cda.encode())

    def test_decode_rejects_truncation(self, operator_key):
        with pytest.raises(MessageError):
            Cdr.decode(make_cdr(operator_key).encode()[:30])


class TestCda:
    def test_encode_decode_roundtrip(self, edge_key, operator_key):
        cda = make_cda(edge_key, operator_key)
        assert Cda.decode(cda.encode()) == cda

    def test_embeds_peer_cdr_intact(self, edge_key, operator_key):
        cda = make_cda(edge_key, operator_key)
        decoded = Cda.decode(cda.encode())
        assert decoded.peer_cdr.verify(operator_key.public)

    def test_rejects_own_role_embedding(self, edge_key):
        own_cdr = Cdr.build(Role.EDGE, PLAN, 0, NONCE_A, 100, edge_key)
        with pytest.raises(MessageError):
            Cda.build(Role.EDGE, PLAN, 0, NONCE_B, 90, own_cdr, edge_key)

    def test_signature_covers_embedded_cdr(self, edge_key, operator_key):
        """Swapping the inner CDR invalidates the outer signature."""
        cda = make_cda(edge_key, operator_key)
        other = Cdr.build(Role.OPERATOR, PLAN, 0, NONCE_A, 9999, operator_key)
        forged = Cda(
            cda.role, cda.plan, cda.seq, cda.nonce, cda.volume, other, cda.signature
        )
        assert not forged.verify(edge_key.public)


class TestPoc:
    def _poc(self, edge_key, operator_key, volume=950):
        return Poc.build(Role.OPERATOR, PLAN, volume, make_cda(edge_key, operator_key), operator_key)

    def test_encode_decode_roundtrip(self, edge_key, operator_key):
        poc = self._poc(edge_key, operator_key)
        assert Poc.decode(poc.encode()) == poc

    def test_nonce_trailer_assembled_by_role(self, edge_key, operator_key):
        poc = self._poc(edge_key, operator_key)
        assert poc.nonce_edge == NONCE_B  # CDA (edge) nonce
        assert poc.nonce_operator == NONCE_A  # CDR (operator) nonce
        assert len(poc.nonce_edge) == NONCE_LEN

    def test_claims_recovered_in_role_order(self, edge_key, operator_key):
        poc = self._poc(edge_key, operator_key)
        assert poc.claims == (900, 1000)  # (edge, operator)

    def test_claims_with_edge_finalizer(self, edge_key, operator_key):
        operator_cda = Cda.build(
            Role.OPERATOR, PLAN, 0, NONCE_A, 1000,
            Cdr.build(Role.EDGE, PLAN, 0, NONCE_B, 900, edge_key),
            operator_key,
        )
        poc = Poc.build(Role.EDGE, PLAN, 950, operator_cda, edge_key)
        assert poc.claims == (900, 1000)

    def test_rejects_own_role_embedding(self, edge_key, operator_key):
        cda = make_cda(edge_key, operator_key)
        with pytest.raises(MessageError):
            Poc.build(Role.EDGE, PLAN, 950, cda, edge_key)

    def test_three_signature_chain(self, edge_key, operator_key):
        """PoC signed by operator, CDA by edge, CDR by operator."""
        poc = self._poc(edge_key, operator_key)
        assert poc.verify(operator_key.public)
        assert poc.peer_cda.verify(edge_key.public)
        assert poc.peer_cda.peer_cdr.verify(operator_key.public)


class TestSizes:
    def test_sizes_near_paper_figures(self, edge_key, operator_key):
        """Paper (RSA-1024): CDR 199 B, CDA 398 B, PoC 796 B.  With
        512-bit test keys ours shrink proportionally; the structural
        relation CDA ≈ 2×CDR, PoC ≈ CDA + overhead must hold."""
        cdr = make_cdr(operator_key)
        cda = make_cda(edge_key, operator_key)
        poc = Poc.build(Role.OPERATOR, PLAN, 950, cda, operator_key)
        assert len(cda.encode()) == pytest.approx(2 * len(cdr.encode()), rel=0.2)
        assert len(poc.encode()) > len(cda.encode())

    def test_legacy_cdr_constant(self):
        assert LEGACY_LTE_CDR_BYTES == 34
