"""Multi-cycle PoC ledger and whole-history audits."""

import random

import pytest

from repro.core import DataPlan, OptimalStrategy, PartyKnowledge, PartyRole
from repro.poc import NegotiationDriver, PocLedger
from repro.poc.verifier import VerificationFailure

PLAN = DataPlan(c=0.5, cycle_duration_s=60.0)


def negotiate_cycle(edge_key, operator_key, cycle_index, sent, received, seed=0):
    driver = NegotiationDriver(
        PLAN, cycle_index * 60.0,
        OptimalStrategy(PartyKnowledge(PartyRole.EDGE, sent, received)),
        OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, received, sent)),
        edge_key, operator_key, random.Random(seed + cycle_index),
    )
    return driver.run().poc


@pytest.fixture()
def ledger(edge_key, operator_key):
    ledger = PocLedger(PLAN)
    volumes = [(1_000_000, 950_000), (800_000, 800_000), (1_200_000, 1_100_000)]
    for i, (sent, received) in enumerate(volumes):
        ledger.append(negotiate_cycle(edge_key, operator_key, i, sent, received))
    return ledger


class TestLedger:
    def test_cycles_stored_in_order(self, ledger):
        assert len(ledger) == 3
        assert [e.cycle_index for e in map(ledger.entry, range(3))] == [0, 1, 2]

    def test_total_volume_sums_receipts(self, ledger):
        assert ledger.total_volume() == 975_000 + 800_000 + 1_150_000

    def test_volumes_per_cycle(self, ledger):
        assert ledger.volumes() == [975_000, 800_000, 1_150_000]

    def test_rejects_gap_in_cycles(self, edge_key, operator_key):
        ledger = PocLedger(PLAN)
        ledger.append(negotiate_cycle(edge_key, operator_key, 0, 100, 100))
        with pytest.raises(ValueError, match="consecutive"):
            ledger.append(negotiate_cycle(edge_key, operator_key, 2, 100, 100))

    def test_rejects_wrong_cycle_duration(self, edge_key, operator_key):
        short_plan = DataPlan(c=0.5, cycle_duration_s=30.0)
        driver = NegotiationDriver(
            short_plan, 0.0,
            OptimalStrategy(PartyKnowledge(PartyRole.EDGE, 100, 100)),
            OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, 100, 100)),
            edge_key, operator_key, random.Random(9),
        )
        ledger = PocLedger(PLAN)
        with pytest.raises(ValueError, match="duration"):
            ledger.append(driver.run().poc)


class TestPersistence:
    def test_save_load_roundtrip(self, ledger, tmp_path, edge_key, operator_key):
        path = ledger.save(tmp_path / "receipts.jsonl")
        loaded = PocLedger.load(path, PLAN)
        assert len(loaded) == len(ledger)
        assert loaded.volumes() == ledger.volumes()
        assert loaded.audit(edge_key.public, operator_key.public).ok

    def test_empty_ledger_roundtrip(self, tmp_path):
        path = PocLedger(PLAN).save(tmp_path / "empty.jsonl")
        assert len(PocLedger.load(path, PLAN)) == 0

    def test_corrupted_poc_rejected_at_load(self, ledger, tmp_path):
        import base64 as b64
        import json as js

        path = ledger.save(tmp_path / "receipts.jsonl")
        lines = path.read_text().splitlines()
        row = js.loads(lines[0])
        blob = bytearray(b64.b64decode(row["poc"]))
        blob[10] ^= 0xFF  # corrupt the cycle-end timestamp (plan field)
        row["poc"] = b64.b64encode(bytes(blob)).decode()
        lines[0] = js.dumps(row)
        path.write_text("\n".join(lines) + "\n")
        from repro.poc.messages import MessageError

        with pytest.raises((MessageError, ValueError)):
            PocLedger.load(path, PLAN)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError, match="line 1"):
            PocLedger.load(path, PLAN)

    def test_out_of_order_row_rejected_before_append(self, ledger, tmp_path):
        """A row with a wrong cycle index must be rejected *before* the
        receipt is appended: the old order appended first, leaving the bad
        entry inside the ledger object when the mismatch raised."""
        import json as js

        path = ledger.save(tmp_path / "receipts.jsonl")
        lines = path.read_text().splitlines()
        row = js.loads(lines[1])
        row["cycle"] = 5  # receipt itself is fine; the index lies
        lines[1] = js.dumps(row)
        path.write_text("\n".join(lines) + "\n")

        appended = []

        class RecordingLedger(PocLedger):
            def append(self, poc):
                entry = super().append(poc)
                appended.append(entry.cycle_index)
                return entry

        with pytest.raises(ValueError, match="line 2.*out of order"):
            RecordingLedger.load(path, PLAN)
        # Only the valid first row ever reached append; the bad row was
        # validated first and never mutated the ledger.
        assert appended == [0]

    def test_bitflip_in_signature_survives_load_but_fails_audit(
        self, ledger, tmp_path, edge_key, operator_key
    ):
        """Corruption that still decodes must be caught by the audit."""
        import base64 as b64
        import json as js

        path = ledger.save(tmp_path / "receipts.jsonl")
        lines = path.read_text().splitlines()
        row = js.loads(lines[1])
        blob = bytearray(b64.b64decode(row["poc"]))
        blob[-40] ^= 0x01  # inside the signature region
        row["poc"] = b64.b64encode(bytes(blob)).decode()
        lines[1] = js.dumps(row)
        path.write_text("\n".join(lines) + "\n")
        loaded = PocLedger.load(path, PLAN)
        report = loaded.audit(edge_key.public, operator_key.public)
        assert not report.ok


class TestAudit:
    def test_clean_history_passes(self, ledger, edge_key, operator_key):
        report = ledger.audit(edge_key.public, operator_key.public)
        assert report.ok
        assert report.entries_checked == 3
        assert report.total_volume == ledger.total_volume()

    def test_duplicated_receipt_caught_as_replay(self, edge_key, operator_key):
        """Billing the same PoC twice across cycles is a replay."""
        poc = negotiate_cycle(edge_key, operator_key, 0, 1_000_000, 950_000)
        ledger = PocLedger(PLAN)
        ledger.append(poc)
        # Force the same receipt in as "the next cycle" by rebuilding the
        # entry list directly (an adversarial ledger).
        from repro.poc.ledger import LedgerEntry
        from repro.poc.messages import PlanParams

        ledger._entries.append(
            LedgerEntry(1, PlanParams(60.0, 120.0, 0.5), poc)
        )
        report = ledger.audit(edge_key.public, operator_key.public)
        assert not report.ok
        kinds = {failure for _, failure in report.failures}
        # The duplicate fails: wrong plan window *and* replayed nonces.
        assert kinds & {VerificationFailure.REPLAYED, VerificationFailure.PLAN_MISMATCH}

    def test_wrong_keys_fail_every_entry(self, ledger, edge_key, operator_key):
        report = ledger.audit(operator_key.public, edge_key.public)
        assert not report.ok
        assert len(report.failures) == 3
