"""Shared fixtures: small RSA keys so the protocol tests stay fast."""

import random

import pytest

from repro.crypto import generate_keypair


@pytest.fixture(scope="session")
def edge_key():
    return generate_keypair(512, random.Random(101))


@pytest.fixture(scope="session")
def operator_key():
    return generate_keypair(512, random.Random(102))


@pytest.fixture(scope="session")
def intruder_key():
    return generate_keypair(512, random.Random(103))
