"""Fuzzing the wire decoders: malformed input must fail *cleanly*.

A public verifier ingests PoCs from untrusted parties; the decoders must
reject arbitrary or mutated bytes with :class:`MessageError` — never an
unexpected exception type and never a bogus accepted message.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import generate_keypair
from repro.poc.messages import Cda, Cdr, MessageError, PlanParams, Poc, Role

PLAN = PlanParams(0.0, 3600.0, 0.5)


@pytest.fixture(scope="module")
def chain():
    rng = random.Random(301)
    edge_key = generate_keypair(512, rng)
    operator_key = generate_keypair(512, rng)
    cdr = Cdr.build(Role.OPERATOR, PLAN, 0, bytes(16), 1000, operator_key)
    cda = Cda.build(Role.EDGE, PLAN, 0, bytes(range(16)), 900, cdr, edge_key)
    poc = Poc.build(Role.OPERATOR, PLAN, 950, cda, operator_key)
    return edge_key, operator_key, cdr, cda, poc


DECODERS = [Cdr.decode, Cda.decode, Poc.decode]


class TestRandomBytes:
    @settings(max_examples=150)
    @given(st.binary(max_size=600))
    def test_random_blobs_never_crash_unexpectedly(self, blob):
        for decode in DECODERS:
            try:
                decode(blob)
            except (MessageError, ValueError):
                pass  # clean rejection (MessageError subclasses ValueError)

    @settings(max_examples=100)
    @given(st.binary(min_size=1, max_size=600))
    def test_decoded_blobs_never_verify_under_fresh_keys(self, blob):
        rng = random.Random(999)
        key = generate_keypair(512, rng)
        for decode in DECODERS:
            try:
                message = decode(blob)
            except (MessageError, ValueError):
                continue
            assert not message.verify(key.public)


class TestMutations:
    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_single_byte_mutation_of_poc(self, chain, data):
        """Flipping any byte either breaks decoding or breaks a signature
        somewhere in the chain — never yields a different valid PoC."""
        edge_key, operator_key, _, _, poc = chain
        blob = bytearray(poc.encode())
        index = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        blob[index] ^= 1 << bit
        try:
            mutated = Poc.decode(bytes(blob))
        except (MessageError, ValueError):
            return
        if mutated == poc:
            return  # mutation hit a redundant encoding (none expected)
        chain_valid = (
            mutated.verify(operator_key.public)
            and mutated.peer_cda.verify(edge_key.public)
            and mutated.peer_cda.peer_cdr.verify(operator_key.public)
            and mutated.nonce_edge == mutated.peer_cda.nonce
            and mutated.nonce_operator == mutated.peer_cda.peer_cdr.nonce
        )
        assert not chain_valid, f"mutation at byte {index} produced a valid forgery"

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_truncations_rejected(self, chain, data):
        _, _, _, _, poc = chain
        blob = poc.encode()
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        with pytest.raises((MessageError, ValueError)):
            Poc.decode(blob[:cut])
