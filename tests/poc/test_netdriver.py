"""Negotiation over the simulated network: latency, loss survival."""

import random

import pytest

from repro.cellular import CellularNetwork, RadioProfile, make_test_imsi
from repro.core import DataPlan, OptimalStrategy, PartyKnowledge, PartyRole
from repro.edge import EdgeDevice
from repro.edge.device import EL20, Z840
from repro.netsim import EventLoop, StreamRegistry
from repro.poc import PlanParams, PublicVerifier
from repro.poc.netdriver import NetworkNegotiation

X_E, X_O = 1_000_000, 930_000
PLAN = DataPlan(c=0.5, cycle_duration_s=60.0)


def build(seed=5, base_loss=0.0, background_bps=0.0, edge_key=None, operator_key=None):
    loop = EventLoop()
    net = CellularNetwork(loop, StreamRegistry(seed))
    imsi = make_test_imsi(1)
    device = EdgeDevice(loop, imsi, "app")
    access = net.attach_device(
        imsi, RadioProfile(base_loss=base_loss), deliver=device.deliver
    )
    device.bind(access)
    net.create_bearer(imsi, "app")
    if background_bps:
        net.set_background_load(background_bps, background_bps)
    rng = random.Random(seed)
    negotiation = NetworkNegotiation(
        net, str(imsi), PLAN, 0.0,
        OptimalStrategy(PartyKnowledge(PartyRole.EDGE, X_E, X_O)),
        OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, X_O, X_E)),
        edge_key, operator_key, rng,
        edge_profile=EL20, operator_profile=Z840,
        retransmit_timeout_s=0.3,
    )
    return loop, net, device, negotiation


class TestCleanNetwork:
    def test_completes_with_expected_volume(self, edge_key, operator_key):
        loop, net, device, negotiation = build(edge_key=edge_key, operator_key=operator_key)
        negotiation.start()
        loop.run_until(10.0)
        result = negotiation.result()
        assert result.volume == 965_000
        assert result.messages_sent == 3
        assert result.retransmissions == 0

    def test_poc_publicly_verifiable(self, edge_key, operator_key):
        loop, net, device, negotiation = build(edge_key=edge_key, operator_key=operator_key)
        negotiation.start()
        loop.run_until(10.0)
        report = PublicVerifier(PLAN).verify(
            negotiation.result().poc,
            PlanParams(0.0, 60.0, 0.5),
            edge_key.public, operator_key.public,
        )
        assert report.ok

    def test_elapsed_decomposes_into_crypto_plus_network(self, edge_key, operator_key):
        loop, net, device, negotiation = build(edge_key=edge_key, operator_key=operator_key)
        negotiation.start()
        loop.run_until(10.0)
        result = negotiation.result()
        assert 0 < result.crypto_s < result.elapsed_s

    def test_app_traffic_still_reaches_device(self, edge_key, operator_key):
        """The signalling dispatch must not swallow application packets."""
        loop, net, device, negotiation = build(edge_key=edge_key, operator_key=operator_key)
        from repro.netsim import Direction, Packet

        negotiation.start()
        loop.schedule_at(0.5, net.send_downlink, Packet(
            size=500, flow_id="app", direction=Direction.DOWNLINK,
        ))
        loop.run_until(10.0)
        assert device.dl_monitor.total == 500

    def test_result_before_completion_raises(self, edge_key, operator_key):
        loop, net, device, negotiation = build(edge_key=edge_key, operator_key=operator_key)
        with pytest.raises(RuntimeError):
            negotiation.result()


class TestDeadline:
    def test_deadline_gives_up_on_dead_channel(self, edge_key, operator_key):
        """Total loss + a deadline: the negotiation stops retransmitting
        and reports timed_out — no PoC, no payment."""
        loop, net, device, negotiation = build(
            seed=13, base_loss=1.0, edge_key=edge_key, operator_key=operator_key
        )
        negotiation.deadline_s = 5.0
        negotiation.start()
        loop.run_until(30.0)
        assert negotiation.timed_out
        assert not negotiation.complete
        with pytest.raises(RuntimeError):
            negotiation.result()
        # Retransmissions stopped at the deadline, not the horizon.
        assert negotiation.operator_endpoint.messages_sent <= 5.0 / 0.3 + 2

    def test_deadline_noop_when_completed(self, edge_key, operator_key):
        loop, net, device, negotiation = build(
            seed=14, edge_key=edge_key, operator_key=operator_key
        )
        negotiation.deadline_s = 5.0
        negotiation.start()
        loop.run_until(30.0)
        assert not negotiation.timed_out
        assert negotiation.result().volume == 965_000


class TestAdverseNetwork:
    def test_survives_air_loss_via_retransmission(self, edge_key, operator_key):
        loop, net, device, negotiation = build(
            seed=8, base_loss=0.4, edge_key=edge_key, operator_key=operator_key
        )
        negotiation.start()
        loop.run_until(60.0)
        result = negotiation.result()
        assert result.volume == 965_000
        assert result.retransmissions > 0

    def test_lost_final_poc_recovered(self, edge_key, operator_key):
        """Regression: when the *final* PoC message is lost over the air,
        the finished operator must replay it in response to the edge's
        CDA retransmissions instead of going silent (deadlock)."""
        loop, net, device, negotiation = build(
            seed=20, base_loss=0.2, edge_key=edge_key, operator_key=operator_key
        )
        negotiation.start()
        loop.run_until(60.0)
        result = negotiation.result()  # raised RuntimeError before the fix
        assert result.volume == 965_000

    def test_congestion_does_not_stall_signalling(self, edge_key, operator_key):
        """QCI-5 signalling is prioritized over the saturating background."""
        loop, net, device, negotiation = build(
            seed=9, background_bps=160e6, edge_key=edge_key, operator_key=operator_key
        )
        negotiation.start()
        loop.run_until(10.0)
        result = negotiation.result()
        assert result.volume == 965_000
        assert result.elapsed_s < 0.5  # well under one retransmission storm


class TestFrameTableBounded:
    """Regression: frames of network-dropped packets used to leak forever."""

    def _run_lossy(self, edge_key, operator_key, seed, base_loss, timeout_s):
        loop = EventLoop()
        net = CellularNetwork(loop, StreamRegistry(seed))
        imsi = make_test_imsi(1)
        device = EdgeDevice(loop, imsi, "app")
        access = net.attach_device(
            imsi, RadioProfile(base_loss=base_loss), deliver=device.deliver
        )
        device.bind(access)
        net.create_bearer(imsi, "app")
        negotiation = NetworkNegotiation(
            net, str(imsi), PLAN, 0.0,
            OptimalStrategy(PartyKnowledge(PartyRole.EDGE, X_E, X_O)),
            OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, X_O, X_E)),
            edge_key, operator_key, random.Random(seed),
            edge_profile=EL20, operator_profile=Z840,
            retransmit_timeout_s=timeout_s,
        )
        high_water = {"frames": 0, "heap": 0}

        def probe():
            high_water["frames"] = max(high_water["frames"], len(negotiation._frames))
            high_water["heap"] = max(high_water["heap"], loop.heap_size())
            if not negotiation.complete and loop.now() < 600.0:
                loop.schedule(0.05, probe)

        negotiation.start()
        loop.schedule(0.01, probe)
        loop.run_until(600.0)
        return loop, negotiation, high_water

    def test_10k_message_negotiation_leaves_no_frames(self, edge_key, operator_key):
        """A brutal lossy link: tens of thousands of ARQ retransmissions
        must not grow the frame table or the event heap without bound."""
        loop, negotiation, high_water = self._run_lossy(
            edge_key, operator_key, seed=21, base_loss=0.995, timeout_s=0.001
        )
        assert negotiation.complete
        messages = (
            negotiation.edge_endpoint.messages_sent
            + negotiation.operator_endpoint.messages_sent
        )
        assert messages >= 10_000
        assert len(negotiation._frames) == 0
        # In-flight frames per direction, not one entry per message ever sent.
        assert high_water["frames"] <= 32
        # Heap stays O(pending live events), not O(timers ever armed).
        assert high_water["heap"] <= 256

    def test_moderate_loss_leaves_no_frames(self, edge_key, operator_key):
        loop, negotiation, high_water = self._run_lossy(
            edge_key, operator_key, seed=8, base_loss=0.4, timeout_s=0.3
        )
        assert negotiation.complete
        assert len(negotiation._frames) == 0
        assert high_water["frames"] <= 8

    def test_timeout_clears_frames(self, edge_key, operator_key):
        """A negotiation that gives up must not keep dead frames around."""
        loop, net, device, negotiation = build(
            seed=13, base_loss=1.0, edge_key=edge_key, operator_key=operator_key
        )
        negotiation.deadline_s = 5.0
        negotiation.start()
        loop.run_until(30.0)
        assert negotiation.timed_out
        assert len(negotiation._frames) == 0
