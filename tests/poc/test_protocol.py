"""NegotiationDriver: timing, loss recovery and cost accounting."""

import random

import pytest

from repro.core.plan import DataPlan
from repro.core.strategies import (
    HonestStrategy,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
    RandomSelfishStrategy,
)
from repro.edge.device import EL20, PIXEL_2XL, Z840
from repro.poc.messages import Role
from repro.poc.protocol import NegotiationDriver

X_E, X_O = 1_000_000, 930_000
PLAN = DataPlan(c=0.5, cycle_duration_s=3600.0)


def driver(edge_key, operator_key, seed=1, **kw):
    defaults = dict(
        edge_strategy=OptimalStrategy(PartyKnowledge(PartyRole.EDGE, X_E, X_O)),
        operator_strategy=OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, X_O, X_E)),
    )
    defaults.update(kw)
    return NegotiationDriver(
        PLAN, 0.0, defaults["edge_strategy"], defaults["operator_strategy"],
        edge_key, operator_key, random.Random(seed),
        **{k: v for k, v in kw.items() if k not in ("edge_strategy", "operator_strategy")},
    )


class TestOutcome:
    def test_optimal_one_round_three_messages(self, edge_key, operator_key):
        result = driver(edge_key, operator_key).run()
        assert result.rounds == 1
        assert result.messages == 3
        assert result.volume == 965_000

    def test_edge_can_initiate(self, edge_key, operator_key):
        result = driver(edge_key, operator_key, initiator=Role.EDGE).run()
        assert result.volume == 965_000

    def test_elapsed_splits_into_crypto_and_network(self, edge_key, operator_key):
        result = driver(edge_key, operator_key).run()
        assert result.crypto_s > 0 and result.network_s > 0
        assert result.crypto_s + result.network_s == pytest.approx(result.elapsed_s)

    def test_crypto_fraction_in_unit_interval(self, edge_key, operator_key):
        result = driver(edge_key, operator_key).run()
        assert 0.0 < result.crypto_fraction < 1.0


class TestDeviceProfiles:
    def test_slow_device_slower_negotiation(self, edge_key, operator_key):
        fast = driver(edge_key, operator_key, seed=5, edge_profile=Z840).run()
        slow = driver(edge_key, operator_key, seed=5, edge_profile=PIXEL_2XL).run()
        assert slow.elapsed_s > fast.elapsed_s

    def test_el20_near_paper_latency(self, edge_key, operator_key):
        """The paper measures 65.8 ms mean on the EL20."""
        times = [
            driver(edge_key, operator_key, seed=s, edge_profile=EL20).run().elapsed_s
            for s in range(30)
        ]
        mean_ms = sum(times) / len(times) * 1000
        assert 45 <= mean_ms <= 95


class TestLossyChannel:
    def test_recovers_via_retransmission(self, edge_key, operator_key):
        result = driver(edge_key, operator_key, seed=3, message_loss=0.4).run()
        assert result.volume == 965_000
        assert result.retransmissions > 0

    def test_retransmissions_add_latency(self, edge_key, operator_key):
        clean = driver(edge_key, operator_key, seed=3).run()
        lossy = driver(edge_key, operator_key, seed=3, message_loss=0.4).run()
        assert lossy.elapsed_s > clean.elapsed_s

    def test_unusable_channel_raises(self, edge_key, operator_key):
        with pytest.raises(RuntimeError, match="unusable"):
            driver(
                edge_key, operator_key, seed=3,
                message_loss=0.999, max_transmissions=3,
            ).run()

    def test_rejects_invalid_loss_rate(self, edge_key, operator_key):
        with pytest.raises(ValueError):
            driver(edge_key, operator_key, message_loss=1.0)


class TestStrategies:
    def test_random_play_produces_valid_poc(self, edge_key, operator_key):
        rng = random.Random(9)
        result = driver(
            edge_key, operator_key,
            edge_strategy=RandomSelfishStrategy(
                PartyKnowledge(PartyRole.EDGE, X_E, X_O), rng
            ),
            operator_strategy=RandomSelfishStrategy(
                PartyKnowledge(PartyRole.OPERATOR, X_O, X_E), rng
            ),
        ).run()
        assert result.poc is not None
        assert X_O * 0.95 <= result.volume <= X_E * 1.05

    def test_honest_play_reaches_expected(self, edge_key, operator_key):
        result = driver(
            edge_key, operator_key,
            edge_strategy=HonestStrategy(PartyKnowledge(PartyRole.EDGE, X_E, X_O)),
            operator_strategy=HonestStrategy(PartyKnowledge(PartyRole.OPERATOR, X_O, X_E)),
        ).run()
        assert result.volume == 965_000
