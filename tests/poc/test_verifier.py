"""Algorithm 2: public verification, failure branches, replay defence."""

import random

import pytest

from repro.core.plan import DataPlan
from repro.core.strategies import OptimalStrategy, PartyKnowledge, PartyRole
from repro.poc.messages import Cda, Cdr, PlanParams, Poc, Role
from repro.poc.protocol import NegotiationDriver
from repro.poc.verifier import PublicVerifier, VerificationFailure

X_E, X_O = 1_000_000, 930_000
PLAN = DataPlan(c=0.5, cycle_duration_s=3600.0)
PLAN_PARAMS = PlanParams(0.0, 3600.0, 0.5)


@pytest.fixture()
def poc(edge_key, operator_key):
    driver = NegotiationDriver(
        PLAN, 0.0,
        OptimalStrategy(PartyKnowledge(PartyRole.EDGE, X_E, X_O)),
        OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, X_O, X_E)),
        edge_key, operator_key, random.Random(11),
    )
    return driver.run().poc


class TestAccepts:
    def test_valid_poc_verifies(self, poc, edge_key, operator_key):
        report = PublicVerifier(PLAN).verify(poc, PLAN_PARAMS, edge_key.public, operator_key.public)
        assert report.ok
        assert report.volume == 965_000
        assert report.edge_claim == X_O and report.operator_claim == X_E

    def test_verifier_counts(self, poc, edge_key, operator_key):
        verifier = PublicVerifier(PLAN)
        verifier.verify(poc, PLAN_PARAMS, edge_key.public, operator_key.public)
        assert verifier.verified == 1 and verifier.rejected == 0


class TestRejects:
    def test_wrong_plan_parameters(self, poc, edge_key, operator_key):
        """Algorithm 2 line 2: T′ ≠ T or c′ ≠ c ⇒ false."""
        other = PlanParams(0.0, 3600.0, 0.75)
        report = PublicVerifier(PLAN).verify(poc, other, edge_key.public, operator_key.public)
        assert not report.ok
        assert report.failure is VerificationFailure.PLAN_MISMATCH

    def test_swapped_keys_fail_signatures(self, poc, edge_key, operator_key):
        report = PublicVerifier(PLAN).verify(poc, PLAN_PARAMS, operator_key.public, edge_key.public)
        assert not report.ok
        assert report.failure in (
            VerificationFailure.BAD_POC_SIGNATURE,
            VerificationFailure.BAD_CDA_SIGNATURE,
        )

    def test_forged_volume_detected(self, poc, edge_key, operator_key):
        """A party announcing a different charge cannot re-sign the PoC."""
        forged = Poc(
            poc.role, poc.plan, poc.volume + 1000, poc.peer_cda,
            poc.signature, poc.nonce_edge, poc.nonce_operator,
        )
        report = PublicVerifier(PLAN).verify(forged, PLAN_PARAMS, edge_key.public, operator_key.public)
        assert not report.ok
        assert report.failure is VerificationFailure.BAD_POC_SIGNATURE

    def test_replay_rejected_second_time(self, poc, edge_key, operator_key):
        """Algorithm 2's nonce freshness: the same PoC verifies once."""
        verifier = PublicVerifier(PLAN)
        assert verifier.verify(poc, PLAN_PARAMS, edge_key.public, operator_key.public).ok
        replayed = verifier.verify(poc, PLAN_PARAMS, edge_key.public, operator_key.public)
        assert not replayed.ok
        assert replayed.failure is VerificationFailure.REPLAYED

    def test_distinct_verifiers_have_independent_registries(self, poc, edge_key, operator_key):
        PublicVerifier(PLAN).verify(poc, PLAN_PARAMS, edge_key.public, operator_key.public)
        fresh = PublicVerifier(PLAN)
        assert fresh.verify(poc, PLAN_PARAMS, edge_key.public, operator_key.public).ok

    def test_nonce_trailer_mismatch(self, poc, edge_key, operator_key):
        tampered = Poc(
            poc.role, poc.plan, poc.volume, poc.peer_cda,
            poc.signature, bytes(16), poc.nonce_operator,
        )
        report = PublicVerifier(PLAN).verify(tampered, PLAN_PARAMS, edge_key.public, operator_key.public)
        assert not report.ok
        assert report.failure is VerificationFailure.NONCE_MISMATCH

    def test_sequence_mismatch(self, edge_key, operator_key):
        """A CDA answering a different round's CDR is incoherent."""
        cdr = Cdr.build(Role.OPERATOR, PLAN_PARAMS, 0, bytes(16), X_E, operator_key)
        cda = Cda.build(Role.EDGE, PLAN_PARAMS, 3, bytes(range(16)), X_O, cdr, edge_key)
        poc = Poc.build(Role.OPERATOR, PLAN_PARAMS, 965_000, cda, operator_key)
        report = PublicVerifier(PLAN).verify(poc, PLAN_PARAMS, edge_key.public, operator_key.public)
        assert not report.ok
        assert report.failure is VerificationFailure.SEQUENCE_MISMATCH

    def test_volume_inconsistent_with_claims(self, edge_key, operator_key):
        """Line 8 replay: x must equal the charge of the signed claims."""
        cdr = Cdr.build(Role.OPERATOR, PLAN_PARAMS, 0, bytes(16), X_E, operator_key)
        cda = Cda.build(Role.EDGE, PLAN_PARAMS, 0, bytes(range(16)), X_O, cdr, edge_key)
        poc = Poc.build(Role.OPERATOR, PLAN_PARAMS, 999_999, cda, operator_key)
        report = PublicVerifier(PLAN).verify(poc, PLAN_PARAMS, edge_key.public, operator_key.public)
        assert not report.ok
        assert report.failure is VerificationFailure.VOLUME_MISMATCH

    def test_rejection_increments_counter(self, poc, edge_key, operator_key):
        verifier = PublicVerifier(PLAN)
        verifier.verify(poc, PlanParams(0.0, 3600.0, 0.1), edge_key.public, operator_key.public)
        assert verifier.rejected == 1
