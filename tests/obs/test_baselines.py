"""Golden-baseline machinery (repro.obs.baselines)."""

import pytest

from repro.obs import (
    Baseline,
    check_baseline,
    extract_quantity,
    load_baselines,
    save_baselines,
)


def make_baseline(**overrides):
    defaults = dict(
        id="t.q", experiment="t", select={"kind": "attr", "name": "x"},
        expected=10.0, rel_tol=0.10, abs_tol=0.5, unit="MB",
    )
    defaults.update(overrides)
    return Baseline(**defaults)


class TestBand:
    def test_band_combines_both_tolerances(self):
        b = make_baseline(expected=10.0, rel_tol=0.1, abs_tol=0.5)
        assert b.band == pytest.approx(1.5)

    def test_inside_band_ok(self):
        assert check_baseline(11.4, make_baseline()).ok

    def test_outside_band_drifts(self):
        check = check_baseline(11.6, make_baseline())
        assert not check.ok
        assert "DRIFT" in check.describe()

    def test_negative_deviation_symmetric(self):
        assert check_baseline(8.6, make_baseline()).ok
        assert not check_baseline(8.4, make_baseline()).ok

    def test_near_zero_expected_uses_abs_floor(self):
        b = make_baseline(expected=0.0, rel_tol=0.1, abs_tol=0.5)
        assert check_baseline(0.4, b).ok
        assert not check_baseline(0.6, b).ok

    def test_zero_width_band_rejected(self):
        with pytest.raises(ValueError):
            make_baseline(rel_tol=0.0, abs_tol=0.0)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            make_baseline(rel_tol=-0.1)


class FakeTable:
    title = "t"
    header = ("app", "scheme", "x")
    rows = [("a", "legacy", 1.0), ("a", "tlc", 2.0), ("b", "legacy", 3.0)]


class TestExtract:
    def test_table_cell(self):
        value = extract_quantity(
            FakeTable(), {"kind": "table", "row": "b", "col": "x"}
        )
        assert value == 3.0

    def test_table_row2_disambiguates(self):
        value = extract_quantity(
            FakeTable(), {"kind": "table", "row": "a", "row2": "tlc", "col": "x"}
        )
        assert value == 2.0

    def test_table_missing_row_raises(self):
        with pytest.raises(KeyError):
            extract_quantity(FakeTable(), {"kind": "table", "row": "z", "col": "x"})

    def test_table_missing_col_raises(self):
        with pytest.raises(KeyError):
            extract_quantity(FakeTable(), {"kind": "table", "row": "a", "col": "zz"})

    def test_attr(self):
        class Result:
            mean_outage_s = 1.93

        select = {"kind": "attr", "name": "mean_outage_s"}
        assert extract_quantity(Result(), select) == 1.93

    def test_cdf_median_and_max(self):
        class Result:
            cdfs = {"app": {"legacy": [(1.0, 0.2), (2.0, 0.5), (9.0, 1.0)]}}

        base = {"kind": "cdf", "app": "app", "scheme": "legacy"}
        assert extract_quantity(Result(), {**base, "stat": "median"}) == 2.0
        assert extract_quantity(Result(), {**base, "stat": "max"}) == 9.0

    def test_curve_keyed_by_string(self):
        curves = {0.5: [(3.0, 0.4), (4.0, 1.0)]}
        select = {"kind": "curve", "key": "0.5", "stat": "median"}
        assert extract_quantity(curves, select) == 4.0

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            extract_quantity(object(), {"kind": "nope"})


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "baselines.json"
        saved = [make_baseline(id="b.two"), make_baseline(id="a.one")]
        save_baselines(path, saved, generator="test")
        loaded = load_baselines(path)
        assert [b.id for b in loaded] == ["a.one", "b.two"]  # sorted by id
        assert loaded[0] == make_baseline(id="a.one")

    def test_duplicate_ids_rejected(self, tmp_path):
        path = tmp_path / "baselines.json"
        save_baselines(path, [make_baseline(), make_baseline()])
        with pytest.raises(ValueError):
            load_baselines(path)

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baselines.json"
        path.write_text('{"schema": 999, "quantities": []}')
        with pytest.raises(ValueError):
            load_baselines(path)


class TestRepoBaselinesFile:
    """The committed baselines file must stay loadable and well-formed."""

    def test_committed_file_loads(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines.json"
        baselines = load_baselines(path)
        assert len(baselines) >= 50
        experiments = {b.experiment for b in baselines}
        # Every paper artifact in the golden registry is covered.
        from repro.experiments.goldens import GOLDEN_RUNS

        assert experiments == set(GOLDEN_RUNS)
