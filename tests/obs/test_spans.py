"""Span semantics on a simulated clock (repro.obs.spans)."""

import pytest

from repro.netsim import EventLoop
from repro.obs import MetricsRegistry
from repro.obs.spans import SpanRecorder


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestSpanRecorder:
    def test_span_records_virtual_interval(self):
        clock = FakeClock()
        rec = SpanRecorder(clock)
        span = rec.open("work")
        clock.t = 2.5
        span.close()
        assert (span.start, span.end, span.duration) == (0.0, 2.5, 2.5)

    def test_nesting_depth_is_open_count(self):
        clock = FakeClock()
        rec = SpanRecorder(clock)
        outer = rec.open("outer")
        inner = rec.open("inner")
        sibling_depth_before_close = rec.open("third").depth
        assert (outer.depth, inner.depth, sibling_depth_before_close) == (0, 1, 2)

    def test_close_idempotent(self):
        clock = FakeClock()
        rec = SpanRecorder(clock)
        span = rec.open("s")
        clock.t = 1.0
        span.close()
        clock.t = 9.0
        span.close()  # no-op
        assert span.end == 1.0

    def test_context_manager_closes(self):
        clock = FakeClock()
        rec = SpanRecorder(clock)
        with rec.span("cm") as span:
            clock.t = 3.0
        assert span.end == 3.0

    def test_backwards_clock_rejected(self):
        clock = FakeClock()
        clock.t = 5.0
        rec = SpanRecorder(clock)
        span = rec.open("s")
        clock.t = 1.0
        with pytest.raises(ValueError):
            span.close()

    def test_to_list_snapshots_open_spans(self):
        clock = FakeClock()
        rec = SpanRecorder(clock)
        span = rec.open("open-one")
        clock.t = 4.0
        rows = rec.to_list(close_open_at=clock())
        assert rows[0]["end"] == 4.0
        assert span.open  # the live span is untouched


class TestRegistrySpans:
    def test_registry_spans_use_event_loop_time(self):
        loop = EventLoop()
        reg = MetricsRegistry(clock=loop.now)
        with reg.span("simulate"):
            loop.schedule(7.0, lambda: None)
            loop.run_until(7.0)
        snap = reg.snapshot()
        assert snap.spans == [
            {"name": "simulate", "start": 0.0, "end": 7.0, "depth": 0}
        ]

    def test_open_span_closed_in_snapshot_only(self):
        loop = EventLoop()
        reg = MetricsRegistry(clock=loop.now)
        handle = reg.span_open("radio.outage")
        loop.schedule(2.0, lambda: None)
        loop.run_until(2.0)
        snap = reg.snapshot()
        assert snap.spans[0]["end"] == 2.0
        assert handle.open

    def test_span_labels_canonicalized(self):
        reg = MetricsRegistry()
        with reg.span("s", b=2, a=1):
            pass
        assert reg.snapshot().spans[0]["name"] == "s{a=1,b=2}"
