"""Run-manifest layout and round-trip (repro.obs.manifest)."""

import hashlib
import json

import pytest

from repro.obs import MetricsSnapshot, RunManifest, load_manifest


class TestWriteText:
    def test_uniform_layout(self, tmp_path):
        manifest = RunManifest(name="bench", out_dir=tmp_path)
        path = manifest.write_text("figure3", "row1\nrow2")
        assert path == tmp_path / "figure3.txt"
        assert path.read_text() == "row1\nrow2\n"  # newline-terminated

    def test_artifact_digest_matches_content(self, tmp_path):
        manifest = RunManifest(name="bench", out_dir=tmp_path)
        manifest.write_text("t", "hello")
        entry = manifest.artifacts[0]
        assert entry.sha256 == hashlib.sha256(b"hello\n").hexdigest()
        assert entry.bytes == len(b"hello\n")

    def test_rewrite_replaces_entry(self, tmp_path):
        manifest = RunManifest(name="bench", out_dir=tmp_path)
        manifest.write_text("t", "one")
        manifest.write_text("t", "two")
        assert len(manifest.artifacts) == 1
        assert (tmp_path / "t.txt").read_text() == "two\n"

    def test_no_stray_tmp_files(self, tmp_path):
        manifest = RunManifest(name="bench", out_dir=tmp_path)
        manifest.write_text("a", "x")
        manifest.save()
        leftovers = [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    @pytest.mark.parametrize("bad", ["", "a/b", ".hidden"])
    def test_bad_artifact_names_rejected(self, tmp_path, bad):
        manifest = RunManifest(name="bench", out_dir=tmp_path)
        with pytest.raises(ValueError):
            manifest.write_text(bad, "x")

    def test_bad_manifest_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunManifest(name="a/b", out_dir=tmp_path)


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        manifest = RunManifest(name="run", out_dir=tmp_path, command="repro run all")
        manifest.write_text("figure4", "series")
        manifest.record_engine(workers=2, cache_dir=None)
        manifest.attach_metrics(MetricsSnapshot(counters={"c": 3}))
        saved = manifest.save()
        assert saved == tmp_path / "run.manifest.json"

        loaded = load_manifest(saved)
        assert loaded.name == "run"
        assert loaded.command == "repro run all"
        assert loaded.engine == {"workers": 2, "cache_dir": None}
        assert [a.name for a in loaded.artifacts] == ["figure4"]
        assert loaded.metrics.counters == {"c": 3}

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "x.manifest.json"
        path.write_text(json.dumps({"schema": 999, "name": "x"}))
        with pytest.raises(ValueError):
            load_manifest(path)

    def test_attach_metrics_merges(self, tmp_path):
        manifest = RunManifest(name="m", out_dir=tmp_path)
        manifest.attach_metrics(MetricsSnapshot(counters={"c": 1}))
        manifest.attach_metrics(MetricsSnapshot(counters={"c": 2}))
        assert manifest.metrics.counters == {"c": 3}

    def test_to_dict_sorted(self, tmp_path):
        manifest = RunManifest(name="m", out_dir=tmp_path)
        manifest.write_text("zz", "1")
        manifest.write_text("aa", "2")
        manifest.record_engine(zeta=1, alpha=2)
        data = manifest.to_dict()
        assert [a["name"] for a in data["artifacts"]] == ["aa", "zz"]
        assert list(data["engine"]) == ["alpha", "zeta"]
