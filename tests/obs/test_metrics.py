"""Unit tests for the deterministic metrics core (repro.obs.metrics)."""

import json
import random

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot
from repro.obs.metrics import metric_key


class TestMetricKey:
    def test_no_labels_is_bare_name(self):
        assert metric_key("a.b.c", {}) == "a.b.c"

    def test_labels_sorted(self):
        key = metric_key("m", {"z": 1, "a": "x"})
        assert key == "m{a=x,z=1}"

    def test_label_order_does_not_matter(self):
        assert metric_key("m", {"a": 1, "b": 2}) == metric_key("m", {"b": 2, "a": 1})

    @pytest.mark.parametrize("bad", ["", "a{b", "a}b", "a=b", "a,b"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError):
            metric_key(bad, {})


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_int_increments_stay_int(self):
        c = Counter()
        c.inc(3)
        assert isinstance(c.value, int)

    def test_gauge_set_and_add(self):
        g = Gauge()
        g.set(10)
        g.add(-3)
        assert g.value == 7


class TestHistogram:
    def test_bucket_edges_inclusive_upper(self):
        h = Histogram([1.0, 2.0, 4.0])
        for v in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 99.0):
            h.observe(v)
        # <=1: {0.5, 1.0}; <=2: {1.5, 2.0}; <=4: {3.0, 4.0}; overflow: {99}
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7

    def test_overflow_bucket_always_present(self):
        h = Histogram([10.0])
        assert len(h.counts) == len(h.edges) + 1

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([])

    def test_round_trip(self):
        h = Histogram([1.0, 5.0])
        h.observe(0.5)
        h.observe(7)
        h2 = Histogram.from_dict(h.to_dict())
        assert h2.to_dict() == h.to_dict()


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1) is reg.counter("x", a=1)

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x", [1.0])

    def test_histogram_edge_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", [1.0, 2.0])
        with pytest.raises(ValueError):
            reg.histogram("h", [1.0, 3.0])

    def test_snapshot_is_a_value(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        snap = reg.snapshot()
        reg.counter("c").inc(5)
        assert snap.counters["c"] == 5
        assert reg.snapshot().counters["c"] == 10


class TestSnapshot:
    def test_to_dict_is_sorted_and_canonical(self):
        a = MetricsSnapshot(counters={"b": 1, "a": 2})
        b = MetricsSnapshot(counters={"a": 2, "b": 1})
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())

    def test_equality_via_encoding(self):
        assert MetricsSnapshot(counters={"a": 1}) == MetricsSnapshot(counters={"a": 1})
        assert MetricsSnapshot(counters={"a": 1}) != MetricsSnapshot(counters={"a": 2})

    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c", k="v").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", [1.0]).observe(0.5)
        snap = reg.snapshot()
        again = MetricsSnapshot.from_dict(json.loads(json.dumps(snap.to_dict())))
        assert again == snap

    def test_merge_sums_counters_and_gauges(self):
        a = MetricsSnapshot(counters={"c": 2}, gauges={"g": 5})
        b = MetricsSnapshot(counters={"c": 3, "d": 1}, gauges={"g": 5})
        merged = a.merge(b)
        assert merged.counters == {"c": 5, "d": 1}
        assert merged.gauges == {"g": 10}

    def test_merge_sums_histograms(self):
        h = {"edges": [1.0], "counts": [1, 2], "sum": 7, "count": 3}
        merged = MetricsSnapshot(histograms={"h": h}).merge(
            MetricsSnapshot(histograms={"h": h})
        )
        assert merged.histograms["h"] == {
            "edges": [1.0], "counts": [2, 4], "sum": 14, "count": 6,
        }

    def test_merge_edge_mismatch_raises(self):
        a = MetricsSnapshot(
            histograms={"h": {"edges": [1.0], "counts": [0, 0], "sum": 0, "count": 0}}
        )
        b = MetricsSnapshot(
            histograms={"h": {"edges": [2.0], "counts": [0, 0], "sum": 0, "count": 0}}
        )
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_concatenates_spans(self):
        a = MetricsSnapshot(spans=[{"name": "x", "start": 0.0, "end": 1.0, "depth": 0}])
        b = MetricsSnapshot(spans=[{"name": "y", "start": 1.0, "end": 2.0, "depth": 0}])
        assert [s["name"] for s in a.merge(b).spans] == ["x", "y"]

    def test_is_empty(self):
        assert MetricsSnapshot().is_empty
        assert not MetricsSnapshot(counters={"c": 0}).is_empty

    def test_merge_in_place_mutates_and_returns_self(self):
        a = MetricsSnapshot(counters={"c": 1})
        b = MetricsSnapshot(counters={"c": 2})
        assert a.merge_in_place(b) is a
        assert a.counters == {"c": 3}
        assert b.counters == {"c": 2}  # the right-hand side is untouched

    def test_merge_in_place_can_drop_spans(self):
        a = MetricsSnapshot()
        b = MetricsSnapshot(spans=[{"name": "s", "start": 0.0, "end": 1.0, "depth": 0}])
        a.merge_in_place(b, include_spans=False)
        assert a.spans == []

    def test_merge_does_not_alias_histogram_state(self):
        h = {"edges": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1}
        a = MetricsSnapshot(histograms={"h": h})
        merged = a.merge(MetricsSnapshot(histograms={"h": h}))
        merged.histograms["h"]["counts"][0] = 99
        assert a.histograms["h"]["counts"] == [1, 0]


def _random_snapshot(rng: random.Random) -> MetricsSnapshot:
    """A shard-shaped snapshot with float-valued counters and gauges."""
    names = ["a.bytes", "b.time_s", "c.ratio", "d.count"]
    counters = {
        name: rng.uniform(0, 1e9) for name in rng.sample(names, rng.randint(1, 4))
    }
    gauges = {
        name: rng.uniform(-1e6, 1e6) for name in rng.sample(names, rng.randint(1, 4))
    }
    histograms = {
        "h": {
            "edges": [1.0, 10.0],
            "counts": [rng.randint(0, 5) for _ in range(3)],
            "sum": rng.uniform(0, 100.0),
            "count": rng.randint(0, 15),
        }
    }
    return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)


class TestMergeProperties:
    """Algebra of merge over randomized float-valued shard snapshots.

    Pairwise merge is commutative bitwise (float addition of two operands
    commutes exactly).  Chained float addition is *not* associative in
    IEEE-754, which is exactly why the fleet aggregator folds shards in
    canonical index order; these properties pin down what the aggregation
    layer may and may not rely on.
    """

    def test_pairwise_merge_commutes_bitwise(self):
        rng = random.Random(20190107)
        for _ in range(50):
            a, b = _random_snapshot(rng), _random_snapshot(rng)
            ab = json.dumps(a.merge(b).to_dict(), sort_keys=True)
            ba = json.dumps(b.merge(a).to_dict(), sort_keys=True)
            assert ab == ba

    def test_fixed_fold_order_is_permutation_proof(self):
        """Any arrival permutation, folded after sorting into one canonical
        order, produces a bit-identical aggregate — the invariant the
        fleet accumulator's reorder buffer enforces."""
        rng = random.Random(7)
        shards = [_random_snapshot(rng) for _ in range(8)]

        def fold_in_index_order(permuted: list[tuple[int, MetricsSnapshot]]) -> str:
            accumulator = MetricsSnapshot()
            for _, snapshot in sorted(permuted, key=lambda pair: pair[0]):
                accumulator.merge_in_place(snapshot)
            return json.dumps(accumulator.to_dict(), sort_keys=True)

        reference = fold_in_index_order(list(enumerate(shards)))
        for _ in range(20):
            permuted = list(enumerate(shards))
            rng.shuffle(permuted)
            assert fold_in_index_order(permuted) == reference

    def test_integer_counters_fold_order_free(self):
        """Integer-valued metrics are exactly associative: any fold order
        gives the same totals (no reorder buffer needed for ints)."""
        rng = random.Random(11)
        shards = [
            MetricsSnapshot(counters={"n": rng.randint(0, 10**12)}) for _ in range(6)
        ]
        orders = [list(range(6)), [5, 3, 1, 0, 2, 4], [2, 5, 0, 4, 1, 3]]
        totals = set()
        for order in orders:
            accumulator = MetricsSnapshot()
            for i in order:
                accumulator.merge_in_place(shards[i])
            totals.add(accumulator.counters["n"])
        assert len(totals) == 1
        assert isinstance(totals.pop(), int)


class TestQuantiles:
    def _snapshot(self, edges, values):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", edges)
        for v in values:
            hist.observe(v)
        return reg.snapshot()

    def test_interpolates_within_catching_bucket(self):
        # Two samples land in the 0..10 bucket; mass assumed uniform.
        snap = self._snapshot((10.0,), [3.0, 7.0])
        assert snap.quantile("lat", 0.5) == 5.0
        assert snap.quantile("lat", 1.0) == 10.0

    def test_one_sample_per_bucket(self):
        snap = self._snapshot((1.0, 2.0, 4.0), [0.5, 1.5, 3.0, 10.0])
        assert snap.quantile("lat", 0.25) == 1.0
        assert snap.quantile("lat", 0.5) == 2.0
        # The overflow bucket reports the last finite edge (lower bound).
        assert snap.quantile("lat", 1.0) == 4.0

    def test_empty_histogram_reports_zero(self):
        snap = self._snapshot((1.0, 2.0), [])
        assert snap.quantile("lat", 0.99) == 0.0

    def test_out_of_range_q_rejected(self):
        snap = self._snapshot((1.0,), [0.5])
        with pytest.raises(ValueError):
            snap.quantile("lat", 1.5)
        with pytest.raises(ValueError):
            snap.quantile("lat", -0.01)

    def test_unknown_key_raises(self):
        snap = self._snapshot((1.0,), [0.5])
        with pytest.raises(KeyError):
            snap.quantile("nope", 0.5)

    def test_percentiles_shape(self):
        snap = self._snapshot((1.0, 2.0, 4.0), [0.5, 1.5, 3.0, 10.0])
        p = snap.percentiles("lat")
        assert set(p) == {"p50", "p95", "p99"}
        assert p["p50"] == 2.0
        assert p["p95"] <= 4.0

    def test_quantile_is_monotone_in_q(self):
        rng = random.Random(3)
        snap = self._snapshot(
            (0.01, 0.1, 1.0, 10.0), [rng.uniform(0, 20) for _ in range(100)]
        )
        qs = [i / 20 for i in range(21)]
        estimates = [snap.quantile("lat", q) for q in qs]
        assert estimates == sorted(estimates)
