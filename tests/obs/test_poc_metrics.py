"""PoC instrumentation: driver cost counters and verifier outcomes."""

import random

import pytest

from repro.core.plan import DataPlan
from repro.core.strategies import OptimalStrategy, PartyKnowledge, PartyRole
from repro.crypto import generate_keypair
from repro.obs import MetricsRegistry
from repro.poc.messages import PlanParams
from repro.poc.protocol import NegotiationDriver
from repro.poc.verifier import PublicVerifier

X_E, X_O = 1_000_000, 930_000
PLAN = DataPlan(c=0.5, cycle_duration_s=3600.0)
PLAN_PARAMS = PlanParams(0.0, 3600.0, 0.5)


@pytest.fixture(scope="module")
def edge_key():
    return generate_keypair(512, random.Random(101))


@pytest.fixture(scope="module")
def operator_key():
    return generate_keypair(512, random.Random(102))


def run_driver(edge_key, operator_key, metrics):
    return NegotiationDriver(
        PLAN, 0.0,
        OptimalStrategy(PartyKnowledge(PartyRole.EDGE, X_E, X_O)),
        OptimalStrategy(PartyKnowledge(PartyRole.OPERATOR, X_O, X_E)),
        edge_key, operator_key, random.Random(7), metrics=metrics,
    ).run()


def test_driver_counts_messages_and_wire_bytes(edge_key, operator_key):
    registry = MetricsRegistry()
    result = run_driver(edge_key, operator_key, registry)
    counters = registry.snapshot().counters
    assert counters["poc.messages"] == result.messages
    assert counters["poc.wire_bytes"] > 0
    assert counters.get("poc.retransmissions", 0) == result.retransmissions


def test_verifier_counts_outcomes_by_label(edge_key, operator_key):
    registry = MetricsRegistry()
    poc = run_driver(edge_key, operator_key, None).poc
    verifier = PublicVerifier(PLAN, metrics=registry)
    verifier.verify(poc, PLAN_PARAMS, edge_key.public, operator_key.public)
    # Wrong plan params: a counted, labelled rejection.
    bad = PlanParams(0.0, 3600.0, 0.75)
    verifier.verify(poc, bad, edge_key.public, operator_key.public)
    counters = registry.snapshot().counters
    assert counters["poc.verify{outcome=ok}"] == 1
    assert counters["poc.verify{outcome=inconsistent-data-plan}"] == 1


def test_unmetered_driver_still_works(edge_key, operator_key):
    assert run_driver(edge_key, operator_key, None).volume == 965_000
