"""Layer mapping and accounting tables (repro.obs.render)."""

from repro.obs import MetricsSnapshot, byte_accounting, render_accounting
from repro.obs.render import LAYERS, layer_of


class TestLayerOf:
    def test_every_instrumented_prefix_maps(self):
        cases = {
            "cellular.radio.outages": "radio",
            "edge.modem.uplink_bytes": "radio",
            "cellular.air.offered_bytes{direction=dl}": "bearer",
            "cellular.gateway.charged_bytes{direction=UL}": "gateway",
            "cellular.ofcs.cdrs": "gateway",
            "netsim.link.sent_bytes{link=backhaul-ul}": "transport",
            "netsim.faults.fired{kind=blackout}": "transport",
            "edge.monitor.observed_bytes{point=device-ul}": "transport",
            "poc.messages": "poc",
            "core.negotiation.rounds{scheme=tlc}": "negotiation",
            "core.gap.residual_bytes{scheme=legacy}": "negotiation",
        }
        assert {key: layer_of(key) for key in cases} == cases

    def test_unknown_prefix_is_other(self):
        assert layer_of("mystery.thing") == "other"

    def test_layer_names_unique(self):
        names = [layer for layer, _ in LAYERS]
        assert len(names) == len(set(names))


class TestByteAccounting:
    def test_carried_vs_dropped_split(self):
        snap = MetricsSnapshot(
            counters={
                "netsim.link.sent_bytes{link=a}": 100,
                "netsim.link.dropped_bytes{link=a}": 40,
                "cellular.gateway.charged_bytes{direction=UL}": 70,
                "cellular.gateway.drop_bytes{reason=policed}": 30,
            }
        )
        account = byte_accounting(snap)
        assert account["transport"] == {"carried": 100, "dropped": 40}
        assert account["gateway"] == {"carried": 70, "dropped": 30}

    def test_non_byte_metrics_excluded(self):
        snap = MetricsSnapshot(
            counters={"cellular.ofcs.cdrs": 5},
            gauges={"cellular.radio.outages": 2},
        )
        assert byte_accounting(snap) == {}

    def test_gauges_participate(self):
        snap = MetricsSnapshot(
            gauges={"cellular.air.dropped_bytes{direction=dl}": 12.5}
        )
        assert byte_accounting(snap) == {
            "bearer": {"carried": 0, "dropped": 12.5}
        }


class TestRenderAccounting:
    def test_empty_snapshot_says_so(self):
        assert "(no metrics recorded)" in render_accounting(MetricsSnapshot())

    def test_layers_render_in_stack_order(self):
        snap = MetricsSnapshot(
            counters={
                "core.gap.residual_bytes{scheme=tlc}": 8,
                "netsim.link.sent_bytes{link=a}": 100,
                "cellular.gateway.charged_bytes{direction=UL}": 70,
            }
        )
        text = render_accounting(snap, title="demo")
        assert text.startswith("Layer accounting — demo")
        gateway = text.index("gateway")
        transport = text.index("transport")
        negotiation = text.index("negotiation")
        assert gateway < transport < negotiation

    def test_histogram_row_shows_count_and_mean(self):
        snap = MetricsSnapshot(
            histograms={
                "core.negotiation.rounds{scheme=tlc}": {
                    "edges": [1.0, 2.0],
                    "buckets": [1, 1, 0],
                    "count": 2,
                    "sum": 3.0,
                }
            }
        )
        assert "n=2 mean=1.5" in render_accounting(snap)

    def test_spans_render_with_duration_and_nesting(self):
        snap = MetricsSnapshot(
            spans=[
                {"name": "simulate", "start": 0.0, "end": 10.0, "depth": 0},
                {"name": "radio.outage", "start": 2.0, "end": 3.5, "depth": 1},
            ]
        )
        text = render_accounting(snap)
        assert "simulate: 0.000 -> 10.000  [10.000s]" in text
        assert "    radio.outage: 2.000 -> 3.500  [1.500s]" in text

    def test_open_span_renders_open(self):
        snap = MetricsSnapshot(
            spans=[{"name": "s", "start": 1.0, "end": None, "depth": 0}]
        )
        assert "s: 1.000 -> open" in render_accounting(snap)
