"""Metrics snapshots through the result codec and the on-disk cache.

A ``ScenarioResult`` carries its metrics snapshot through the parallel
codec (``result_to_dict``/``result_from_dict``) and the content-addressed
``ResultCache``.  Both paths must preserve the snapshot bit-for-bit:
``repro obs`` renders accounting straight from cached JSON, so any loss
or reordering here silently corrupts the observability story.
"""

import json

import pytest

from repro.experiments.parallel import (
    ResultCache,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import WEBCAM_RTSP_UL
from repro.obs import MetricsSnapshot

pytestmark = pytest.mark.slow

CONFIG = WEBCAM_RTSP_UL.with_(n_cycles=1, cycle_duration_s=5.0, seed=7)


@pytest.fixture(scope="module")
def result():
    return run_scenario(CONFIG)


def canon(snapshot: MetricsSnapshot) -> str:
    return json.dumps(snapshot.to_dict(), sort_keys=True)


def test_run_produces_a_populated_snapshot(result):
    assert not result.metrics.is_empty
    assert any(k.startswith("netsim.link.") for k in result.metrics.counters)
    assert any(k.startswith("cellular.gateway.") for k in result.metrics.counters)
    assert any(s["name"] == "simulate" for s in result.metrics.spans)


def test_codec_round_trip_is_bit_identical(result):
    decoded = result_from_dict(result_to_dict(result))
    assert decoded.metrics == result.metrics
    assert canon(decoded.metrics) == canon(result.metrics)


def test_cache_round_trip_is_bit_identical(result, tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(CONFIG, result)
    cached = cache.get(CONFIG)
    assert cached is not None
    assert cached.metrics == result.metrics
    assert canon(cached.metrics) == canon(result.metrics)


def test_pre_metrics_cache_entry_is_a_miss(result, tmp_path):
    """A cache file from before the codec carried metrics (version bump)
    must read as a miss and be evicted, never as a metrics-less hit."""
    cache = ResultCache(tmp_path)
    path = cache.put(CONFIG, result)
    stale = json.loads(path.read_text())
    stale["version"] = 2
    stale.pop("metrics", None)
    path.write_text(json.dumps(stale, separators=(",", ":")))
    assert cache.get(CONFIG) is None
    assert not path.exists()
