"""Property-based coverage of the crypto substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primes import egcd, miller_rabin, modinv
from repro.crypto.rsa import bytes_to_int, generate_keypair, int_to_bytes
from repro.crypto.signing import (
    deserialize_public_key,
    serialize_public_key,
    sign,
    verify,
)

# One shared small key: hypothesis runs many examples and keygen is the
# expensive part, while the properties quantify over messages.
_KEY = generate_keypair(512, random.Random(1234))


class TestNumberTheory:
    @settings(max_examples=200)
    @given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=1, max_value=10**9))
    def test_egcd_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0

    @settings(max_examples=200)
    @given(st.integers(min_value=2, max_value=10**6))
    def test_modinv_is_inverse_when_coprime(self, a):
        m = 1_000_003  # prime modulus: everything nonzero is invertible
        inv = modinv(a % m or 1, m)
        assert ((a % m or 1) * inv) % m == 1

    @settings(max_examples=100)
    @given(st.integers(min_value=2, max_value=10**4))
    def test_miller_rabin_agrees_with_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1)) and n >= 2
        assert miller_rabin(n, rng=random.Random(0)) == by_trial


class TestRsaProperties:
    @settings(max_examples=100)
    @given(st.integers(min_value=0))
    def test_raw_roundtrip_any_representative(self, m):
        m = m % _KEY.n
        assert _KEY.decrypt_int(_KEY.public.encrypt_int(m)) == m

    @settings(max_examples=100)
    @given(st.binary(min_size=1, max_size=64))
    def test_int_byte_roundtrip(self, data):
        value = bytes_to_int(data)
        assert bytes_to_int(int_to_bytes(value, len(data))) == value


class TestSignatureProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=512), st.binary(max_size=512))
    def test_signature_binds_exact_message(self, message, other):
        signature = sign(message, _KEY)
        assert verify(message, signature, _KEY.public)
        if other != message:
            assert not verify(other, signature, _KEY.public)

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=128), st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=7))
    def test_any_signature_bitflip_invalidates(self, message, byte_index, bit):
        signature = bytearray(sign(message, _KEY))
        signature[byte_index % len(signature)] ^= 1 << bit
        assert not verify(message, bytes(signature), _KEY.public)

    def test_key_serialization_roundtrip_many_keys(self):
        rng = random.Random(77)
        for _ in range(5):
            key = generate_keypair(512, rng).public
            assert deserialize_public_key(serialize_public_key(key)) == key
