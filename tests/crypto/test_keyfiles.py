"""Key file persistence (the §5.3.1 key publication step)."""

import random

import pytest

from repro.crypto import generate_keypair
from repro.crypto.keyfiles import (
    load_private_key,
    load_public_key,
    save_private_key,
    save_public_key,
)
from repro.crypto.signing import SignatureError, sign, verify


@pytest.fixture(scope="module")
def key():
    return generate_keypair(512, random.Random(401))


class TestPublicKeyFiles:
    def test_roundtrip(self, key, tmp_path):
        path = save_public_key(key.public, tmp_path / "edge.pub")
        assert load_public_key(path) == key.public

    def test_armored_format(self, key, tmp_path):
        path = save_public_key(key.public, tmp_path / "k.pub")
        text = path.read_text()
        assert text.startswith("-----BEGIN TLC PUBLIC KEY-----")
        assert text.rstrip().endswith("-----END TLC PUBLIC KEY-----")

    def test_missing_armor_rejected(self, tmp_path):
        path = tmp_path / "bad.pub"
        path.write_text("just some text")
        with pytest.raises(SignatureError, match="not a TLC public key"):
            load_public_key(path)

    def test_corrupt_base64_rejected(self, key, tmp_path):
        path = save_public_key(key.public, tmp_path / "k.pub")
        lines = path.read_text().splitlines()
        lines[1] = "!!!" + lines[1][3:]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SignatureError):
            load_public_key(path)


class TestPrivateKeyFiles:
    def test_roundtrip_and_signing(self, key, tmp_path):
        path = save_private_key(key, tmp_path / "edge.key")
        loaded = load_private_key(path)
        assert loaded == key
        signature = sign(b"message", loaded)
        assert verify(b"message", signature, key.public)

    def test_restrictive_permissions(self, key, tmp_path):
        path = save_private_key(key, tmp_path / "edge.key")
        assert (path.stat().st_mode & 0o777) == 0o600

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.key"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(SignatureError, match="unknown key format"):
            load_private_key(path)

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.key"
        path.write_text('{"format": "tlc-private-key-v1", "n": 5}')
        with pytest.raises(SignatureError, match="missing fields"):
            load_private_key(path)

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "bad.key"
        path.write_text("not json")
        with pytest.raises(SignatureError):
            load_private_key(path)
