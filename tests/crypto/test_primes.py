"""Primality testing and prime generation."""

import random

import pytest

from repro.crypto.primes import egcd, generate_prime, miller_rabin, modinv

KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, (1 << 61) - 1]
KNOWN_COMPOSITES = [1, 4, 9, 100, 561, 41041, 7919 * 104729]  # incl. Carmichael


class TestMillerRabin:
    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_accepts_primes(self, n):
        assert miller_rabin(n, rng=random.Random(0))

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_rejects_composites(self, n):
        assert not miller_rabin(n, rng=random.Random(0))

    def test_rejects_small_non_primes(self):
        assert not miller_rabin(0)
        assert not miller_rabin(1)
        assert not miller_rabin(-7)

    def test_carmichael_numbers_rejected(self):
        """561 = 3·11·17 fools Fermat but not Miller–Rabin."""
        for carmichael in (561, 1105, 1729, 2465):
            assert not miller_rabin(carmichael, rng=random.Random(1))


class TestGeneratePrime:
    def test_exact_bit_length(self):
        prime = generate_prime(64, random.Random(3))
        assert prime.bit_length() == 64

    def test_is_odd(self):
        assert generate_prime(32, random.Random(5)) % 2 == 1

    def test_deterministic_for_seed(self):
        assert generate_prime(48, random.Random(9)) == generate_prime(48, random.Random(9))

    def test_product_of_two_has_double_bits(self):
        """Top-two-bits forcing guarantees n = p·q has exactly 2k bits."""
        rng = random.Random(11)
        p, q = generate_prime(64, rng), generate_prime(64, rng)
        assert (p * q).bit_length() == 128

    def test_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            generate_prime(4, random.Random(0))


class TestModularArithmetic:
    def test_egcd_identity(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == g

    def test_modinv_roundtrip(self):
        inv = modinv(17, 3120)
        assert (17 * inv) % 3120 == 1

    def test_modinv_requires_coprimality(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    def test_modinv_of_one(self):
        assert modinv(1, 97) == 1
