"""PKCS#1 v1.5-style signatures over SHA-256."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rsa import generate_keypair
from repro.crypto.signing import (
    SignatureError,
    deserialize_public_key,
    require_valid,
    serialize_public_key,
    sign,
    verify,
)


@pytest.fixture(scope="module")
def key():
    return generate_keypair(512, random.Random(21))


@pytest.fixture(scope="module")
def other_key():
    return generate_keypair(512, random.Random(22))


class TestSignVerify:
    def test_roundtrip(self, key):
        sig = sign(b"charging record", key)
        assert verify(b"charging record", sig, key.public)

    def test_signature_length_equals_modulus(self, key):
        assert len(sign(b"x", key)) == key.byte_length

    def test_tampered_message_fails(self, key):
        sig = sign(b"volume=100", key)
        assert not verify(b"volume=999", sig, key.public)

    def test_wrong_key_fails(self, key, other_key):
        sig = sign(b"m", key)
        assert not verify(b"m", sig, other_key.public)

    def test_truncated_signature_fails(self, key):
        sig = sign(b"m", key)
        assert not verify(b"m", sig[:-1], key.public)

    def test_bitflipped_signature_fails(self, key):
        sig = bytearray(sign(b"m", key))
        sig[10] ^= 0x01
        assert not verify(b"m", bytes(sig), key.public)

    def test_empty_message_signs(self, key):
        assert verify(b"", sign(b"", key), key.public)

    def test_deterministic_signatures(self, key):
        assert sign(b"m", key) == sign(b"m", key)

    def test_require_valid_raises(self, key):
        with pytest.raises(SignatureError):
            require_valid(b"m", b"\x00" * key.byte_length, key.public)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=256))
    def test_any_message_roundtrips(self, key, message):
        assert verify(message, sign(message, key), key.public)


class TestKeySerialization:
    def test_roundtrip(self, key):
        blob = serialize_public_key(key.public)
        assert deserialize_public_key(blob) == key.public

    def test_truncated_blob_rejected(self, key):
        blob = serialize_public_key(key.public)
        with pytest.raises(SignatureError):
            deserialize_public_key(blob[: len(blob) // 2])

    def test_trailing_garbage_rejected(self, key):
        blob = serialize_public_key(key.public) + b"garbage"
        with pytest.raises(SignatureError):
            deserialize_public_key(blob)

    def test_empty_blob_rejected(self):
        with pytest.raises(SignatureError):
            deserialize_public_key(b"")
