"""RSA key generation and raw operations."""

import random

import pytest

from repro.crypto.rsa import (
    PUBLIC_EXPONENT,
    PublicKey,
    bytes_to_int,
    generate_keypair,
    int_to_bytes,
)


@pytest.fixture(scope="module")
def key():
    return generate_keypair(512, random.Random(7))


class TestKeygen:
    def test_modulus_bit_length(self, key):
        assert key.n.bit_length() == 512

    def test_public_exponent(self, key):
        assert key.e == PUBLIC_EXPONENT

    def test_modulus_is_product_of_factors(self, key):
        assert key.p * key.q == key.n

    def test_ed_is_identity_mod_phi(self, key):
        phi = (key.p - 1) * (key.q - 1)
        assert (key.e * key.d) % phi == 1

    def test_crt_parameters(self, key):
        assert key.dp == key.d % (key.p - 1)
        assert key.dq == key.d % (key.q - 1)
        assert (key.qinv * key.q) % key.p == 1

    def test_deterministic_keygen(self):
        a = generate_keypair(512, random.Random(3))
        b = generate_keypair(512, random.Random(3))
        assert a.n == b.n

    def test_rejects_small_moduli(self):
        with pytest.raises(ValueError):
            generate_keypair(128, random.Random(0))

    def test_rejects_odd_bit_length(self):
        with pytest.raises(ValueError):
            generate_keypair(513, random.Random(0))


class TestRawOperations:
    def test_encrypt_decrypt_roundtrip(self, key):
        message = 0x1234567890ABCDEF
        cipher = key.public.encrypt_int(message)
        assert key.decrypt_int(cipher) == message

    def test_decrypt_encrypt_roundtrip(self, key):
        """Sign-then-verify direction (private first)."""
        digest = 0xDEADBEEF
        signature = key.decrypt_int(digest)
        assert key.public.encrypt_int(signature) == digest

    def test_out_of_range_rejected(self, key):
        with pytest.raises(ValueError):
            key.public.encrypt_int(key.n)
        with pytest.raises(ValueError):
            key.decrypt_int(-1)

    def test_byte_length(self, key):
        assert key.byte_length == 64
        assert key.public.byte_length == 64


class TestEncoding:
    def test_int_bytes_roundtrip(self):
        value = 2**100 + 12345
        assert bytes_to_int(int_to_bytes(value, 16)) == value

    def test_fixed_length_padding(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_fingerprint_is_stable_and_short(self, key):
        assert key.public.fingerprint() == key.public.fingerprint()
        assert len(key.public.fingerprint()) == 16

    def test_different_keys_different_fingerprints(self, key):
        other = generate_keypair(512, random.Random(99))
        assert key.public.fingerprint() != other.public.fingerprint()

    def test_public_key_equality_by_value(self, key):
        assert key.public == PublicKey(n=key.n, e=key.e)
