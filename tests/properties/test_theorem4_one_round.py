"""Theorem 4: honest/rational players converge in one round.

When both parties are honest or rational (the paper's OptimalStrategy)
and every charging-record estimate is within relative error e of the true
counterpart metric, an accept tolerance tol ≥ e makes the negotiation
settle in exactly one round — the deployment property that keeps TLC's
per-cycle overhead at a single message exchange (Figure 17).

The estimates are drawn as integers inside the closed interval
[⌈record·(1−tol)⌉, ⌊record·(1+tol)⌋] so the precondition holds exactly
despite integer truncation.
"""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    DataPlan,
    HonestStrategy,
    NegotiationEngine,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
)

PLAYER_COMBOS = (
    ("optimal", "optimal"),
    ("honest", "honest"),
    ("optimal", "honest"),
    ("honest", "optimal"),
)


def estimate_within(record, tolerance, fraction):
    lo = min(math.ceil(record * (1.0 - tolerance)), record)
    hi = max(math.floor(record * (1.0 + tolerance)), record)
    return lo + int(round(fraction * (hi - lo)))


def build_player(kind, role, own_record, other_estimate, tolerance):
    knowledge = PartyKnowledge(role, own_record, other_estimate)
    cls = OptimalStrategy if kind == "optimal" else HonestStrategy
    return cls(knowledge, accept_tolerance=tolerance)


cycles = st.fixed_dictionaries(
    {
        "x_e": st.integers(min_value=0, max_value=10**9),
        "loss_frac": st.floats(0.0, 0.5, allow_nan=False),
        "tolerance": st.sampled_from([0.015, 0.05, 0.1]),
        "edge_fraction": st.floats(0.0, 1.0, allow_nan=False),
        "operator_fraction": st.floats(0.0, 1.0, allow_nan=False),
        "c": st.sampled_from([0.0, 0.3, 0.5, 1.0]),
        "combo": st.sampled_from(PLAYER_COMBOS),
    }
)


@given(cycles)
def test_honest_and_rational_players_settle_in_one_round(params):
    x_e = params["x_e"]
    x_o = int(x_e * (1.0 - params["loss_frac"]))
    tol = params["tolerance"]
    edge_kind, operator_kind = params["combo"]
    edge = build_player(
        edge_kind,
        PartyRole.EDGE,
        x_e,
        estimate_within(x_o, tol, params["edge_fraction"]),
        tol,
    )
    operator = build_player(
        operator_kind,
        PartyRole.OPERATOR,
        x_o,
        estimate_within(x_e, tol, params["operator_fraction"]),
        tol,
    )
    result = NegotiationEngine(DataPlan(c=params["c"]), edge, operator).run()
    assert result.converged
    assert not result.forced
    assert result.rounds == 1


@given(cycles)
def test_one_round_settlement_is_a_true_double_accept(params):
    """The transcript shows both in-bounds claims accepted in round 0."""
    x_e = params["x_e"]
    x_o = int(x_e * (1.0 - params["loss_frac"]))
    tol = params["tolerance"]
    edge = OptimalStrategy(
        PartyKnowledge(
            PartyRole.EDGE, x_e, estimate_within(x_o, tol, params["edge_fraction"])
        ),
        accept_tolerance=tol,
    )
    operator = OptimalStrategy(
        PartyKnowledge(
            PartyRole.OPERATOR,
            x_o,
            estimate_within(x_e, tol, params["operator_fraction"]),
        ),
        accept_tolerance=tol,
    )
    result = NegotiationEngine(DataPlan(c=params["c"]), edge, operator).run()
    record = result.transcript[0]
    assert record.edge_accepts and record.operator_accepts
    assert record.edge_claim_in_bounds and record.operator_claim_in_bounds
    assert (result.volume, result.rounds) == (
        int(round(DataPlan(c=params["c"]).charge(record.edge_claim, record.operator_claim))),
        1,
    )
