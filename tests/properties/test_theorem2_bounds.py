"""Theorem 2: the negotiated volume is bounded by the parties' records.

For any pair of strategies that (a) never claim past their own provable
record and (b) apply the cross-check accept rule, an *agreed* charging
volume x̂ satisfies

    x̂_o · (1 − tol)  ≤  x̂  ≤  x̂_e · (1 + tol)

where x̂_o is the operator's received record, x̂_e the edge's sent record
and ``tol`` the accept tolerance both sides run with.  The proof follows
the paper's §5.1 argument: a double accept means the operator approved a
claim no lower than its record (minus tolerance) and the edge approved a
claim no higher than its record (plus tolerance), and line 8's charging
formula interpolates between the two approved claims.

Force-converged settlements (the engine collapsing a degenerate bound
interval) can creep past the accept thresholds by at most one byte per
round of clamping, so they carry a ``max_rounds`` additive slack.
"""

import math
import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    DataPlan,
    HonestStrategy,
    NegotiationEngine,
    OptimalStrategy,
    PartyKnowledge,
    PartyRole,
    RandomSelfishStrategy,
    RubinsteinStrategy,
)

# Integer rounding in line 8 (`int(round(...))`) and in the tolerance
# thresholds can each shift the volume by one byte.
ROUNDING_SLACK = 2

STRATEGY_KINDS = ("honest", "optimal", "random", "rubinstein")


def build_strategy(kind, role, own_record, other_estimate, tolerance, seed):
    knowledge = PartyKnowledge(role, own_record, other_estimate)
    if kind == "honest":
        return HonestStrategy(knowledge, accept_tolerance=tolerance)
    if kind == "optimal":
        return OptimalStrategy(knowledge, accept_tolerance=tolerance)
    if kind == "random":
        return RandomSelfishStrategy(
            knowledge, random.Random(seed), accept_tolerance=tolerance
        )
    if kind == "rubinstein":
        return RubinsteinStrategy(knowledge, delta=0.85, accept_tolerance=tolerance)
    raise AssertionError(kind)


matchups = st.fixed_dictionaries(
    {
        "x_e": st.integers(min_value=0, max_value=10**9),
        "loss_frac": st.floats(0.0, 0.5, allow_nan=False),
        "edge_noise": st.floats(-0.08, 0.08, allow_nan=False),
        "operator_noise": st.floats(-0.08, 0.08, allow_nan=False),
        "tolerance": st.sampled_from([0.0, 0.015, 0.05, 0.1]),
        "c": st.sampled_from([0.0, 0.3, 0.5, 1.0]),
        "edge_kind": st.sampled_from(STRATEGY_KINDS),
        "operator_kind": st.sampled_from(STRATEGY_KINDS),
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
    }
)


def run_matchup(params):
    """Build the records/estimates and run Algorithm 1 once."""
    x_e = params["x_e"]
    x_o = int(x_e * (1.0 - params["loss_frac"]))
    edge_estimate = max(0, int(x_o * (1.0 + params["edge_noise"])))
    operator_estimate = max(0, int(x_e * (1.0 + params["operator_noise"])))
    tol = params["tolerance"]
    edge = build_strategy(
        params["edge_kind"], PartyRole.EDGE, x_e, edge_estimate, tol, params["seed"]
    )
    operator = build_strategy(
        params["operator_kind"],
        PartyRole.OPERATOR,
        x_o,
        operator_estimate,
        tol,
        params["seed"] + 1,
    )
    engine = NegotiationEngine(DataPlan(c=params["c"]), edge, operator)
    return x_e, x_o, engine, engine.run()


@given(matchups)
def test_agreed_volume_within_record_bounds(params):
    """Double-accept outcomes respect x̂_o(1−tol) ≤ x̂ ≤ x̂_e(1+tol)."""
    x_e, x_o, engine, result = run_matchup(params)
    assert result.volume >= 0
    if not result.converged or result.forced:
        return
    tol = params["tolerance"]
    assert result.volume >= x_o * (1.0 - tol) - ROUNDING_SLACK
    assert result.volume <= x_e * (1.0 + tol) + ROUNDING_SLACK


@given(matchups)
def test_forced_settlement_within_bounds_plus_clamp_creep(params):
    """Force-converged settlements drift ≤ 1 byte/round past the bound."""
    x_e, x_o, engine, result = run_matchup(params)
    if not result.converged:
        return
    tol = params["tolerance"]
    creep = engine.max_rounds if result.forced else 0
    assert result.volume >= x_o * (1.0 - tol) - ROUNDING_SLACK - creep
    assert result.volume <= x_e * (1.0 + tol) + ROUNDING_SLACK + creep


def estimate_within(record, tolerance, fraction):
    """An integer estimate of ``record`` with relative error ≤ tolerance.

    ``fraction`` ∈ [0, 1] picks a point in the closed integer interval
    [⌈record·(1−tol)⌉, ⌊record·(1+tol)⌋], so the accept thresholds hold
    exactly despite integer truncation.
    """
    lo = min(math.ceil(record * (1.0 - tolerance)), record)
    hi = max(math.floor(record * (1.0 + tolerance)), record)
    return lo + int(round(fraction * (hi - lo)))


@given(matchups)
def test_charging_gap_bounded_by_record_error(params):
    """Figure 18's gap bound: rational play on records within relative
    error e ≤ tol charges within e·(x̂_o + x̂_e) of the expected charge."""
    x_e = params["x_e"]
    x_o = int(x_e * (1.0 - params["loss_frac"]))
    tol = max(params["tolerance"], 0.015)
    edge_estimate = estimate_within(x_o, tol, (params["edge_noise"] + 0.08) / 0.16)
    operator_estimate = estimate_within(
        x_e, tol, (params["operator_noise"] + 0.08) / 0.16
    )
    edge = OptimalStrategy(
        PartyKnowledge(PartyRole.EDGE, x_e, edge_estimate), accept_tolerance=tol
    )
    operator = OptimalStrategy(
        PartyKnowledge(PartyRole.OPERATOR, x_o, operator_estimate), accept_tolerance=tol
    )
    plan = DataPlan(c=params["c"])
    result = NegotiationEngine(plan, edge, operator).run()
    assert result.converged and not result.forced
    expected = plan.expected_charge(x_e, x_o)
    # charge() is 1-Lipschitz in each claim, so the gap is bounded by the
    # sum of both parties' absolute estimate errors (≤ tol·record each).
    error_budget = abs(edge_estimate - x_o) + abs(operator_estimate - x_e)
    assert abs(result.volume - expected) <= error_budget + ROUNDING_SLACK

